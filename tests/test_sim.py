"""Simulation engine, network and TCP substrate tests."""

import pytest

from repro.core.errors import SimulationError
from repro.core.units import GBPS, MBPS
from repro.core.units import transmission_time_us
from repro.net.simnet import HOP_LATENCY_US, Network, RateLimiter, WIRE_OVERHEAD
from repro.net.tcp import TcpNetwork
from repro.sim.engine import Engine


class TestEngine:
    def test_schedule_order(self):
        engine = Engine()
        seen = []
        engine.schedule(10, seen.append, "b")
        engine.schedule(5, seen.append, "a")
        engine.schedule(20, seen.append, "c")
        engine.run()
        assert seen == ["a", "b", "c"]

    def test_same_time_fifo(self):
        engine = Engine()
        seen = []
        for label in "xyz":
            engine.schedule(1.0, seen.append, label)
        engine.run()
        assert seen == ["x", "y", "z"]

    def test_now_advances(self):
        engine = Engine()
        stamps = []
        engine.schedule(3, lambda: stamps.append(engine.now))
        engine.schedule(7, lambda: stamps.append(engine.now))
        engine.run()
        assert stamps == [3, 7]

    def test_run_until(self):
        engine = Engine()
        seen = []
        engine.schedule(5, seen.append, 1)
        engine.schedule(50, seen.append, 2)
        engine.run(until=10)
        assert seen == [1]
        assert engine.now == 10

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1, lambda: None)

    def test_process_timeout(self):
        engine = Engine()
        trace = []

        def proc():
            trace.append(engine.now)
            yield engine.timeout(10)
            trace.append(engine.now)
            yield engine.timeout(5)
            trace.append(engine.now)

        engine.process(proc())
        engine.run()
        assert trace == [0, 10, 15]

    def test_process_waits_on_event(self):
        engine = Engine()
        evt = engine.event()
        got = []

        def waiter():
            payload = yield evt
            got.append((engine.now, payload))

        engine.process(waiter())
        engine.schedule(25, evt.trigger, "ready")
        engine.run()
        assert got == [(25, "ready")]

    def test_event_double_trigger_rejected(self):
        engine = Engine()
        evt = engine.event()
        evt.trigger()
        with pytest.raises(SimulationError):
            evt.trigger()

    def test_process_result_propagates(self):
        engine = Engine()

        def child():
            yield engine.timeout(1)
            return 42

        results = []

        def parent():
            value = yield engine.process(child())
            results.append(value)

        engine.process(parent())
        engine.run()
        assert results == [42]

    def test_determinism(self):
        def run_once():
            engine = Engine()
            seen = []
            for i in range(50):
                engine.schedule((i * 7) % 13, seen.append, i)
            engine.run()
            return seen

        assert run_once() == run_once()


class TestZeroDelayReadyQueue:
    """The same-tick FIFO fast path must be indistinguishable from the
    heap: zero-delay events interleave with delayed ones in exactly the
    (time, seq) order a single heap would produce."""

    def test_mixed_zero_and_delayed_ordering(self):
        engine = Engine()
        seen = []

        def on_a():
            seen.append("a")
            engine.schedule(0, seen.append, "c")
            engine.schedule(5, seen.append, "z")

        engine.schedule(5, seen.append, "x")
        engine.schedule(0, on_a)
        engine.schedule(0, seen.append, "b")
        engine.schedule(5, seen.append, "y")
        engine.run()
        # t=0 fires a, b, then a's same-tick child c; t=5 fires x, y
        # (scheduled before z) in seq order.
        assert seen == ["a", "b", "c", "x", "y", "z"]

    def test_pending_counts_ready_entries(self):
        engine = Engine()
        engine.schedule(0, lambda: None)
        engine.schedule(0, lambda: None)
        engine.schedule(10, lambda: None)
        assert engine.pending() == 3
        engine.run()
        assert engine.pending() == 0

    def test_run_until_stops_before_later_heap_event(self):
        engine = Engine()
        seen = []
        engine.schedule(0, seen.append, "a")
        engine.schedule(10, seen.append, "b")
        assert engine.run(until=5) == 5
        assert seen == ["a"]
        assert engine.now == 5
        assert engine.pending() == 1

    def test_zero_delay_keeps_current_time(self):
        engine = Engine()
        stamps = []

        def later():
            engine.schedule(0, lambda: stamps.append(engine.now))

        engine.schedule(7, later)
        engine.run()
        assert stamps == [7]

    def test_event_trigger_goes_through_ready_queue(self):
        engine = Engine()
        seen = []
        event = engine.event()
        event.add_callback(lambda payload: seen.append(("cb", payload)))
        engine.schedule(3, event.trigger, 99)
        engine.schedule(3, seen.append, "after")
        engine.run()
        # The trigger's callback is a same-tick *child* of the trigger
        # (scheduled during it), so everything already queued for the
        # same timestamp fires first.
        assert seen == ["after", ("cb", 99)]
        assert engine.now == 3


class TestControlFrameOrdering:
    """Zero-byte control frames must not overtake queued data.

    Regression tests for the seed bug where ``deliver()`` set
    ``depart = now`` for ``nbytes == 0``, letting a FIN (or SYN) leave
    the host immediately while earlier-sent data was still serialising
    behind ``src.tx.busy_until`` — delivering EOF before bytes on a
    supposedly ordered stream.
    """

    def test_zero_byte_frame_claims_sender_nic_queue(self):
        # The sender's NIC is busy for ~8.5 ms serialising data to b; a
        # control frame to c (whose idle rx can't mask the bug) must
        # depart behind it, not teleport past the tx queue.
        engine = Engine()
        net = Network(engine)
        a = net.add_host("a", 1 * GBPS, "core")
        b = net.add_host("b", 1 * GBPS, "core")
        c = net.add_host("c", 10 * GBPS, "core")
        net.deliver(a, b, 1_000_000, lambda: None)
        tx_busy_until = a.tx.busy_until
        assert tx_busy_until > 8_000
        fin_arrival = net.deliver(a, c, 0, lambda: None)
        assert fin_arrival >= tx_busy_until

    def test_same_stream_fin_never_beats_data(self):
        engine = Engine()
        net = Network(engine)
        a = net.add_host("a", 1 * GBPS, "core")
        b = net.add_host("b", 10 * GBPS, "core")
        order = []
        net.deliver(a, b, 1_000_000, lambda: order.append("data"))
        net.deliver(a, b, 0, lambda: order.append("fin"))
        engine.run()
        assert order == ["data", "fin"]

    def test_fin_after_large_send_delivers_data_before_eof(self):
        engine = Engine()
        net = TcpNetwork(engine)
        a = net.add_host("a", 1 * GBPS, "edge")
        b = net.add_host("b", 10 * GBPS, "core")
        order = []

        def accept(sock):
            sock.on_receive(lambda data: order.append(("data", len(data))))
            sock.on_close(lambda: order.append(("close", engine.now)))

        net.listen(b, 80, accept)

        def connected(sock):
            # ~8 ms of serialisation at the 1 Gbps NIC, then an
            # immediate FIN: the FIN must queue behind the payload.
            sock.send(b"x" * 1_000_000)
            sock.close()

        net.connect(a, b, 80, connected)
        engine.run()
        assert order, "nothing delivered"
        assert order[0][0] == "data"
        assert order[-1][0] == "close"
        assert [kind for kind, _ in order].count("close") == 1


class TestRateLimiter:
    def test_transmission_time(self):
        rl = RateLimiter(1 * GBPS)
        end = rl.transmit(0.0, 125_000)  # 1 Mbit payload
        assert end == pytest.approx(1000.0 * WIRE_OVERHEAD, rel=0.01)

    def test_fractional_wire_bytes_charged_exactly(self):
        # 1448-byte payload inflates to exactly 1538 wire bytes; the
        # seed's int() truncation used to undercharge the fraction on
        # every other size.
        rl = RateLimiter(1 * GBPS)
        end = rl.transmit(0.0, 1448)
        assert end == transmission_time_us(1538, 1 * GBPS)
        assert end == pytest.approx(12.304, abs=1e-3)

    def test_transmission_time_us_pinned(self):
        # The cost model the whole network hangs off: 8 bits/byte at
        # rate_bps, in µs — including fractional wire bytes.
        assert transmission_time_us(125_000, 1 * GBPS) == 1000.0
        assert transmission_time_us(1, 1 * GBPS) == pytest.approx(0.008)
        assert transmission_time_us(100.5, 1 * GBPS) == pytest.approx(0.804)

    def test_no_truncation_accumulation_over_frames(self):
        # 1000 one-byte frames: wire bytes 1.0621... each; truncation
        # used to bill int(1.06) = 1 wire byte per frame (~6% under).
        rl = RateLimiter(1 * GBPS)
        end = 0.0
        for _ in range(1000):
            end = rl.transmit(0.0, 1)
        expected = transmission_time_us(1000 * WIRE_OVERHEAD, 1 * GBPS)
        assert end == pytest.approx(expected, rel=1e-9)

    def test_serialisation_of_back_to_back_sends(self):
        rl = RateLimiter(1 * GBPS)
        first = rl.transmit(0.0, 125_000)
        second = rl.transmit(0.0, 125_000)
        assert second == pytest.approx(2 * first, rel=0.01)

    def test_idle_gap_not_accumulated(self):
        rl = RateLimiter(1 * GBPS)
        rl.transmit(0.0, 1000)
        end = rl.transmit(1_000_000.0, 1000)
        assert end > 1_000_000.0

    def test_invalid_rate(self):
        with pytest.raises(SimulationError):
            RateLimiter(0)


class TestNetwork:
    def test_same_segment_one_hop(self):
        engine = Engine()
        net = Network(engine)
        a = net.add_host("a", 10 * GBPS, "core")
        b = net.add_host("b", 10 * GBPS, "core")
        arrival = net.deliver(a, b, 0, lambda: None)
        assert arrival == pytest.approx(HOP_LATENCY_US)

    def test_cross_segment_two_hops(self):
        engine = Engine()
        net = Network(engine)
        a = net.add_host("a", 10 * GBPS, "edge")
        b = net.add_host("b", 10 * GBPS, "core")
        arrival = net.deliver(a, b, 0, lambda: None)
        assert arrival == pytest.approx(2 * HOP_LATENCY_US)

    def test_slow_nic_caps_throughput(self):
        engine = Engine()
        net = Network(engine)
        a = net.add_host("a", 10 * MBPS, "core")
        b = net.add_host("b", 10 * GBPS, "core")
        arrival = net.deliver(a, b, 12_500, lambda: None)  # 100 kbit
        # ~10ms serialisation at the sender's 10 Mbps NIC
        assert arrival > 10_000

    def test_duplicate_host_rejected(self):
        engine = Engine()
        net = Network(engine)
        net.add_host("a")
        with pytest.raises(SimulationError):
            net.add_host("a")


class TestTcp:
    def _pair(self):
        engine = Engine()
        net = TcpNetwork(engine)
        a = net.add_host("a", 1 * GBPS, "edge")
        b = net.add_host("b", 10 * GBPS, "core")
        return engine, net, a, b

    def test_connect_and_exchange(self):
        engine, net, a, b = self._pair()
        server_got, client_got = [], []

        def accept(sock):
            sock.on_receive(server_got.append)
            sock.on_receive  # noqa: B018 - attribute exists
            sock.send(b"pong")

        net.listen(b, 80, accept)
        net.connect(a, b, 80, lambda s: (s.on_receive(client_got.append), s.send(b"ping")))
        engine.run()
        assert server_got == [b"ping"]
        assert client_got == [b"pong"]

    def test_connection_refused(self):
        engine, net, a, b = self._pair()
        with pytest.raises(SimulationError):
            net.connect(a, b, 9999, lambda s: None)

    def test_eof_delivered(self):
        engine, net, a, b = self._pair()
        closed = []

        def accept(sock):
            sock.on_receive(lambda d: None)
            sock.on_close(lambda: closed.append(engine.now))

        net.listen(b, 80, accept)
        net.connect(a, b, 80, lambda s: s.close())
        engine.run()
        assert len(closed) == 1

    def test_data_buffered_until_callback_registered(self):
        engine, net, a, b = self._pair()
        got = []
        sockets = []
        net.listen(b, 80, sockets.append)
        net.connect(a, b, 80, lambda s: s.send(b"early"))
        engine.run()
        sockets[0].on_receive(got.append)
        engine.run()  # buffered flush is deferred through the engine
        assert got == [b"early"]

    def test_send_on_closed_socket_rejected(self):
        engine, net, a, b = self._pair()
        net.listen(b, 80, lambda s: None)
        client = []
        net.connect(a, b, 80, client.append)
        engine.run()
        client[0].close()
        with pytest.raises(SimulationError):
            client[0].send(b"nope")

    def test_byte_counters(self):
        engine, net, a, b = self._pair()
        net.listen(b, 80, lambda s: s.on_receive(lambda d: None))
        client = []
        net.connect(a, b, 80, client.append)
        engine.run()
        client[0].send(b"12345")
        engine.run()
        assert client[0].bytes_sent == 5
        assert client[0].peer.bytes_received == 5

    def test_duplicate_listen_rejected(self):
        engine, net, a, b = self._pair()
        net.listen(b, 80, lambda s: None)
        with pytest.raises(SimulationError):
            net.listen(b, 80, lambda s: None)


class TestTcpCallbackDelivery:
    """Data and EOF delivery must be engine-ordered and stream-ordered:
    buffered chunks flush on a deferred tick, EOF never precedes data
    that arrived before it, and registration order cannot invert them."""

    def _pair(self):
        engine = Engine()
        net = TcpNetwork(engine)
        a = net.add_host("a", 1 * GBPS, "edge")
        b = net.add_host("b", 10 * GBPS, "core")
        return engine, net, a, b

    def _arrived(self, send_close=True):
        """A server socket holding buffered data (+ peer EOF), no
        callbacks registered yet."""
        engine, net, a, b = self._pair()
        sockets = []
        net.listen(b, 80, sockets.append)

        def connected(sock):
            sock.send(b"payload")
            if send_close:
                sock.close()

        net.connect(a, b, 80, connected)
        engine.run()
        return engine, sockets[0]

    def test_close_then_receive_registration_still_data_first(self):
        # Seed bug: on_close deferred while on_receive flushed
        # synchronously, so ordering depended on registration order.
        # Registering on_close *first* must still deliver data first.
        engine, sock = self._arrived()
        order = []
        sock.on_close(lambda: order.append("close"))
        sock.on_receive(lambda data: order.append(("data", data)))
        engine.run()
        assert order == [("data", b"payload"), "close"]

    def test_receive_then_close_registration_same_order(self):
        engine, sock = self._arrived()
        order = []
        sock.on_receive(lambda data: order.append(("data", data)))
        sock.on_close(lambda: order.append("close"))
        engine.run()
        assert order == [("data", b"payload"), "close"]

    def test_buffered_flush_is_deferred_not_synchronous(self):
        engine, sock = self._arrived(send_close=False)
        got = []
        sock.on_receive(got.append)
        assert got == []  # flush rides the engine, not the registration
        engine.run()
        assert got == [b"payload"]

    def test_eof_withheld_until_buffered_data_drained(self):
        # Stream semantics: EOF must not be observable while earlier
        # bytes sit undelivered in the receive buffer. The seed fired
        # the close callback regardless, so a late on_receive
        # registration saw EOF before the data that preceded it.
        engine, sock = self._arrived()
        order = []
        sock.on_close(lambda: order.append("close"))
        engine.run()
        assert order == []  # data still buffered: EOF withheld
        sock.on_receive(lambda data: order.append(("data", data)))
        engine.run()
        assert order == [("data", b"payload"), "close"]

    def test_bytes_dropped_after_local_close_counted(self):
        engine, net, a, b = self._pair()
        server_sockets = []

        def accept(sock):
            sock.on_receive(lambda data: None)
            server_sockets.append(sock)

        net.listen(b, 80, accept)
        clients = []
        net.connect(a, b, 80, clients.append)
        engine.run()
        server = server_sockets[0]
        clients[0].send(b"in flight")
        server.closed = True  # local close races the delivery
        engine.run()
        assert server.bytes_received == 0
        assert server.bytes_dropped == len(b"in flight")
