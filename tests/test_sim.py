"""Simulation engine, network and TCP substrate tests."""

import pytest

from repro.core.errors import SimulationError
from repro.core.units import GBPS, MBPS
from repro.net.simnet import HOP_LATENCY_US, Network, RateLimiter, WIRE_OVERHEAD
from repro.net.tcp import TcpNetwork
from repro.sim.engine import Engine


class TestEngine:
    def test_schedule_order(self):
        engine = Engine()
        seen = []
        engine.schedule(10, seen.append, "b")
        engine.schedule(5, seen.append, "a")
        engine.schedule(20, seen.append, "c")
        engine.run()
        assert seen == ["a", "b", "c"]

    def test_same_time_fifo(self):
        engine = Engine()
        seen = []
        for label in "xyz":
            engine.schedule(1.0, seen.append, label)
        engine.run()
        assert seen == ["x", "y", "z"]

    def test_now_advances(self):
        engine = Engine()
        stamps = []
        engine.schedule(3, lambda: stamps.append(engine.now))
        engine.schedule(7, lambda: stamps.append(engine.now))
        engine.run()
        assert stamps == [3, 7]

    def test_run_until(self):
        engine = Engine()
        seen = []
        engine.schedule(5, seen.append, 1)
        engine.schedule(50, seen.append, 2)
        engine.run(until=10)
        assert seen == [1]
        assert engine.now == 10

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1, lambda: None)

    def test_process_timeout(self):
        engine = Engine()
        trace = []

        def proc():
            trace.append(engine.now)
            yield engine.timeout(10)
            trace.append(engine.now)
            yield engine.timeout(5)
            trace.append(engine.now)

        engine.process(proc())
        engine.run()
        assert trace == [0, 10, 15]

    def test_process_waits_on_event(self):
        engine = Engine()
        evt = engine.event()
        got = []

        def waiter():
            payload = yield evt
            got.append((engine.now, payload))

        engine.process(waiter())
        engine.schedule(25, evt.trigger, "ready")
        engine.run()
        assert got == [(25, "ready")]

    def test_event_double_trigger_rejected(self):
        engine = Engine()
        evt = engine.event()
        evt.trigger()
        with pytest.raises(SimulationError):
            evt.trigger()

    def test_process_result_propagates(self):
        engine = Engine()

        def child():
            yield engine.timeout(1)
            return 42

        results = []

        def parent():
            value = yield engine.process(child())
            results.append(value)

        engine.process(parent())
        engine.run()
        assert results == [42]

    def test_determinism(self):
        def run_once():
            engine = Engine()
            seen = []
            for i in range(50):
                engine.schedule((i * 7) % 13, seen.append, i)
            engine.run()
            return seen

        assert run_once() == run_once()


class TestZeroDelayReadyQueue:
    """The same-tick FIFO fast path must be indistinguishable from the
    heap: zero-delay events interleave with delayed ones in exactly the
    (time, seq) order a single heap would produce."""

    def test_mixed_zero_and_delayed_ordering(self):
        engine = Engine()
        seen = []

        def on_a():
            seen.append("a")
            engine.schedule(0, seen.append, "c")
            engine.schedule(5, seen.append, "z")

        engine.schedule(5, seen.append, "x")
        engine.schedule(0, on_a)
        engine.schedule(0, seen.append, "b")
        engine.schedule(5, seen.append, "y")
        engine.run()
        # t=0 fires a, b, then a's same-tick child c; t=5 fires x, y
        # (scheduled before z) in seq order.
        assert seen == ["a", "b", "c", "x", "y", "z"]

    def test_pending_counts_ready_entries(self):
        engine = Engine()
        engine.schedule(0, lambda: None)
        engine.schedule(0, lambda: None)
        engine.schedule(10, lambda: None)
        assert engine.pending() == 3
        engine.run()
        assert engine.pending() == 0

    def test_run_until_stops_before_later_heap_event(self):
        engine = Engine()
        seen = []
        engine.schedule(0, seen.append, "a")
        engine.schedule(10, seen.append, "b")
        assert engine.run(until=5) == 5
        assert seen == ["a"]
        assert engine.now == 5
        assert engine.pending() == 1

    def test_zero_delay_keeps_current_time(self):
        engine = Engine()
        stamps = []

        def later():
            engine.schedule(0, lambda: stamps.append(engine.now))

        engine.schedule(7, later)
        engine.run()
        assert stamps == [7]

    def test_event_trigger_goes_through_ready_queue(self):
        engine = Engine()
        seen = []
        event = engine.event()
        event.add_callback(lambda payload: seen.append(("cb", payload)))
        engine.schedule(3, event.trigger, 99)
        engine.schedule(3, seen.append, "after")
        engine.run()
        # The trigger's callback is a same-tick *child* of the trigger
        # (scheduled during it), so everything already queued for the
        # same timestamp fires first.
        assert seen == ["after", ("cb", 99)]
        assert engine.now == 3


class TestRateLimiter:
    def test_transmission_time(self):
        rl = RateLimiter(1 * GBPS)
        end = rl.transmit(0.0, 125_000)  # 1 Mbit payload
        assert end == pytest.approx(1000.0 * WIRE_OVERHEAD, rel=0.01)

    def test_serialisation_of_back_to_back_sends(self):
        rl = RateLimiter(1 * GBPS)
        first = rl.transmit(0.0, 125_000)
        second = rl.transmit(0.0, 125_000)
        assert second == pytest.approx(2 * first, rel=0.01)

    def test_idle_gap_not_accumulated(self):
        rl = RateLimiter(1 * GBPS)
        rl.transmit(0.0, 1000)
        end = rl.transmit(1_000_000.0, 1000)
        assert end > 1_000_000.0

    def test_invalid_rate(self):
        with pytest.raises(SimulationError):
            RateLimiter(0)


class TestNetwork:
    def test_same_segment_one_hop(self):
        engine = Engine()
        net = Network(engine)
        a = net.add_host("a", 10 * GBPS, "core")
        b = net.add_host("b", 10 * GBPS, "core")
        arrival = net.deliver(a, b, 0, lambda: None)
        assert arrival == pytest.approx(HOP_LATENCY_US)

    def test_cross_segment_two_hops(self):
        engine = Engine()
        net = Network(engine)
        a = net.add_host("a", 10 * GBPS, "edge")
        b = net.add_host("b", 10 * GBPS, "core")
        arrival = net.deliver(a, b, 0, lambda: None)
        assert arrival == pytest.approx(2 * HOP_LATENCY_US)

    def test_slow_nic_caps_throughput(self):
        engine = Engine()
        net = Network(engine)
        a = net.add_host("a", 10 * MBPS, "core")
        b = net.add_host("b", 10 * GBPS, "core")
        arrival = net.deliver(a, b, 12_500, lambda: None)  # 100 kbit
        # ~10ms serialisation at the sender's 10 Mbps NIC
        assert arrival > 10_000

    def test_duplicate_host_rejected(self):
        engine = Engine()
        net = Network(engine)
        net.add_host("a")
        with pytest.raises(SimulationError):
            net.add_host("a")


class TestTcp:
    def _pair(self):
        engine = Engine()
        net = TcpNetwork(engine)
        a = net.add_host("a", 1 * GBPS, "edge")
        b = net.add_host("b", 10 * GBPS, "core")
        return engine, net, a, b

    def test_connect_and_exchange(self):
        engine, net, a, b = self._pair()
        server_got, client_got = [], []

        def accept(sock):
            sock.on_receive(server_got.append)
            sock.on_receive  # noqa: B018 - attribute exists
            sock.send(b"pong")

        net.listen(b, 80, accept)
        net.connect(a, b, 80, lambda s: (s.on_receive(client_got.append), s.send(b"ping")))
        engine.run()
        assert server_got == [b"ping"]
        assert client_got == [b"pong"]

    def test_connection_refused(self):
        engine, net, a, b = self._pair()
        with pytest.raises(SimulationError):
            net.connect(a, b, 9999, lambda s: None)

    def test_eof_delivered(self):
        engine, net, a, b = self._pair()
        closed = []

        def accept(sock):
            sock.on_receive(lambda d: None)
            sock.on_close(lambda: closed.append(engine.now))

        net.listen(b, 80, accept)
        net.connect(a, b, 80, lambda s: s.close())
        engine.run()
        assert len(closed) == 1

    def test_data_buffered_until_callback_registered(self):
        engine, net, a, b = self._pair()
        got = []
        sockets = []
        net.listen(b, 80, sockets.append)
        net.connect(a, b, 80, lambda s: s.send(b"early"))
        engine.run()
        sockets[0].on_receive(got.append)
        assert got == [b"early"]

    def test_send_on_closed_socket_rejected(self):
        engine, net, a, b = self._pair()
        net.listen(b, 80, lambda s: None)
        client = []
        net.connect(a, b, 80, client.append)
        engine.run()
        client[0].close()
        with pytest.raises(SimulationError):
            client[0].send(b"nope")

    def test_byte_counters(self):
        engine, net, a, b = self._pair()
        net.listen(b, 80, lambda s: s.on_receive(lambda d: None))
        client = []
        net.connect(a, b, 80, client.append)
        engine.run()
        client[0].send(b"12345")
        engine.run()
        assert client[0].bytes_sent == 5
        assert client[0].peer.bytes_received == 5

    def test_duplicate_listen_rejected(self):
        engine, net, a, b = self._pair()
        net.listen(b, 80, lambda s: None)
        with pytest.raises(SimulationError):
            net.listen(b, 80, lambda s: None)
