"""Runtime unit tests: channels, buffers, scheduler, tasks, dispatchers."""

import pytest

from repro.core.errors import BufferPoolExhausted, ChannelClosed, ChannelFull
from repro.lang.values import Record
from repro.runtime.buffers import BufferPool
from repro.runtime.channel import EOS, TaskChannel
from repro.runtime.dispatcher import GraphPool
from repro.runtime.scheduler import Scheduler, TaskBase
from repro.runtime.task import MergeTask
from repro.sim.engine import Engine


class TestChannel:
    def test_fifo_order(self):
        chan = TaskChannel("c", 8)
        for i in range(3):
            chan.push(i)
        assert [chan.pop() for _ in range(3)] == [0, 1, 2]

    def test_capacity_enforced(self):
        chan = TaskChannel("c", 2)
        chan.push(1)
        chan.push(2)
        assert not chan.has_space()
        with pytest.raises(ChannelFull):
            chan.push(3)

    def test_eos_after_close(self):
        chan = TaskChannel("c", 8)
        chan.push("last")
        chan.close()
        assert chan.pop() == "last"
        assert chan.pop() is EOS
        assert chan.exhausted()

    def test_push_after_close_rejected(self):
        chan = TaskChannel("c", 8)
        chan.close()
        with pytest.raises(ChannelClosed):
            chan.push(1)

    def test_pop_empty_rejected(self):
        chan = TaskChannel("c", 8)
        with pytest.raises(ChannelClosed):
            chan.pop()

    def test_runnable_notification(self):
        chan = TaskChannel("c", 8)
        pings = []
        chan.on_runnable = lambda: pings.append(1)
        chan.push("x")
        chan.close()
        assert len(pings) == 2

    def test_peek_skips_nothing(self):
        chan = TaskChannel("c", 8)
        chan.push("a")
        assert chan.peek() == "a"
        assert chan.pop() == "a"

    def test_at_eos_only_when_drained(self):
        chan = TaskChannel("c", 8)
        chan.push("a")
        chan.close()
        assert not chan.at_eos()
        chan.pop()
        assert chan.at_eos()

    def test_high_water_tracked(self):
        chan = TaskChannel("c", 8)
        for i in range(5):
            chan.push(i)
        for _ in range(5):
            chan.pop()
        assert chan.high_water == 5


class TestBufferPool:
    def test_acquire_release(self):
        pool = BufferPool(64 * 1024, 16 * 1024)
        n = pool.acquire(40 * 1024)
        assert n == 3
        assert pool.in_use == 3
        pool.release(n)
        assert pool.in_use == 0

    def test_exhaustion(self):
        pool = BufferPool(32 * 1024, 16 * 1024)
        pool.acquire(32 * 1024)
        with pytest.raises(BufferPoolExhausted):
            pool.acquire(1)

    def test_high_water(self):
        pool = BufferPool(64 * 1024, 16 * 1024)
        a = pool.acquire(16 * 1024)
        b = pool.acquire(32 * 1024)
        pool.release(a)
        pool.release(b)
        assert pool.high_water == 3

    def test_over_release_rejected(self):
        pool = BufferPool(32 * 1024, 16 * 1024)
        with pytest.raises(ValueError):
            pool.release(1)


class _CountingTask(TaskBase):
    """Processes `n` items, `cost_us` each."""

    def __init__(self, name, n, cost_us, engine):
        super().__init__(name)
        self.remaining = n
        self.cost_us = cost_us
        self.engine = engine
        self.finished_at = None

    def has_work(self):
        return self.remaining > 0

    def step(self, budget_us):
        elapsed = 0.0
        while self.remaining > 0:
            self.remaining -= 1
            elapsed += self.cost_us
            if budget_us == 0.0:
                break
            if budget_us is not None and elapsed >= budget_us:
                break
        emissions = []
        if self.remaining == 0 and self.finished_at is None:
            emissions.append(self._finish)
        return elapsed, emissions

    def _finish(self):
        self.finished_at = self.engine.now


class TestScheduler:
    def test_single_task_runs_to_completion(self):
        engine = Engine()
        sched = Scheduler(engine, 1, 50.0)
        task = _CountingTask("t", 10, 5.0, engine)
        sched.start()
        sched.notify_runnable(task)
        engine.run()
        assert task.remaining == 0
        assert task.finished_at is not None

    def test_timeslice_respected(self):
        """No single scheduling of a task exceeds timeslice + one item."""
        engine = Engine()
        sched = Scheduler(engine, 1, timeslice_us=20.0)
        task = _CountingTask("t", 100, 6.0, engine)
        sched.start()
        sched.notify_runnable(task)
        engine.run()
        # 100 items x 6us = 600us of work in >= 600/24 slices
        assert sched.tasks_executed >= 600 / 24

    def test_work_stealing(self):
        engine = Engine()
        sched = Scheduler(engine, 4, 50.0)
        tasks = [_CountingTask(f"t{i}", 40, 5.0, engine) for i in range(8)]
        sched.start()
        for t in tasks:
            sched.notify_runnable(t)
        engine.run()
        assert all(t.remaining == 0 for t in tasks)
        # With 8 tasks on 4 cores, the makespan benefits from stealing:
        # total work 1600us over 4 cores ~ 400us + overheads.
        assert engine.now < 1600

    def test_parallel_speedup(self):
        def run(cores):
            engine = Engine()
            sched = Scheduler(engine, cores, 50.0)
            tasks = [_CountingTask(f"t{i}", 50, 4.0, engine) for i in range(16)]
            sched.start()
            for t in tasks:
                sched.notify_runnable(t)
            engine.run()
            return engine.now

        assert run(8) < run(1) / 4

    def test_no_duplicate_enqueue(self):
        engine = Engine()
        sched = Scheduler(engine, 2, 50.0)
        task = _CountingTask("t", 5, 1.0, engine)
        sched.start()
        for _ in range(10):
            sched.notify_runnable(task)
        engine.run()
        assert task.remaining == 0

    def test_utilisation_bounded(self):
        engine = Engine()
        sched = Scheduler(engine, 2, 50.0)
        tasks = [_CountingTask(f"t{i}", 30, 5.0, engine) for i in range(4)]
        sched.start()
        for t in tasks:
            sched.notify_runnable(t)
        engine.run()
        assert 0.0 < sched.utilisation(engine.now) <= 1.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(Exception):
            Scheduler(Engine(), 2, 50.0, "fifo")


class TestSchedulerWakeups:
    """Deterministic drives of the wake/steal paths through the sim."""

    def _sleeping(self, sched):
        return [w for w in sched._workers if w.sleeping]

    def test_wake_rouses_only_home_worker(self):
        engine = Engine()
        sched = Scheduler(engine, 3, 50.0)
        sched.start()
        engine.run()  # no work: all three workers go to sleep
        assert len(self._sleeping(sched)) == 3

        task = _CountingTask("t", 4, 5.0, engine)
        task.home_hint = 1
        sched.notify_runnable(task)
        # Exactly the home worker woke; the other two still sleep.
        assert not sched._workers[1].sleeping
        assert len(self._sleeping(sched)) == 2
        engine.run()
        assert task.remaining == 0
        assert all(w.steals == 0 for w in sched._workers)

    def test_busy_home_wakes_exactly_one_thief(self):
        engine = Engine()
        sched = Scheduler(engine, 3, 50.0)
        sched.start()
        engine.run()
        first = _CountingTask("first", 40, 5.0, engine)
        first.home_hint = 0
        sched.notify_runnable(first)
        engine.run(until=engine.now + 10.0)  # worker 0 is mid-timeslice
        from repro.runtime.scheduler import RUNNING

        assert first.sched_state == RUNNING

        second = _CountingTask("second", 4, 5.0, engine)
        second.home_hint = 0
        sched.notify_runnable(second)
        # Home worker is busy: exactly one sleeper was roused to steal.
        assert len(self._sleeping(sched)) == 1
        engine.run()
        assert second.remaining == 0
        assert sum(w.steals for w in sched._workers) == 1
        # The never-woken worker slept through the whole run.
        assert len(self._sleeping(sched)) >= 1

    def test_notify_while_queued_enqueues_once(self):
        engine = Engine()
        sched = Scheduler(engine, 2, 50.0)
        task = _CountingTask("t", 3, 1.0, engine)
        task.home_hint = 0
        sched.start()
        for _ in range(5):
            sched.notify_runnable(task)
        assert list(sched._workers[0].queue).count(task) == 1
        engine.run()
        assert task.remaining == 0

    def test_pending_wakeup_race_enqueues_once(self):
        """A task notified while RUNNING (e.g. by its own emissions) is
        re-enqueued exactly once, after the timeslice ends."""
        engine = Engine()
        sched = Scheduler(engine, 1, 50.0)

        class SelfNotifyingTask(TaskBase):
            def __init__(self):
                super().__init__("selfnotify")
                self.remaining = 10
                self.queue_hits = []

            def has_work(self):
                return self.remaining > 0

            def step(self, budget_us):
                elapsed = 0.0
                while self.remaining > 0:
                    self.remaining -= 1
                    elapsed += 10.0
                    if budget_us is not None and elapsed >= budget_us:
                        break

                def emit():
                    # Emissions run while sched_state is still RUNNING:
                    # these notifies must only set pending_wakeup, never
                    # enqueue a second copy.
                    sched.notify_runnable(self)
                    sched.notify_runnable(self)
                    self.queue_hits.append(
                        sum(
                            list(w.queue).count(self)
                            for w in sched._workers
                        )
                    )

                return elapsed, [emit] if elapsed > 0 else []

        task = SelfNotifyingTask()
        sched.start()
        sched.notify_runnable(task)
        engine.run()
        assert task.remaining == 0
        # The task was never present in any queue during its own timeslice.
        assert task.queue_hits and all(n == 0 for n in task.queue_hits)
        # 10 items at 10us under a 50us slice = 2 full slices, plus one
        # final zero-work decision forced by the emission-time notifies.
        assert sched.tasks_executed == 3


def _mk(key, value="1"):
    return Record("kv", {"key": key, "value": value})


class TestMergeTask:
    def _run_merge(self, left_items, right_items):
        engine = Engine()
        sched = Scheduler(engine, 1, 50.0)
        left = TaskChannel("l", 64)
        right = TaskChannel("r", 64)
        out = TaskChannel("o", 64)
        merge = MergeTask(
            "m", left, right, out,
            key_fn=lambda r: r.key,
            combine_fn=lambda a, b: (
                Record("kv", {"key": a.key, "value": str(int(a.value) + int(b.value))}),
                1.0,
            ),
        )
        left.on_runnable = lambda: sched.notify_runnable(merge)
        right.on_runnable = lambda: sched.notify_runnable(merge)
        sched.start()
        for item in left_items:
            left.push(item)
        for item in right_items:
            right.push(item)
        left.close()
        right.close()
        engine.run()
        result = []
        while not out.empty():
            item = out.pop()
            if item is not EOS:
                result.append((item.key, item.value))
        assert out.exhausted()  # merge closed its output
        return result

    def test_disjoint_merge(self):
        out = self._run_merge([_mk("a"), _mk("c")], [_mk("b"), _mk("d")])
        assert [k for k, _ in out] == ["a", "b", "c", "d"]

    def test_equal_keys_combined(self):
        out = self._run_merge(
            [_mk("a", "1"), _mk("b", "2")], [_mk("a", "3"), _mk("b", "4")]
        )
        assert out == [("a", "4"), ("b", "6")]

    def test_one_side_empty(self):
        out = self._run_merge([_mk("x", "5")], [])
        assert out == [("x", "5")]

    def test_both_empty(self):
        assert self._run_merge([], []) == []

    def test_duplicates_within_one_stream(self):
        out = self._run_merge([_mk("a", "1"), _mk("a", "2")], [_mk("a", "4")])
        assert out == [("a", "7")]


class TestGraphPool:
    def test_hits_then_misses(self):
        pool = GraphPool(2)
        assert pool.take() and pool.take()
        assert not pool.take()
        assert pool.hits == 2 and pool.misses == 1

    def test_give_back_capped(self):
        pool = GraphPool(1)
        pool.give_back()
        assert pool.available == 1

    def test_zero_pool_always_misses(self):
        pool = GraphPool(0)
        assert not pool.take()
        assert pool.misses == 1
