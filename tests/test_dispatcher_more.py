"""Deeper dispatcher tests: accept costs, pool economics, grouping."""

from repro.runtime.costs import GRAPH_BUILD_US, GRAPH_RECYCLE_US
from repro.runtime.dispatcher import DispatcherTask, GraphDispatcher


class _FakeGraph:
    def __init__(self, log):
        self._log = log

    def bind_client(self, socket):
        self._log.append(("bind", socket))

    def bind_group(self, sockets, sink):
        self._log.append(("group", tuple(sockets), sink))


class TestGraphDispatcher:
    def test_assign_cost_reflects_pool_state(self):
        dispatcher = GraphDispatcher(lambda: None, pool_size=1)
        assert dispatcher.assign_cost_us() == GRAPH_RECYCLE_US  # pool hit
        assert dispatcher.assign_cost_us() == GRAPH_BUILD_US  # pool miss

    def test_graph_finished_refills_pool(self):
        log = []
        dispatcher = GraphDispatcher(lambda: _FakeGraph(log), pool_size=1)
        dispatcher.assign_cost_us()  # drain the pool
        dispatcher.assign("sock")
        dispatcher.graph_finished(object())
        assert dispatcher.assign_cost_us() == GRAPH_RECYCLE_US

    def test_rule_graph_per_connection(self):
        log = []
        dispatcher = GraphDispatcher(lambda: _FakeGraph(log), pool_size=4)
        dispatcher.assign("s1")
        dispatcher.assign("s2")
        assert log == [("bind", "s1"), ("bind", "s2")]
        assert dispatcher.total_graphs == 2

    def test_foldt_groups_connections(self):
        log = []
        captured = []

        def sink_connector(bind):
            captured.append(bind)

        dispatcher = GraphDispatcher(
            lambda: _FakeGraph(log),
            pool_size=4,
            group_size=3,
            sink_connector=sink_connector,
        )
        dispatcher.assign("m0")
        dispatcher.assign("m1")
        assert not log and not captured  # still gathering
        dispatcher.assign("m2")
        assert len(captured) == 1
        captured[0]("reducer_sock")  # sink connection established
        assert log == [("group", ("m0", "m1", "m2"), "reducer_sock")]

    def test_second_group_starts_fresh(self):
        log = []
        dispatcher = GraphDispatcher(
            lambda: _FakeGraph(log),
            pool_size=4,
            group_size=2,
            sink_connector=lambda bind: bind("sink"),
        )
        for sock in ("a", "b", "c", "d"):
            dispatcher.assign(sock)
        assert log == [
            ("group", ("a", "b"), "sink"),
            ("group", ("c", "d"), "sink"),
        ]
        assert dispatcher.total_graphs == 2


class TestDispatcherTask:
    def _make(self, accept_us=10.0, pool_size=8):
        log = []
        dispatcher = GraphDispatcher(lambda: _FakeGraph(log), pool_size)
        task = DispatcherTask("d", dispatcher, lambda: accept_us)
        return task, dispatcher, log

    def test_step_charges_accept_and_assignment(self):
        task, dispatcher, log = self._make(accept_us=10.0)
        task.enqueue("s1")
        elapsed, emissions = task.step(None)
        assert elapsed == 10.0 + GRAPH_RECYCLE_US
        assert not log  # deferred until emissions run
        for emit in emissions:
            emit()
        assert log == [("bind", "s1")]

    def test_budget_zero_accepts_one(self):
        task, dispatcher, _ = self._make()
        for sock in ("a", "b", "c"):
            task.enqueue(sock)
        _, emissions = task.step(0.0)
        assert len(emissions) == 1
        assert task.has_work()

    def test_budget_limits_batch(self):
        task, dispatcher, _ = self._make(accept_us=40.0)
        for sock in "abcdef":
            task.enqueue(sock)
        elapsed, emissions = task.step(100.0)
        assert len(emissions) < 6
        assert elapsed >= 100.0

    def test_drains_fully_without_budget(self):
        task, dispatcher, log = self._make()
        for sock in "abcd":
            task.enqueue(sock)
        _, emissions = task.step(None)
        for emit in emissions:
            emit()
        assert len(log) == 4
        assert not task.has_work()
