"""Grammar model, DSL and codec-engine tests."""

import pytest

from repro.core.errors import GrammarError, ParseError, SerializeError
from repro.grammar.dsl import parse_grammar, parse_unit
from repro.grammar.engine import make_codec
from repro.grammar.model import (
    Binary,
    Const,
    DataField,
    FieldRef,
    IntField,
    SelfRef,
    Unit,
    VarField,
    eval_expr,
    referenced_fields,
)
from repro.lang.values import Record

SIMPLE = """
type msg = unit {
    %byteorder = big;
    tag : uint8;
    body_len : uint16;
    body : bytes &length = self.body_len;
};
"""


class TestModel:
    def test_eval_const(self):
        assert eval_expr(Const(7), {}) == 7

    def test_eval_field_ref(self):
        assert eval_expr(FieldRef("n"), {"n": 3}) == 3

    def test_eval_binary(self):
        expr = Binary("-", FieldRef("total"), Binary("+", FieldRef("a"), Const(2)))
        assert eval_expr(expr, {"total": 10, "a": 3}) == 5

    def test_eval_self_ref(self):
        assert eval_expr(Binary("*", SelfRef(), Const(2)), {}, own=21) == 42

    def test_self_ref_without_context_rejected(self):
        with pytest.raises(GrammarError):
            eval_expr(SelfRef(), {})

    def test_missing_field_rejected(self):
        with pytest.raises(GrammarError):
            eval_expr(FieldRef("ghost"), {})

    def test_referenced_fields_deduplicated(self):
        expr = Binary("+", FieldRef("a"), Binary("+", FieldRef("b"), FieldRef("a")))
        assert referenced_fields(expr) == ("a", "b")

    def test_forward_reference_rejected(self):
        with pytest.raises(GrammarError):
            Unit(
                "bad",
                (
                    DataField("body", FieldRef("later")),
                    IntField("later", 2),
                ),
            )

    def test_duplicate_field_rejected(self):
        with pytest.raises(GrammarError):
            Unit("bad", (IntField("x", 1), IntField("x", 2)))

    def test_invalid_int_size_rejected(self):
        with pytest.raises(GrammarError):
            IntField("x", 3)

    def test_structural_fields(self):
        unit = parse_unit(SIMPLE)
        assert unit.structural_fields() == frozenset({"body_len"})


class TestDsl:
    def test_simple_unit(self):
        unit = parse_unit(SIMPLE)
        assert unit.name == "msg"
        assert [f.name for f in unit.fields] == ["tag", "body_len", "body"]

    def test_listing2_grammar(self):
        from repro.grammar.protocols.memcached import MEMCACHED_UNIT

        names = [f.name for f in MEMCACHED_UNIT.fields]
        assert "opcode" in names and "value_len" in names
        assert None in names  # the anonymous reserved byte
        var = MEMCACHED_UNIT.field_named("value_len")
        assert isinstance(var, VarField)
        assert var.serialize_target == "total_len"

    def test_multiple_units(self):
        units = parse_grammar(SIMPLE + SIMPLE.replace("msg", "msg2"))
        assert [u.name for u in units] == ["msg", "msg2"]

    def test_comments_ignored(self):
        unit = parse_unit(
            "type t = unit {\n  a : uint8; # first\n  # whole line\n  b : uint8;\n};"
        )
        assert len(unit.fields) == 2

    def test_little_endian(self):
        unit = parse_unit(
            "type t = unit { %byteorder = little; a : uint16; };"
        )
        codec = make_codec(unit)
        rec = Record("t", {"a": 0x0102})
        data, _ = codec.serialize(rec)
        assert data == b"\x02\x01"

    def test_unknown_type_rejected(self):
        with pytest.raises(GrammarError):
            parse_unit("type t = unit { a : float32; };")

    def test_var_needs_parse_expr(self):
        with pytest.raises(GrammarError):
            parse_unit("type t = unit { var v : uint32; a : uint8; };")

    def test_signed_types(self):
        unit = parse_unit("type t = unit { a : int8; };")
        codec = make_codec(unit)
        data, _ = codec.serialize(Record("t", {"a": -5}))
        assert codec.parse_all(data)[0].a == -5


class TestCodec:
    def codec(self):
        return make_codec(parse_unit(SIMPLE))

    def test_round_trip(self):
        codec = self.codec()
        rec = Record("msg", {"tag": 9, "body_len": 3, "body": b"abc"})
        data, _ = codec.serialize(rec)
        back = codec.parse_all(data)[0]
        assert back.tag == 9 and back.body == b"abc"

    def test_length_recomputed_on_serialize(self):
        codec = self.codec()
        rec = Record("msg", {"tag": 1, "body_len": 0, "body": b"xyzzy"})
        data, _ = codec.serialize(rec)
        assert codec.parse_all(data)[0].body_len == 5

    def test_incremental_parse_across_chunks(self):
        codec = self.codec()
        rec = Record("msg", {"tag": 1, "body_len": 4, "body": b"data"})
        data, _ = codec.serialize(rec)
        parser = codec.parser()
        for i in range(len(data)):
            parser.feed(data[i : i + 1])
            if i < len(data) - 1:
                assert parser.poll() is None
        assert parser.poll().body == b"data"

    def test_multiple_messages_in_one_feed(self):
        codec = self.codec()
        one, _ = codec.serialize(Record("msg", {"tag": 1, "body_len": 1, "body": b"a"}))
        two, _ = codec.serialize(Record("msg", {"tag": 2, "body_len": 1, "body": b"b"}))
        parser = codec.parser()
        parser.feed(one + two)
        msgs = list(parser.messages())
        assert [m.tag for m in msgs] == [1, 2]

    def test_trailing_bytes_rejected_by_parse_all(self):
        codec = self.codec()
        data, _ = codec.serialize(
            Record("msg", {"tag": 1, "body_len": 1, "body": b"a"})
        )
        with pytest.raises(ParseError):
            codec.parse_all(data + b"\x01")

    def test_raw_fast_path_for_unmodified(self):
        codec = self.codec()
        data, _ = codec.serialize(Record("msg", {"tag": 1, "body_len": 2, "body": b"ab"}))
        parsed = codec.parse_all(data)[0]
        out, ops = codec.serialize(parsed)
        assert out == data
        assert ops < 1.0  # raw copy is nearly free

    def test_dirty_record_reencoded(self):
        codec = self.codec()
        data, _ = codec.serialize(Record("msg", {"tag": 1, "body_len": 2, "body": b"ab"}))
        parsed = codec.parse_all(data)[0]
        parsed.set("body", b"longer body")
        out, _ = codec.serialize(parsed)
        again = codec.parse_all(out)[0]
        assert again.body == b"longer body"
        assert again.body_len == len(b"longer body")

    def test_serializer_heals_inconsistent_lengths(self):
        """Length fields are recomputed from actual payload sizes, so a
        record with stale totals serialises to a consistent message."""
        from repro.grammar.protocols.memcached import full_codec

        codec = full_codec()
        rec = Record(
            "cmd",
            {
                "magic_code": 0x80, "opcode": 0, "key_len": 1,
                "extras_len": 9, "status_or_v_bucket": 0, "total_len": 0,
                "opaque": 0, "cas": 0, "value_len": 7, "extras": b"",
                "key": "k" * 50, "value": b"",
            },
        )
        data, _ = codec.serialize(rec)
        back = codec.parse_all(data)[0]
        assert back.key_len == 50
        assert back.total_len == 50
        assert back.value_len == 0

    def test_negative_wire_length_rejected_at_parse(self):
        """A message whose total_len is less than extras+key lengths makes
        the computed value_len negative: malformed input."""
        from repro.grammar.protocols import memcached as mc

        codec = mc.full_codec()
        good = mc.encode(mc.make_request(mc.OP_GETK, "abcdef"))
        # total_len lives at offset 8..12 (big endian); corrupt it to 1,
        # below key_len=6.
        bad = good[:8] + (1).to_bytes(4, "big") + good[12:]
        parser = codec.parser()
        parser.feed(bad)
        with pytest.raises(ParseError):
            parser.poll()

    def test_int_overflow_rejected(self):
        codec = self.codec()
        with pytest.raises(SerializeError):
            codec.serialize(
                Record("msg", {"tag": 300, "body_len": 0, "body": b""})
            )

    def test_projection_unknown_field_rejected(self):
        with pytest.raises(SerializeError):
            make_codec(parse_unit(SIMPLE), project={"ghost"})


class TestSpecialisation:
    def test_skipped_fields_absent_from_record(self):
        from repro.grammar.protocols import memcached as mc

        spec = mc.specialized_codec(frozenset({"opcode", "key"}))
        raw = mc.encode(mc.make_response(mc.OP_GETK, "k", b"v" * 100))
        rec = spec.parser()
        rec.feed(raw)
        parsed = rec.poll()
        assert "value" not in parsed
        assert "extras" not in parsed
        assert parsed.opcode == mc.OP_GETK

    def test_specialised_parse_is_cheaper(self):
        from repro.grammar.protocols import memcached as mc

        raw = mc.encode(mc.make_response(mc.OP_GETK, "k", b"v" * 2000))
        full = mc.full_codec().parser()
        full.feed(raw)
        full.poll()
        spec = mc.specialized_codec(frozenset({"opcode", "key"})).parser()
        spec.feed(raw)
        spec.poll()
        assert spec.take_ops() < full.take_ops() / 3

    def test_specialised_serialise_splices_raw(self):
        from repro.grammar.protocols import memcached as mc

        spec = mc.specialized_codec(frozenset({"opcode", "key"}))
        raw = mc.encode(mc.make_response(mc.OP_GETK, "key1", b"payload"))
        parsed = spec.parse_all(raw)[0]
        out, _ = spec.serialize(parsed)
        assert out == raw

    def test_specialised_mutation_roundtrip(self):
        from repro.grammar.protocols import memcached as mc

        spec = mc.specialized_codec(frozenset({"opcode", "key"}))
        raw = mc.encode(mc.make_request(mc.OP_GETK, "aaaa"))
        parsed = spec.parse_all(raw)[0]
        parsed.set("key", "bbbbbb")
        out, _ = spec.serialize(parsed)
        again = mc.full_codec().parse_all(out)[0]
        assert again.key == "bbbbbb"
        assert again.key_len == 6
