"""Protocol-library tests: HTTP, Memcached binary, Hadoop key/value."""

import pytest

from repro.core.errors import ParseError
from repro.grammar.protocols import hadoop, http
from repro.grammar.protocols import memcached as mc


class TestHttp:
    def test_request_round_trip(self):
        req = http.make_request("POST", "/submit", body=b"payload")
        parser = http.HttpRequestParser()
        parser.feed(req.raw)
        parsed = parser.poll()
        assert parsed.method == "POST"
        assert parsed.path == "/submit"
        assert parsed.body == b"payload"

    def test_response_round_trip(self):
        resp = http.make_response(404, "Not Found", body=b"gone")
        parser = http.HttpResponseParser()
        parser.feed(resp.raw)
        parsed = parser.poll()
        assert parsed.status == 404
        assert parsed.reason == "Not Found"
        assert parsed.body == b"gone"

    def test_header_names_case_insensitive(self):
        raw = b"GET / HTTP/1.1\r\nHost: h\r\nContent-LENGTH: 2\r\n\r\nok"
        parser = http.HttpRequestParser()
        parser.feed(raw)
        assert parser.poll().body == b"ok"

    def test_pipelined_requests(self):
        a = http.make_request("GET", "/a").raw
        b = http.make_request("GET", "/b").raw
        parser = http.HttpRequestParser()
        parser.feed(a + b)
        msgs = list(parser.messages())
        assert [m.path for m in msgs] == ["/a", "/b"]

    def test_byte_at_a_time(self):
        raw = http.make_request("GET", "/slow").raw
        parser = http.HttpRequestParser()
        got = []
        for i in range(len(raw)):
            parser.feed(raw[i : i + 1])
            msg = parser.poll()
            if msg is not None:
                got.append(msg)
        assert len(got) == 1 and got[0].path == "/slow"

    def test_keep_alive_defaults(self):
        assert http.wants_keep_alive(http.make_request("GET", "/"))
        assert not http.wants_keep_alive(
            http.make_request("GET", "/", keep_alive=False)
        )

    def test_http10_keep_alive(self):
        raw = b"GET / HTTP/1.0\r\nhost: h\r\n\r\n"
        parser = http.HttpRequestParser()
        parser.feed(raw)
        assert not http.wants_keep_alive(parser.poll())

    def test_malformed_request_line(self):
        parser = http.HttpRequestParser()
        parser.feed(b"NOT-HTTP\r\n\r\n")
        with pytest.raises(ParseError):
            parser.poll()

    def test_malformed_content_length(self):
        parser = http.HttpRequestParser()
        parser.feed(b"GET / HTTP/1.1\r\ncontent-length: abc\r\n\r\n")
        with pytest.raises(ParseError):
            parser.poll()

    def test_chunked_rejected(self):
        parser = http.HttpRequestParser()
        parser.feed(b"GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n")
        with pytest.raises(ParseError):
            parser.poll()

    def test_serialize_raw_fast_path(self):
        resp = http.make_response(body=b"x" * 137)
        data, ops = http.serialize(resp)
        assert data == resp.raw
        assert ops < 2.0

    def test_serialize_after_mutation(self):
        resp = http.make_response(body=b"x")
        resp.set("status", 503)
        data, _ = http.serialize(resp)
        assert data.startswith(b"HTTP/1.1 503")


class TestMemcached:
    def test_header_is_24_bytes(self):
        raw = mc.encode(mc.make_request(mc.OP_GET, ""))
        assert len(raw) == mc.HEADER_LEN

    def test_request_round_trip(self):
        raw = mc.encode(mc.make_request(mc.OP_GETK, "key9", opaque=77))
        rec = mc.full_codec().parse_all(raw)[0]
        assert rec.magic_code == mc.MAGIC_REQUEST
        assert rec.opcode == mc.OP_GETK
        assert rec.key == "key9"
        assert rec.opaque == 77

    def test_getk_response_echoes_key(self):
        resp = mc.make_response(mc.OP_GETK, "k1", b"v1")
        assert resp.key == "k1"

    def test_get_response_omits_key(self):
        resp = mc.make_response(mc.OP_GET, "k1", b"v1")
        assert resp.key == ""

    def test_total_len_consistency(self):
        raw = mc.encode(mc.make_response(mc.OP_GETK, "kk", b"vvv"))
        rec = mc.full_codec().parse_all(raw)[0]
        assert rec.total_len == rec.key_len + rec.extras_len + rec.value_len

    def test_set_request_carries_extras(self):
        raw = mc.encode(mc.make_request(mc.OP_SET, "k", b"value"))
        rec = mc.full_codec().parse_all(raw)[0]
        assert rec.extras_len == 8
        assert rec.value == b"value"

    def test_value_len_not_on_wire(self):
        """value_len is a computed var: total size excludes it."""
        raw = mc.encode(mc.make_request(mc.OP_GET, "abc"))
        assert len(raw) == mc.HEADER_LEN + 3


class TestHadoop:
    def test_pairs_round_trip(self):
        pairs = [("alpha", "1"), ("beta", "22"), ("gamma", "333")]
        assert hadoop.decode_pairs(hadoop.encode_pairs(pairs)) == pairs

    def test_empty_value(self):
        assert hadoop.decode_pairs(hadoop.encode_pairs([("k", "")])) == [("k", "")]

    def test_unicode_keys(self):
        pairs = [("clé", "1")]
        assert hadoop.decode_pairs(hadoop.encode_pairs(pairs)) == pairs

    def test_make_pair_lengths(self):
        rec = hadoop.make_pair("ab", "xyz")
        assert rec.key_len == 2 and rec.value_len == 3

    def test_incremental_stream(self):
        data = hadoop.encode_pairs([("a", "1"), ("b", "2")])
        parser = hadoop.codec().parser()
        parser.feed(data[:3])
        assert parser.poll() is None
        parser.feed(data[3:])
        assert len(list(parser.messages())) == 2
