"""Tests for runtime values, measurement helpers and report rendering."""

import pytest

from repro.core.errors import RuntimeFlickError
from repro.core.units import (
    millis,
    rate_per_second,
    seconds,
    throughput_mbps,
    transmission_time_us,
)
from repro.lang.values import Record, record_size_bytes
from repro.sim.stats import LatencySeries, Meter, RunResult


class TestRecord:
    def test_field_access_styles(self):
        rec = Record("t", {"a": 1, "b": "x"})
        assert rec.a == 1
        assert rec["b"] == "x"
        assert rec.get("a") == 1

    def test_contains_and_keys(self):
        rec = Record("t", {"a": 1})
        assert "a" in rec and "z" not in rec
        assert rec.keys() == ("a",)

    def test_missing_field(self):
        rec = Record("t", {"a": 1})
        with pytest.raises(AttributeError):
            rec.z
        with pytest.raises(RuntimeFlickError):
            rec.get("z")

    def test_set_marks_dirty(self):
        rec = Record("t", {"a": 1})
        assert not rec.dirty
        rec.set("a", 2)
        assert rec.dirty and rec.a == 2

    def test_new_fields_rejected(self):
        rec = Record("t", {"a": 1})
        with pytest.raises(RuntimeFlickError):
            rec.set("b", 2)

    def test_equality_ignores_raw(self):
        a = Record("t", {"x": 1}, raw=b"aa")
        b = Record("t", {"x": 1}, raw=b"bb")
        assert a == b
        assert a != Record("u", {"x": 1})

    def test_copy_preserves_fields_and_raw(self):
        rec = Record("t", {"x": 1}, raw=b"zz")
        dup = rec.copy()
        assert dup == rec and dup.raw == b"zz"
        dup.set("x", 9)
        assert rec.x == 1

    def test_hashable(self):
        assert len({Record("t", {"x": 1}), Record("t", {"x": 1})}) == 1

    def test_repr_readable(self):
        assert "t(x=1)" == repr(Record("t", {"x": 1}))


class TestRecordSize:
    def test_primitives(self):
        assert record_size_bytes(b"abc") == 3
        assert record_size_bytes("héllo") == 6
        assert record_size_bytes(7) == 8
        assert record_size_bytes(None) == 1

    def test_record_sums_fields(self):
        rec = Record("t", {"k": "abcd", "v": b"12"})
        assert record_size_bytes(rec) == 6

    def test_containers(self):
        assert record_size_bytes([b"a", b"bc"]) == 3
        assert record_size_bytes({"k": b"vv"}) == 3


class TestUnits:
    def test_time_conversions(self):
        assert seconds(2_000_000) == 2.0
        assert millis(1500) == 1.5

    def test_transmission_time(self):
        # 1 Gbit/s, 125 bytes = 1000 bits -> 1 us
        assert transmission_time_us(125, 1e9) == pytest.approx(1.0)

    def test_throughput(self):
        assert throughput_mbps(125_000, 1_000_000) == pytest.approx(1.0)

    def test_rates(self):
        assert rate_per_second(10, 1_000_000) == 10.0
        assert rate_per_second(10, 0) == 0.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            transmission_time_us(10, 0)


class TestLatencySeries:
    def test_mean(self):
        series = LatencySeries()
        for v in (100, 200, 300):
            series.record(v)
        assert series.mean_us() == 200
        assert series.mean_ms() == 0.2

    def test_percentiles(self):
        series = LatencySeries()
        for v in range(1, 101):
            series.record(float(v))
        assert series.percentile_us(50) == pytest.approx(50.5)
        assert series.percentile_us(99) == pytest.approx(99.01)
        assert series.percentile_us(0) == 1
        assert series.percentile_us(100) == 100

    def test_empty_series(self):
        series = LatencySeries()
        assert series.mean_us() == 0.0
        assert series.percentile_us(99) == 0.0
        assert series.max_us() == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencySeries().record(-1)

    def test_bad_percentile_rejected(self):
        series = LatencySeries()
        series.record(1)
        with pytest.raises(ValueError):
            series.percentile_us(101)

    def test_sorted_cache_invalidated_by_record(self):
        # The sorted view is cached between reads; a record() in between
        # must invalidate it, not serve stale quantiles.
        series = LatencySeries()
        for v in (30.0, 10.0, 20.0):
            series.record(v)
        assert series.max_us() == 30.0
        assert series.percentile_us(50) == 20.0
        series.record(40.0)
        assert series.max_us() == 40.0
        assert series.percentile_us(100) == 40.0
        assert series.count_over(25.0) == 2

    def test_count_over_is_strict_and_handles_duplicates(self):
        series = LatencySeries()
        for v in (1.0, 2.0, 2.0, 3.0):
            series.record(v)
        assert series.count_over(2.0) == 1  # strictly above
        assert series.count_over(0.5) == 4
        assert series.count_over(3.0) == 0
        assert series.count_over(None) == 0


class TestMeter:
    def test_rates(self):
        meter = Meter()
        meter.begin(0.0)
        for _ in range(100):
            meter.add(1000)
        meter.finish(1_000_000.0)  # one virtual second
        assert meter.rate_per_sec() == pytest.approx(100.0)
        assert meter.kreqs_per_sec() == pytest.approx(0.1)
        assert meter.mbps() == pytest.approx(0.8)

    def test_zero_duration(self):
        meter = Meter()
        meter.add()
        assert meter.rate_per_sec() == 0.0


class TestReport:
    def test_format_table(self):
        from repro.bench.report import format_table

        out = format_table(("a", "bb"), [(1, 2), (33, 4)])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_series_chart_scales_to_peak(self):
        from repro.bench.report import format_series_chart

        out = format_series_chart({"s": [1.0, 2.0]}, ["x1", "x2"], width=10)
        rows = [l for l in out.splitlines() if "#" in l]
        assert rows[1].count("#") == 2 * rows[0].count("#")

    def test_empty_chart(self):
        from repro.bench.report import format_series_chart

        assert "no data" in format_series_chart({}, [])

    def test_summarize(self):
        from repro.bench.report import summarize

        out = summarize(
            {"sys": [RunResult("sys", 4, throughput=10.0, latency_ms=1.5)]}
        )
        assert "sys" in out and "10.0" in out
