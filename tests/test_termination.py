"""Termination-analysis tests: recursion rejection, cost bounds."""

import pytest

from repro.core.errors import TerminationError
from repro.lang.parser import parse
from repro.lang.termination import check_termination
from tests.test_parser import HADOOP, MEMCACHED_FULL, MEMCACHED_SHORT


def report(src):
    return check_termination(parse(src))


class TestAcceptance:
    def test_listings_terminate(self):
        for src in (MEMCACHED_SHORT, MEMCACHED_FULL, HADOOP):
            rep = report(src)
            assert rep.topological_order

    def test_call_graph_edges(self):
        rep = report(MEMCACHED_FULL)
        assert rep.call_graph["proc:memcached"] == (
            "test_cache",
            "update_cache",
        )

    def test_topological_order_callee_first(self):
        src = (
            "fun inner: (x: integer) -> (integer)\n    x + 1\n"
            "fun outer: (x: integer) -> (integer)\n    inner(x) * 2\n"
        )
        rep = report(src)
        order = list(rep.topological_order)
        assert order.index("inner") < order.index("outer")

    def test_cost_bound_grows_with_body(self):
        small = report("fun f: (x: integer) -> (integer)\n    x\n")
        big = report(
            "fun f: (x: integer) -> (integer)\n"
            "    let a = x * 2\n"
            "    let b = a + x\n"
            "    let c = b * b\n"
            "    c + a + b\n"
        )
        assert big.cost_bounds["f"] > small.cost_bounds["f"]

    def test_caller_cost_includes_callee(self):
        rep = report(
            "fun inner: (x: integer) -> (integer)\n"
            "    x * x + x * x + x * x\n"
            "fun outer: (x: integer) -> (integer)\n    inner(x)\n"
        )
        assert rep.cost_bounds["outer"] >= rep.cost_bounds["inner"]

    def test_higher_order_cost_scales(self):
        rep = report(
            "fun add: (a: integer, b: integer) -> (integer)\n    a + b\n"
            "fun total: (l: list<integer>) -> (integer)\n"
            "    fold(add, 0, l)\n"
        )
        assert rep.cost_bounds["total"] > 10 * rep.cost_bounds["add"]


class TestRejection:
    def test_direct_recursion(self):
        with pytest.raises(TerminationError) as err:
            report(
                "fun loop: (x: integer) -> (integer)\n    loop(x)\n"
            )
        assert "loop" in str(err.value)

    def test_mutual_recursion(self):
        with pytest.raises(TerminationError) as err:
            report(
                "fun ping: (x: integer) -> (integer)\n    pong(x)\n"
                "fun pong: (x: integer) -> (integer)\n    ping(x)\n"
            )
        assert "->" in str(err.value)

    def test_three_cycle(self):
        with pytest.raises(TerminationError):
            report(
                "fun a1: (x: integer) -> (integer)\n    b1(x)\n"
                "fun b1: (x: integer) -> (integer)\n    c1(x)\n"
                "fun c1: (x: integer) -> (integer)\n    a1(x)\n"
            )

    def test_recursion_via_fold(self):
        with pytest.raises(TerminationError):
            report(
                "fun step: (acc: integer, l: list<integer>) -> (integer)\n"
                "    fold(step, acc, l)\n"
            )

    def test_fold_over_unknown_function(self):
        with pytest.raises(TerminationError) as err:
            report(
                "fun f: (l: list<integer>) -> (integer)\n"
                "    fold(ghost, 0, l)\n"
            )
        assert "ghost" in str(err.value)

    def test_fold_over_builtin_rejected(self):
        with pytest.raises(TerminationError):
            report(
                "fun f: (l: list<integer>) -> (integer)\n"
                "    fold(hash, 0, l)\n"
            )

    def test_map_requires_function_name_argument(self):
        with pytest.raises(TerminationError):
            report(
                "fun f: (l: list<integer>) -> (integer)\n"
                "    len(map(1, l))\n"
            )
