"""Fast small-scale shape checks of the experiment harness.

The full figure sweeps live in ``benchmarks/``; these tests exercise the
same code paths at reduced size so ``pytest tests/`` alone still covers
the harness end to end.
"""

import pytest

from repro.bench.scheduling import run_scheduling_experiment
from repro.bench.testbeds import (
    run_hadoop_experiment,
    run_http_experiment,
    run_memcached_experiment,
)


class TestHttpHarness:
    def test_flick_beats_apache_persistent(self):
        flick = run_http_experiment(
            "flick-kernel", 100, True, "lb", 8, requests_per_client=12
        )
        apache = run_http_experiment(
            "apache", 100, True, "lb", 8, requests_per_client=12
        )
        assert flick.throughput > apache.throughput
        assert flick.extra["errors"] == 0

    def test_mtcp_beats_kernel_non_persistent(self):
        kernel = run_http_experiment(
            "flick-kernel", 64, False, "web", 8, requests_per_client=4
        )
        mtcp = run_http_experiment(
            "flick-mtcp", 64, False, "web", 8, requests_per_client=4
        )
        assert mtcp.throughput > 2 * kernel.throughput

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            run_http_experiment("iis", 10, True, "web", 4)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_http_experiment("nginx", 10, True, "proxy", 4)


class TestMemcachedHarness:
    def test_more_cores_more_throughput(self):
        two = run_memcached_experiment(
            "flick-kernel", 2, concurrency=48, requests_per_client=12
        )
        eight = run_memcached_experiment(
            "flick-kernel", 8, concurrency=48, requests_per_client=12
        )
        assert eight.throughput > 2 * two.throughput
        assert eight.latency_ms < two.latency_ms

    def test_moxi_contention_bites_at_sixteen_cores(self):
        four = run_memcached_experiment(
            "moxi", 4, concurrency=48, requests_per_client=12
        )
        sixteen = run_memcached_experiment(
            "moxi", 16, concurrency=48, requests_per_client=12
        )
        assert sixteen.throughput < four.throughput * 1.05

    def test_backend_requests_counted(self):
        result = run_memcached_experiment(
            "flick-kernel", 4, concurrency=24, requests_per_client=10
        )
        assert result.extra["backend_requests"] == 24 * 10


class TestHadoopHarness:
    def test_scales_with_cores(self):
        one = run_hadoop_experiment(1, word_len=8, data_kb_per_mapper=16)
        eight = run_hadoop_experiment(8, word_len=8, data_kb_per_mapper=16)
        assert eight.throughput > 1.5 * one.throughput

    def test_longer_words_higher_mbps(self):
        short = run_hadoop_experiment(2, word_len=8, data_kb_per_mapper=16)
        long_ = run_hadoop_experiment(2, word_len=16, data_kb_per_mapper=16)
        assert long_.throughput > short.throughput

    def test_reduction_reported(self):
        result = run_hadoop_experiment(4, word_len=8, data_kb_per_mapper=16)
        assert result.extra["egress_bytes"] < result.extra["ingress_bytes"]


class TestSchedulingHarness:
    def test_cooperative_prioritises_light(self):
        result = run_scheduling_experiment(
            "cooperative", n_tasks=60, items_per_task=80, cores=8
        )
        assert result.light_mean_ms < result.heavy_mean_ms / 3

    def test_round_robin_delays_light(self):
        """At small scale the effect is mild (the full-size contrast is
        asserted in benchmarks/test_bench_fig7.py); here we only require
        the ordering, with task placement pinned so the comparison is
        apples-to-apples regardless of test order."""
        from repro.runtime.scheduler import TaskBase

        def pinned(policy):
            TaskBase._ids = iter(range(1, 1 << 62))
            return run_scheduling_experiment(
                policy, n_tasks=60, items_per_task=80, cores=8
            )

        coop = pinned("cooperative")
        rr = pinned("round_robin")
        assert rr.light_mean_ms > coop.light_mean_ms

    def test_all_policies_complete_all_tasks(self):
        for policy in ("cooperative", "non_cooperative", "round_robin"):
            result = run_scheduling_experiment(
                policy, n_tasks=20, items_per_task=20, cores=4
            )
            assert result.makespan_ms > 0


class TestCli:
    def test_fig7_quick(self, capsys):
        from repro.bench.cli import main

        assert main(["fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "cooperative" in out and "round_robin" in out

    def test_bad_target_rejected(self):
        from repro.bench.cli import main

        with pytest.raises(SystemExit):
            main(["fig99"])
