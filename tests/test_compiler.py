"""Compiler tests: proc specs, rule lowering, foldt plans, Figure 3 shapes."""

import pytest

from repro.apps import hadoop_agg, http_lb, memcached_proxy
from repro.core.errors import FlickTypeError
from repro.lang.compiler import compile_source
from repro.lang.values import Record


class TestEndpointSpecs:
    def test_memcached_endpoints(self):
        prog = compile_source(memcached_proxy.PROXY_SOURCE)
        spec = prog.proc("Memcached")
        client = spec.endpoint("client")
        assert client.readable and client.writable and not client.is_array
        backends = spec.endpoint("backends")
        assert backends.is_array
        assert backends.read_type == "cmd"

    def test_value_params_not_endpoints(self):
        prog = http_lb.compile_http_lb()
        spec = prog.proc("HttpBalancer")
        names = [ep.name for ep in spec.endpoints]
        assert "info" not in names
        assert set(names) == {"client", "backends"}

    def test_hadoop_endpoint_directions(self):
        prog = hadoop_agg.compile_hadoop()
        spec = prog.proc("hadoop")
        mappers = spec.endpoint("mappers")
        assert mappers.readable and not mappers.writable and mappers.is_array
        reducer = spec.endpoint("reducer")
        assert reducer.writable and not reducer.readable


class TestRules:
    def test_forward_rule(self):
        prog = compile_source(memcached_proxy.PROXY_SOURCE)
        rules = prog.proc("Memcached").rules
        assert rules[0].source == "backends"
        assert rules[0].stages == ()
        assert rules[0].sink == "client"

    def test_function_stage_rule(self):
        prog = compile_source(memcached_proxy.PROXY_SOURCE)
        rule = prog.proc("Memcached").rules[1]
        assert rule.source == "client"
        assert rule.stages[0].func == "target_backend"
        assert rule.sink is None

    def test_stage_bound_args_preserved(self):
        prog = compile_source(memcached_proxy.CACHE_ROUTER_SOURCE)
        rules = prog.proc("memcached").rules
        update = rules[0]
        assert update.stages[0].func == "update_cache"
        assert len(update.stages[0].bound_args) == 1

    def test_globals_lowered(self):
        prog = compile_source(memcached_proxy.CACHE_ROUTER_SOURCE)
        spec = prog.proc("memcached")
        assert [g[0] for g in spec.globals] == ["cache"]

    def test_unknown_proc_rejected(self):
        prog = compile_source(memcached_proxy.PROXY_SOURCE)
        with pytest.raises(Exception):
            prog.proc("nope")


class TestFoldTPlan:
    def test_plan_extracted(self):
        prog = hadoop_agg.compile_hadoop()
        plan = prog.proc("hadoop").foldt
        assert plan is not None
        assert plan.source == "mappers"
        assert plan.sink == "reducer"

    def test_unguarded_foldt_rejected(self):
        src = """
type kv: record
    key : string
    value : string

proc bad: ([kv/-] mappers, -/kv reducer)
    let result = foldt on mappers ordering elem e1, e2 by elem.key as e_key:
        kv(e_key, e1.value)
    result => reducer
"""
        with pytest.raises(FlickTypeError):
            compile_source(src)


class TestAccessedFields:
    def test_proxy_accesses_opcode_and_key(self):
        prog = compile_source(memcached_proxy.CACHE_ROUTER_SOURCE)
        assert prog.accessed_fields("cmd") == frozenset({"opcode", "key"})

    def test_plain_proxy_accesses_key_only(self):
        prog = compile_source(memcached_proxy.PROXY_SOURCE)
        assert prog.accessed_fields("cmd") == frozenset({"key"})


class TestRuleHandler:
    def test_handler_runs_stages_and_sinks(self):
        from repro.lang.compiler import RuleHandler

        prog = compile_source(memcached_proxy.CACHE_ROUTER_SOURCE)
        spec = prog.proc("memcached")

        class Chan:
            def __init__(self):
                self.sent = []

            def send(self, v):
                self.sent.append(v)

        client = Chan()
        cache = {}
        context = {"client": client, "cache": cache, "backends": []}
        update_rule = spec.rules[0]
        handler = RuleHandler(update_rule, prog.interpreter, context)
        getk_resp = Record("cmd", {"opcode": 0x0C, "key": "k1"})
        ops = handler(getk_resp)
        assert ops > 0
        assert client.sent == [getk_resp]
        assert cache["k1"] is getk_resp

    def test_cache_router_end_to_end_semantics(self):
        from repro.lang.compiler import RuleHandler

        prog = compile_source(memcached_proxy.CACHE_ROUTER_SOURCE)
        spec = prog.proc("memcached")

        class Chan:
            def __init__(self):
                self.sent = []

            def send(self, v):
                self.sent.append(v)

        client = Chan()
        backends = [Chan() for _ in range(3)]
        cache = {}
        context = {"client": client, "cache": cache, "backends": backends}
        update = RuleHandler(spec.rules[0], prog.interpreter, context)
        test = RuleHandler(spec.rules[1], prog.interpreter, context)

        request = Record("cmd", {"opcode": 0x0C, "key": "hot"})
        test(request)  # miss: goes to a backend
        assert sum(len(b.sent) for b in backends) == 1
        response = Record("cmd", {"opcode": 0x0C, "key": "hot"})
        update(response)  # populates the cache, forwards to client
        assert client.sent[-1] is response
        test(request)  # hit: served from cache, no new backend traffic
        assert sum(len(b.sent) for b in backends) == 1
        assert client.sent[-1] is response


class TestFigure3Shapes:
    """The compiled task graphs must match Figure 3's task counts."""

    def _build_lb_graph(self):
        from repro.core.units import GBPS
        from repro.net.tcp import TcpNetwork
        from repro.runtime.costs import RuntimeConfig
        from repro.runtime.platform import FlickPlatform
        from repro.runtime.graph import OutboundTarget
        from repro.sim.engine import Engine
        from repro.workloads.backends import BackendWebServer

        engine = Engine()
        net = TcpNetwork(engine)
        mbox = net.add_host("mbox", 10 * GBPS, "core")
        client_host = net.add_host("c0", 1 * GBPS, "edge")
        backend_hosts = [net.add_host(f"b{i}", 1 * GBPS, "edge") for i in range(4)]
        servers = [BackendWebServer(engine, net, b, 8080) for b in backend_hosts]
        platform = FlickPlatform(
            engine, net, mbox, RuntimeConfig(cores=2),
            http_lb.http_codec_registry(),
        )
        targets = [OutboundTarget(b, 8080) for b in backend_hosts]
        instance = platform.register_program(
            http_lb.compile_http_lb(), "HttpBalancer", 80,
            http_lb.lb_bindings(targets),
        )
        platform.start()
        sockets = []
        net.connect(client_host, mbox, 80, sockets.append)
        engine.run()
        del servers
        return engine, instance, sockets[0]

    def test_lb_graph_initial_tasks(self):
        engine, instance, sock = self._build_lb_graph()
        # Graph exists once the dispatcher processed the connection.
        assert instance.graph_dispatcher.total_graphs == 1

    def test_hadoop_tree_shape(self):
        """8 mapper inputs -> 7 merges -> 1 output (Figure 3c)."""
        from repro.core.units import GBPS
        from repro.net.tcp import TcpNetwork
        from repro.runtime.costs import RuntimeConfig
        from repro.runtime.platform import FlickPlatform
        from repro.runtime.task import InputTask, MergeTask, OutputTask
        from repro.sim.engine import Engine
        from repro.workloads.hadoop_mappers import Mapper, ReducerSink

        engine = Engine()
        net = TcpNetwork(engine)
        mbox = net.add_host("mbox", 10 * GBPS, "core")
        reducer = net.add_host("reducer", 10 * GBPS, "core")
        mhosts = [net.add_host(f"m{i}", 1 * GBPS, "edge") for i in range(8)]
        sink = ReducerSink(engine, net, reducer, 9000)
        platform = FlickPlatform(
            engine, net, mbox, RuntimeConfig(cores=4),
            hadoop_agg.hadoop_codec_registry(),
        )
        instance = platform.register_program(
            hadoop_agg.compile_hadoop(), "hadoop", 9100,
            hadoop_agg.hadoop_bindings(reducer, 9000, 8),
        )
        platform.start()
        mappers = [
            Mapper(engine, net, h, mbox, 9100, [("a", "1")]) for h in mhosts
        ]
        graphs = []
        original = instance.graph_dispatcher._build_graph

        def capture():
            graph = original()
            graphs.append(graph)
            return graph

        instance.graph_dispatcher._build_graph = capture
        for m in mappers:
            m.start()
        engine.run()
        assert len(graphs) == 1
        tasks = graphs[0].tasks
        assert sum(1 for t in tasks if isinstance(t, InputTask)) == 8
        assert sum(1 for t in tasks if isinstance(t, MergeTask)) == 7
        assert sum(1 for t in tasks if isinstance(t, OutputTask)) == 1
        assert sink.pairs == [("a", "8")]
