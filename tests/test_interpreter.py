"""Interpreter tests: expression semantics, builtins, side effects."""

import pytest

from repro.core.errors import RuntimeFlickError
from repro.lang.compiler import compile_source
from repro.lang.values import Record


def interp_for(src):
    return compile_source(src).interpreter


def call(src, name, *args):
    return interp_for(src).call_function(name, args)


class TestArithmetic:
    SRC = (
        "fun calc: (x: integer, y: integer) -> (integer)\n    {expr}\n"
    )

    def _eval(self, expr, x=10, y=3):
        return call(self.SRC.format(expr=expr), "calc", x, y)

    def test_add(self):
        assert self._eval("x + y") == 13

    def test_sub_mul(self):
        assert self._eval("x - y * 2") == 4

    def test_mod(self):
        assert self._eval("x mod y") == 1

    def test_integer_division(self):
        assert self._eval("x / y") == 3

    def test_division_by_zero(self):
        with pytest.raises(RuntimeFlickError):
            self._eval("x / (y - 3)")

    def test_mod_by_zero(self):
        with pytest.raises(RuntimeFlickError):
            self._eval("x mod (y - 3)")

    def test_unary_minus(self):
        assert self._eval("-x + y") == -7


class TestControlFlow:
    def test_if_else(self):
        src = (
            "fun sign: (x: integer) -> (integer)\n"
            "    if x > 0:\n        1\n"
            "    elif x = 0:\n        0\n"
            "    else:\n        0 - 1\n"
        )
        assert call(src, "sign", 5) == 1
        assert call(src, "sign", 0) == 0
        assert call(src, "sign", -9) == -1

    def test_let_binding(self):
        src = (
            "fun f: (x: integer) -> (integer)\n"
            "    let a = x * 2\n"
            "    let b = a + 1\n"
            "    b\n"
        )
        assert call(src, "f", 10) == 21

    def test_boolean_short_circuit(self):
        src = (
            "fun f: (x: integer) -> (boolean)\n"
            "    x > 0 and x mod 2 = 0 or x = 0 - 1\n"
        )
        assert call(src, "f", 4) is True
        assert call(src, "f", 3) is False
        assert call(src, "f", -1) is True

    def test_non_boolean_condition_rejected_at_runtime(self):
        interp = interp_for(
            "fun f: (x: integer) -> (integer)\n    x\n"
        )
        with pytest.raises(RuntimeFlickError):
            interp._truthy(3)


class TestBuiltins:
    def test_hash_deterministic(self):
        src = "fun h: (k: string) -> (integer)\n    hash(k)\n"
        assert call(src, "h", "abc") == call(src, "h", "abc")
        assert call(src, "h", "abc") != call(src, "h", "abd")

    def test_len_of_string(self):
        src = "fun f: (s: string) -> (integer)\n    len(s)\n"
        assert call(src, "f", "hello") == 5

    def test_concat(self):
        src = "fun f: (a: string, b: string) -> (string)\n    concat(a, b)\n"
        assert call(src, "f", "ab", "cd") == "abcd"

    def test_to_int_to_str(self):
        src = "fun f: (s: string) -> (string)\n    to_str(to_int(s) + 1)\n"
        assert call(src, "f", "41") == "42"

    def test_min_max(self):
        src = "fun f: (a: integer, b: integer) -> (integer)\n    min(a, b) + max(a, b)\n"
        assert call(src, "f", 3, 9) == 12


class TestRecordsAndDicts:
    SRC = (
        "type kv: record\n    key : string\n    value : string\n"
        "fun mk: (k: string, v: string) -> (kv)\n    kv(k, v)\n"
        "fun get_key: (r: kv) -> (string)\n    r.key\n"
        "fun stash: (d: ref dict<string*kv>, r: kv) -> ()\n"
        "    d[r.key] := r\n"
        "fun probe: (d: ref dict<string*kv>, k: string) -> (boolean)\n"
        "    d[k] = None\n"
    )

    def test_constructor_builds_record(self):
        rec = call(self.SRC, "mk", "a", "1")
        assert isinstance(rec, Record)
        assert rec.key == "a" and rec.value == "1"

    def test_field_access(self):
        rec = Record("kv", {"key": "z", "value": "9"})
        assert call(self.SRC, "get_key", rec) == "z"

    def test_dict_side_effect_visible_to_caller(self):
        interp = interp_for(self.SRC)
        shared = {}
        rec = Record("kv", {"key": "a", "value": "1"})
        interp.call_function("stash", (shared, rec))
        assert shared["a"] is rec

    def test_dict_miss_is_none(self):
        interp = interp_for(self.SRC)
        assert interp.call_function("probe", ({}, "ghost")) is True
        assert interp.call_function(
            "probe", ({"k": Record("kv", {"key": "k", "value": "v"})}, "k")
        ) is False


class TestHigherOrder:
    SRC = (
        "fun add: (acc: integer, x: integer) -> (integer)\n    acc + x\n"
        "fun dbl: (x: integer) -> (integer)\n    x * 2\n"
        "fun even: (x: integer) -> (boolean)\n    x mod 2 = 0\n"
        "fun total: (l: list<integer>) -> (integer)\n    fold(add, 0, l)\n"
        "fun doubled: (l: list<integer>) -> (list<integer>)\n    map(dbl, l)\n"
        "fun evens: (l: list<integer>) -> (list<integer>)\n    filter(even, l)\n"
    )

    def test_fold(self):
        assert call(self.SRC, "total", [1, 2, 3, 4]) == 10

    def test_map(self):
        assert call(self.SRC, "doubled", [1, 2, 3]) == [2, 4, 6]

    def test_filter(self):
        assert call(self.SRC, "evens", [1, 2, 3, 4, 5, 6]) == [2, 4, 6]

    def test_fold_empty_list(self):
        assert call(self.SRC, "total", []) == 0


class TestChannelSends:
    SRC = (
        "type t: record\n    k : string\n"
        "fun route: ([-/t] outs, v: t) -> ()\n"
        "    let target = hash(v.k) mod len(outs)\n"
        "    v => outs[target]\n"
    )

    class FakeChannel:
        def __init__(self):
            self.sent = []

        def send(self, value):
            self.sent.append(value)

    def test_send_routes_by_hash(self):
        interp = interp_for(self.SRC)
        outs = [self.FakeChannel() for _ in range(4)]
        for k in ("a", "b", "c", "d", "e", "f"):
            interp.call_function(
                "route", (outs, Record("t", {"k": k}))
            )
        assert sum(len(c.sent) for c in outs) == 6
        # Same key always picks the same channel (deterministic hash).
        first = [len(c.sent) for c in outs]
        interp.call_function("route", (outs, Record("t", {"k": "a"})))
        second = [len(c.sent) for c in outs]
        assert sum(second) - sum(first) == 1

    def test_send_to_non_channel_rejected(self):
        interp = interp_for(self.SRC)
        with pytest.raises(RuntimeFlickError):
            interp.call_function(
                "route", ([42], Record("t", {"k": "a"}))
            )


class TestOpsAccounting:
    def test_ops_grow_with_work(self):
        interp = interp_for(
            "fun small: (x: integer) -> (integer)\n    x\n"
            "fun large: (x: integer) -> (integer)\n"
            "    let a = x * x + x\n"
            "    let b = a * a + a\n"
            "    a + b + x\n"
        )
        interp.reset_ops()
        interp.call_function("small", (1,))
        small_ops = interp.reset_ops()
        interp.call_function("large", (1,))
        large_ops = interp.reset_ops()
        assert large_ops > small_ops > 0

    def test_reset_returns_and_clears(self):
        interp = interp_for("fun f: (x: integer) -> (integer)\n    x\n")
        interp.call_function("f", (1,))
        assert interp.reset_ops() > 0
        assert interp.reset_ops() == 0
