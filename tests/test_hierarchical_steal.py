"""Hierarchical NUMA stealing and the socket-distance matrix.

The four-socket topology is a ring: adjacent sockets one hop apart,
opposite ones two, with steals priced per hop.  The ``numa`` policy must
steal *hierarchically* — own socket, then nearest non-empty socket,
widening one tier at a time — which these tests verify two ways:

* a property test reconstructs every steal from the scheduler's steal
  log (which snapshots all queue lengths at victim-selection time) and
  checks it took from the nearest non-empty socket, and that the total
  steal cost decomposes exactly into ``steals * STEAL_US + hops *
  per-hop penalty``;
* an outcome test pits hierarchical stealing against PR 2's flat
  local-then-anywhere order on the same four-socket workload and
  requires strictly lower cross-socket steal cost.
"""

import random

import pytest

from repro.net.stackprofiles import (
    FOUR_SOCKET,
    TWO_SOCKET,
    UNIFORM,
    CoreTopology,
)
from repro.runtime.costs import STEAL_US
from repro.runtime.policy import NumaPolicy
from repro.runtime.scheduler import Scheduler, TaskBase
from repro.sim.engine import Engine

SEEDS = (3, 11, 42)
CORES = 16  # the full four-socket box: 4 sockets x 4 cores


class _ItemTask(TaskBase):
    def __init__(self, name, n, cost_us):
        super().__init__(name)
        self.remaining = n
        self.cost_us = cost_us

    def has_work(self):
        return self.remaining > 0

    def step(self, budget_us):
        elapsed = 0.0
        while self.remaining > 0:
            self.remaining -= 1
            elapsed += self.cost_us
            self.items_processed += 1
            if budget_us == 0.0:
                break
            if budget_us is not None and elapsed >= budget_us:
                break
        self.busy_us += elapsed
        return elapsed, []


def run_four_socket_workload(policy, seed, n_tasks=48):
    """A randomized, imbalanced workload on the four-socket ring."""
    TaskBase.reset_ids()
    rng = random.Random(seed)
    engine = Engine()
    scheduler = Scheduler(engine, CORES, 50.0, policy, FOUR_SOCKET)
    tasks = []
    for index in range(n_tasks):
        task = _ItemTask(
            f"task{index}", rng.randint(1, 24), rng.choice((1.0, 4.0, 12.0))
        )
        # Skewed pinning: most work lands on sockets 0 and 2, so the
        # starved sockets must steal and get a real choice of distance.
        task.home_hint = rng.choice((0, 1, 2, 3, 8, 9, 10, 11, 4, 12))
        tasks.append(task)
    arrivals = sorted(
        (rng.uniform(0.0, 300.0), index) for index in range(n_tasks)
    )
    scheduler.start()

    def admit():
        now = 0.0
        for at, index in arrivals:
            if at > now:
                yield engine.timeout(at - now)
                now = at
            scheduler.notify_runnable(tasks[index])

    engine.process(admit())
    engine.run()
    assert all(t.remaining == 0 for t in tasks)
    return scheduler


class TestSocketDistanceMatrix:
    def test_default_ring_distances(self):
        assert FOUR_SOCKET.socket_hops(0, 0) == 0
        assert FOUR_SOCKET.socket_hops(0, 1) == 1
        assert FOUR_SOCKET.socket_hops(0, 2) == 2
        assert FOUR_SOCKET.socket_hops(0, 3) == 1
        assert FOUR_SOCKET.socket_hops(1, 3) == 2

    def test_two_socket_stays_one_hop(self):
        """Pre-matrix behaviour is preserved: every remote pair on the
        paper's testbed is exactly one hop."""
        assert TWO_SOCKET.socket_hops(0, 1) == 1
        assert TWO_SOCKET.socket_hops(1, 0) == 1
        assert UNIFORM.socket_hops(0, 0) == 0

    def test_core_distance_reports_full_hop_count(self):
        # Cores 0 (socket 0) and 8 (socket 2) are two hops apart.
        assert FOUR_SOCKET.distance(0, 8) == 2
        assert FOUR_SOCKET.distance(0, 4) == 1
        assert FOUR_SOCKET.distance(0, 3) == 0

    def test_steal_penalty_scales_with_hops(self):
        per_hop = FOUR_SOCKET.remote_steal_penalty_us
        assert FOUR_SOCKET.steal_penalty_us(0, 1) == per_hop
        assert FOUR_SOCKET.steal_penalty_us(0, 2) == 2 * per_hop
        assert FOUR_SOCKET.steal_penalty_us(3, 3) == 0.0

    def test_explicit_matrix_overrides_the_ring(self):
        star = CoreTopology(
            name="star", sockets=3, cores_per_socket=2,
            remote_steal_penalty_us=1.0,
            socket_distances=((0, 1, 2), (1, 0, 1), (2, 1, 0)),
        )
        assert star.socket_hops(0, 2) == 2
        assert star.socket_hops(1, 2) == 1

    @pytest.mark.parametrize(
        "matrix",
        [
            ((0, 1), (1, 0), (1, 1)),  # not square / wrong rank
            ((0, 1), (2, 0)),  # asymmetric
            ((1, 1), (1, 0)),  # non-zero diagonal
            ((0, 0), (0, 0)),  # distinct sockets zero hops apart
            ((0, -1), (-1, 0)),  # negative hops
        ],
    )
    def test_malformed_matrices_rejected(self, matrix):
        with pytest.raises(ValueError):
            CoreTopology(
                name="bad", sockets=2, cores_per_socket=2,
                remote_steal_penalty_us=1.0, socket_distances=matrix,
            )


class TestHierarchicalStealProperty:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_numa_steal_is_from_the_nearest_nonempty_socket(self, seed):
        """Reconstructed from the steal log: at victim-selection time no
        socket closer to the thief held any queued work."""
        scheduler = run_four_socket_workload("numa", seed)
        assert scheduler.steal_log, "workload produced no steals"
        sockets = [w.socket for w in scheduler._workers]
        for record in scheduler.steal_log:
            non_empty_hops = {
                FOUR_SOCKET.socket_hops(record.thief_socket, sockets[i])
                for i, qlen in enumerate(record.queue_lens)
                if qlen > 0 and i != record.thief
            }
            assert non_empty_hops, "steal with no visible victim work"
            assert record.hops == min(non_empty_hops), (
                f"thief {record.thief} (socket {record.thief_socket}) "
                f"stole {record.hops} hops away while a socket "
                f"{min(non_empty_hops)} hops away had work"
            )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", ("numa", "cooperative", "steal-half"))
    def test_steal_cost_decomposes_into_base_plus_hops(self, name, seed):
        """total steal cost == steals * STEAL_US + Σ hops * per-hop
        penalty, for any policy's steal pattern."""
        scheduler = run_four_socket_workload(name, seed)
        log = scheduler.steal_log
        assert len(log) == scheduler.total_steals
        assert sum(r.tasks for r in log) == scheduler.total_stolen_tasks
        expected = (
            scheduler.total_steals * STEAL_US
            + sum(r.hops for r in log) * FOUR_SOCKET.remote_steal_penalty_us
        )
        assert scheduler.total_steal_us == pytest.approx(expected)
        for record in log:
            assert record.hops == FOUR_SOCKET.socket_hops(
                record.thief_socket, record.victim_socket
            )
            assert record.cost_us == pytest.approx(
                STEAL_US + record.hops * FOUR_SOCKET.remote_steal_penalty_us
            )


class _FlatNumaPolicy(NumaPolicy):
    """PR 2's ``numa`` victim order: own socket first, then the longest
    queue *anywhere* — the local-then-anywhere baseline the hierarchical
    order replaces.  Kept out of the registry: it exists only as the
    regression yardstick."""

    name = "numa-flat-baseline"

    def select_victim(self, worker, workers):
        home = self._socket_of(worker)
        local = remote = None
        local_len = remote_len = 0
        for other in workers:
            if other is worker:
                continue
            qlen = len(other.queue)
            if qlen == 0:
                continue
            if self._socket_of(other) == home:
                if qlen > local_len:
                    local, local_len = other, qlen
            elif qlen > remote_len:
                remote, remote_len = other, qlen
        return local if local is not None else remote


def run_steal_gradient_workload(policy):
    """A deterministic steal gradient on the four-socket ring.

    Socket 0's cores carry tiny tasks (they drain first and turn
    thief); socket 1, one hop away, holds *short queues of heavy tasks*
    (genuine surplus); socket 2, two hops away, holds *long queues of
    tiny tasks* its own cores will finish anyway.  Queue length — the
    flat policy's only signal — points two hops out, so
    local-then-anywhere burns far steals on work that never needed to
    move, while the hierarchy feeds the thieves from the one-hop
    surplus.
    """
    TaskBase.reset_ids()
    engine = Engine()
    scheduler = Scheduler(engine, CORES, 50.0, policy, FOUR_SOCKET)
    tasks = []
    for core in range(0, 4):  # socket 0: drains almost immediately
        tasks.append(_ItemTask(f"s0c{core}", 2, 1.0))
        tasks[-1].home_hint = core
    for core in range(4, 8):  # socket 1: short queues, heavy work
        for k in range(2):
            tasks.append(_ItemTask(f"s1c{core}.{k}", 200, 4.0))
            tasks[-1].home_hint = core
    for core in range(8, 12):  # socket 2: long queues of tiny tasks
        for k in range(10):
            tasks.append(_ItemTask(f"s2c{core}.{k}", 2, 2.0))
            tasks[-1].home_hint = core
    scheduler.start()
    for task in tasks:
        scheduler.notify_runnable(task)
    engine.run()
    assert all(t.remaining == 0 for t in tasks)
    return scheduler


def _remote_cost(scheduler) -> float:
    return sum(
        r.hops * FOUR_SOCKET.remote_steal_penalty_us
        for r in scheduler.steal_log
    )


class TestHierarchicalBeatsFlat:
    def test_cross_socket_steal_cost_strictly_lower(self):
        """Acceptance: on four-socket the hierarchical order pays
        strictly less cross-socket steal cost than PR 2's
        local-then-anywhere order on the identical workload."""
        hierarchical = run_steal_gradient_workload("numa")
        flat = run_steal_gradient_workload(_FlatNumaPolicy())
        assert any(r.hops > 1 for r in flat.steal_log), (
            "workload never tempted the flat policy into a far steal; "
            "the comparison would be vacuous"
        )
        assert _remote_cost(hierarchical) < _remote_cost(flat)
        # The hierarchy also keeps every steal within one hop here: the
        # one-hop tier never runs dry, so two-hop steals never happen.
        assert max(r.hops for r in hierarchical.steal_log) == 1

    def test_randomized_workloads_never_pay_more(self):
        """Across the seeded random workloads the hierarchy is never
        costlier than local-then-anywhere, and strictly cheaper in
        aggregate (most seeds only ever expose one non-empty remote
        tier, where the two orders coincide)."""
        totals = [0.0, 0.0]
        for seed in SEEDS:
            hierarchical = _remote_cost(run_four_socket_workload("numa", seed))
            flat = _remote_cost(
                run_four_socket_workload(_FlatNumaPolicy(), seed)
            )
            assert hierarchical <= flat, f"seed {seed}"
            totals[0] += hierarchical
            totals[1] += flat
        assert totals[0] < totals[1]

    def test_numa_without_topology_still_steals_local_first(self):
        """Flat schedulers bind no topology: the hierarchical order
        degenerates to socket-0-everywhere, longest queue."""
        engine = Engine()
        scheduler = Scheduler(engine, 4, 50.0, "numa")
        tasks = [_ItemTask(f"t{i}", 20, 2.0) for i in range(8)]
        for task in tasks:
            task.home_hint = 0
        scheduler.start()
        for task in tasks:
            scheduler.notify_runnable(task)
        engine.run()
        assert all(t.remaining == 0 for t in tasks)
        assert all(r.hops == 0 for r in scheduler.steal_log)
        assert scheduler.total_steal_us == pytest.approx(
            scheduler.total_steals * STEAL_US
        )
