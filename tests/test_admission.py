"""Admission-control tests: registry, policy units, conservation, survival.

The conservation law (``admitted + shed == offered``, per class and in
total) is checked as a hypothesis property over end-to-end open-loop
runs, and the headline behaviour — ``shed-bronze`` turning an open-loop
overload collapse into bounded gold-class misses with the bronze
arrivals shed at the door — is pinned against an ``admit-all`` control
run of the same workload.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.testbeds import run_http_experiment
from repro.core.errors import ConfigError
from repro.runtime.admission import (
    AdmissionPolicy,
    AdmissionRequest,
    closest_admission_name,
    make_admission,
    registered_admissions,
    resolve_admission,
)
from repro.runtime.costs import RuntimeConfig
from repro.sim.stats import SloScoreboard
from repro.workloads.arrivals import make_arrival


def request(
    service_class="default",
    inflight=0,
    now_us=0.0,
    index=0,
    offered=0,
    admitted=0,
    shed=0,
):
    return AdmissionRequest(
        index=index,
        now_us=now_us,
        service_class=service_class,
        inflight=inflight,
        offered=offered,
        admitted=admitted,
        shed=shed,
    )


class TestRegistry:
    def test_builtin_policies_registered(self):
        names = registered_admissions()
        assert names[0] == "admit-all"
        assert {"shed-bronze", "token-bucket"} <= set(names)
        assert len(set(names)) == len(names)

    def test_unknown_name_gets_near_miss_suggestion(self):
        with pytest.raises(Exception) as excinfo:
            make_admission("shed-bronz")
        assert "unknown admission policy 'shed-bronz'" in str(excinfo.value)
        assert "did you mean 'shed-bronze'?" in str(excinfo.value)

    def test_closest_admission_name(self):
        assert closest_admission_name("token-buckt") == "token-bucket"
        assert closest_admission_name("zzzzz") is None

    def test_bad_parameters_are_flick_errors(self):
        with pytest.raises(Exception, match="bad parameters"):
            make_admission("admit-all", nope=1)
        with pytest.raises(Exception, match="max_inflight"):
            make_admission("shed-bronze", max_inflight=0)
        with pytest.raises(Exception, match="protected class"):
            make_admission("shed-bronze", protect=())
        with pytest.raises(Exception, match="refill rate"):
            make_admission("token-bucket", rate_rps=0)
        with pytest.raises(Exception, match="burst"):
            make_admission("token-bucket", burst=0.5)
        with pytest.raises(Exception, match="class 'bronze'"):
            make_admission("token-bucket", rates={"bronze": -1.0})

    def test_resolve_accepts_instance_and_name(self):
        instance = make_admission("shed-bronze")
        assert resolve_admission(instance) is instance
        assert resolve_admission("token-bucket").name == "token-bucket"
        with pytest.raises(Exception, match="name or AdmissionPolicy"):
            resolve_admission(42)

    def test_runtime_config_validates_the_admission_field(self):
        assert RuntimeConfig().admission == "admit-all"
        assert isinstance(
            RuntimeConfig(admission=make_admission("admit-all")).admission,
            AdmissionPolicy,
        )
        with pytest.raises(ValueError, match="unknown admission policy"):
            RuntimeConfig(admission="admitall")


class TestShedBronze:
    def test_below_watermark_everything_gets_in(self):
        policy = make_admission("shed-bronze", max_inflight=2)
        assert policy.admit(request("bronze", inflight=0))
        assert policy.admit(request("bronze", inflight=1))
        assert policy.admit(request("anything", inflight=1))

    def test_above_watermark_only_protected_classes(self):
        policy = make_admission("shed-bronze", max_inflight=2)
        assert not policy.admit(request("bronze", inflight=2))
        assert not policy.admit(request("default", inflight=5))
        assert policy.admit(request("gold", inflight=5))

    def test_protect_list_is_configurable(self):
        policy = make_admission(
            "shed-bronze", max_inflight=1, protect=("silver", "gold")
        )
        assert policy.admit(request("silver", inflight=10))
        assert policy.admit(request("gold", inflight=10))
        assert not policy.admit(request("bronze", inflight=10))


class TestTokenBucket:
    def test_burst_then_refill_on_virtual_time(self):
        # 1 token per virtual µs, burst of 2.
        policy = make_admission(
            "token-bucket", rate_rps=1_000_000.0, burst=2.0
        )
        assert policy.admit(request(now_us=0.0))
        assert policy.admit(request(now_us=0.0))
        assert not policy.admit(request(now_us=0.0))  # bucket empty
        assert policy.admit(request(now_us=1.0))  # one token refilled
        assert not policy.admit(request(now_us=1.0))

    def test_refill_is_capped_at_burst(self):
        policy = make_admission(
            "token-bucket", rate_rps=1_000_000.0, burst=2.0
        )
        for _ in range(2):
            assert policy.admit(request(now_us=0.0))
        # A huge idle gap must refill to the burst ceiling, not beyond.
        assert policy.admit(request(now_us=1e6))
        assert policy.admit(request(now_us=1e6))
        assert not policy.admit(request(now_us=1e6))

    def test_per_class_rate_overrides(self):
        policy = make_admission(
            "token-bucket",
            rate_rps=1_000_000.0,
            burst=1.0,
            rates={"bronze": 1.0},
        )
        assert policy.admit(request("bronze", now_us=0.0))
        # Bronze refills at 1 token per virtual second: still dry...
        assert not policy.admit(request("bronze", now_us=100.0))
        # ...while gold (default rate) has long since refilled.
        assert policy.admit(request("gold", now_us=0.0))
        assert policy.admit(request("gold", now_us=100.0))

    def test_reset_forgets_spent_tokens(self):
        policy = make_admission(
            "token-bucket", rate_rps=1_000_000.0, burst=1.0
        )
        assert policy.admit(request(now_us=0.0))
        assert not policy.admit(request(now_us=0.0))
        policy.reset()
        assert policy.admit(request(now_us=0.0))


class TestScoreboardSheds:
    def test_negative_shed_count_rejected(self):
        with pytest.raises(ValueError, match="negative shed count"):
            SloScoreboard().record_shed("bronze", -1)

    def test_shed_only_class_appears_with_zeroed_latency(self):
        scoreboard = SloScoreboard()
        scoreboard.record_shed("bronze", 3)
        assert scoreboard.total_sheds == 3
        assert scoreboard.sheds_by_class() == {"bronze": 3}
        stats = scoreboard.summary()["bronze"]
        assert stats["shed"] == 3
        assert stats["completions"] == 0
        assert stats["mean_ms"] == 0.0


def open_loop_run(
    admission="admit-all",
    class_mix=(),
    total_requests=96,
    rate_rps=80_000.0,
    cores=2,
    concurrency=16,
):
    return run_http_experiment(
        "flick-kernel",
        concurrency,
        mode="lb",
        cores=cores,
        arrival=make_arrival("poisson", rate_rps=rate_rps),
        total_requests=total_requests,
        slo_us=2_000.0,
        admission=admission,
        class_mix=class_mix,
    )


class TestConservation:
    """``admitted + shed == offered`` — per class and in total."""

    @given(
        name=st.sampled_from(registered_admissions()),
        gold_weight=st.integers(min_value=1, max_value=4),
        bronze_weight=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=6, deadline=None)
    def test_per_class_conservation_end_to_end(
        self, name, gold_weight, bronze_weight
    ):
        mix = (
            ("gold", float(gold_weight)),
            ("bronze", float(bronze_weight)),
        )
        result = open_loop_run(admission=name, class_mix=mix)
        stats = result.admission_stats
        assert set(stats) == {"gold", "bronze"}
        for per_class in stats.values():
            assert (
                per_class["admitted"] + per_class["shed"]
                == per_class["offered"]
            )
            # The run drains: every admitted request completes.
            assert per_class["completed"] == per_class["admitted"]
        assert sum(s["offered"] for s in stats.values()) == 96
        assert sum(s["admitted"] for s in stats.values()) == result.extra[
            "admitted"
        ]
        assert sum(s["shed"] for s in stats.values()) == result.extra["shed"]

    def test_class_mix_is_weighted_round_robin_exact(self):
        result = open_loop_run(
            class_mix=(("gold", 1.0), ("bronze", 3.0)), total_requests=96
        )
        stats = result.admission_stats
        # Credit-based WRR, not sampling: proportions are exact.
        assert stats["gold"]["offered"] == 24
        assert stats["bronze"]["offered"] == 72

    def test_sheds_mirror_into_the_platform_scoreboard(self):
        result = open_loop_run(
            admission=make_admission("shed-bronze", max_inflight=8),
            class_mix=(("gold", 1.0), ("bronze", 1.0)),
            rate_rps=160_000.0,
            cores=1,
            total_requests=128,
        )
        shed = result.admission_stats["bronze"]["shed"]
        assert shed > 0
        assert result.class_stats["bronze"]["shed"] == shed
        # Gold never shed (and the task side runs unclassified here), so
        # no gold entry materialises in the scoreboard summary.
        assert result.class_stats.get("gold", {}).get("shed", 0) == 0


class TestValidation:
    def test_admission_needs_an_open_loop(self):
        with pytest.raises(ValueError, match="open-loop"):
            run_http_experiment(
                "flick-kernel", 8, admission="shed-bronze"
            )
        with pytest.raises(ValueError, match="open-loop"):
            run_http_experiment(
                "flick-kernel", 8, class_mix=(("gold", 1.0),)
            )

    def test_class_mix_shape_is_checked(self):
        with pytest.raises(ConfigError, match="weight"):
            open_loop_run(class_mix=(("gold", 0.0),))
        with pytest.raises(ConfigError, match="repeats class"):
            open_loop_run(class_mix=(("gold", 1.0), ("gold", 2.0)))


class TestOverloadSurvival:
    """The PR's headline: shedding bronze keeps gold's SLO alive."""

    @pytest.fixture(scope="class")
    def runs(self):
        kwargs = dict(
            class_mix=(("gold", 1.0), ("bronze", 1.0)),
            total_requests=512,
            rate_rps=160_000.0,
            cores=8,
            concurrency=64,
        )
        control = open_loop_run(admission="admit-all", **kwargs)
        shed = open_loop_run(
            admission=make_admission("shed-bronze", max_inflight=96),
            **kwargs,
        )
        return control, shed

    def test_admit_all_collapses_under_overload(self, runs):
        control, _ = runs
        stats = control.admission_stats
        assert stats["gold"]["shed"] == 0
        assert stats["bronze"]["shed"] == 0
        # Open loop + no shedding: the queue grows without bound and
        # takes the premium class down with it.
        assert stats["gold"]["slo_misses"] > 100

    def test_shed_bronze_bounds_gold_misses(self, runs):
        control, shed = runs
        stats = shed.admission_stats
        assert stats["bronze"]["shed"] > 0
        assert stats["gold"]["shed"] == 0
        assert stats["gold"]["admitted"] == stats["gold"]["offered"]
        assert (
            stats["gold"]["slo_misses"]
            < control.admission_stats["gold"]["slo_misses"]
        )
        assert shed.extra["p99_ms"] < control.extra["p99_ms"]
