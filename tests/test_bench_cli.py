"""Argument-handling tests for the ``python -m repro.bench`` surface.

The underlying parsers (``resolve_policy_selection``,
``parse_slo_class_specs``, ``resolve_scenario_selection``) have their own
unit tests; these exercise the CLI itself — exit codes and the error
text a user actually sees.
"""

import json

import pytest

from repro.bench import results as results_io
from repro.bench.cli import main


class TestUnknownSubcommand:
    def test_exits_2_and_lists_the_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig9"])
        assert excinfo.value.code == 2
        stderr = capsys.readouterr().err
        assert "invalid choice: 'fig9'" in stderr
        assert "scenarios" in stderr

    def test_no_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2


class TestPolicyFlag:
    def test_near_miss_suggestion_before_anything_runs(self, capsys):
        assert main(["fig7", "--quick", "--policy", "cooperativ"]) == 2
        stderr = capsys.readouterr().err
        assert "unknown scheduling policy 'cooperativ'" in stderr
        assert "did you mean 'cooperative'?" in stderr

    def test_typo_rejected_even_for_non_fig7_targets(self, capsys):
        # validation happens up front, not when the loop reaches fig7
        assert main(["e1", "--quick", "--policy", "dead-line"]) == 2
        assert "did you mean 'deadline'?" in capsys.readouterr().err

    def test_empty_selection_rejected(self, capsys):
        assert main(["fig7", "--quick", "--policy", ","]) == 2
        assert "selects no policies" in capsys.readouterr().err


class TestSloClassFlag:
    def test_malformed_spec_exits_2(self, capsys):
        assert main(["fig7", "--quick", "--slo-class", "light-1000"]) == 2
        assert "malformed --slo-class" in capsys.readouterr().err

    def test_unknown_endpoint_gets_near_miss(self, capsys):
        assert main(["fig7", "--quick", "--slo-class", "ligth=1000"]) == 2
        stderr = capsys.readouterr().err
        assert "unknown endpoint 'ligth'" in stderr
        assert "did you mean 'light'?" in stderr

    def test_non_numeric_slo_exits_2(self, capsys):
        assert main(["fig7", "--quick", "--slo-class", "light=fast"]) == 2
        assert "is not a number of µs" in capsys.readouterr().err


class TestScenarioFlag:
    def test_unknown_scenario_exits_2_with_suggestion(self, capsys):
        assert main(["scenarios", "--scenario", "http-overload-opne"]) == 2
        stderr = capsys.readouterr().err
        assert "unknown scenario 'http-overload-opne'" in stderr
        assert "did you mean 'http-overload-open'?" in stderr

    def test_typo_rejected_before_other_targets_run(self, capsys):
        assert main(["e1", "--quick", "--scenario", "nonsense"]) == 2
        assert "unknown scenario 'nonsense'" in capsys.readouterr().err

    def test_single_scenario_runs_and_writes_schema_valid_json(
        self, tmp_path, capsys
    ):
        out = tmp_path / "BENCH_scenarios.json"
        code = main([
            "scenarios", "--quick",
            "--scenario", "http-closed-baseline",
            "--output", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "http-closed-baseline" in stdout
        document = results_io.load_results(out)
        assert list(document["scenarios"]) == ["http-closed-baseline"]


class TestAllocatorAdmissionFlags:
    def test_unknown_allocator_exits_2_with_suggestion(self, capsys):
        assert main(["scenarios", "--allocator", "queue-deph"]) == 2
        stderr = capsys.readouterr().err
        assert "unknown core allocator 'queue-deph'" in stderr
        assert "did you mean 'queue-depth'?" in stderr

    def test_unknown_admission_exits_2_with_suggestion(self, capsys):
        assert main(["scenarios", "--admission", "shed-bronz"]) == 2
        stderr = capsys.readouterr().err
        assert "unknown admission policy 'shed-bronz'" in stderr
        assert "did you mean 'shed-bronze'?" in stderr

    def test_typos_rejected_before_other_targets_run(self, capsys):
        assert main(["e1", "--quick", "--allocator", "statik"]) == 2
        assert "did you mean 'static'?" in capsys.readouterr().err
        assert main(["e1", "--quick", "--admission", "admitall"]) == 2
        assert "did you mean 'admit-all'?" in capsys.readouterr().err

    def test_overrides_apply_to_the_selected_scenarios(
        self, tmp_path, capsys
    ):
        out = tmp_path / "overridden.json"
        code = main([
            "scenarios", "--quick",
            "--scenario", "http-open-poisson",
            "--allocator", "queue-depth",
            "--admission", "token-bucket",
            "--output", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "admission=token-bucket" in stdout
        assert "allocator=queue-depth" in stdout
        entry = results_io.load_results(out)["scenarios"]["http-open-poisson"]
        assert entry["allocator"]["name"] == "queue-depth"
        assert entry["admission"]["policy"] == "token-bucket"

    def test_admission_override_on_a_closed_loop_scenario_exits_2(
        self, capsys
    ):
        code = main([
            "scenarios", "--quick",
            "--scenario", "http-closed-baseline",
            "--admission", "shed-bronze",
        ])
        assert code == 2
        assert "open-loop" in capsys.readouterr().err

    def test_documented_ci_override_leg_is_green(self, tmp_path, capsys):
        """The perf-smoke CI leg re-runs the pinned shed scenario with
        an explicit --admission override matching its pinned policy, so
        it must compare clean against the committed baseline."""
        from pathlib import Path

        baseline = (
            Path(__file__).parent.parent
            / "benchmarks" / "baseline_scenarios.json"
        )
        code = main([
            "scenarios", "--quick",
            "--scenario", "http-overload-shed",
            "--admission", "shed-bronze",
            "--output", str(tmp_path / "now.json"),
            "--baseline", str(baseline),
        ])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "no perf regressions" in captured.out


class TestBaselineFlag:
    def test_regression_exits_1(self, tmp_path, capsys):
        out = tmp_path / "now.json"
        assert main([
            "scenarios", "--quick",
            "--scenario", "http-closed-baseline", "--output", str(out),
        ]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        entry = document["scenarios"]["http-closed-baseline"]
        entry["throughput"] *= 2.0  # fake a faster past
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(document))
        code = main([
            "scenarios", "--quick",
            "--scenario", "http-closed-baseline",
            "--output", str(out), "--baseline", str(baseline_path),
        ])
        assert code == 1
        stderr = capsys.readouterr().err
        assert "PERF REGRESSION" in stderr
        # ~50%: the doctored baseline is 2x this run's throughput
        assert "throughput dropped 5" in stderr

    def test_filtered_run_against_full_baseline_is_green(
        self, tmp_path, capsys
    ):
        """--scenario + --baseline must not read the unselected matrix
        entries as vanished coverage."""
        from pathlib import Path

        baseline = (
            Path(__file__).parent.parent
            / "benchmarks" / "baseline_scenarios.json"
        )
        out = tmp_path / "now.json"
        code = main([
            "scenarios", "--quick",
            "--scenario", "http-overload-closed",
            "--output", str(out),
            "--baseline", str(baseline),
        ])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "no perf regressions" in captured.out

    def test_quick_mismatch_is_a_usage_error(self, tmp_path, capsys):
        out = tmp_path / "now.json"
        assert main([
            "scenarios", "--quick",
            "--scenario", "http-closed-baseline", "--output", str(out),
        ]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        document["quick"] = False
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(document))
        code = main([
            "scenarios", "--quick",
            "--scenario", "http-closed-baseline",
            "--output", str(out), "--baseline", str(baseline_path),
        ])
        assert code == 2
        assert "like-for-like" in capsys.readouterr().err


class TestClusterFlags:
    def test_list_exits_0_and_prints_every_scenario(self, capsys):
        from repro.bench.scenarios import SCENARIOS

        assert main(["scenarios", "--list"]) == 0
        out = capsys.readouterr().out
        for scenario in SCENARIOS:
            assert scenario.name in out
        # the cluster axes are part of the listing
        assert "shards" in out and "routing" in out

    def test_list_respects_scenario_selection(self, capsys):
        assert main([
            "scenarios", "--list",
            "--scenario", "http-fleet-failover",
        ]) == 0
        out = capsys.readouterr().out
        assert "http-fleet-failover" in out
        assert "http-closed-baseline" not in out

    def test_list_runs_nothing(self, tmp_path, capsys):
        out_path = tmp_path / "never_written.json"
        assert main([
            "scenarios", "--list", "--output", str(out_path),
        ]) == 0
        capsys.readouterr()
        assert not out_path.exists()

    def test_bad_jobs_exits_2(self, capsys):
        assert main(["scenarios", "--quick", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_bad_shards_exits_2(self, capsys):
        assert main(["scenarios", "--quick", "--shards", "0"]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_unknown_routing_gets_near_miss(self, capsys):
        assert main([
            "scenarios", "--quick", "--routing", "least-loadd",
        ]) == 2
        stderr = capsys.readouterr().err
        assert "unknown routing policy 'least-loadd'" in stderr
        assert "did you mean 'least-loaded'?" in stderr

    def test_routing_typo_rejected_before_any_target_runs(self, capsys):
        # validation is up front, shared with every other flag
        assert main(["e1", "--quick", "--routing", "hash-afinity"]) == 2
        assert "did you mean 'hash-affinity'?" in capsys.readouterr().err

    def test_shards_override_runs_the_fleet_path(self, tmp_path, capsys):
        out_path = tmp_path / "out.json"
        code = main([
            "scenarios", "--quick",
            "--scenario", "http-open-poisson",
            "--shards", "2", "--routing", "least-loaded",
            "--output", str(out_path),
        ])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        document = json.loads(out_path.read_text())
        entry = document["scenarios"]["http-open-poisson"]
        assert entry["cluster"]["shards"] == 2
        assert entry["cluster"]["routing"] == "least-loaded"
