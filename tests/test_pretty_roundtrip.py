"""Pretty-printer round-trip: format(parse(x)) re-parses to the same AST."""

import pytest

from repro.lang.parser import parse
from repro.lang.pretty import format_program
from tests.test_parser import HADOOP, MEMCACHED_FULL, MEMCACHED_SHORT

EXTRA = """
type point: record
    x : integer {size=4}
    y : integer {size=4}
    label : string {size=8}

proc Echo: (point/point client)
    client => shift() => client

fun shift: (p: point) -> (point)
    if p.x > 0 and not (p.y = 0):
        point(p.x + 1, p.y - 1, p.label)
    else:
        point(0 - p.x, p.y * 2, concat(p.label, "'"))
"""


def _strip_locations(program):
    """Compare programs structurally via their canonical rendering."""
    return format_program(program)


@pytest.mark.parametrize(
    "source",
    [MEMCACHED_SHORT, MEMCACHED_FULL, HADOOP, EXTRA],
    ids=["memcached-short", "memcached-full", "hadoop", "extra"],
)
def test_format_reparses_to_fixed_point(source):
    first = format_program(parse(source))
    second = format_program(parse(first))
    assert first == second


@pytest.mark.parametrize(
    "source",
    [MEMCACHED_SHORT, MEMCACHED_FULL, HADOOP, EXTRA],
    ids=["memcached-short", "memcached-full", "hadoop", "extra"],
)
def test_formatted_program_still_compiles(source):
    from repro.lang.compiler import compile_source

    rendered = format_program(parse(source))
    compile_source(rendered)


def test_declaration_counts_preserved():
    prog = parse(MEMCACHED_FULL)
    again = parse(format_program(prog))
    assert len(again.types) == len(prog.types)
    assert len(again.procs) == len(prog.procs)
    assert len(again.funs) == len(prog.funs)


def test_anonymous_fields_preserved():
    prog = parse(MEMCACHED_FULL)
    again = parse(format_program(prog))
    original = [f.name for f in prog.type_named("cmd").fields]
    rendered = [f.name for f in again.type_named("cmd").fields]
    assert original == rendered


def test_string_escaping_round_trip():
    src = (
        'fun f: (x: string) -> (string)\n'
        '    concat(x, "line\\nbreak\\"quote\\"")\n'
    )
    rendered = format_program(parse(src))
    again = parse(rendered)
    stmt = again.fun_named("f").body[0]
    assert "line\nbreak" in stmt.expr.args[1].value
