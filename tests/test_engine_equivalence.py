"""Differential oracle harness: production engine vs seed heap engine.

The production engine (`repro.sim.engine.Engine`) stages events through
a ready queue, a sorted batch, a timer wheel and an overflow heap; the
reference engine (`repro.sim.reference.ReferenceEngine`) is the seed's
single binary heap.  The contract — the pattern ``test_exec_tier.py``
established for the codegen tier — is that the staging must be
invisible: identical schedules produce identical firing sequences and
final clocks, so any divergence is a production-engine bug by
definition.

Schedules are interpreted twice from small declarative "op" programs so
both engines see the exact same structure: mixed zero/ulp/short/slot-
boundary/long delays, exact ``at()`` timestamps, chained reschedules
(events scheduling more events), ``run(until)`` pause/resume, one-shot
events with multiple waiters, and generator processes.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.sim.engine import _NSLOTS, _SLOT_US, Engine
from repro.sim.reference import ReferenceEngine

# -- schedule programs -------------------------------------------------------
#
# A program is a list of root ops; each op may carry children that its
# callback performs when it fires.  Ops:
#   ("sched", delay, children)   schedule(delay) a callback
#   ("at", offset, children)     at(now + offset) — exact absolute time
#   ("proc", [delays])           process sleeping through the delays
#   ("event", trigger_delay, n)  event with n waiters, triggered later

# Delays that poke every staging boundary: the same tick, sub-ulp
# arithmetic, sub-slot fractions, exact slot edges, the wheel span edge
# and far-future overflow.
DELAYS = [
    0.0,
    1e-9,
    0.5,
    1.0,
    7.25,
    _SLOT_US - 1e-6,
    _SLOT_US,
    _SLOT_US + 0.125,
    3 * _SLOT_US,
    1000.0,
    _SLOT_US * _NSLOTS - _SLOT_US,
    _SLOT_US * _NSLOTS,
    _SLOT_US * _NSLOTS + 12.5,
    1e9,
]

delay_st = st.sampled_from(DELAYS) | st.floats(
    min_value=0.0, max_value=1e7, allow_nan=False, width=32
)

op_st = st.deferred(
    lambda: st.one_of(
        st.tuples(st.just("sched"), delay_st, children_st),
        st.tuples(st.just("at"), delay_st, children_st),
        st.tuples(st.just("proc"), st.lists(delay_st, max_size=3)),
        st.tuples(
            st.just("event"),
            delay_st,
            st.integers(min_value=0, max_value=3),
        ),
    )
)
children_st = st.lists(op_st, max_size=3)
program_st = st.lists(op_st, min_size=1, max_size=8)


def interpret(engine, program, trace):
    """Install ``program``'s root ops on ``engine``, tracing firings."""
    counter = [0]

    def fresh_label():
        counter[0] += 1
        return counter[0]

    def install(op):
        kind = op[0]
        label = fresh_label()
        if kind == "sched":
            _, delay, children = op
            engine.schedule(delay, fire, label, children)
        elif kind == "at":
            _, offset, children = op
            engine.at(engine.now + offset, fire, label, children)
        elif kind == "proc":
            _, delays = op

            def proc(label=label, delays=delays):
                for i, delay in enumerate(delays):
                    trace.append(("proc", label, i, engine.now))
                    yield engine.timeout(delay)
                trace.append(("proc-done", label, engine.now))
                return label

            engine.process(proc())
        elif kind == "event":
            _, delay, waiters = op
            event = engine.event()
            for i in range(waiters):
                event.add_callback(
                    lambda payload, label=label, i=i: trace.append(
                        ("waiter", label, i, payload, engine.now)
                    )
                )
            engine.schedule(delay, event.trigger, label)
            event.add_callback(
                lambda payload, label=label: trace.append(
                    ("late-waiter", label, payload, engine.now)
                )
            )

    def fire(label, children):
        trace.append(("fire", label, engine.now))
        for child in children:
            install(child)

    for op in program:
        install(op)


def wheel_engine():
    """Production engine with the small-set heap preference disabled,
    so the wheel/batch stages engage from the very first event and the
    fuzzer's small schedules exercise them too."""
    engine = Engine()
    engine._heap_pref = 0
    return engine


#: The oracle first, then the production engine in both routing regimes.
ENGINE_FACTORIES = (ReferenceEngine, Engine, wheel_engine)


def run_all(program, until_points=()):
    """Run the program on every engine; return (trace, clocks, pendings)."""
    results = []
    for factory in ENGINE_FACTORIES:
        engine = factory()
        trace = []
        interpret(engine, program, trace)
        clocks = []
        pendings = []
        for until in until_points:
            clocks.append(engine.run(until=until))
            pendings.append(engine.pending())
        clocks.append(engine.run())
        pendings.append(engine.pending())
        results.append((trace, clocks, pendings))
    return results


@settings(max_examples=200, deadline=None)
@given(program=program_st)
def test_firing_sequences_identical(program):
    reference, *others = run_all(program)
    for other in others:
        assert other == reference


@settings(max_examples=100, deadline=None)
@given(
    program=program_st,
    until_points=st.lists(
        st.floats(min_value=0.0, max_value=2e9, allow_nan=False),
        max_size=3,
    ).map(sorted),
)
def test_run_until_pauses_identical(program, until_points):
    reference, *others = run_all(program, until_points)
    for other in others:
        assert other == reference


@settings(max_examples=50, deadline=None)
@given(
    program=program_st,
    mid_ops=st.lists(op_st, max_size=4),
    pause=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
def test_scheduling_between_runs_identical(program, mid_ops, pause):
    """Ops installed while the engine is paused must replay identically."""
    results = []
    for factory in ENGINE_FACTORIES:
        engine = factory()
        trace = []
        interpret(engine, program, trace)
        engine.run(until=pause)
        interpret(engine, mid_ops, trace)
        final = engine.run()
        results.append((trace, final, engine.pending()))
    for other in results[1:]:
        assert other == results[0]


class TestExactAt:
    """`at()` must hit the requested absolute time to the last ulp."""

    def test_at_is_exact_even_when_delta_roundtrip_is_not(self):
        # A double-rounding trap: target - now ties to even (down), and
        # now + that delta ties to even (down again), so the seed's
        # ``when - now`` → ``now + delay`` round-trip fires two ulps
        # *early* — before other events keyed on the requested time.
        now_anchor = 1.0
        target = 2.0**53 + 2.0
        assert (target - now_anchor) + now_anchor != target  # the seed bug
        for engine_cls in (ReferenceEngine, Engine):
            engine = engine_cls()
            stamps = []
            engine.schedule(now_anchor, lambda: None)
            engine.run()
            engine.at(target, lambda: stamps.append(engine.now))
            engine.run()
            assert stamps == [target], engine_cls.__name__

    def test_at_shares_timestamp_key_with_other_at_calls(self):
        engine = Engine()
        order = []
        base = 123456.789
        engine.schedule(100.0, lambda: engine.at(base, order.append, "a"))
        engine.at(base, order.append, "b")
        engine.run()
        # Both land on the identical float key; seq breaks the tie.
        assert order == ["b", "a"]

    def test_at_in_the_past_rejected(self):
        engine = Engine()
        engine.schedule(10.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.at(5.0, lambda: None)

    def test_at_now_fires_same_tick(self):
        engine = Engine()
        seen = []
        engine.schedule(5.0, lambda: engine.at(engine.now, seen.append, "x"))
        engine.run()
        assert seen == ["x"]
        assert engine.now == 5.0


class TestStagingBoundaries:
    """Directed cases for wheel/batch/overflow seams the fuzzer may miss."""

    def test_ulp_delay_fires_at_now_after_queued_tick(self):
        engine = wheel_engine()
        order = []
        big = 1e12

        def at_big():
            engine.schedule(0.0, order.append, "tick")
            engine.schedule(1e-9, order.append, "ulp")  # now + d == now
            assert engine.now + 1e-9 == engine.now

        engine.schedule(big, at_big)
        engine.run()
        assert order == ["tick", "ulp"]
        assert engine.now == big

    def test_dense_same_slot_ordering(self):
        engine = wheel_engine()
        fired = []
        times = [0.5, 15.9, 3.25, 15.9, 0.5, 8.0]  # all in wheel slot 0
        for i, t in enumerate(times):
            engine.at(t, fired.append, (t, i))
        engine.run()
        assert fired == sorted(fired, key=lambda x: (x[0], x[1]))

    def test_overflow_event_interleaves_with_wheel_window(self):
        engine = wheel_engine()
        fired = []
        span = _SLOT_US * _NSLOTS
        # Beyond the wheel horizon at insert time -> overflow heap.
        engine.at(span + 100.0, fired.append, "far")
        # Walk the clock forward so the wheel window slides past "far",
        # then add wheel events straddling it.
        engine.at(span + 50.0, lambda: engine.schedule(49.0, fired.append, "near"))
        engine.at(span + 50.0, lambda: engine.schedule(51.0, fired.append, "after"))
        engine.run()
        assert fired == ["near", "far", "after"]

    def test_equal_nonzero_timestamp_run_drains_in_seq_order(self):
        engine = wheel_engine()
        fired = []
        when = 4096.0
        for i in range(100):
            engine.at(when, fired.append, i)
        # A same-timestamp child scheduled during the run fires after
        # every pre-scheduled entry (larger seq), before time moves on.
        engine.at(when, lambda: engine.schedule(0.0, fired.append, "child"))
        engine.at(when + 1.0, fired.append, "later")
        engine.run()
        assert fired == list(range(100)) + ["child", "later"]

    def test_heap_gallop_keeps_wheel_usable(self):
        engine = wheel_engine()
        fired = []
        span = _SLOT_US * _NSLOTS

        def hop(n):
            fired.append((n, engine.now))
            if n < 4:
                # Far beyond the wheel window every time: the clock
                # gallops via the overflow heap...
                engine.schedule(2 * span, hop, n + 1)
                # ...while short delays must keep firing in between.
                engine.schedule(1.0, fired.append, ("short", n))

        hop(0)
        engine.run()
        kinds = [f[0] for f in fired]
        assert kinds == [0, "short", 1, "short", 2, "short", 3, "short", 4]

    def test_reschedule_into_promoted_region_insorts(self):
        engine = wheel_engine()
        fired = []
        # Promote slot coverage out to ~48µs, then schedule into the
        # already-promoted region from a callback: must interleave.
        engine.at(40.0, fired.append, "a40")
        engine.at(48.0, fired.append, "a48")
        engine.at(8.0, lambda: engine.at(44.0, fired.append, "mid"))
        engine.run()
        assert fired == ["a40", "mid", "a48"]

    def test_pending_counts_all_stages(self):
        engine = wheel_engine()
        engine.schedule(0.0, lambda: None)          # ready
        engine.at(10.0, lambda: None)               # wheel
        engine.at(_SLOT_US * _NSLOTS * 3, lambda: None)  # overflow
        assert engine.pending() == 3
        engine.run(until=5.0)
        assert engine.pending() == 2
        engine.run()
        assert engine.pending() == 0

    def test_huge_and_infinite_times_go_to_overflow(self):
        engine = wheel_engine()
        fired = []
        engine.at(1e300, fired.append, "huge")
        engine.at(math.inf, fired.append, "inf")
        engine.schedule(1.0, fired.append, "soon")
        engine.run(until=1e301)
        assert fired == ["soon", "huge"]
        assert engine.pending() == 1

    def test_small_pending_sets_prefer_the_heap(self):
        # Routing is a performance policy, not a semantic one: below the
        # heap-preference threshold, near-future events live in the
        # overflow heap (cache-resident C push/pop) instead of paying
        # the wheel's bucket and promotion constants.
        engine = Engine()
        for i in range(10):
            engine.at(10.0 + i, lambda: None)
        assert engine._wheel_count == 0
        assert len(engine._heap) == 10
        engine.run()
        assert engine.now == 19.0

    def test_wheel_engages_beyond_heap_preference(self):
        engine = Engine()
        engine._heap_pref = 4
        fired = []
        for i in range(8):
            engine.at(10.0 + i, fired.append, i)
        assert len(engine._heap) == 4
        assert engine._wheel_count == 4
        engine.run()
        assert fired == list(range(8))
