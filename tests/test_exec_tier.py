"""Differential harness: the compiled execution tier vs the interpreter.

The interpreter is the semantic **oracle**; ``repro.lang.codegen`` is a
fast mechanism that must be observationally indistinguishable from it —
identical values, identical side effects (sends, dict/record mutation)
and **bit-identical op counts**, so virtual-time charging cannot depend
on the tier.  This file holds both tiers to that contract at every
level:

* every user function of every FLICK program in the corpus (the three
  apps, the inline example programs, the parser round-trip sources),
  called with type-directed synthesized arguments;
* global initialisers (``eval_const``);
* rule handlers driven message-by-message with stub channels;
* foldt key/combine handlers, including the k-way merge reference;
* hypothesis-fuzzed programs generated type-correct by construction;
* end to end through :class:`FlickPlatform`: full experiment runs under
  both tiers must produce identical ``RunResult``s and scoreboards.
"""

import importlib.util
import itertools
import string
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.hadoop_agg import HADOOP_SOURCE
from repro.apps.http_lb import HTTP_LB_SOURCE, STATIC_WEB_SOURCE
from repro.apps.memcached_proxy import CACHE_ROUTER_SOURCE, PROXY_SOURCE
from repro.lang import types as ty
from repro.lang.compiler import (
    EXEC_TIERS,
    build_foldt_handler,
    build_rule_handler,
    compile_source,
)
from repro.lang.values import Record
from repro.runtime.scheduler import TaskBase
from tests.test_parser import HADOOP, MEMCACHED_FULL, MEMCACHED_SHORT

# ---------------------------------------------------------------------------
# Source corpus
# ---------------------------------------------------------------------------

_EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _example_sources():
    """Every inline FLICK program defined by the examples."""
    sources = {}
    for path in sorted(_EXAMPLES_DIR.glob("*.py")):
        spec = importlib.util.spec_from_file_location(
            f"_example_{path.stem}", path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        for attr, value in vars(module).items():
            if isinstance(value, str) and "proc " in value and "=>" in value:
                sources[f"example:{path.stem}:{attr}"] = value
    return sources


ALL_SOURCES = {
    "app:http_lb": HTTP_LB_SOURCE,
    "app:static_web": STATIC_WEB_SOURCE,
    "app:memcached_proxy": PROXY_SOURCE,
    "app:cache_router": CACHE_ROUTER_SOURCE,
    "app:hadoop": HADOOP_SOURCE,
    "parser:memcached_short": MEMCACHED_SHORT,
    "parser:memcached_full": MEMCACHED_FULL,
    "parser:hadoop": HADOOP,
}
ALL_SOURCES.update(_example_sources())


# ---------------------------------------------------------------------------
# Value synthesis and state snapshots
# ---------------------------------------------------------------------------


class _StubChannel:
    """List-backed channel stub (the interpreter's documented contract)."""

    def __init__(self):
        self.sent = []

    def send(self, value):
        self.sent.append(value)


def _synth(t, counter, depth=0):
    """A deterministic value of type ``t``; same counter → same value."""
    t = ty.strip_ref(t)
    if isinstance(t, ty.IntType):
        return next(counter) % 13
    if isinstance(t, ty.StringType):
        return f"k{next(counter) % 5}"
    if isinstance(t, ty.BoolType):
        return next(counter) % 2 == 0
    if isinstance(t, ty.RecordType):
        return Record(
            t.name,
            {name: _synth(ft, counter, depth + 1) for name, ft in t.fields},
        )
    if isinstance(t, ty.DictMapType):
        if depth > 2:
            return {}
        return {
            _synth(t.key, counter, depth + 1): _synth(
                t.value, counter, depth + 1
            )
            for _ in range(2)
        }
    if isinstance(t, ty.ListSeqType):
        return [_synth(t.element, counter, depth + 1) for _ in range(3)]
    if isinstance(t, ty.ChannelEndType):
        if t.is_array:
            return [_StubChannel() for _ in range(3)]
        return _StubChannel()
    if isinstance(t, ty.UnitType):
        return None
    return next(counter)  # AnyType


def _snap(value):
    """Deep, comparison-friendly snapshot of a runtime value."""
    if isinstance(value, Record):
        return (
            "record",
            value.type_name,
            tuple((k, _snap(v)) for k, v in value.items()),
            value.dirty,
        )
    if isinstance(value, dict):
        return (
            "dict",
            tuple(
                sorted(
                    ((k, _snap(v)) for k, v in value.items()),
                    key=lambda kv: repr(kv[0]),
                )
            ),
        )
    if isinstance(value, (list, tuple)):
        return ("list", tuple(_snap(v) for v in value))
    if isinstance(value, _StubChannel):
        return ("chan", tuple(_snap(v) for v in value.sent))
    return value


# ---------------------------------------------------------------------------
# Function-level parity over the whole corpus
# ---------------------------------------------------------------------------


def _run_function(program, tier, fname):
    executor = program.executor(tier)
    ftype = program.checked.functions[fname]
    counter = itertools.count(1)
    args = [_synth(param, counter) for param in ftype.params]
    executor.reset_ops()
    result, error = None, None
    try:
        result = executor.call_function(fname, args)
    except Exception as exc:  # both tiers must fail identically
        error = f"{type(exc).__name__}: {exc}"
    ops = executor.reset_ops()
    return {
        "result": _snap(result),
        "error": error,
        # Op batching only guarantees parity for completed runs.
        "ops": ops if error is None else None,
        "args": [_snap(arg) for arg in args],
    }


@pytest.mark.parametrize("name", sorted(ALL_SOURCES))
def test_function_value_and_op_parity(name):
    program = compile_source(ALL_SOURCES[name])
    for fname in sorted(program.checked.functions):
        interp = _run_function(program, "interp", fname)
        compiled = _run_function(program, "compiled", fname)
        assert compiled == interp, f"{name}:{fname} diverged"


@pytest.mark.parametrize("name", sorted(ALL_SOURCES))
def test_global_initialiser_parity(name):
    program = compile_source(ALL_SOURCES[name])
    for spec in program.procs.values():
        for gname, init in spec.globals:
            results = {}
            for tier in EXEC_TIERS:
                executor = program.executor(tier)
                executor.reset_ops()
                value = executor.eval_const(init)
                results[tier] = (_snap(value), executor.reset_ops())
            assert results["compiled"] == results["interp"], gname


# ---------------------------------------------------------------------------
# Handler-level parity (rule handlers with stub contexts)
# ---------------------------------------------------------------------------


def _drive_rules(program, tier):
    """Run every rule of every proc over stub channels; trace everything."""
    trace = []
    executor = program.executor(tier)
    checked = program.checked
    for pname in sorted(program.procs):
        spec = program.procs[pname]
        context = {}
        for param_name, ptype in checked.proc_params[pname]:
            stripped = ty.strip_ref(ptype)
            if isinstance(stripped, ty.ChannelEndType):
                context[param_name] = (
                    [_StubChannel() for _ in range(3)]
                    if stripped.is_array
                    else _StubChannel()
                )
            else:
                context[param_name] = _synth(ptype, itertools.count(1))
        for gname, init in spec.globals:
            context[gname] = executor.eval_const(init)
        executor.reset_ops()
        for rule in spec.rules:
            read_type = spec.endpoint(rule.source).read_type
            record_type = (
                checked.records.get(read_type) if read_type else None
            )
            if record_type is None:
                continue
            handler = build_rule_handler(program, rule, dict(context), tier)
            assert handler.source == rule.source
            assert handler.sink == rule.sink
            counter = itertools.count(3)
            for _ in range(4):
                message = _synth(record_type, counter)
                ops = handler(message)
                trace.append(("ops", pname, rule.source, ops))
        trace.append(("context", pname, _snap(context)))
    return trace


@pytest.mark.parametrize("name", sorted(ALL_SOURCES))
def test_rule_handler_parity(name):
    program = compile_source(ALL_SOURCES[name])
    assert _drive_rules(program, "compiled") == _drive_rules(
        program, "interp"
    ), name


# ---------------------------------------------------------------------------
# foldt parity (key, combine, combine_with_ops, k-way merge)
# ---------------------------------------------------------------------------


def _kv(key, value):
    return Record("kv", {"key": key, "value": str(value)})


def test_foldt_handler_parity():
    program = compile_source(HADOOP_SOURCE)
    plan = program.procs["hadoop"].foldt
    interp_handler = build_foldt_handler(program, plan, "interp")
    compiled_handler = build_foldt_handler(program, plan, "compiled")
    records = [_kv(k, n) for k, n in
               [("alpha", 3), ("beta", 11), ("beta", 4), ("gamma", 9)]]
    for record in records:
        assert compiled_handler.key(record) == interp_handler.key(record)
    for left, right in itertools.permutations(records, 2):
        merged_i, ops_i = interp_handler.combine_with_ops(left, right)
        merged_c, ops_c = compiled_handler.combine_with_ops(left, right)
        assert (_snap(merged_c), ops_c) == (_snap(merged_i), ops_i)


def test_foldt_merge_matches_reference():
    """The compiled handler, driven by the reference merge algorithm,
    reproduces ``Interpreter.merge_sorted_streams`` exactly."""
    program = compile_source(HADOOP_SOURCE)
    plan = program.procs["hadoop"].foldt
    handler = build_foldt_handler(program, plan, "compiled")
    streams = [
        [_kv("a", 1), _kv("b", 2), _kv("d", 7)],
        [_kv("b", 5), _kv("c", 3)],
        [_kv("a", 9), _kv("c", 1), _kv("d", 2)],
    ]
    reference = program.interpreter.merge_sorted_streams(plan.expr, streams)
    merged = sorted(
        (record for stream in streams for record in stream),
        key=handler.key,
    )
    out = []
    for element in merged:
        if out and handler.key(out[-1]) == handler.key(element):
            out[-1] = handler.combine(out[-1], element)
        else:
            out.append(element)
    assert [_snap(r) for r in out] == [_snap(r) for r in reference]


# ---------------------------------------------------------------------------
# Fuzzed programs: type-correct by construction
# ---------------------------------------------------------------------------

_PRELUDE = (
    "type rec: record\n"
    "    n : integer\n"
    "    t : string\n"
    "\n"
    "fun add2: (acc: integer, x: integer) -> (integer)\n"
    "    acc + x\n"
    "\n"
    "fun inc: (x: integer) -> (integer)\n"
    "    x + 1\n"
    "\n"
    "fun pos: (x: integer) -> (boolean)\n"
    "    x > 0\n"
    "\n"
    "fun main: (a: integer, b: integer, s: string, r: rec, "
    "d: dict<string*integer>, xs: list<integer>) -> (integer)\n"
)


def _gen_str(draw, depth):
    kind = draw(st.sampled_from(
        ["s", "rt", "lit", "concat", "to_str"] if depth > 0
        else ["s", "rt", "lit"]
    ))
    if kind == "s":
        return "s"
    if kind == "rt":
        return "r.t"
    if kind == "lit":
        return f'"w{draw(st.integers(0, 4))}"'
    if kind == "concat":
        return (
            f"concat({_gen_str(draw, depth - 1)}, "
            f"{_gen_str(draw, depth - 1)})"
        )
    return f"to_str({_gen_int(draw, [], depth - 1)})"


def _gen_int(draw, variables, depth):
    options = ["lit", "a", "b", "rn"]
    if variables:
        options.append("var")
    if depth > 0:
        options += ["arith", "div", "mod", "hash", "len", "fold", "to_int"]
    kind = draw(st.sampled_from(options))
    if kind == "lit":
        return str(draw(st.integers(0, 50)))
    if kind == "a":
        return "a"
    if kind == "b":
        return "b"
    if kind == "rn":
        return "r.n"
    if kind == "var":
        return draw(st.sampled_from(variables))
    if kind == "arith":
        op = draw(st.sampled_from(["+", "-", "*"]))
        return (
            f"({_gen_int(draw, variables, depth - 1)} {op} "
            f"{_gen_int(draw, variables, depth - 1)})"
        )
    if kind == "div":
        return (
            f"({_gen_int(draw, variables, depth - 1)} / "
            f"{draw(st.sampled_from(['2', '3', '7']))})"
        )
    if kind == "mod":
        return (
            f"({_gen_int(draw, variables, depth - 1)} mod "
            f"{draw(st.sampled_from(['2', '5', '11']))})"
        )
    if kind == "hash":
        return f"hash({_gen_str(draw, depth - 1)})"
    if kind == "len":
        return "len(s)"
    if kind == "to_int":
        return f"to_int(to_str({_gen_int(draw, variables, depth - 1)}))"
    # fold over the list parameter, optionally through map/filter
    seq = draw(st.sampled_from(["xs", "map(inc, xs)", "filter(pos, xs)"]))
    return f"fold(add2, {_gen_int(draw, variables, depth - 1)}, {seq})"


def _gen_bool(draw, variables, depth):
    options = ["cmp", "streq", "dictnone"]
    if depth > 0:
        options += ["and", "or", "not"]
    kind = draw(st.sampled_from(options))
    if kind == "cmp":
        op = draw(st.sampled_from(["<", ">", "<=", ">=", "=", "<>"]))
        return (
            f"({_gen_int(draw, variables, depth - 1)} {op} "
            f"{_gen_int(draw, variables, depth - 1)})"
        )
    if kind == "streq":
        op = draw(st.sampled_from(["=", "<>"]))
        return f"({_gen_str(draw, depth - 1)} {op} {_gen_str(draw, depth - 1)})"
    if kind == "dictnone":
        return f"(d[{_gen_str(draw, depth - 1)}] = None)"
    if kind in ("and", "or"):
        return (
            f"({_gen_bool(draw, variables, depth - 1)} {kind} "
            f"{_gen_bool(draw, variables, depth - 1)})"
        )
    return f"not {_gen_bool(draw, variables, depth - 1)}"


def _gen_stmts(draw, variables, counter, depth, indent):
    """Generate 1-3 statements; mutates ``variables`` with new lets."""
    pad = "    " * indent
    lines = []
    for _ in range(draw(st.integers(1, 3))):
        options = ["let", "dictset", "fieldset"]
        if variables:
            options.append("assign")
        if depth > 0:
            options.append("if")
        kind = draw(st.sampled_from(options))
        if kind == "let":
            # Occasionally reuse a live name inside branches to exercise
            # shadowing through the codegen scope chain.
            if variables and indent > 1 and draw(st.booleans()):
                name = draw(st.sampled_from(variables))
            else:
                name = f"x{next(counter)}"
            lines.append(
                f"{pad}let {name} = {_gen_int(draw, variables, depth)}"
            )
            if name not in variables:
                variables.append(name)
        elif kind == "assign":
            name = draw(st.sampled_from(variables))
            lines.append(
                f"{pad}{name} := {_gen_int(draw, variables, depth)}"
            )
        elif kind == "dictset":
            lines.append(
                f"{pad}d[{_gen_str(draw, depth)}] := "
                f"{_gen_int(draw, variables, depth)}"
            )
        elif kind == "fieldset":
            if draw(st.booleans()):
                lines.append(f"{pad}r.t := {_gen_str(draw, depth)}")
            else:
                lines.append(
                    f"{pad}r.n := {_gen_int(draw, variables, depth)}"
                )
        else:  # if
            lines.append(
                f"{pad}if {_gen_bool(draw, variables, depth - 1)}:"
            )
            lines.extend(
                _gen_stmts(
                    draw, list(variables), counter, depth - 1, indent + 1
                )
            )
            if draw(st.booleans()):
                lines.append(f"{pad}else:")
                lines.extend(
                    _gen_stmts(
                        draw, list(variables), counter, depth - 1, indent + 1
                    )
                )
    return lines


def _gen_source(draw):
    variables = []
    counter = itertools.count()
    body = _gen_stmts(draw, variables, counter, depth=2, indent=1)
    body.append(f"    {_gen_int(draw, variables, 2)}")
    return _PRELUDE + "\n".join(body) + "\n"


class TestFuzzedPrograms:
    @settings(max_examples=80, deadline=None)
    @given(
        st.data(),
        st.integers(-50, 50),
        st.integers(-50, 50),
        st.text(string.ascii_lowercase, max_size=6),
        st.integers(-20, 20),
        st.text(string.ascii_lowercase, max_size=4),
        st.dictionaries(
            st.text(string.ascii_lowercase, max_size=3),
            st.integers(0, 20),
            max_size=3,
        ),
        st.lists(st.integers(-9, 9), max_size=5),
    )
    def test_fuzzed_parity(self, data, a, b, s, rn, rt, d_items, xs):
        source = _gen_source(data.draw)
        program = compile_source(source)

        def call(tier):
            executor = program.executor(tier)
            record = Record("rec", {"n": rn, "t": rt})
            mapping = dict(d_items)
            executor.reset_ops()
            result, error = None, None
            try:
                result = executor.call_function(
                    "main", (a, b, s, record, mapping, list(xs))
                )
            except Exception as exc:  # both tiers must fail identically
                error = f"{type(exc).__name__}: {exc}"
            ops = executor.reset_ops()
            return (
                _snap(result),
                error,
                ops if error is None else None,
                _snap(record),
                _snap(mapping),
            )

        assert call("compiled") == call("interp"), source


# ---------------------------------------------------------------------------
# End-to-end: identical RunResults and scoreboards through FlickPlatform
# ---------------------------------------------------------------------------


def _scoped(fn):
    """Run ``fn`` with scoped task ids (same discipline as the scenario
    runner): results must not depend on how many tasks ran before."""
    resume_from = next(TaskBase._ids)
    TaskBase.reset_ids()
    try:
        return fn()
    finally:
        TaskBase.reset_ids(max(resume_from, next(TaskBase._ids)))


def _result_snap(result):
    return (
        result.system,
        result.x,
        result.throughput,
        result.latency_ms,
        result.extra,
        result.class_stats,
    )


class TestEndToEndParity:
    def test_http_lb_run_identical(self):
        from repro.bench.testbeds import run_http_experiment

        snaps = {}
        for tier in EXEC_TIERS:
            result = _scoped(
                lambda: run_http_experiment(
                    "flick-kernel",
                    16,
                    mode="lb",
                    cores=4,
                    requests_per_client=6,
                    slo_us=5000.0,
                    exec_tier=tier,
                )
            )
            snaps[tier] = _result_snap(result)
        assert snaps["compiled"] == snaps["interp"]

    def test_cache_router_run_identical(self):
        from repro.bench.testbeds import run_memcached_experiment

        snaps = {}
        for tier in EXEC_TIERS:
            result = _scoped(
                lambda: run_memcached_experiment(
                    "flick-kernel",
                    4,
                    concurrency=16,
                    requests_per_client=5,
                    cache_router=True,
                    key_space=32,
                    slo_us=5000.0,
                    exec_tier=tier,
                )
            )
            snaps[tier] = _result_snap(result)
        assert snaps["compiled"] == snaps["interp"]

    def test_hadoop_interpreted_foldt_run_identical(self):
        """End-to-end foldt through the merge tree (native combine off,
        so the tiers' foldt handlers actually execute)."""
        from repro.apps import hadoop_agg
        from repro.core.units import GBPS
        from repro.net.tcp import TcpNetwork
        from repro.runtime.costs import RuntimeConfig
        from repro.runtime.platform import FlickPlatform
        from repro.sim.engine import Engine
        from repro.workloads.hadoop_mappers import (
            Mapper,
            ReducerSink,
            generate_mapper_output,
            reference_wordcount,
        )

        def run(tier):
            engine = Engine()
            net = TcpNetwork(engine)
            mbox = net.add_host("mbox", 10 * GBPS, "core")
            reducer = net.add_host("reducer", 10 * GBPS, "core")
            n_mappers = 4
            mhosts = [
                net.add_host(f"m{i}", 1 * GBPS, "edge")
                for i in range(n_mappers)
            ]
            sink = ReducerSink(engine, net, reducer, 9000)
            platform = FlickPlatform(
                engine,
                net,
                mbox,
                RuntimeConfig(cores=4, exec_tier=tier),
                hadoop_agg.hadoop_codec_registry(),
            )
            platform.register_program(
                hadoop_agg.compile_hadoop(),
                "hadoop",
                9100,
                hadoop_agg.hadoop_bindings(
                    reducer, 9000, n_mappers, native=False
                ),
            )
            platform.start()
            outputs = [
                generate_mapper_output(i, 8 * 1024, 8, vocabulary=64)
                for i in range(n_mappers)
            ]
            mappers = [
                Mapper(engine, net, host, mbox, 9100, out)
                for host, out in zip(mhosts, outputs)
            ]
            for mapper in mappers:
                mapper.start()
            final_time = engine.run()
            return sink.pairs, sink.counts(), final_time, outputs

        pairs_i, counts_i, time_i, outputs = _scoped(lambda: run("interp"))
        pairs_c, counts_c, time_c, _ = _scoped(lambda: run("compiled"))
        assert pairs_c == pairs_i
        assert counts_c == counts_i == reference_wordcount(outputs)
        assert time_c == time_i
