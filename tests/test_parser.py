"""Parser unit tests over the paper's listings and the expression grammar."""

import pytest

from repro.core.errors import FlickSyntaxError
from repro.lang import ast
from repro.lang.parser import parse

MEMCACHED_SHORT = """
type cmd: record
    key : string

proc Memcached: (cmd/cmd client, [cmd/cmd] backends)
    | backends => client
    | client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
    let target = hash(req.key) mod len(backends)
    req => backends[target]
"""

MEMCACHED_FULL = """
type cmd: record
    opcode : integer {size=1}
    keylen : integer {signed=False, size=2}
    _ : string {size=3}
    key : string {size=keylen}

proc memcached:
    (cmd/cmd client, [cmd/cmd] backends)
    global cache := empty_dict
    backends => update_cache(cache) => client
    client => test_cache(client, backends, cache)

fun update_cache:
    (cache: ref dict<string*cmd>, resp: cmd)
    -> (cmd)
    if resp.opcode = 0x0c:
        cache[resp.key] := resp
    resp

fun test_cache:
    (-/cmd client, [-/cmd] backends, cache: ref dict<string*cmd>, req: cmd)
    -> ()
    if cache[req.key] = None or req.opcode <> 0x0c:
        let target = hash(req.key) mod len(backends)
        req => backends[target]
    else:
        cache[req.key] => client
"""

HADOOP = """
type kv: record
    key : string
    value : string

proc hadoop: ([kv/-] mappers, -/kv reducer)
    if all_ready(mappers):
        let result = foldt on mappers ordering elem e1, e2 by elem.key as e_key:
            let v = combine(e1.value, e2.value)
            kv(e_key, v)
        result => reducer

fun combine: (v1: string, v2: string) -> (string)
    v1
"""


class TestListings:
    def test_memcached_short_parses(self):
        prog = parse(MEMCACHED_SHORT)
        assert len(prog.types) == 1
        assert len(prog.procs) == 1
        assert len(prog.funs) == 1

    def test_memcached_full_parses(self):
        prog = parse(MEMCACHED_FULL)
        assert prog.proc_named("memcached")
        assert prog.fun_named("update_cache")
        assert prog.fun_named("test_cache")

    def test_hadoop_parses(self):
        prog = parse(HADOOP)
        proc = prog.proc_named("hadoop")
        assert isinstance(proc.body[0], ast.IfStmt)

    def test_anonymous_fields(self):
        prog = parse(MEMCACHED_FULL)
        fields = prog.type_named("cmd").fields
        assert fields[2].name is None
        assert fields[3].name == "key"

    def test_field_attrs_are_expressions(self):
        prog = parse(MEMCACHED_FULL)
        key_field = prog.type_named("cmd").fields[3]
        attrs = dict(key_field.attrs)
        assert isinstance(attrs["size"], ast.Var)
        assert attrs["size"].name == "keylen"


class TestProcesses:
    def test_channel_param_directions(self):
        prog = parse(MEMCACHED_SHORT)
        params = prog.proc_named("Memcached").params
        client = params[0].type
        assert isinstance(client, ast.ChannelType)
        assert not client.is_array
        backends = params[1].type
        assert backends.is_array

    def test_write_only_channel(self):
        prog = parse(HADOOP)
        reducer = prog.proc_named("hadoop").params[1].type
        assert reducer.read is None
        assert reducer.write == ast.NamedType("kv")

    def test_read_only_channel_array(self):
        prog = parse(HADOOP)
        mappers = prog.proc_named("hadoop").params[0].type
        assert mappers.read == ast.NamedType("kv")
        assert mappers.write is None

    def test_pipeline_stages(self):
        prog = parse(MEMCACHED_SHORT)
        body = prog.proc_named("Memcached").body
        forward = body[0]
        assert isinstance(forward, ast.PipelineStmt)
        assert forward.stages[0].expr == ast.Var(
            "backends", forward.stages[0].expr.location
        )
        routed = body[1]
        assert routed.stages[1].func == "target_backend"

    def test_global_declaration(self):
        prog = parse(MEMCACHED_FULL)
        body = prog.proc_named("memcached").body
        assert isinstance(body[0], ast.GlobalDecl)
        assert body[0].name == "cache"

    def test_foldt_structure(self):
        prog = parse(HADOOP)
        if_stmt = prog.proc_named("hadoop").body[0]
        let = if_stmt.then_body[0]
        assert isinstance(let.value, ast.FoldTExpr)
        assert let.value.elem_var == "elem"
        assert let.value.left_var == "e1"
        assert let.value.right_var == "e2"
        assert let.value.key_alias == "e_key"


class TestExpressions:
    def _expr(self, text):
        prog = parse(
            f"fun f: (x: integer) -> (integer)\n    {text}\n"
        )
        stmt = prog.fun_named("f").body[-1]
        return stmt.expr if isinstance(stmt, ast.ExprStmt) else stmt

    def test_precedence_mod_binds_tighter_than_comparison(self):
        e = self._expr("x mod 2 = 0")
        assert isinstance(e, ast.BinOp) and e.op == "="
        assert e.left.op == "mod"

    def test_precedence_mul_over_add(self):
        e = self._expr("1 + 2 * 3")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_parens_override(self):
        e = self._expr("(1 + 2) * 3")
        assert e.op == "*"

    def test_and_or_precedence(self):
        e = self._expr("True or False and True")
        assert e.op == "or"
        assert e.right.op == "and"

    def test_unary_not(self):
        e = self._expr("not True")
        assert isinstance(e, ast.UnaryOp) and e.op == "not"

    def test_unary_minus(self):
        e = self._expr("-x")
        assert isinstance(e, ast.UnaryOp) and e.op == "-"

    def test_field_and_index_chaining(self):
        e = self._expr("a.b[0].c")
        assert isinstance(e, ast.FieldAccess)
        assert e.field == "c"
        assert isinstance(e.obj, ast.Index)

    def test_double_equals_normalised(self):
        e = self._expr("x == 1")
        assert e.op == "="

    def test_call_with_args(self):
        e = self._expr("f2(x, 1)")
        assert isinstance(e, ast.Call)
        assert len(e.args) == 2

    def test_none_literal(self):
        e = self._expr("None")
        assert isinstance(e, ast.NoneLit)


class TestErrors:
    def test_missing_colon(self):
        with pytest.raises(FlickSyntaxError):
            parse("proc P (cmd/cmd c)\n    c => c\n")

    def test_stray_token_at_top_level(self):
        with pytest.raises(FlickSyntaxError):
            parse("42\n")

    def test_empty_record(self):
        with pytest.raises(FlickSyntaxError):
            parse("type t: record\nproc P: (t/t c)\n    c => c\n")

    def test_unclosed_paren(self):
        with pytest.raises(FlickSyntaxError):
            parse("fun f: (x: integer -> (integer)\n    x\n")

    def test_elif_supported(self):
        prog = parse(
            "fun f: (x: integer) -> (integer)\n"
            "    if x = 1:\n        1\n"
            "    elif x = 2:\n        2\n"
            "    else:\n        3\n"
        )
        top = prog.fun_named("f").body[0]
        assert isinstance(top.else_body[0], ast.IfStmt)
