"""Allocation-policy conformance harness.

Every registered core-allocation policy — present and future — is run
through a seeded elastic workload (a low-load trickle followed by an
overload burst, so both shrink and grow pressure exist) and checked
against the cross-cutting invariants of the allocator's
policy/mechanism contract, so a new allocator gets regression coverage
the moment it is registered:

* **bounds** — the active worker count never leaves ``[1, cores]``,
  whatever the policy's ``target_workers`` returns;
* **prefix discipline** — the active set is always the worker prefix
  ``[0..n)``: park highest-index first, unpark lowest-index first;
* **hysteresis** — applied changes are at least ``cooldown_us`` of
  virtual time apart (the mechanism-enforced cooldown);
* **log replay** — replaying ``parked``/``unparked`` from the alloc
  log, starting from the all-active initial set, reconstructs every
  intermediate active set and the scheduler's final one: the log is a
  complete, ordered record of what the mechanism did;
* **conservation under parking** — draining parked queues loses no
  work: every admitted task still completes exactly once;
* **determinism** — identical seeds produce identical schedules *and*
  identical alloc logs;
* **static byte-identity** — the default ``static`` allocator is
  indistinguishable from a scheduler built before elastic allocation
  existed (same schedule, no ticks, no log, the worker list object
  itself as the active set).
"""

import random

import pytest

from repro.core.errors import RuntimeFlickError
from repro.runtime.allocator import (
    AllocationPolicy,
    closest_allocator_name,
    make_allocator,
    registered_allocators,
    resolve_allocator,
)
from repro.runtime.costs import RuntimeConfig
from repro.runtime.scheduler import IDLE, Scheduler, TaskBase
from repro.sim.engine import Engine

SEEDS = (7, 23)
CORES = 4
#: Small windows so a ~4000 µs workload crosses many tick boundaries.
TICK_US = 100.0
COOLDOWN_US = 200.0

DYNAMIC_ALLOCATORS = tuple(
    name
    for name in registered_allocators()
    if not make_allocator(name).is_static
)


class ElasticTask(TaskBase):
    """Finite task with per-item cost (as in the policy harness)."""

    def __init__(self, name, n_items, item_cost_us, engine, slo_us=None):
        super().__init__(name)
        self._engine = engine
        self.total_items = n_items
        self.remaining = n_items
        self.item_cost_us = item_cost_us
        if slo_us is not None:
            self.slo_us = slo_us
        self.finished_at = None

    def has_work(self):
        return self.remaining > 0

    def step(self, budget_us):
        elapsed = 0.0
        while self.remaining > 0:
            self.remaining -= 1
            elapsed += self.item_cost_us
            self.items_processed += 1
            if budget_us == 0.0:
                break
            if budget_us is not None and elapsed >= budget_us:
                break
        emissions = []
        if self.remaining == 0 and self.finished_at is None:
            def mark():
                self.finished_at = self._engine.now

            emissions.append(mark)
        self.busy_us += elapsed
        return elapsed, emissions


def build_allocator(name):
    return make_allocator(name, tick_us=TICK_US, cooldown_us=COOLDOWN_US)


def run_elastic_workload(allocator, seed):
    """Trickle then burst: shrink pressure, then grow pressure.

    Phase 1 trickles tiny comfortably-within-SLO tasks (queues near
    empty, ample headroom — dynamic policies shrink); phase 2 dumps a
    burst of slow tasks with tight SLOs (deep backlog, latencies past
    the SLO — they grow back).  Returns ``(scheduler, tasks)`` at
    quiescence.
    """
    TaskBase.reset_ids()
    rng = random.Random(seed)
    engine = Engine()
    scheduler = Scheduler(engine, CORES, 50.0, allocator=allocator)
    tasks = []
    arrivals = []
    for index in range(8):
        tasks.append(
            ElasticTask(
                f"trickle{index}",
                rng.randint(1, 2),
                1.0,
                engine,
                slo_us=5_000.0,
            )
        )
        arrivals.append(index * 250.0)
    for index in range(16):
        tasks.append(
            ElasticTask(
                f"burst{index}",
                rng.randint(15, 25),
                4.0,
                engine,
                slo_us=50.0,
            )
        )
        arrivals.append(2_000.0 + rng.uniform(0.0, 50.0))
    order = sorted(range(len(tasks)), key=lambda i: arrivals[i])
    scheduler.start()

    def admit():
        now = 0.0
        for index in order:
            if arrivals[index] > now:
                yield engine.timeout(arrivals[index] - now)
                now = arrivals[index]
            scheduler.notify_runnable(tasks[index])

    engine.process(admit())
    engine.run()
    return scheduler, tasks


def snapshot(scheduler, tasks):
    """Everything a schedule + alloc trace determines."""
    return {
        "tasks": [
            (t.name, t.items_processed, t.busy_us, t.finished_at)
            for t in tasks
        ],
        "executed": scheduler.tasks_executed,
        "busy_us": scheduler.total_busy_us,
        "steals": scheduler.total_steals,
        "alloc_log": list(scheduler.alloc_log),
        "active": scheduler.active_worker_indices(),
        "slo_misses": scheduler.scoreboard.misses_by_class(),
    }


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", registered_allocators())
class TestAllocatorInvariants:
    def test_conservation_under_parking(self, name, seed):
        scheduler, tasks = run_elastic_workload(build_allocator(name), seed)
        for task in tasks:
            assert task.remaining == 0, f"{task.name} lost work"
            assert task.items_processed == task.total_items
            assert task.finished_at is not None, f"{task.name} never finished"
            assert task.sched_state == IDLE
        assert all(not w.queue for w in scheduler._workers)
        assert scheduler.scoreboard.total_completions == len(tasks)

    def test_active_count_bounds_and_prefix_discipline(self, name, seed):
        scheduler, _ = run_elastic_workload(build_allocator(name), seed)
        for record in scheduler.alloc_log:
            for active in (record.active_before, record.active_after):
                assert 1 <= len(active) <= scheduler.cores
                # Prefix discipline: the active set is always [0..n).
                assert active == tuple(range(len(active)))
            assert len(record.queue_depths) == scheduler.cores
        final = scheduler.active_worker_indices()
        assert 1 <= len(final) <= scheduler.cores
        assert final == tuple(range(len(final)))

    def test_cooldown_separates_applied_changes(self, name, seed):
        scheduler, _ = run_elastic_workload(build_allocator(name), seed)
        times = [record.at_us for record in scheduler.alloc_log]
        for earlier, later in zip(times, times[1:]):
            assert later - earlier >= COOLDOWN_US - 1e-9, (
                f"changes at {earlier} and {later} violate the "
                f"{COOLDOWN_US}us cooldown"
            )

    def test_log_replay_reconstructs_the_active_set(self, name, seed):
        scheduler, _ = run_elastic_workload(build_allocator(name), seed)
        active = set(range(scheduler.cores))
        for record in scheduler.alloc_log:
            assert tuple(sorted(active)) == record.active_before
            assert set(record.parked) <= active
            assert not set(record.unparked) & active
            # A change parks or unparks, never both.
            assert not (record.parked and record.unparked)
            active -= set(record.parked)
            active |= set(record.unparked)
            assert tuple(sorted(active)) == record.active_after
        assert tuple(sorted(active)) == scheduler.active_worker_indices()

    def test_identical_seeds_identical_schedules_and_logs(self, name, seed):
        first = snapshot(*run_elastic_workload(build_allocator(name), seed))
        second = snapshot(*run_elastic_workload(build_allocator(name), seed))
        assert first == second

    def test_reset_restores_a_reusable_allocator(self, name, seed):
        allocator = build_allocator(name)
        used = snapshot(*run_elastic_workload(allocator, seed))
        # Same instance again: adoption resets learned state.
        reused = snapshot(*run_elastic_workload(allocator, seed))
        assert used == reused


@pytest.mark.parametrize("name", DYNAMIC_ALLOCATORS)
def test_dynamic_allocators_adapt_to_the_elastic_workload(name):
    """Every non-static policy must actually move on a workload built
    to pressure both directions — an allocator that never changes
    anything is just `static` with extra bookkeeping."""
    scheduler, _ = run_elastic_workload(build_allocator(name), seed=7)
    assert scheduler.alloc_log, f"{name} never changed the allocation"
    sizes = {len(r.active_after) for r in scheduler.alloc_log}
    assert min(sizes) < CORES, f"{name} never shrank below {CORES} workers"


def test_static_is_byte_identical_to_a_pre_allocator_scheduler():
    """`static` must not merely behave the same — it must disable the
    tick machinery entirely and share the worker-list object, so
    identity-keyed policy caches (numa's socket groups) see the exact
    object a pre-allocator scheduler would."""
    default = snapshot(*run_elastic_workload("static", seed=7))
    explicit = snapshot(
        *run_elastic_workload(make_allocator("static"), seed=7)
    )
    assert default == explicit
    scheduler, _ = run_elastic_workload("static", seed=7)
    assert scheduler.alloc_log == []
    assert not scheduler._alloc_enabled
    assert scheduler._active is scheduler._workers
    assert scheduler.active_workers == CORES


class TestRegistry:
    def test_harness_covers_whole_registry(self):
        """The parametrization above is the conformance gate: it must
        track the registry, not a hand-maintained list."""
        names = registered_allocators()
        assert len(names) >= 3
        assert len(set(names)) == len(names)
        assert names[0] == "static"
        assert {"queue-depth", "slo-headroom"} <= set(names)
        assert DYNAMIC_ALLOCATORS  # the adaptivity gate is non-empty

    def test_unknown_name_gets_near_miss_suggestion(self):
        with pytest.raises(RuntimeFlickError) as excinfo:
            make_allocator("queue-deph")
        assert "unknown core allocator 'queue-deph'" in str(excinfo.value)
        assert "did you mean 'queue-depth'?" in str(excinfo.value)

    def test_closest_allocator_name(self):
        assert closest_allocator_name("statik") == "static"
        assert closest_allocator_name("zzzzz") is None

    def test_bad_parameters_are_flick_errors(self):
        with pytest.raises(RuntimeFlickError, match="bad parameters"):
            make_allocator("static", tick_hz=10)
        with pytest.raises(RuntimeFlickError, match="tick must be positive"):
            make_allocator("static", tick_us=0)
        with pytest.raises(RuntimeFlickError, match="cooldown"):
            make_allocator("static", cooldown_us=-1)
        with pytest.raises(RuntimeFlickError, match="low_per_worker"):
            make_allocator("queue-depth", low_per_worker=4, high_per_worker=4)
        with pytest.raises(RuntimeFlickError, match="shrink_at"):
            make_allocator("slo-headroom", grow_at=0.2, shrink_at=0.3)

    def test_resolve_accepts_instance_and_name(self):
        instance = make_allocator("queue-depth")
        assert resolve_allocator(instance) is instance
        assert resolve_allocator("slo-headroom").name == "slo-headroom"
        with pytest.raises(
            RuntimeFlickError, match="name or AllocationPolicy"
        ):
            resolve_allocator(42)

    def test_duplicate_and_abstract_registration_rejected(self):
        from repro.runtime.allocator import register_allocator

        with pytest.raises(RuntimeFlickError, match="registered twice"):
            @register_allocator
            class Clash(AllocationPolicy):  # pragma: no cover - rejected
                name = "static"

        with pytest.raises(RuntimeFlickError, match="needs a name"):
            @register_allocator
            class Nameless(AllocationPolicy):  # pragma: no cover - rejected
                pass

    def test_runtime_config_validates_the_allocator_field(self):
        assert RuntimeConfig().allocator == "static"
        assert RuntimeConfig(allocator="queue-depth").allocator
        assert isinstance(
            RuntimeConfig(allocator=make_allocator("static")).allocator,
            AllocationPolicy,
        )
        with pytest.raises(ValueError, match="unknown core allocator"):
            RuntimeConfig(allocator="qeue-depth")
