"""Lexer unit tests: tokens, indentation, literals, errors."""

import pytest

from repro.core.errors import FlickSyntaxError
from repro.lang.lexer import tokenize
from repro.lang.tokens import DEDENT, EOF, INDENT, INT, NAME, NEWLINE, STRING


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source, kind):
    return [t.value for t in tokenize(source) if t.kind == kind]


class TestBasicTokens:
    def test_names_and_keywords(self):
        toks = tokenize("proc foo bar type")
        assert [t.kind for t in toks[:-2]] == ["proc", NAME, NAME, "type"]

    def test_name_values(self):
        assert values("alpha beta_2 _private", NAME) == [
            "alpha",
            "beta_2",
            "_private",
        ]

    def test_decimal_int(self):
        assert values("42 0 1234", INT) == [42, 0, 1234]

    def test_hex_int(self):
        assert values("0x0c 0xFF 0x0", INT) == [12, 255, 0]

    def test_malformed_hex(self):
        with pytest.raises(FlickSyntaxError):
            tokenize("0x")

    def test_string_literal(self):
        assert values('"hello world"', STRING) == ["hello world"]

    def test_string_escapes(self):
        assert values(r'"a\nb\tc\\d"', STRING) == ["a\nb\tc\\d"]

    def test_single_quoted_string(self):
        assert values("'abc'", STRING) == ["abc"]

    def test_unterminated_string(self):
        with pytest.raises(FlickSyntaxError):
            tokenize('"unterminated')

    def test_unknown_escape(self):
        with pytest.raises(FlickSyntaxError):
            tokenize(r'"\q"')

    def test_unexpected_character(self):
        with pytest.raises(FlickSyntaxError):
            tokenize("a ; b")


class TestOperators:
    def test_arrow_operators(self):
        assert kinds("a => b")[:3] == [NAME, "=>", NAME]

    def test_assignment_vs_equality(self):
        assert kinds("a := b = c")[:5] == [NAME, ":=", NAME, "=", NAME]

    def test_comparison_operators(self):
        assert kinds("a <> b <= c >= d")[:7] == [
            NAME, "<>", NAME, "<=", NAME, ">=", NAME,
        ]

    def test_fun_result_arrow(self):
        assert kinds("-> (cmd)")[:4] == ["->", "(", NAME, ")"]

    def test_underscore_token(self):
        assert kinds("_ : string")[:3] == ["_", ":", NAME]

    def test_channel_direction_tokens(self):
        assert kinds("-/cmd")[:3] == ["-", "/", NAME]


class TestIndentation:
    def test_indent_dedent_pairing(self):
        ks = kinds("a:\n    b\nc\n")
        assert ks.count(INDENT) == 1
        assert ks.count(DEDENT) == 1
        assert ks.index(INDENT) < ks.index(DEDENT)

    def test_nested_blocks(self):
        src = "a:\n    b:\n        c\n    d\ne\n"
        ks = kinds(src)
        assert ks.count(INDENT) == 2
        assert ks.count(DEDENT) == 2

    def test_dedents_emitted_at_eof(self):
        ks = kinds("a:\n    b:\n        c")
        assert ks.count(DEDENT) == 2
        assert ks[-1] == EOF

    def test_blank_lines_ignored(self):
        assert kinds("a\n\n\nb\n") == kinds("a\nb\n")

    def test_comment_only_lines_ignored(self):
        assert kinds("a\n# comment\nb\n") == kinds("a\nb\n")

    def test_inconsistent_indentation_rejected(self):
        with pytest.raises(FlickSyntaxError):
            tokenize("a:\n        b\n    c\n")

    def test_implicit_line_joining_in_parens(self):
        src = "f(a,\n   b,\n   c)"
        ks = kinds(src)
        assert INDENT not in ks
        assert ks.count(NEWLINE) == 1  # only the final one

    def test_trailing_comment(self):
        assert values("x # trailing\n", NAME) == ["x"]


class TestLocations:
    def test_line_and_column_tracking(self):
        toks = tokenize("ab\n  cd")
        cd = [t for t in toks if t.value == "cd"][0]
        assert cd.location.line == 2
        assert cd.location.column == 3

    def test_filename_recorded(self):
        toks = tokenize("x", filename="prog.flick")
        assert toks[0].location.filename == "prog.flick"

    def test_error_carries_location(self):
        with pytest.raises(FlickSyntaxError) as err:
            tokenize("x\n  y\n ;")
        assert err.value.location is not None
        assert err.value.location.line == 3
