"""Service-class QoS subsystem: model, parsing, threading, outcomes.

Covers the `repro.runtime.qos` surface end to end:

* :class:`ServiceClass` / :class:`ServiceClassMap` validation, shorthand
  coercion and program-scoped lookup;
* fuzz/round-trip guarantees — random class maps survive
  ``RuntimeConfig`` normalisation unchanged, random well-formed
  ``--slo-class`` specs parse to what they say, and malformed specs
  (unknown endpoint, zero/negative SLO, duplicate class) raise the
  repo's clear-error style with near-miss suggestions;
* the task graph stamps each connection task with its endpoint's class
  (platform-wide ``slo_us`` as fallback) and the platform scoreboard
  accounts completions/misses per class;
* the ``deadline`` and ``priority`` policies consume classes (per-class
  EDF, weight-biased picking);
* the acceptance outcome: a two-class gold=1ms / bronze=50ms run under
  ``deadline`` shows strictly fewer gold SLO misses than a single-class
  platform at equal load.
"""

import random
from collections import deque

import pytest

from repro.bench.scheduling import run_scheduling_experiment
from repro.core.errors import ConfigError
from repro.runtime.costs import RuntimeConfig
from repro.runtime.graph import TaskGraph
from repro.runtime.policy import DeadlinePolicy, PriorityPolicy
from repro.runtime.qos import (
    ServiceClass,
    ServiceClassMap,
    closest_name,
    parse_slo_class,
    parse_slo_class_specs,
)
from repro.runtime.scheduler import Scheduler, TaskBase
from repro.sim.engine import Engine
from repro.sim.stats import SloScoreboard

GOLD = ServiceClass("gold", slo_us=1_000.0, weight=4.0)
BRONZE = ServiceClass("bronze", slo_us=50_000.0)


class _ItemTask(TaskBase):
    def __init__(self, name, n, cost_us):
        super().__init__(name)
        self.remaining = n
        self.cost_us = cost_us

    def has_work(self):
        return self.remaining > 0

    def step(self, budget_us):
        elapsed = 0.0
        while self.remaining > 0:
            self.remaining -= 1
            elapsed += self.cost_us
            self.items_processed += 1
            if budget_us == 0.0:
                break
            if budget_us is not None and elapsed >= budget_us:
                break
        self.busy_us += elapsed
        return elapsed, []


class TestServiceClassModel:
    def test_fields(self):
        assert GOLD.name == "gold"
        assert GOLD.slo_us == 1_000.0
        assert GOLD.weight == 4.0
        assert BRONZE.weight == 1.0  # default

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="", slo_us=100.0),
            dict(name="   ", slo_us=100.0),
            dict(name="x", slo_us=0.0),
            dict(name="x", slo_us=-5.0),
            dict(name="x", slo_us="fast"),
            dict(name="x", slo_us=100.0, weight=0.0),
            dict(name="x", slo_us=100.0, weight=-1.0),
        ],
    )
    def test_invalid_classes_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ServiceClass(**kwargs)


class TestServiceClassMap:
    def test_shorthand_coercion(self):
        class_map = ServiceClassMap(
            {
                "express": 1_000.0,  # bare number: SLO, class named after it
                "client": GOLD,  # ready instance
                "bulk": {"slo_us": 9_000.0, "weight": 2.0},  # dict form
            }
        )
        assert class_map.class_for("express") == ServiceClass(
            "express", 1_000.0
        )
        assert class_map.class_for("client") is GOLD
        assert class_map.class_for("bulk").weight == 2.0
        assert class_map.class_for("unknown") is None
        assert class_map.class_for(None) is None

    def test_program_scoped_lookup_wins(self):
        class_map = ServiceClassMap(
            {"Gold:client": GOLD, "client": BRONZE}
        )
        assert class_map.class_for("client", program="Gold") is GOLD
        assert class_map.class_for("client", program="Bronze") is BRONZE
        assert class_map.class_for("client") is BRONZE

    def test_scoped_shorthand_names_class_after_full_key(self):
        class_map = ServiceClassMap({"Gold:client": 750.0})
        assert (
            class_map.class_for("client", program="Gold").name
            == "Gold:client"
        )

    def test_scoped_shorthands_for_two_programs_do_not_collide(self):
        """The advertised use case: two programs sharing the endpoint
        name 'client' with bare-number shorthands must coexist."""
        class_map = ServiceClassMap(
            {"Gold:client": 1_000.0, "Bronze:client": 50_000.0}
        )
        assert class_map.class_for("client", program="Gold").slo_us == 1_000.0
        assert (
            class_map.class_for("client", program="Bronze").slo_us == 50_000.0
        )
        config = RuntimeConfig(
            service_classes={"Gold:client": 1_000.0, "Bronze:client": 50_000.0}
        )
        assert len(config.service_classes) == 2

    def test_duplicate_endpoint_rejected(self):
        class_map = ServiceClassMap({"client": GOLD})
        with pytest.raises(ConfigError, match="already has service class"):
            class_map.assign("client", BRONZE)

    def test_one_class_name_many_endpoints_is_fine(self):
        class_map = ServiceClassMap({"a": GOLD, "b": GOLD})
        assert class_map.class_for("a") is class_map.class_for("b")

    def test_conflicting_class_redefinition_rejected(self):
        with pytest.raises(ConfigError, match="defined twice"):
            ServiceClassMap(
                {
                    "a": ServiceClass("gold", 1_000.0),
                    "b": ServiceClass("gold", 2_000.0),
                }
            )

    @pytest.mark.parametrize(
        "bad", [{"": 100.0}, {"x": {"wat": 1}}, {"x": {"weight": 2.0}},
                {"x": "fast"}, {"x": True}]
    )
    def test_malformed_entries_rejected(self, bad):
        with pytest.raises(ConfigError):
            ServiceClassMap(bad)

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ConfigError):
            ServiceClassMap.from_spec(42)


class TestSloClassSpecParsing:
    def test_bare_spec(self):
        endpoint, cls = parse_slo_class("gold=1000")
        assert endpoint == "gold"
        assert cls == ServiceClass("gold", 1_000.0)

    def test_named_weighted_spec(self):
        endpoint, cls = parse_slo_class("client=gold:1000@4")
        assert endpoint == "client"
        assert cls == ServiceClass("gold", 1_000.0, weight=4.0)

    def test_specs_build_a_map(self):
        class_map = parse_slo_class_specs(
            ["light=gold:1000@4", "heavy=bronze:50000"],
            valid_endpoints=("light", "heavy"),
        )
        assert class_map.class_for("light").name == "gold"
        assert class_map.class_for("heavy").slo_us == 50_000.0

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ("gold", "expected endpoint="),
            ("=1000", "empty endpoint"),
            ("gold=fast", "is not a number"),
            ("gold=0", "must be a positive"),
            ("gold=-3", "must be a positive"),
            ("gold=1000@heavy", "is not a number"),
            ("gold=1000@0", "weight must be positive"),
            ("gold=1000@-2", "weight must be positive"),
        ],
    )
    def test_malformed_specs_have_clear_errors(self, spec, fragment):
        with pytest.raises(ConfigError, match="--slo-class") as excinfo:
            parse_slo_class(spec)
        assert fragment in str(excinfo.value)

    def test_unknown_endpoint_suggests_near_miss(self):
        with pytest.raises(ConfigError) as excinfo:
            parse_slo_class("ligth=1000", valid_endpoints=("light", "heavy"))
        message = str(excinfo.value)
        assert "unknown endpoint 'ligth'" in message
        assert "did you mean 'light'?" in message

    def test_unknown_endpoint_without_near_miss(self):
        with pytest.raises(ConfigError) as excinfo:
            parse_slo_class("zzz=1000", valid_endpoints=("light", "heavy"))
        assert "did you mean" not in str(excinfo.value)

    def test_duplicate_endpoint_spec_rejected(self):
        with pytest.raises(ConfigError, match="already has service class"):
            parse_slo_class_specs(["gold=1000", "gold=2000"])

    def test_duplicate_class_with_conflicting_slo_rejected(self):
        with pytest.raises(ConfigError, match="defined twice"):
            parse_slo_class_specs(["a=gold:1000", "b=gold:2000"])

    def test_closest_name_separator_slips(self):
        assert closest_name("hea_vy", ("light", "heavy")) == "heavy"
        assert closest_name("zzzzqq", ("light", "heavy")) is None


class TestConfigRoundTrip:
    def test_dict_shorthand_normalises(self):
        config = RuntimeConfig(service_classes={"client": 500.0})
        assert isinstance(config.service_classes, ServiceClassMap)
        assert config.service_classes.class_for("client").slo_us == 500.0

    def test_map_instance_passes_through(self):
        class_map = ServiceClassMap({"client": GOLD})
        config = RuntimeConfig(service_classes=class_map)
        assert config.service_classes is class_map

    def test_invalid_classes_surface_as_value_errors(self):
        with pytest.raises(ValueError, match="positive SLO"):
            RuntimeConfig(service_classes={"client": -1.0})
        with pytest.raises(ValueError):
            RuntimeConfig(service_classes=42)

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzzed_maps_survive_config_round_trips(self, seed):
        """Random well-formed class maps normalise through RuntimeConfig
        without loss: endpoints, SLOs and weights all survive, and a
        second round-trip is the identity."""
        rng = random.Random(seed)
        entries = {}
        for index in range(rng.randint(1, 6)):
            endpoint = f"ep{index}"
            if rng.random() < 0.3:
                endpoint = f"Prog{rng.randint(0, 2)}:{endpoint}"
            slo = rng.choice((10.0, 500.0, 1_000.0, 50_000.0)) * (
                1 + rng.random()
            )
            weight = rng.choice((1.0, 2.0, 4.0, 8.0))
            entries[endpoint] = ServiceClass(
                f"class{index}", slo_us=slo, weight=weight
            )
        original = ServiceClassMap(dict(entries))
        once = RuntimeConfig(service_classes=dict(entries)).service_classes
        assert once == original
        twice = RuntimeConfig(service_classes=once).service_classes
        assert twice is once
        for endpoint, cls in entries.items():
            assert once.class_for(endpoint) == cls

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzzed_specs_parse_to_what_they_say(self, seed):
        """Random well-formed --slo-class specs round-trip: the parsed
        map reports exactly the endpoint/name/SLO/weight spelled out."""
        rng = random.Random(100 + seed)
        specs = []
        expected = {}
        for index in range(rng.randint(1, 5)):
            endpoint = f"ep{index}"
            name = f"tier{index}" if rng.random() < 0.5 else endpoint
            slo = round(rng.uniform(1.0, 90_000.0), 3)
            weight = round(rng.uniform(0.25, 16.0), 3)
            spec = f"{endpoint}="
            if name != endpoint:
                spec += f"{name}:"
            spec += f"{slo}"
            if rng.random() < 0.5:
                spec += f"@{weight}"
            else:
                weight = 1.0
            specs.append(spec)
            expected[endpoint] = ServiceClass(name, slo, weight)
        class_map = parse_slo_class_specs(specs)
        for endpoint, cls in expected.items():
            assert class_map.class_for(endpoint) == cls


class TestGraphStamping:
    def _bare_graph(self, config, spec_name="Prog"):
        graph = object.__new__(TaskGraph)
        graph.config = config
        graph.tasks = []

        class _Spec:
            name = spec_name

        graph.spec = _Spec()
        return graph

    def test_classified_endpoint_overrides_platform_slo(self):
        config = RuntimeConfig(
            slo_us=9_000.0, service_classes={"client": GOLD}
        )
        graph = self._bare_graph(config)
        task = _ItemTask("t", 1, 1.0)
        graph._add_task(task, endpoint="client")
        assert task.service_class is GOLD
        assert task.slo_us == GOLD.slo_us

    def test_unclassified_endpoint_falls_back_to_platform_slo(self):
        config = RuntimeConfig(
            slo_us=9_000.0, service_classes={"client": GOLD}
        )
        graph = self._bare_graph(config)
        task = _ItemTask("t", 1, 1.0)
        graph._add_task(task, endpoint="backends")
        assert task.service_class is None
        assert task.slo_us == 9_000.0

    def test_program_scoped_entry_selects_by_spec_name(self):
        config = RuntimeConfig(
            service_classes={"Gold:client": GOLD, "client": BRONZE}
        )
        gold_task = _ItemTask("g", 1, 1.0)
        self._bare_graph(config, "Gold")._add_task(
            gold_task, endpoint="client"
        )
        bronze_task = _ItemTask("b", 1, 1.0)
        self._bare_graph(config, "Other")._add_task(
            bronze_task, endpoint="client"
        )
        assert gold_task.service_class is GOLD
        assert bronze_task.service_class is BRONZE

    def test_no_endpoint_no_class(self):
        config = RuntimeConfig(service_classes={"client": GOLD})
        graph = self._bare_graph(config)
        task = _ItemTask("t", 1, 1.0)
        graph._add_task(task)  # e.g. the compute task
        assert task.service_class is None
        assert not hasattr(task, "slo_us")


class TestScoreboard:
    def test_rejects_time_travel(self):
        scoreboard = SloScoreboard()
        with pytest.raises(ValueError):
            scoreboard.record(1, "t", "gold", 10.0, 5.0, 100.0)

    def test_counts_and_misses(self):
        scoreboard = SloScoreboard()
        scoreboard.record(1, "a", "gold", 0.0, 500.0, 1_000.0)  # met
        scoreboard.record(2, "b", "gold", 0.0, 1_500.0, 1_000.0)  # missed
        scoreboard.record(3, "c", "bronze", 0.0, 400.0, 50_000.0)
        scoreboard.record(4, "d", "default", 0.0, 9.0)  # no SLO, no miss
        assert scoreboard.total_completions == 4
        assert scoreboard.completions_by_class() == {
            "gold": 2, "bronze": 1, "default": 1
        }
        assert scoreboard.misses_by_class() == {
            "gold": 1, "bronze": 0, "default": 0
        }
        summary = scoreboard.summary()
        assert summary["gold"]["completions"] == 2
        assert summary["gold"]["misses"] == 1
        assert summary["gold"]["mean_ms"] == pytest.approx(1.0)

    def test_scheduler_accounts_classified_tasks(self):
        engine = Engine()
        scheduler = Scheduler(engine, 2, 50.0, "deadline")
        gold_task = _ItemTask("g", 4, 2.0)
        gold_task.service_class = GOLD
        gold_task.slo_us = GOLD.slo_us
        plain = _ItemTask("p", 4, 2.0)
        scheduler.start()
        scheduler.notify_runnable(gold_task)
        scheduler.notify_runnable(plain)
        engine.run()
        by_class = scheduler.scoreboard.completions_by_class()
        assert by_class == {"gold": 1, "default": 1}
        record = next(
            r for r in scheduler.scoreboard.records if r.task == "g"
        )
        assert record.slo_us == GOLD.slo_us
        assert record.admitted_us == 0.0
        assert not record.missed

    def test_readmission_opens_a_new_busy_period(self):
        engine = Engine()
        scheduler = Scheduler(engine, 1, 50.0, "cooperative")
        task = _ItemTask("t", 3, 2.0)
        scheduler.start()
        scheduler.notify_runnable(task)
        engine.run()
        task.remaining = 2  # new work arrives later
        scheduler.notify_runnable(task)
        engine.run()
        records = [r for r in scheduler.scoreboard.records if r.task == "t"]
        assert len(records) == 2
        assert records[1].admitted_us > records[0].admitted_us
        assert records[1].admitted_us >= records[0].completed_us


class TestPolicyConsumption:
    def test_deadline_and_priority_declare_class_support(self):
        assert DeadlinePolicy.supports_service_classes
        assert PriorityPolicy.supports_service_classes

    def test_deadline_uses_class_slo_as_fallback(self):
        policy = DeadlinePolicy(default_slo_us=99_999.0)
        task = _ItemTask("t", 1, 1.0)
        task.service_class = GOLD  # classified but never slo-stamped
        assert policy.deadline_of(task) == GOLD.slo_us

    def test_priority_prefers_heavier_class_at_equal_cost(self):
        policy = PriorityPolicy(smoothing=0.5)
        bronze_task = _ItemTask("b", 1, 1.0)
        bronze_task.service_class = BRONZE
        gold_task = _ItemTask("g", 1, 1.0)
        gold_task.service_class = GOLD
        for task in (bronze_task, gold_task):
            policy.on_task_done(task, None, 10.0)  # identical cost

        class _W:
            pass

        worker = _W()
        worker.queue = deque([bronze_task, gold_task])
        assert policy.next_local(worker) is gold_task
        assert list(worker.queue) == [bronze_task]

    def test_priority_weight_divides_observed_cost(self):
        """A gold task 3x as expensive as a bronze one still wins when
        its weight advantage (4x) outweighs the cost gap."""
        policy = PriorityPolicy(smoothing=0.5)
        bronze_task = _ItemTask("b", 1, 1.0)
        bronze_task.service_class = BRONZE
        gold_task = _ItemTask("g", 1, 1.0)
        gold_task.service_class = GOLD
        policy.on_task_done(bronze_task, None, 10.0)  # score 10/1
        policy.on_task_done(gold_task, None, 30.0)  # score 30/4 = 7.5

        class _W:
            pass

        worker = _W()
        worker.queue = deque([bronze_task, gold_task])
        assert policy.next_local(worker) is gold_task

    def test_unclassified_tasks_keep_the_pre_qos_order(self):
        policy = PriorityPolicy(smoothing=0.5)
        a, b = _ItemTask("a", 1, 1.0), _ItemTask("b", 1, 1.0)
        policy.on_task_done(a, None, 30.0)
        policy.on_task_done(b, None, 5.0)

        class _W:
            pass

        worker = _W()
        worker.queue = deque([a, b])
        assert policy.next_local(worker) is b


class TestPlatformEndToEnd:
    def _run_two_tier_platform(self):
        from repro import FlickPlatform, compile_source
        from repro.apps import http_lb
        from repro.core.units import GBPS
        from repro.net.tcp import TcpNetwork
        from repro.workloads.http_clients import HttpClientPopulation

        source = """
type http_req: record
    method : string
    path : string

type http_resp: record
    status : integer
    body : string

proc Gold: (http_req/http_resp client)
    client => respond() => client

proc Bronze: (http_req/http_resp client)
    client => respond() => client

fun respond: (req: http_req) -> (http_resp)
    http_resp(200, "ok")
"""
        engine = Engine()
        net = TcpNetwork(engine)
        mbox = net.add_host("mbox", 10 * GBPS, "core")
        gold_hosts = [net.add_host("gc", 1 * GBPS, "edge")]
        bronze_hosts = [net.add_host("bc", 1 * GBPS, "edge")]
        config = RuntimeConfig(
            cores=4,
            policy="deadline",
            service_classes={"Gold:client": GOLD, "Bronze:client": BRONZE},
        )
        platform = FlickPlatform(
            engine, net, mbox, config, http_lb.http_codec_registry()
        )
        program = compile_source(source)
        platform.register_program(program, "Gold", 8001)
        platform.register_program(program, "Bronze", 8002)
        platform.start()
        pops = []
        for hosts, port in ((gold_hosts, 8001), (bronze_hosts, 8002)):
            pop = HttpClientPopulation(
                engine, net, hosts, mbox, port, concurrency=4,
                persistent=True, requests_per_client=6, warmup_requests=0,
            )
            pop.start()
            pops.append(pop)
        engine.run()
        return platform, pops

    def test_two_programs_account_under_their_own_classes(self):
        platform, pops = self._run_two_tier_platform()
        assert all(pop.finished and pop.errors == 0 for pop in pops)
        by_class = platform.scoreboard.completions_by_class()
        assert by_class.get("gold", 0) > 0
        assert by_class.get("bronze", 0) > 0
        # Classified records carry their class SLO, and the connection
        # tasks really are the programs' endpoint tasks.
        for record in platform.scoreboard.records:
            if record.service_class == "gold":
                assert record.slo_us == GOLD.slo_us
            elif record.service_class == "bronze":
                assert record.slo_us == BRONZE.slo_us
        # The compute stage — the request processing itself — is
        # classified too, not just the socket tasks around it.
        compute_classes = {
            r.service_class
            for r in platform.scoreboard.records
            if r.task.endswith(":compute")
        }
        assert {"gold", "bronze"} <= compute_classes


class TestTwoClassOutcome:
    """The ISSUE's acceptance criterion, asserted in a test."""

    KWARGS = dict(n_tasks=40, items_per_task=40, cores=8)

    def test_gold_misses_strictly_fewer_than_single_class(self):
        """gold=1ms/bronze=50ms under 'deadline' beats a single-class
        platform at equal load: strictly fewer gold SLO misses, where
        gold is the light half of the workload in both runs."""
        single = run_scheduling_experiment(
            "deadline",
            service_classes={
                "light": ServiceClass("uniform", 1_000.0),
                "heavy": ServiceClass("uniform", 1_000.0),
            },
            **self.KWARGS,
        )
        tiered = run_scheduling_experiment(
            "deadline",
            service_classes={"light": GOLD, "heavy": BRONZE},
            **self.KWARGS,
        )
        # Gold population = the light tasks, in both runs.
        single_gold_misses = sum(
            1
            for r in single.scoreboard.records
            if r.task.startswith("light") and r.missed
        )
        gold_stats = tiered.class_stats["gold"]
        assert gold_stats["completions"] == self.KWARGS["n_tasks"] / 2
        assert gold_stats["misses"] < single_gold_misses
        # And the differentiation is real: bronze absorbed the slack.
        assert tiered.class_stats["bronze"]["misses"] == 0
        assert single_gold_misses > self.KWARGS["n_tasks"] / 4

    def test_two_class_run_is_deterministic(self):
        runs = [
            run_scheduling_experiment(
                "deadline",
                service_classes={"light": GOLD, "heavy": BRONZE},
                **self.KWARGS,
            )
            for _ in range(2)
        ]
        assert runs[0].as_dict() == runs[1].as_dict()
        assert runs[0].class_stats == runs[1].class_stats
