"""Baseline server models and workload generators."""

import pytest

from repro.baselines.apache import ApacheServer
from repro.baselines.base import CorePool
from repro.baselines.moxi import MoxiProxy
from repro.baselines.nginx import NginxServer
from repro.core.units import GBPS
from repro.net.tcp import TcpNetwork
from repro.runtime.graph import OutboundTarget
from repro.sim.engine import Engine
from repro.workloads.backends import BackendMemcachedServer, BackendWebServer
from repro.workloads.hadoop_mappers import generate_mapper_output, make_word
from repro.workloads.http_clients import HttpClientPopulation
from repro.workloads.memcached_clients import MemcachedClientPopulation


class TestCorePool:
    def test_serial_on_one_core(self):
        engine = Engine()
        pool = CorePool(engine, 1)
        done = []
        pool.submit(10, lambda: done.append(engine.now))
        pool.submit(10, lambda: done.append(engine.now))
        engine.run()
        assert done == [10, 20]

    def test_parallel_on_two_cores(self):
        engine = Engine()
        pool = CorePool(engine, 2)
        done = []
        pool.submit(10, lambda: done.append(engine.now))
        pool.submit(10, lambda: done.append(engine.now))
        engine.run()
        assert done == [10, 10]

    def test_busy_accounting(self):
        engine = Engine()
        pool = CorePool(engine, 4)
        for _ in range(8):
            pool.submit(5, lambda: None)
        engine.run()
        assert pool.busy_us == 40
        assert pool.jobs == 8


def _topology():
    engine = Engine()
    net = TcpNetwork(engine)
    mbox = net.add_host("mbox", 10 * GBPS, "core")
    clients = [net.add_host(f"c{i}", 1 * GBPS, "edge") for i in range(4)]
    backends = [net.add_host(f"b{i}", 1 * GBPS, "edge") for i in range(4)]
    return engine, net, mbox, clients, backends


class TestHttpBaselines:
    @pytest.mark.parametrize("server_cls", [ApacheServer, NginxServer])
    def test_static_mode_serves_requests(self, server_cls):
        engine, net, mbox, clients, _ = _topology()
        server = server_cls(engine, net, mbox, 80, cores=4)
        pop = HttpClientPopulation(
            engine, net, clients, mbox, 80, 8, True, 10, 1
        )
        pop.start()
        engine.run()
        assert pop.finished and pop.errors == 0
        assert server.requests_served == 8 * 10

    @pytest.mark.parametrize("server_cls", [ApacheServer, NginxServer])
    def test_lb_mode_forwards_to_backends(self, server_cls):
        engine, net, mbox, clients, backend_hosts = _topology()
        backends = [BackendWebServer(engine, net, b, 8080) for b in backend_hosts]
        targets = [OutboundTarget(b, 8080) for b in backend_hosts]
        server_cls(engine, net, mbox, 80, cores=4, backends=targets)
        pop = HttpClientPopulation(
            engine, net, clients, mbox, 80, 6, True, 8, 1
        )
        pop.start()
        engine.run()
        assert pop.finished and pop.errors == 0
        assert sum(b.requests_served for b in backends) == 6 * 8

    def test_nginx_faster_than_apache(self):
        def run(server_cls):
            engine, net, mbox, clients, _ = _topology()
            server_cls(engine, net, mbox, 80, cores=8)
            pop = HttpClientPopulation(
                engine, net, clients, mbox, 80, 40, True, 15, 2
            )
            pop.start()
            engine.run()
            return pop.kreqs_per_sec()

        assert run(NginxServer) > run(ApacheServer)

    def test_apache_degrades_with_concurrency(self):
        engine, net, mbox, clients, _ = _topology()
        server = ApacheServer(engine, net, mbox, 80, cores=4)
        server.active_connections = 1600
        high = server.request_overhead_us()
        server.active_connections = 100
        low = server.request_overhead_us()
        assert high > 10 * low


class TestMoxi:
    def test_routes_and_responds(self):
        engine, net, mbox, clients, backend_hosts = _topology()
        backends = [
            BackendMemcachedServer(engine, net, b, 11211)
            for b in backend_hosts
        ]
        targets = [OutboundTarget(b, 11211) for b in backend_hosts]
        MoxiProxy(engine, net, mbox, 11211, targets, cores=4)
        pop = MemcachedClientPopulation(
            engine, net, clients, mbox, 11211, 8, 10, 1, key_space=32
        )
        pop.start()
        engine.run()
        assert pop.finished and pop.errors == 0
        assert sum(b.requests_served for b in backends) == 8 * 10

    def test_contention_grows_past_four_cores(self):
        engine, net, mbox, _, backend_hosts = _topology()
        targets = [OutboundTarget(b, 11211) for b in backend_hosts]
        BackendMemcachedServer(engine, net, backend_hosts[0], 11211)
        four = MoxiProxy(engine, net, mbox, 11211, targets, cores=4)
        sixteen = MoxiProxy(engine, net, mbox, 11212, targets, cores=16)
        assert sixteen.request_cost_us() > four.request_cost_us()


class TestWorkloadGenerators:
    def test_make_word_length_and_determinism(self):
        for n in (8, 12, 16):
            word = make_word(7, n)
            assert len(word) == n
            assert word == make_word(7, n)

    def test_mapper_output_sorted_unique(self):
        pairs = generate_mapper_output(0, 8_000, 8, vocabulary=64)
        keys = [k for k, _ in pairs]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))

    def test_mapper_output_word_length(self):
        pairs = generate_mapper_output(1, 4_000, 12, vocabulary=32)
        assert all(len(k) == 12 for k, _ in pairs)

    def test_mapper_outputs_differ_by_index(self):
        a = generate_mapper_output(0, 4_000, 8, vocabulary=64)
        b = generate_mapper_output(1, 4_000, 8, vocabulary=64)
        assert a != b

    def test_backend_web_server_closes_non_keepalive(self):
        engine, net, mbox, clients, backend_hosts = _topology()
        server = BackendWebServer(engine, net, backend_hosts[0], 8080)
        from repro.grammar.protocols import http

        closed = []

        def go(sock):
            sock.on_receive(lambda d: None)
            sock.on_close(lambda: closed.append(True))
            sock.send(http.make_request("GET", "/", keep_alive=False).raw)

        net.connect(clients[0], backend_hosts[0], 8080, go)
        engine.run()
        assert closed == [True]
        assert server.requests_served == 1

    def test_memcached_backend_set_then_get(self):
        engine, net, mbox, clients, backend_hosts = _topology()
        _server = BackendMemcachedServer(engine, net, backend_hosts[0], 11211)
        from repro.grammar.protocols import memcached as mc

        got = []

        def go(sock):
            parser = mc.full_codec().parser()

            def on_data(d):
                parser.feed(d)
                for rec in parser.messages():
                    got.append(rec)

            sock.on_receive(on_data)
            sock.send(mc.encode(mc.make_request(mc.OP_SET, "k", b"stored")))
            sock.send(mc.encode(mc.make_request(mc.OP_GETK, "k")))

        net.connect(clients[0], backend_hosts[0], 11211, go)
        engine.run()
        assert len(got) == 2
        assert got[1].value == b"stored"
