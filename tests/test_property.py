"""Property-based tests (hypothesis) on the core invariants of DESIGN.md §6."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ids import stable_hash
from repro.grammar.engine import make_codec
from repro.grammar.model import DataField, FieldRef, IntField, Unit
from repro.grammar.protocols import hadoop, http
from repro.grammar.protocols import memcached as mc
from repro.lang.values import Record

keys = st.text(string.ascii_lowercase, min_size=1, max_size=32)
values = st.binary(min_size=0, max_size=200)


class TestStableHash:
    @given(st.text())
    def test_deterministic(self, s):
        assert stable_hash(s) == stable_hash(s)

    @given(st.text(), st.text())
    def test_mostly_injective(self, a, b):
        if a != b:
            # 64-bit FNV collisions are possible but must not happen for
            # hypothesis-sized inputs in practice.
            assert stable_hash(a) != stable_hash(b) or len(a) > 32

    @given(st.integers(min_value=-(2 ** 62), max_value=2 ** 62))
    def test_ints_supported(self, n):
        assert 0 <= stable_hash(n) < 2 ** 64

    @given(st.tuples(st.text(max_size=8), st.integers(0, 1000)))
    def test_tuples_supported(self, t):
        assert stable_hash(t) == stable_hash(t)


class TestMemcachedRoundTrip:
    @given(
        st.sampled_from([mc.OP_GET, mc.OP_GETK, mc.OP_SET]),
        keys,
        values,
        st.integers(0, 2 ** 32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_request_round_trip(self, opcode, key, value, opaque):
        record = mc.make_request(opcode, key, value=value, opaque=opaque)
        raw = mc.encode(record)
        back = mc.full_codec().parse_all(raw)[0]
        assert back.key == key
        assert back.value == (value if opcode == mc.OP_SET else value)
        assert back.opaque == opaque
        # Re-serialising the parsed record reproduces the wire bytes.
        again, _ = mc.full_codec().serialize(back)
        assert again == raw

    @given(keys, values, st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_chunking_invariance(self, key, value, chunk):
        """Feeding a stream in arbitrary chunk sizes yields the same
        messages."""
        raw = mc.encode(mc.make_response(mc.OP_GETK, key, value)) * 3
        parser = mc.full_codec().parser()
        whole = mc.full_codec().parser()
        whole.feed(raw)
        expected = list(whole.messages())
        for start in range(0, len(raw), chunk):
            parser.feed(raw[start : start + chunk])
        got = list(parser.messages())
        assert [m.key for m in got] == [m.key for m in expected]
        assert [m.value for m in got] == [m.value for m in expected]

    @given(keys, values)
    @settings(max_examples=40, deadline=None)
    def test_specialised_forwarding_is_lossless(self, key, value):
        spec = mc.specialized_codec(frozenset({"opcode", "key"}))
        raw = mc.encode(mc.make_response(mc.OP_GETK, key, value))
        parsed = spec.parse_all(raw)[0]
        out, _ = spec.serialize(parsed)
        assert out == raw


class TestHadoopRoundTrip:
    @given(st.lists(st.tuples(keys, st.text(string.digits, min_size=1, max_size=6)), max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_pairs_round_trip(self, pairs):
        assert hadoop.decode_pairs(hadoop.encode_pairs(pairs)) == pairs


class TestHttpRoundTrip:
    paths = st.text(string.ascii_letters + string.digits + "/._-", min_size=1, max_size=40)

    @given(paths, st.binary(max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_request_round_trip(self, path, body):
        record = http.make_request("GET", "/" + path, body=body)
        parser = http.HttpRequestParser()
        parser.feed(record.raw)
        back = parser.poll()
        assert back.path == "/" + path
        assert back.body == body

    @given(st.integers(100, 599), st.binary(max_size=300), st.integers(1, 17))
    @settings(max_examples=40, deadline=None)
    def test_response_chunked_feed(self, status, body, chunk):
        raw = http.make_response(status, "R", body=body).raw
        parser = http.HttpResponseParser()
        for start in range(0, len(raw), chunk):
            parser.feed(raw[start : start + chunk])
        back = parser.poll()
        assert back.status == status
        assert back.body == body


class TestGenericUnitRoundTrip:
    """Round-trip over a randomly parameterised generic unit."""

    @given(
        st.integers(0, 255),
        st.binary(max_size=64),
        st.binary(max_size=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_two_payload_unit(self, tag, first, second):
        unit = Unit(
            "g",
            (
                IntField("tag", 1),
                IntField("alen", 2),
                IntField("blen", 2),
                DataField("a", FieldRef("alen")),
                DataField("b", FieldRef("blen")),
            ),
        )
        codec = make_codec(unit)
        rec = Record(
            "g", {"tag": tag, "alen": 0, "blen": 0, "a": first, "b": second}
        )
        data, _ = codec.serialize(rec)
        back = codec.parse_all(data)[0]
        assert back.tag == tag and back.a == first and back.b == second


class TestFoldTEquivalence:
    """The compiled merge tree must match the sequential reference
    semantics of foldt for any set of sorted unique-key streams."""

    streams = st.lists(
        st.lists(
            st.tuples(keys, st.integers(1, 99)), max_size=12, unique_by=lambda t: t[0]
        ),
        min_size=1,
        max_size=5,
    )

    @given(streams)
    @settings(max_examples=40, deadline=None)
    def test_tree_matches_reference(self, raw_streams):
        from repro.apps.hadoop_agg import compile_hadoop
        from repro.lang.values import Record as R

        program = compile_hadoop()
        plan = program.proc("hadoop").foldt
        interp = program.interpreter
        streams = [
            sorted(
                (R("kv", {"key": k, "value": str(v)}) for k, v in s),
                key=lambda r: r.key,
            )
            for s in raw_streams
        ]
        reference = interp.merge_sorted_streams(plan.expr, streams)
        # Expected totals per key
        totals = {}
        for s in raw_streams:
            for k, v in s:
                totals[k] = totals.get(k, 0) + v
        assert {r.key: int(r.value) for r in reference} == totals
        assert [r.key for r in reference] == sorted(totals)


class TestLexerTotality:
    @given(st.text(string.printable, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_lexer_never_crashes_unexpectedly(self, text):
        """The lexer either tokenises or raises FlickSyntaxError — never
        anything else."""
        from repro.core.errors import FlickSyntaxError
        from repro.lang.lexer import tokenize

        try:
            tokenize(text)
        except FlickSyntaxError:
            pass
