"""Docs tests: generated registry inventory + intra-repo link integrity.

``docs/registries.md`` is generated from the live registries
(:mod:`repro.bench.registry_docs`); committing a stale copy would be
documentation drift of exactly the kind generated docs exist to
prevent, so the diff is a test.  The link checker keeps every relative
link in ``README.md`` and ``docs/*.md`` pointing at a real file — the
cheapest possible defence against renamed files orphaning the docs.
"""

import re
from pathlib import Path

import pytest

from repro.bench.registry_docs import (
    REGISTRIES,
    default_output_path,
    render_markdown,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` — target captured up to the closing paren.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _doc_files():
    return [REPO_ROOT / "README.md", *sorted(
        (REPO_ROOT / "docs").glob("*.md")
    )]


class TestGeneratedRegistryDoc:
    def test_committed_doc_matches_live_registries(self):
        committed = default_output_path().read_text(encoding="utf-8")
        assert committed == render_markdown() + "\n", (
            "docs/registries.md is stale; regenerate with "
            "'PYTHONPATH=src python -m repro.bench.registry_docs'"
        )

    def test_all_six_registries_are_documented(self):
        assert len(REGISTRIES) == 6
        text = render_markdown()
        for spec in REGISTRIES:
            assert f"`{spec.module}`" in text

    def test_every_registered_name_appears(self):
        text = render_markdown()
        for spec in REGISTRIES:
            module = __import__(spec.module, fromlist=["_REGISTRY"])
            for name in module._REGISTRY:
                assert f"| `{name}` |" in text, (
                    f"{spec.module} registers {name!r} but the generated "
                    "doc does not list it"
                )


class TestIntraRepoLinks:
    @pytest.mark.parametrize(
        "doc", _doc_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
    )
    def test_relative_links_resolve(self, doc):
        text = doc.read_text(encoding="utf-8")
        broken = []
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, (
            f"{doc.relative_to(REPO_ROOT)} has broken relative links: "
            f"{broken}"
        )

    def test_readme_links_to_the_docs(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for name in ("architecture.md", "scenarios.md", "registries.md"):
            assert f"docs/{name}" in readme
