"""Shared test fixtures."""

import pytest

from repro.runtime.scheduler import TaskBase


@pytest.fixture(autouse=True)
def _fresh_task_ids():
    """Restart task-id allocation per test.

    Hash placement derives from task ids, so without this a test's
    placement would depend on how many tasks earlier tests created.
    """
    TaskBase.reset_ids()
    yield
