"""Arrival-process registry + open-loop client population tests."""

import itertools
import random

import pytest

from repro.apps import http_lb
from repro.bench.testbeds import _build_topology
from repro.core.errors import ConfigError
from repro.runtime.costs import RuntimeConfig
from repro.runtime.platform import FlickPlatform
from repro.sim.stats import IntervalSeries, LatencySeries
from repro.workloads.arrivals import (
    HttpRequestCodec,
    OpenLoopClients,
    closest_arrival_name,
    make_arrival,
    registered_arrivals,
    resolve_arrival,
)


def take(process, n, seed=7):
    return list(itertools.islice(process.gaps(random.Random(seed)), n))


class TestRegistry:
    def test_builtin_processes_registered(self):
        assert set(registered_arrivals()) >= {
            "poisson", "bursty", "ramp", "replay",
        }

    def test_unknown_name_gets_near_miss_suggestion(self):
        with pytest.raises(ConfigError) as excinfo:
            make_arrival("poison", rate_rps=1000)
        assert "unknown arrival process 'poison'" in str(excinfo.value)
        assert "did you mean 'poisson'?" in str(excinfo.value)

    def test_closest_arrival_name(self):
        assert closest_arrival_name("burstey") == "bursty"
        assert closest_arrival_name("zzzzz") is None

    def test_bad_parameters_are_config_errors(self):
        with pytest.raises(ConfigError, match="bad parameters"):
            make_arrival("poisson", rate_hz=1000)
        with pytest.raises(ConfigError, match="must be positive"):
            make_arrival("poisson", rate_rps=-1)

    def test_resolve_accepts_instance_and_name(self):
        instance = make_arrival("poisson", rate_rps=10.0)
        assert resolve_arrival(instance) is instance
        assert resolve_arrival("ramp").name == "ramp"
        with pytest.raises(ConfigError, match="name or ArrivalProcess"):
            resolve_arrival(42)


class TestProcesses:
    def test_poisson_mean_gap_matches_rate(self):
        gaps = take(make_arrival("poisson", rate_rps=10_000.0), 4000)
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(100.0, rel=0.1)  # 1e6/10k µs

    def test_same_seed_reproduces_the_gap_sequence(self):
        for name in ("poisson", "bursty"):
            process = make_arrival(name)
            assert take(process, 50, seed=3) == take(process, 50, seed=3)
            assert take(process, 50, seed=3) != take(process, 50, seed=4)

    def test_bursty_realised_rate_is_below_burst_rate(self):
        process = make_arrival(
            "bursty", burst_rate_rps=10_000.0,
            mean_on_us=5_000.0, mean_off_us=5_000.0,
        )
        gaps = take(process, 4000)
        mean = sum(gaps) / len(gaps)
        # 50% duty: the long-run mean gap is ~2x the in-burst gap.
        assert mean == pytest.approx(200.0, rel=0.25)
        assert min(gaps) < 200.0 < max(gaps)

    def test_ramp_gaps_shrink_then_hold_at_end_rate(self):
        process = make_arrival(
            "ramp", start_rps=1_000.0, end_rps=10_000.0,
            duration_us=50_000.0,
        )
        gaps = take(process, 400)
        assert gaps[0] == pytest.approx(1000.0)  # 1e6/start
        assert all(b <= a for a, b in zip(gaps, gaps[1:]))
        assert gaps[-1] == pytest.approx(100.0)  # held at 1e6/end

    def test_replay_reproduces_the_trace(self):
        process = make_arrival("replay", timestamps_us=[5, 5, 30, 100])
        assert take(process, 10) == [5.0, 0.0, 25.0, 70.0]

    def test_replay_rejects_bad_traces(self):
        with pytest.raises(ConfigError, match="non-empty"):
            make_arrival("replay", timestamps_us=[])
        with pytest.raises(ConfigError, match="backwards"):
            make_arrival("replay", timestamps_us=[10, 5])
        with pytest.raises(ConfigError, match="before time zero"):
            make_arrival("replay", timestamps_us=[-1, 5])


class TestStatsHelpers:
    def test_interval_series_records_gaps_between_observations(self):
        series = IntervalSeries()
        for t in (10.0, 15.0, 35.0):
            series.observe(t)
        assert series.count == 2
        assert series.mean_us() == pytest.approx(12.5)

    def test_count_over(self):
        series = LatencySeries()
        for v in (1.0, 5.0, 10.0, 20.0):
            series.record(v)
        assert series.count_over(None) == 0
        assert series.count_over(5.0) == 2
        assert series.count_over(0.5) == 4

    def test_percentile_summary_ms_keys(self):
        series = LatencySeries()
        series.record(1000.0)
        summary = series.percentile_summary_ms()
        assert set(summary) == {"mean", "p50", "p99", "max"}
        assert summary["max"] == pytest.approx(1.0)


def _static_web_testbed(cores=4):
    engine, tcpnet, mbox, clients, _ = _build_topology()
    platform = FlickPlatform(
        engine, tcpnet, mbox, RuntimeConfig(cores=cores),
        http_lb.http_codec_registry(),
    )
    platform.register_program(http_lb.compile_static_web(), "StaticWeb", 80)
    platform.start()
    return engine, tcpnet, mbox, clients, platform


class TestOpenLoopClients:
    def test_admission_runs_on_the_arrival_clock(self):
        engine, tcpnet, mbox, clients, _ = _static_web_testbed()
        population = OpenLoopClients(
            engine, tcpnet, clients, mbox, 80,
            codec=HttpRequestCodec(),
            arrival=make_arrival("poisson", rate_rps=20_000.0),
            n_requests=300, connections=16, slo_us=5_000.0,
        )
        population.start()
        engine.run()
        assert population.finished
        assert population.offered == 300
        assert population.completed == 300
        assert population.errors == 0
        # every admission tick after the first lands in the gap series
        assert population.inter_arrivals.count == 299
        assert population.latency.count == 300

    def test_replay_trace_shorter_than_n_requests_finishes(self):
        engine, tcpnet, mbox, clients, _ = _static_web_testbed()
        population = OpenLoopClients(
            engine, tcpnet, clients, mbox, 80,
            codec=HttpRequestCodec(),
            arrival=make_arrival(
                "replay", timestamps_us=[0.0, 100.0, 5_000.0]
            ),
            n_requests=50, connections=4,
        )
        population.start()
        engine.run()
        assert population.finished
        assert population.offered == 3

    def test_same_seed_reproduces_the_run(self):
        def run(seed):
            engine, tcpnet, mbox, clients, _ = _static_web_testbed()
            population = OpenLoopClients(
                engine, tcpnet, clients, mbox, 80,
                codec=HttpRequestCodec(),
                arrival=make_arrival("poisson", rate_rps=50_000.0),
                n_requests=200, connections=8, seed=seed,
            )
            population.start()
            engine.run()
            return (
                population.latency.mean_us(),
                population.kreqs_per_sec(),
                population.inter_arrivals.mean_us(),
            )

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_rejects_degenerate_parameters(self):
        engine, tcpnet, mbox, clients, _ = _static_web_testbed()
        with pytest.raises(ValueError, match="n_requests"):
            OpenLoopClients(
                engine, tcpnet, clients, mbox, 80,
                codec=HttpRequestCodec(), arrival=make_arrival("poisson"),
                n_requests=0,
            )
        with pytest.raises(ValueError, match="connections"):
            OpenLoopClients(
                engine, tcpnet, clients, mbox, 80,
                codec=HttpRequestCodec(), arrival=make_arrival("poisson"),
                n_requests=10, connections=0,
            )
