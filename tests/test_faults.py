"""Fault-injection tests: registry, determinism, conservation, the storm.

The plane's load-bearing promises, each pinned here:

* registry hygiene (sorted names, near-miss suggestions, bad-parameter
  errors) matching the other five registries;
* byte-determinism — the same seed produces an identical result with a
  fault installed, and the parallel scenario runner stays
  byte-identical to serial under faults;
* conservation at both accounting doors for every registered injector:
  ``admitted + shed == offered`` and
  ``completed + failed + retried == admitted`` once the run drains;
* the acceptance pair — the identical retry storm collapses under
  ``cooperative`` + ``admit-all`` and stays inside its SLO under
  ``deadline`` + ``shed-bronze``.
"""

import dataclasses

import pytest

from repro.bench.scenarios import (
    _BY_NAME,
    _validate_scenario,
    run_scenario,
    run_scenario_matrix,
)
from repro.bench.testbeds import run_http_experiment
from repro.core.errors import ConfigError
from repro.net.faults import (
    FaultPolicy,
    closest_fault_name,
    make_fault,
    registered_faults,
    resolve_fault,
    unknown_fault_message,
)
from repro.runtime.scheduler import TaskBase
from repro.workloads.arrivals import make_arrival

BUILTINS = ("conn-churn", "flapping-backend", "retry-storm", "slow-backend")


class TestRegistry:
    def test_builtin_faults_registered(self):
        names = registered_faults()
        assert names == tuple(sorted(names))
        assert set(BUILTINS) <= set(names)
        assert len(set(names)) == len(names)

    def test_unknown_name_gets_near_miss_suggestion(self):
        with pytest.raises(ConfigError) as excinfo:
            make_fault("retry-strom")
        assert "unknown fault policy 'retry-strom'" in str(excinfo.value)
        assert "did you mean 'retry-storm'?" in str(excinfo.value)
        assert closest_fault_name("retry-strom") == "retry-storm"
        assert "retry-storm" in unknown_fault_message("retry-strom")

    def test_bad_parameters_name_the_fault(self):
        with pytest.raises(ConfigError) as excinfo:
            make_fault("retry-storm", nonsense=1)
        assert "bad parameters for fault policy 'retry-storm'" in str(
            excinfo.value
        )

    def test_resolve_accepts_instance_and_name(self):
        fault = make_fault("conn-churn", lifetime_requests=4)
        assert resolve_fault(fault) is fault
        assert resolve_fault("conn-churn").name == "conn-churn"
        with pytest.raises(ConfigError):
            resolve_fault(42)

    @pytest.mark.parametrize("name", BUILTINS)
    def test_describe_and_params_are_json_plain(self, name):
        fault = make_fault(name)
        assert isinstance(fault.describe(), str) and name in fault.describe()
        for value in fault.params().values():
            assert isinstance(value, (int, float, str, bool, type(None)))


def _fault_run(name, **kwargs):
    """A small open-loop LB run with ``name`` installed, id-scoped so
    repeat calls inside one test are comparable."""
    TaskBase.reset_ids()
    params = {"retry-storm": {"retry_after_us": 2_000.0, "max_retries": 3}}
    return run_http_experiment(
        "flick-kernel",
        16,
        mode="lb",
        cores=4,
        arrival=make_arrival("poisson", rate_rps=40_000.0),
        total_requests=512,
        slo_us=2_000.0,
        faults=make_fault(name, **params.get(name, {})),
        **kwargs,
    )


class TestConservation:
    @pytest.mark.parametrize("name", registered_faults())
    def test_both_doors_balance_for_every_registered_fault(self, name):
        extra = _fault_run(name).extra
        assert extra["admitted"] + extra["shed"] == extra["offered"]
        assert (
            extra["completed"] + extra["failed"] + extra["retried"]
            == extra["admitted"]
        )

    @pytest.mark.parametrize("name", registered_faults())
    def test_fault_counters_land_in_extra(self, name):
        extra = _fault_run(name).extra
        fault_keys = [k for k in extra if k.startswith("fault_")]
        assert fault_keys, f"{name} reported no fault_* counters"


class TestDeterminism:
    @pytest.mark.parametrize("name", registered_faults())
    def test_same_seed_same_result(self, name):
        first = dataclasses.asdict(_fault_run(name))
        second = dataclasses.asdict(_fault_run(name))
        assert first == second

    def test_jobs_parallelism_is_byte_identical_under_faults(self):
        selected = (
            _BY_NAME["http-retry-storm-shed"],
            _BY_NAME["memcached-conn-churn"],
        )
        serial = run_scenario_matrix(selected, quick=True, jobs=1)
        parallel = run_scenario_matrix(selected, quick=True, jobs=2)
        assert serial == parallel


class TestScenarioValidation:
    def test_fault_params_without_faults_rejected(self):
        scenario = _BY_NAME["http-open-poisson"]._replace(
            fault_params=(("max_retries", 3),)
        )
        with pytest.raises(ConfigError, match="fault_params without faults"):
            _validate_scenario(scenario)

    def test_fault_on_closed_loop_rejected(self):
        scenario = _BY_NAME["http-overload-closed"]._replace(
            faults="retry-storm"
        )
        with pytest.raises(ConfigError, match="open-loop"):
            _validate_scenario(scenario)

    def test_backend_fault_on_backendless_mode_rejected(self):
        scenario = _BY_NAME["http-web-ramp"]._replace(
            faults="flapping-backend"
        )
        with pytest.raises(ConfigError, match="mode='web' has none"):
            _validate_scenario(scenario)

    def test_fault_on_sharded_scenario_rejected(self):
        scenario = _BY_NAME["http-fleet-scale-2"]._replace(
            faults="retry-storm"
        )
        with pytest.raises(ConfigError, match="single-platform"):
            _validate_scenario(scenario)

    def test_unknown_fault_gets_near_miss(self):
        scenario = _BY_NAME["http-open-poisson"]._replace(
            faults="slow-backen"
        )
        with pytest.raises(ConfigError, match="did you mean 'slow-backend'"):
            _validate_scenario(scenario)

    def test_every_pinned_fault_scenario_validates(self):
        for name, scenario in _BY_NAME.items():
            if scenario.faults is not None:
                _validate_scenario(scenario)


class TestRetryStormAcceptance:
    """The pinned pair: admission control breaks the metastable loop."""

    @pytest.fixture(scope="class")
    def pair(self):
        return {
            name: run_scenario(_BY_NAME[name], quick=True)
            for name in ("http-retry-storm", "http-retry-storm-shed")
        }

    def test_storm_amplifies_offered_load(self, pair):
        storm = pair["http-retry-storm"]
        # Every retry re-enters through the door: offered load far
        # exceeds the arrival count, the amplification signature.
        assert storm["retried"] > storm["requests"]
        assert storm["offered"] == storm["requests"] + storm["retried"]

    def test_shed_door_breaks_the_loop(self, pair):
        storm = pair["http-retry-storm"]
        shed = pair["http-retry-storm-shed"]
        assert shed["retried"] < storm["retried"] / 4
        assert shed["admission"]["shed"] > 0
        assert shed["latency_ms"]["p99"] < storm["latency_ms"]["p99"] / 2
        assert shed["slo"]["misses"] < storm["slo"]["misses"]
        assert shed["throughput"] > storm["throughput"]

    def test_entries_carry_the_faults_section(self, pair):
        for entry in pair.values():
            section = entry["faults"]
            assert section["name"] == "retry-storm"
            assert section["params"]["max_retries"] == 3
            assert section["counters"]["retried"] == entry["retried"]

    def test_per_class_retries_are_accounted(self, pair):
        storm = pair["http-retry-storm"]
        per_class = storm["admission"]["per_class"]
        assert sum(c["retried"] for c in per_class.values()) == storm[
            "retried"
        ]


class TestFaultPolicyBase:
    def test_abstract_base_has_safe_defaults(self):
        fault = FaultPolicy()
        assert fault.population_kwargs() == {}
        assert fault.counters() == {}
        assert fault.params() == {}
        assert fault.needs_backends is False
        assert fault.tears_down_on_backend_close is False
