"""End-to-end integration tests: the three use cases through the full
platform (compiled FLICK programs, codecs, scheduler, simulated TCP)."""


from repro.apps import hadoop_agg, http_lb, memcached_proxy
from repro.core.units import GBPS
from repro.net.tcp import TcpNetwork
from repro.runtime.costs import RuntimeConfig
from repro.runtime.graph import OutboundTarget
from repro.runtime.platform import FlickPlatform
from repro.sim.engine import Engine
from repro.workloads.backends import BackendMemcachedServer, BackendWebServer
from repro.workloads.hadoop_mappers import (
    Mapper,
    ReducerSink,
    generate_mapper_output,
    reference_wordcount,
)
from repro.workloads.http_clients import HttpClientPopulation
from repro.workloads.memcached_clients import MemcachedClientPopulation


def _topology(n_clients=4, n_backends=4):
    engine = Engine()
    net = TcpNetwork(engine)
    mbox = net.add_host("mbox", 10 * GBPS, "core")
    clients = [net.add_host(f"c{i}", 1 * GBPS, "edge") for i in range(n_clients)]
    backends = [net.add_host(f"b{i}", 1 * GBPS, "edge") for i in range(n_backends)]
    return engine, net, mbox, clients, backends


class TestStaticWeb:
    def _run(self, stack="kernel", persistent=True, concurrency=12):
        engine, net, mbox, clients, _ = _topology()
        platform = FlickPlatform(
            engine, net, mbox, RuntimeConfig(cores=4, stack=stack),
            http_lb.http_codec_registry(),
        )
        platform.register_program(http_lb.compile_static_web(), "StaticWeb", 80)
        platform.start()
        pop = HttpClientPopulation(
            engine, net, clients, mbox, 80, concurrency, persistent,
            requests_per_client=12, warmup_requests=2,
        )
        pop.start()
        engine.run()
        return pop

    def test_all_requests_answered(self):
        pop = self._run()
        assert pop.finished and pop.errors == 0
        assert pop.latency.count > 0

    def test_response_body_is_static_content(self):
        engine, net, mbox, clients, _ = _topology()
        platform = FlickPlatform(
            engine, net, mbox, RuntimeConfig(cores=2),
            http_lb.http_codec_registry(),
        )
        platform.register_program(http_lb.compile_static_web(), "StaticWeb", 80)
        platform.start()
        from repro.grammar.protocols import http as hp

        bodies = []

        def go(sock):
            parser = hp.HttpResponseParser()

            def on_data(d):
                parser.feed(d)
                for r in parser.messages():
                    bodies.append(r.body)

            sock.on_receive(on_data)
            sock.send(hp.make_request("GET", "/x").raw)

        net.connect(clients[0], mbox, 80, go)
        engine.run()
        assert len(bodies) == 1
        assert len(bodies[0]) == 137

    def test_non_persistent_mode(self):
        pop = self._run(persistent=False, concurrency=6)
        assert pop.finished and pop.errors == 0

    def test_mtcp_is_faster(self):
        kernel = self._run(stack="kernel")
        mtcp = self._run(stack="mtcp")
        assert mtcp.kreqs_per_sec() > kernel.kreqs_per_sec()


class TestHttpLoadBalancer:
    def _run(self, concurrency=10, persistent=True):
        engine, net, mbox, clients, backend_hosts = _topology()
        servers = [BackendWebServer(engine, net, b, 8080) for b in backend_hosts]
        platform = FlickPlatform(
            engine, net, mbox, RuntimeConfig(cores=4),
            http_lb.http_codec_registry(),
        )
        targets = [OutboundTarget(b, 8080) for b in backend_hosts]
        platform.register_program(
            http_lb.compile_http_lb(), "HttpBalancer", 80,
            http_lb.lb_bindings(targets),
        )
        platform.start()
        pop = HttpClientPopulation(
            engine, net, clients, mbox, 80, concurrency, persistent,
            requests_per_client=10, warmup_requests=1,
        )
        pop.start()
        engine.run()
        return pop, servers

    def test_requests_reach_backends_and_return(self):
        pop, servers = self._run()
        assert pop.finished and pop.errors == 0
        assert sum(s.requests_served for s in servers) == 10 * 10

    def test_connection_stickiness(self):
        """All requests of one connection go to one backend (§6.1)."""
        pop, servers = self._run(concurrency=8)
        for served in (s.requests_served for s in servers):
            assert served % 10 == 0

    def test_load_spreads_over_backends(self):
        pop, servers = self._run(concurrency=40)
        used = sum(1 for s in servers if s.requests_served > 0)
        assert used >= 2

    def test_non_persistent_connections(self):
        pop, servers = self._run(concurrency=6, persistent=False)
        assert pop.finished and pop.errors == 0


class TestMemcachedProxy:
    def _run(self, cache_router=False, key_space=40, requests=15):
        engine, net, mbox, clients, backend_hosts = _topology()
        servers = [
            BackendMemcachedServer(engine, net, b, 11211) for b in backend_hosts
        ]
        program = (
            memcached_proxy.compile_cache_router()
            if cache_router
            else memcached_proxy.compile_proxy()
        )
        proc = "memcached" if cache_router else "Memcached"
        platform = FlickPlatform(
            engine, net, mbox, RuntimeConfig(cores=4),
            memcached_proxy.memcached_codec_registry(program),
        )
        platform.register_program(
            program, proc, 11211,
            memcached_proxy.proxy_bindings(
                [OutboundTarget(b, 11211) for b in backend_hosts]
            ),
        )
        platform.start()
        pop = MemcachedClientPopulation(
            engine, net, clients, mbox, 11211, concurrency=16,
            requests_per_client=requests, warmup_requests=2,
            key_space=key_space,
        )
        pop.start()
        engine.run()
        return pop, servers

    def test_proxy_routes_all_requests(self):
        pop, servers = self._run()
        assert pop.finished and pop.errors == 0
        assert sum(s.requests_served for s in servers) == 16 * 15

    def test_key_space_partitioned(self):
        """Each key is always served by the same backend shard."""
        pop, servers = self._run(key_space=8)
        # 8 distinct keys over 4 backends: at most 8 shards touched, and
        # every request for a key lands on one backend (hash-stable).
        assert sum(s.requests_served for s in servers) == 16 * 15

    def test_cache_router_reduces_backend_traffic(self):
        plain, plain_servers = self._run(cache_router=False, key_space=10)
        cached, cached_servers = self._run(cache_router=True, key_space=10)
        plain_hits = sum(s.requests_served for s in plain_servers)
        cached_hits = sum(s.requests_served for s in cached_servers)
        assert cached_hits < plain_hits / 3
        assert cached.errors == 0

    def test_cache_router_cuts_unloaded_latency(self):
        """Serving hits from the in-network cache removes the backend
        round trip, so an unloaded client sees lower latency (the point
        of Listing 1).  Under proxy *saturation* the plain proxy can win
        on throughput because its response path is raw-forwarded, so the
        assertion is on light-load latency."""
        plain = self._run_single_client(cache_router=False)
        cached = self._run_single_client(cache_router=True)
        assert cached < plain * 0.9

    def _run_single_client(self, cache_router):
        engine, net, mbox, clients, backend_hosts = _topology(n_clients=1)
        servers = [
            BackendMemcachedServer(engine, net, b, 11211) for b in backend_hosts
        ]
        program = (
            memcached_proxy.compile_cache_router()
            if cache_router
            else memcached_proxy.compile_proxy()
        )
        proc = "memcached" if cache_router else "Memcached"
        platform = FlickPlatform(
            engine, net, mbox, RuntimeConfig(cores=4),
            memcached_proxy.memcached_codec_registry(program),
        )
        platform.register_program(
            program, proc, 11211,
            memcached_proxy.proxy_bindings(
                [OutboundTarget(b, 11211) for b in backend_hosts]
            ),
        )
        platform.start()
        pop = MemcachedClientPopulation(
            engine, net, clients, mbox, 11211, concurrency=1,
            requests_per_client=20, warmup_requests=2, key_space=1,
        )
        pop.start()
        engine.run()
        del servers
        return pop.latency.mean_us()


class TestHadoopAggregator:
    def _run(self, n_mappers=4, cores=4, native=True, kb=12):
        engine = Engine()
        net = TcpNetwork(engine)
        mbox = net.add_host("mbox", 10 * GBPS, "core")
        reducer = net.add_host("reducer", 10 * GBPS, "core")
        mhosts = [net.add_host(f"m{i}", 1 * GBPS, "edge") for i in range(n_mappers)]
        sink = ReducerSink(engine, net, reducer, 9000)
        platform = FlickPlatform(
            engine, net, mbox, RuntimeConfig(cores=cores),
            hadoop_agg.hadoop_codec_registry(),
        )
        platform.register_program(
            hadoop_agg.compile_hadoop(), "hadoop", 9100,
            hadoop_agg.hadoop_bindings(reducer, 9000, n_mappers, native=native),
        )
        platform.start()
        outputs = [
            generate_mapper_output(i, kb * 1024, 8, vocabulary=64)
            for i in range(n_mappers)
        ]
        mappers = [
            Mapper(engine, net, h, mbox, 9100, out)
            for h, out in zip(mhosts, outputs)
        ]
        for m in mappers:
            m.start()
        engine.run()
        return sink, outputs

    def test_wordcount_exact(self):
        sink, outputs = self._run()
        assert sink.counts() == reference_wordcount(outputs)

    def test_output_sorted_unique(self):
        sink, _ = self._run()
        keys = [k for k, _ in sink.pairs]
        assert keys == sorted(set(keys))

    def test_interpreted_combine_matches_native(self):
        native_sink, outputs = self._run(native=True)
        interp_sink, outputs2 = self._run(native=False)
        assert native_sink.counts() == interp_sink.counts()

    def test_odd_mapper_count(self):
        sink, outputs = self._run(n_mappers=3)
        assert sink.counts() == reference_wordcount(outputs)

    def test_single_mapper(self):
        sink, outputs = self._run(n_mappers=1)
        assert sink.counts() == reference_wordcount(outputs)

    def test_data_reduction(self):
        sink, outputs = self._run(n_mappers=4)
        total_in = sum(len(o) for o in outputs)
        assert len(sink.pairs) < total_in  # combiner shrank the stream


class TestPlatformBehaviour:
    def test_graph_pool_reused_across_connections(self):
        engine, net, mbox, clients, _ = _topology()
        platform = FlickPlatform(
            engine, net, mbox,
            RuntimeConfig(cores=2, graph_pool_size=4),
            http_lb.http_codec_registry(),
        )
        instance = platform.register_program(
            http_lb.compile_static_web(), "StaticWeb", 80
        )
        platform.start()
        pop = HttpClientPopulation(
            engine, net, clients, mbox, 80, concurrency=3, persistent=False,
            requests_per_client=6, warmup_requests=1,
        )
        pop.start()
        engine.run()
        assert instance.pool.hits > 0

    def test_globals_shared_across_graphs(self):
        """The Listing 1 cache is per-process: a response cached via one
        client connection serves hits arriving on another."""
        engine, net, mbox, clients, backend_hosts = _topology()
        servers = [
            BackendMemcachedServer(engine, net, b, 11211) for b in backend_hosts
        ]
        program = memcached_proxy.compile_cache_router()
        platform = FlickPlatform(
            engine, net, mbox, RuntimeConfig(cores=2),
            memcached_proxy.memcached_codec_registry(program),
        )
        platform.register_program(
            program, "memcached", 11211,
            memcached_proxy.proxy_bindings(
                [OutboundTarget(b, 11211) for b in backend_hosts]
            ),
        )
        platform.start()
        pop = MemcachedClientPopulation(
            engine, net, clients, mbox, 11211, concurrency=8,
            requests_per_client=20, warmup_requests=1, key_space=1,
        )
        pop.start()
        engine.run()
        # One key: exactly one backend fetch, everything else cache hits.
        assert sum(s.requests_served for s in servers) <= 8
        assert pop.errors == 0

    def test_deterministic_runs(self):
        def run_once():
            engine, net, mbox, clients, _ = _topology()
            platform = FlickPlatform(
                engine, net, mbox, RuntimeConfig(cores=2),
                http_lb.http_codec_registry(),
            )
            platform.register_program(
                http_lb.compile_static_web(), "StaticWeb", 80
            )
            platform.start()
            pop = HttpClientPopulation(
                engine, net, clients, mbox, 80, 6, True, 8, 1
            )
            pop.start()
            engine.run()
            return engine.now, pop.kreqs_per_sec()

        assert run_once() == run_once()
