"""Type checker tests: acceptance of the listings, rejection of misuse."""

import pytest

from repro.core.errors import FlickTypeError
from repro.lang.parser import parse
from repro.lang.typecheck import check_program
from tests.test_parser import HADOOP, MEMCACHED_FULL, MEMCACHED_SHORT


def check(src):
    return check_program(parse(src))


def expect_type_error(src, fragment):
    with pytest.raises(FlickTypeError) as err:
        check(src)
    assert fragment in str(err.value)


FUN = "fun f: ({params}) -> ({ret})\n{body}\n"


def fun_src(params, ret, body):
    indented = "\n".join("    " + line for line in body.splitlines())
    return FUN.format(params=params, ret=ret, body=indented)


class TestListingsAccepted:
    def test_memcached_short(self):
        checked = check(MEMCACHED_SHORT)
        assert "cmd" in checked.records
        assert "target_backend" in checked.functions

    def test_memcached_full(self):
        checked = check(MEMCACHED_FULL)
        assert checked.accessed_fields["cmd"] >= {"opcode", "key"}

    def test_hadoop(self):
        checked = check(HADOOP)
        assert set(checked.records["kv"].field_names()) == {"key", "value"}

    def test_accessed_fields_excludes_untouched(self):
        checked = check(MEMCACHED_SHORT)
        assert checked.accessed_fields["cmd"] == frozenset({"key"})


class TestDirectionSafety:
    def test_write_only_channel_cannot_be_pipeline_source(self):
        expect_type_error(
            "type t: record\n    k : string\n"
            "proc P: (-/t c)\n    c => c\n",
            "write-only",
        )

    def test_read_only_channel_cannot_be_sink(self):
        expect_type_error(
            "type t: record\n    k : string\n"
            "proc P: (t/t c, t/- r)\n    c => r\n",
            "read-only",
        )

    def test_send_into_read_only_channel_rejected(self):
        expect_type_error(
            "type t: record\n    k : string\n"
            + fun_src("t/- c, x: t", "", "x => c"),
            "read-only",
        )

    def test_bidirectional_passes_where_write_only_expected(self):
        check(
            "type t: record\n    k : string\n"
            "proc P: (t/t c)\n    c => g() => c\n"
            + fun_src("v: t", "t", "v")
            .replace("fun f:", "fun g:")
        )


class TestRecords:
    def test_unknown_field_rejected(self):
        expect_type_error(
            "type t: record\n    k : string\n"
            + fun_src("x: t", "string", "x.missing"),
            "no field",
        )

    def test_anonymous_field_not_addressable(self):
        # '_' is not a valid field name, so the access cannot even be
        # written: the front end rejects it outright.
        from repro.core.errors import FlickSyntaxError

        with pytest.raises((FlickTypeError, FlickSyntaxError)):
            check(
                "type t: record\n    _ : string\n    k : string\n"
                + fun_src("x: t", "string", "x._")
            )

    def test_constructor_arity(self):
        expect_type_error(
            "type kv: record\n    k : string\n    v : string\n"
            + fun_src("x: string", "kv", "kv(x)"),
            "expects 2",
        )

    def test_constructor_field_types(self):
        expect_type_error(
            "type kv: record\n    k : string\n    v : integer\n"
            + fun_src("x: string", "kv", 'kv(x, "nope")'),
            "field 'v'",
        )

    def test_duplicate_field_rejected(self):
        expect_type_error(
            "type t: record\n    k : string\n    k : integer\n"
            + fun_src("x: t", "string", "x.k"),
            "duplicate field",
        )

    def test_duplicate_type_rejected(self):
        expect_type_error(
            "type t: record\n    k : string\n"
            "type t: record\n    v : string\n"
            + fun_src("x: t", "string", "x.k"),
            "duplicate type",
        )


class TestFunctions:
    def test_return_type_mismatch(self):
        expect_type_error(
            fun_src("x: integer", "string", "x + 1"),
            "returns integer",
        )

    def test_missing_return_value(self):
        expect_type_error(
            fun_src("x: integer", "integer", "let y = x"),
            "every path",
        )

    def test_branch_return_both_checked(self):
        check(
            fun_src(
                "x: integer",
                "integer",
                "if x > 0:\n    x\nelse:\n    0 - x",
            )
        )

    def test_call_arity_mismatch(self):
        expect_type_error(
            fun_src("x: integer", "integer", "x")
            + fun_src("y: integer", "integer", "f(y, y)")
            .replace("fun f:", "fun g:"),
            "expects 1",
        )

    def test_unknown_function(self):
        expect_type_error(
            fun_src("x: integer", "integer", "nope(x)"), "unknown function"
        )

    def test_unknown_variable(self):
        expect_type_error(
            fun_src("x: integer", "integer", "y"), "unknown variable"
        )

    def test_duplicate_function_rejected(self):
        expect_type_error(
            fun_src("x: integer", "integer", "x")
            + fun_src("x: integer", "integer", "x"),
            "duplicate function",
        )

    def test_shadowing_builtin_rejected(self):
        expect_type_error(
            fun_src("x: string", "integer", "0").replace("fun f:", "fun hash:"),
            "duplicate function",
        )


class TestOperators:
    def test_comparison_of_mismatched_types(self):
        expect_type_error(
            fun_src("x: integer", "boolean", 'x = "s"'), "compare"
        )

    def test_none_comparison_allowed_for_any_type(self):
        check(
            "type t: record\n    k : string\n"
            + fun_src(
                "d: dict<string*t>, k: string",
                "boolean",
                "d[k] = None",
            )
        )

    def test_arithmetic_requires_integers(self):
        expect_type_error(
            fun_src("x: string", "integer", "x * 2"), "integers"
        )

    def test_string_concat_via_plus(self):
        check(fun_src("a: string, b: string", "string", "a + b"))

    def test_condition_must_be_boolean(self):
        expect_type_error(
            fun_src("x: integer", "integer", "if x:\n    1\nelse:\n    2"),
            "boolean",
        )

    def test_ordering_strings_allowed(self):
        check(fun_src("a: string, b: string", "boolean", "a < b"))


class TestDictsAndLists:
    def test_dict_key_type_checked(self):
        expect_type_error(
            fun_src("d: dict<string*integer>", "integer", "d[1]"),
            "key type",
        )

    def test_dict_value_assignment_checked(self):
        expect_type_error(
            fun_src("d: ref dict<string*integer>, k: string", "", 'd[k] := "v"'),
            "value type",
        )

    def test_empty_dict_unifies(self):
        check(
            "proc P: (g: integer)\n    global cache := empty_dict\n"
        ) if False else None
        # empty_dict in a function context:
        check(fun_src("k: string", "integer", "len(empty_dict)"))

    def test_list_index_must_be_integer(self):
        expect_type_error(
            fun_src("l: list<integer>, k: string", "integer", "l[k]"),
            "index",
        )


class TestHigherOrder:
    BASE = fun_src("acc: integer, x: integer", "integer", "acc + x").replace(
        "fun f:", "fun add:"
    )

    def test_fold_accepted(self):
        check(
            self.BASE
            + fun_src("l: list<integer>", "integer", "fold(add, 0, l)")
        )

    def test_map_result_is_list(self):
        src = (
            fun_src("x: integer", "integer", "x * 2").replace(
                "fun f:", "fun dbl:"
            )
            + fun_src(
                "l: list<integer>", "integer", "len(map(dbl, l))"
            )
        )
        check(src)

    def test_filter_predicate_must_return_bool(self):
        src = (
            fun_src("x: integer", "integer", "x").replace("fun f:", "fun p:")
            + fun_src("l: list<integer>", "integer", "len(filter(p, l))")
        )
        expect_type_error(src, "boolean")

    def test_fold_needs_function_name(self):
        expect_type_error(
            fun_src("l: list<integer>", "integer", "fold(1, 0, l)"),
            "function name",
        )


class TestPipelines:
    def test_stage_message_type_checked(self):
        src = (
            "type a: record\n    x : string\n"
            "type b: record\n    y : string\n"
            "proc P: (a/a c)\n    c => g() => c\n"
            + fun_src("v: b", "b", "v").replace("fun f:", "fun g:")
        )
        expect_type_error(src, "consumes")

    def test_stage_bound_arg_count(self):
        src = (
            "type a: record\n    x : string\n"
            "proc P: (a/a c)\n    c => g(c, c) => c\n"
            + fun_src("v: a", "a", "v").replace("fun f:", "fun g:")
        )
        expect_type_error(src, "binds 2")

    def test_sink_type_checked(self):
        src = (
            "type a: record\n    x : string\n"
            "type b: record\n    y : string\n"
            "proc P: (a/b c)\n    c => c\n"
        )
        expect_type_error(src, "sends")

    def test_builtin_len_on_channel_array(self):
        check(
            "type a: record\n    x : string\n"
            "proc P: (a/a c, [a/a] bs)\n    c => g(bs) => c\n"
            + fun_src("[-/a] bs, v: a", "a", "let n = len(bs)\nv").replace(
                "fun f:", "fun g:"
            )
        )

    def test_pipeline_only_in_proc(self):
        # Multi-stage pipelines are a process-body form; inside a function
        # the second '=>' cannot be parsed.
        from repro.core.errors import FlickSyntaxError

        with pytest.raises((FlickTypeError, FlickSyntaxError)):
            check(
                "type a: record\n    x : string\n"
                + fun_src("a/a c, v: a", "", "c => g2() => c")
            )
