"""The cluster tier's pinned behaviours: the 1→2→4 shard scaling
curve, failover survival, and the parallel matrix runner's
byte-identity guarantee (``--jobs N`` == ``--jobs 1``)."""

import json

from repro.bench import results as results_io
from repro.bench.scenarios import (
    SCENARIOS,
    Scenario,
    run_scenario,
    run_scenario_matrix,
)

_BY_NAME = {s.name: s for s in SCENARIOS}

#: ISSUE acceptance floor: each shard-count doubling at fixed offered
#: load must buy at least this much completion throughput.
MIN_SCALING_PER_DOUBLING = 1.7


class TestScalingCurve:
    def test_fleet_scale_scenarios_share_the_offered_load(self):
        """The curve is only a curve if 1, 2 and 4 shards face the SAME
        open-loop load — everything but the fleet must be pinned."""
        one, two, four = (
            _BY_NAME[f"http-fleet-scale-{n}"] for n in (1, 2, 4)
        )
        assert (one.shards, two.shards, four.shards) == (1, 2, 4)
        for scenario in (two, four):
            assert scenario.arrival == one.arrival
            assert scenario.arrival_params == one.arrival_params
            assert scenario.connections == one.connections
            assert scenario.requests == one.requests
            assert scenario.cores == one.cores
            assert scenario.mode == one.mode

    def test_throughput_scales_with_the_fleet(self):
        """The tentpole gate: >= 1.7x completion throughput per
        doubling at fixed offered load (quick CI sizes)."""
        thr = {
            n: run_scenario(
                _BY_NAME[f"http-fleet-scale-{n}"], quick=True
            )["throughput"]
            for n in (1, 2, 4)
        }
        assert thr[2] >= MIN_SCALING_PER_DOUBLING * thr[1]
        assert thr[4] >= MIN_SCALING_PER_DOUBLING * thr[2]


class TestFailover:
    def test_mid_run_shard_death_degrades_without_collapse(self):
        entry = run_scenario(_BY_NAME["http-fleet-failover"], quick=True)
        cluster = entry["cluster"]
        assert cluster["shards"] == 2
        assert cluster["alive_shards"] == 1
        assert cluster["failed_shards"] == [1]
        assert cluster["per_shard"]["shard1"]["alive"] is False
        assert cluster["failed_over_connections"] > 0
        # bounded loss: only the severed connections' in-flight windows
        # fail; everything else completes on the survivor
        admitted = entry["admission"]["admitted"]
        assert entry["failed"] > 0
        assert entry["failed"] < 0.05 * admitted
        assert entry["completed"] + entry["failed"] == admitted
        # no metastable collapse: the surviving shard keeps latency
        # inside the SLO for the overwhelming majority of requests
        assert entry["slo"]["miss_rate"] < 0.05
        assert entry["throughput"] > 0


class TestParallelRunner:
    #: Two cheap scenarios spanning both the classic and cluster paths.
    _SELECTION = ("http-closed-baseline", "http-fleet-scale-2")

    def _documents(self, jobs):
        selected = tuple(_BY_NAME[name] for name in self._SELECTION)
        results = run_scenario_matrix(selected, quick=True, jobs=jobs)
        return results_io.results_document(results, quick=True)

    def test_jobs_output_is_byte_identical_to_serial(self):
        serial = self._documents(jobs=1)
        parallel = self._documents(jobs=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_results_keep_selection_order(self):
        parallel = self._documents(jobs=2)
        assert tuple(parallel["scenarios"]) == self._SELECTION

    def test_more_jobs_than_scenarios_is_fine(self):
        selected = (_BY_NAME["http-closed-baseline"],)
        serial = run_scenario_matrix(selected, quick=True, jobs=1)
        wide = run_scenario_matrix(selected, quick=True, jobs=8)
        assert serial == wide

    def test_bad_jobs_rejected(self):
        import pytest

        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError, match="jobs"):
            run_scenario_matrix((), quick=True, jobs=0)

    def test_validation_errors_surface_in_the_parent(self):
        import pytest

        from repro.core.errors import ConfigError

        bad = Scenario(
            name="bad", app="http_lb", arrival="poisson",
            shards=2, routing="least-loadd",
        )
        with pytest.raises(ConfigError, match="least-loaded"):
            run_scenario_matrix(
                (bad, _BY_NAME["http-closed-baseline"]), quick=True, jobs=2
            )
