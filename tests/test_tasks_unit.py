"""Unit tests for input/output/raw-forward tasks outside the full platform."""

from repro.grammar.protocols import memcached as mc
from repro.net.stackprofiles import KERNEL
from repro.runtime.channel import EOS, TaskChannel
from repro.runtime.task import InputTask, OutputTask, RawForwardTask


class _FakeSocket:
    """Socket stub: captures sends, lets tests inject receive/close."""

    def __init__(self):
        self.sent = []
        self._recv = None
        self._close = None
        self.closed = False

    def on_receive(self, cb):
        self._recv = cb

    def on_close(self, cb):
        self._close = cb

    def send(self, data):
        self.sent.append(data)

    def close(self):
        self.closed = True

    # test helpers
    def deliver(self, data):
        self._recv(data)

    def eof(self):
        self._close()


def _drain(task, budget=None):
    """Step a task to quiescence, running its emissions."""
    while task.has_work():
        _, emissions = task.step(budget)
        for emit in emissions:
            emit()


class TestInputTask:
    def _make(self, capacity=64):
        out = TaskChannel("out", capacity)
        task = InputTask(
            "in", mc.full_codec().parser(), out, KERNEL, cores=1
        )
        socket = _FakeSocket()
        notified = []
        task.attach(socket, lambda: notified.append(1))
        return task, out, socket, notified

    def test_parses_stream_into_records(self):
        task, out, socket, notified = self._make()
        raw = mc.encode(mc.make_request(mc.OP_GETK, "k1"))
        socket.deliver(raw)
        assert notified  # data made the task runnable
        _drain(task)
        record = out.pop()
        assert record.key == "k1"

    def test_partial_message_waits(self):
        task, out, socket, _ = self._make()
        raw = mc.encode(mc.make_request(mc.OP_GETK, "k1"))
        socket.deliver(raw[:10])
        _drain(task)
        assert out.empty()
        socket.deliver(raw[10:])
        _drain(task)
        assert not out.empty()

    def test_eof_closes_downstream(self):
        task, out, socket, _ = self._make()
        socket.eof()
        _drain(task)
        assert out.pop() is EOS

    def test_backpressure_stops_parsing(self):
        task, out, socket, _ = self._make(capacity=2)
        raw = mc.encode(mc.make_request(mc.OP_GETK, "k")) * 5
        socket.deliver(raw)
        _drain(task)
        assert len(out) == 2  # capacity respected
        out.pop()
        out.pop()
        _drain(task)  # resumes once space frees up
        assert len(out) == 2

    def test_tagging(self):
        out = TaskChannel("out", 8)
        task = InputTask(
            "in", mc.full_codec().parser(), out, KERNEL, cores=1,
            tag=("backends", 3),
        )
        socket = _FakeSocket()
        task.attach(socket, lambda: None)
        socket.deliver(mc.encode(mc.make_request(mc.OP_GET, "x")))
        _drain(task)
        endpoint, index, record = out.pop()
        assert (endpoint, index) == ("backends", 3)
        assert record.key == "x"

    def test_budget_zero_emits_at_most_one_message(self):
        """Round-robin budget: one work item per step (the first step
        consumes the chunk read, the next one message)."""
        task, out, socket, _ = self._make()
        socket.deliver(mc.encode(mc.make_request(mc.OP_GET, "a")) * 3)
        _, emissions = task.step(0.0)
        for emit in emissions:
            emit()
        assert len(out) <= 1
        assert task.has_work()  # backlog remembered
        _, emissions = task.step(0.0)
        for emit in emissions:
            emit()
        assert len(out) == 1


class TestOutputTask:
    def test_serialises_and_sends(self):
        inbox = TaskChannel("in", 8)
        task = OutputTask(
            "out", inbox, lambda r: mc.full_codec().serialize(r),
            KERNEL, cores=1,
        )
        socket = _FakeSocket()
        task.bind_socket(socket)
        record = mc.make_request(mc.OP_GETK, "key")
        inbox.push(record)
        _drain(task)
        assert socket.sent == [mc.encode(record)]
        assert task.bytes_out == len(socket.sent[0])

    def test_raw_bytes_pass_through(self):
        inbox = TaskChannel("in", 8)
        task = OutputTask("out", inbox, lambda r: (b"", 0.0), KERNEL, cores=1)
        socket = _FakeSocket()
        task.bind_socket(socket)
        inbox.push(b"raw-bytes")
        _drain(task)
        assert socket.sent == [b"raw-bytes"]

    def test_unbound_task_has_no_work(self):
        inbox = TaskChannel("in", 8)
        task = OutputTask("out", inbox, lambda r: (b"", 0.0), KERNEL, cores=1)
        inbox.push(b"x")
        assert not task.has_work()
        task.bind_socket(_FakeSocket())
        assert task.has_work()

    def test_close_on_eos(self):
        inbox = TaskChannel("in", 8)
        task = OutputTask(
            "out", inbox, lambda r: (b"", 0.0), KERNEL, cores=1,
            close_on_eos=True,
        )
        socket = _FakeSocket()
        task.bind_socket(socket)
        inbox.push(b"x")
        inbox.close()
        _drain(task)
        assert socket.closed


class TestRawForwardTask:
    def test_bytes_copied_verbatim(self):
        out = TaskChannel("out", 8)
        task = RawForwardTask("fwd", out, KERNEL, cores=1)
        socket = _FakeSocket()
        task.attach(socket, lambda: None)
        socket.deliver(b"chunk-1")
        socket.deliver(b"chunk-2")
        _drain(task)
        assert out.pop() == b"chunk-1"
        assert out.pop() == b"chunk-2"

    def test_eof_does_not_close_shared_output(self):
        """The forward target (the client's output channel) is shared
        with the compute path and must survive a backend close."""
        out = TaskChannel("out", 8)
        task = RawForwardTask("fwd", out, KERNEL, cores=1)
        socket = _FakeSocket()
        task.attach(socket, lambda: None)
        socket.eof()
        _drain(task)
        assert not out.closed

    def test_cost_scales_with_bytes(self):
        out = TaskChannel("out", 1024)
        task = RawForwardTask("fwd", out, KERNEL, cores=1)
        socket = _FakeSocket()
        task.attach(socket, lambda: None)
        socket.deliver(b"x" * 10)
        small, _ = task.step(None)
        socket.deliver(b"x" * 10_000)
        big, _ = task.step(None)
        assert big > small
