"""Scheduling-policy layer: registry, golden parity, new policies.

The GOLDEN numbers below were produced by the pre-refactor scheduler
(policy branches hard-coded in ``Scheduler._budget``) on the Figure-7
workload at 60 tasks x 80 items on 8 cores.  The policy/mechanism split
must reproduce them bit-for-bit: any drift means the mechanism no longer
matches the paper's evaluation.
"""

import pytest

from repro.bench.scheduling import (
    resolve_policy_selection,
    run_policy_sweep,
    run_scheduling_experiment,
)
from repro.core.errors import RuntimeFlickError
from repro.runtime.policy import (
    PAPER_POLICIES,
    AdaptiveTimeslicePolicy,
    BatchPolicy,
    CooperativePolicy,
    DeadlinePolicy,
    LocalityPolicy,
    NumaPolicy,
    PriorityPolicy,
    SchedulingPolicy,
    StealHalfPolicy,
    closest_policy_name,
    make_policy,
    register_policy,
    registered_policies,
    resolve_policy,
)
from repro.runtime.qos import ServiceClass
from repro.runtime.scheduler import Scheduler, TaskBase
from repro.sim.engine import Engine

GOLDEN = {
    "cooperative": {
        "light_mean_ms": 2.8394464000000004,
        "heavy_mean_ms": 19.77924613333334,
        "light_max_ms": 3.102192000000002,
        "heavy_max_ms": 21.054784000000012,
        "makespan_ms": 21.054784000000012,
    },
    "non_cooperative": {
        "light_mean_ms": 8.127984000000001,
        "heavy_mean_ms": 13.349572000000009,
        "light_max_ms": 17.04216000000001,
        "heavy_max_ms": 22.286340000000013,
        "makespan_ms": 22.286340000000013,
    },
    "round_robin": {
        "light_mean_ms": 19.419434666666554,
        "heavy_mean_ms": 20.050810133333233,
        "light_max_ms": 20.799919999999908,
        "heavy_max_ms": 21.182947999999918,
        "makespan_ms": 21.182947999999918,
    },
    # The post-refactor policies are pinned the same way: these numbers
    # were produced by the run that introduced each policy, and any
    # drift means a mechanism or policy change silently altered
    # Figure-7 behaviour.  (numa and steal-half coincide with
    # cooperative here because the workload pins placement via
    # home_hint and its balanced queues never trigger batch steals;
    # randomized workloads in test_policy_invariants.py tell them
    # apart.)
    "locality": {
        "light_mean_ms": 2.8394464000000004,
        "heavy_mean_ms": 19.54060173333331,
        "light_max_ms": 3.102192000000002,
        "heavy_max_ms": 21.17495600000004,
        "makespan_ms": 21.17495600000004,
    },
    "batch": {
        "light_mean_ms": 18.71273359999999,
        "heavy_mean_ms": 19.53124239999999,
        "light_max_ms": 20.149151999999994,
        "heavy_max_ms": 21.199427999999994,
        "makespan_ms": 21.199427999999994,
    },
    "priority": {
        "light_mean_ms": 1.4943519999999992,
        "heavy_mean_ms": 19.77924613333334,
        "light_max_ms": 1.585664,
        "heavy_max_ms": 21.054784000000012,
        "makespan_ms": 21.054784000000012,
    },
    "deadline": {
        "light_mean_ms": 1.267635200000002,
        "heavy_mean_ms": 19.560601733333314,
        "light_max_ms": 1.3487200000000035,
        "heavy_max_ms": 21.201756000000046,
        "makespan_ms": 21.201756000000046,
    },
    "numa": {
        "light_mean_ms": 2.8394464000000004,
        "heavy_mean_ms": 19.77924613333334,
        "light_max_ms": 3.102192000000002,
        "heavy_max_ms": 21.054784000000012,
        "makespan_ms": 21.054784000000012,
    },
    "adaptive-timeslice": {
        "light_mean_ms": 3.6443136000000025,
        "heavy_mean_ms": 19.717586533333343,
        "light_max_ms": 4.096032000000004,
        "heavy_max_ms": 21.019183999999967,
        "makespan_ms": 21.019183999999967,
    },
    "steal-half": {
        "light_mean_ms": 2.8394464000000004,
        "heavy_mean_ms": 19.77924613333334,
        "light_max_ms": 3.102192000000002,
        "heavy_max_ms": 21.054784000000012,
        "makespan_ms": 21.054784000000012,
    },
}


#: Class-aware golden numbers: the same 60x80x8 Figure-7 workload under
#: a two-class map (gold=1ms@4 on light, bronze=50ms@1 on heavy).  Every
#: policy that declares ``supports_service_classes`` must pin an entry —
#: the lockstep gate below — so QoS-consuming policies cannot drift
#: silently any more than class-free ones can.
TWO_CLASS_MAP = {
    "light": ServiceClass("gold", 1_000.0, weight=4.0),
    "heavy": ServiceClass("bronze", 50_000.0),
}

GOLDEN_TWO_CLASS = {
    "deadline": {
        "fields": {
            "light_mean_ms": 1.2269600000000034,
            "heavy_mean_ms": 19.54862959999998,
            "light_max_ms": 1.334320000000004,
            "heavy_max_ms": 21.187356000000047,
            "makespan_ms": 21.187356000000047,
        },
        "classes": {
            "gold": {
                "completions": 30,
                "misses": 24,
                "mean_ms": 1.2269600000000032,
                "p99_ms": 1.334320000000004,
                "max_ms": 1.334320000000004,
            },
            "bronze": {
                "completions": 30,
                "misses": 0,
                "mean_ms": 19.548629599999984,
                "p99_ms": 21.17580356000003,
                "max_ms": 21.187356000000047,
            },
        },
    },
    "priority": {
        "fields": {
            "light_mean_ms": 1.4943519999999992,
            "heavy_mean_ms": 19.77924613333334,
            "light_max_ms": 1.585664,
            "heavy_max_ms": 21.054784000000012,
            "makespan_ms": 21.054784000000012,
        },
        "classes": {
            "gold": {
                "completions": 30,
                "misses": 30,
                "mean_ms": 1.4943519999999992,
                "p99_ms": 1.585664,
                "max_ms": 1.585664,
            },
            "bronze": {
                "completions": 30,
                "misses": 0,
                "mean_ms": 19.779246133333338,
                "p99_ms": 21.054784000000012,
                "max_ms": 21.054784000000012,
            },
        },
    },
}


class TestRegistry:
    def test_paper_policies_registered(self):
        names = registered_policies()
        for name in PAPER_POLICIES:
            assert name in names

    def test_new_policies_registered(self):
        names = registered_policies()
        for name in (
            "locality",
            "batch",
            "priority",
            "deadline",
            "numa",
            "adaptive-timeslice",
            "steal-half",
        ):
            assert name in names

    def test_registry_sweeps_at_least_ten_policies(self):
        """`--policy all` covers the full roadmap: the paper trio plus
        the seven post-paper policies."""
        assert len(registered_policies()) >= 10

    def test_paper_policies_listed_first(self):
        assert registered_policies()[:3] == PAPER_POLICIES

    def test_make_policy_unknown_rejected(self):
        with pytest.raises(RuntimeFlickError):
            make_policy("fifo")

    def test_unknown_policy_lists_names_sorted(self):
        with pytest.raises(RuntimeFlickError) as excinfo:
            make_policy("fifo")
        message = str(excinfo.value)
        listed = message.split("registered: ")[1].split(";")[0].split(", ")
        assert listed == sorted(registered_policies())

    @pytest.mark.parametrize(
        "typo, meant",
        [
            ("dead-line", "deadline"),
            ("adaptive_timeslice", "adaptive-timeslice"),
            ("steal_half", "steal-half"),
            ("roud_robin", "round_robin"),
            ("cooprative", "cooperative"),
        ],
    )
    def test_unknown_policy_suggests_near_miss(self, typo, meant):
        with pytest.raises(RuntimeFlickError) as excinfo:
            make_policy(typo)
        assert f"did you mean {meant!r}?" in str(excinfo.value)

    def test_closest_policy_name_gives_up_on_garbage(self):
        assert closest_policy_name("zzzzqqqq") is None
        with pytest.raises(RuntimeFlickError) as excinfo:
            make_policy("zzzzqqqq")
        assert "did you mean" not in str(excinfo.value)

    def test_selection_typo_suggests_near_miss(self):
        with pytest.raises(RuntimeFlickError, match="did you mean"):
            resolve_policy_selection("cooperative,dead-line")

    def test_selection_suggests_for_every_unknown_name(self):
        with pytest.raises(RuntimeFlickError) as excinfo:
            resolve_policy_selection("dead-line,steal_half")
        message = str(excinfo.value)
        assert "did you mean 'deadline' for 'dead-line'?" in message
        assert "did you mean 'steal-half' for 'steal_half'?" in message

    def test_resolve_accepts_instance(self):
        policy = CooperativePolicy(timeslice_us=25.0)
        assert resolve_policy(policy) is policy

    def test_resolve_accepts_name(self):
        policy = resolve_policy("cooperative", timeslice_us=30.0)
        assert isinstance(policy, CooperativePolicy)
        assert policy.timeslice_us == 30.0

    def test_resolve_rejects_garbage(self):
        with pytest.raises(RuntimeFlickError):
            resolve_policy(42)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RuntimeFlickError):
            @register_policy
            class Clash(SchedulingPolicy):
                name = "cooperative"

    def test_scheduler_exposes_policy_name(self):
        sched = Scheduler(Engine(), 2, 50.0, "locality")
        assert sched.policy_name == "locality"
        assert isinstance(sched.policy, LocalityPolicy)

    def test_selection_spec_parsing(self):
        assert resolve_policy_selection("paper") == PAPER_POLICIES
        assert resolve_policy_selection("all") == registered_policies()
        assert resolve_policy_selection("batch, priority") == (
            "batch",
            "priority",
        )

    def test_selection_spec_empty_rejected(self):
        with pytest.raises(RuntimeFlickError):
            resolve_policy_selection(",")

    def test_selection_spec_typo_rejected_before_any_run(self):
        with pytest.raises(RuntimeFlickError, match="roud_robin"):
            resolve_policy_selection("cooperative,roud_robin")


class TestCliPolicyFlag:
    def test_unknown_policy_is_a_clean_error(self, capsys):
        from repro.bench.cli import main

        assert main(["fig7", "--quick", "--policy", "fifo"]) == 2
        captured = capsys.readouterr()
        assert "unknown scheduling policy 'fifo'" in captured.err
        assert "Traceback" not in captured.err

    def test_empty_policy_is_a_clean_error(self, capsys):
        from repro.bench.cli import main

        assert main(["fig7", "--quick", "--policy", ","]) == 2
        assert "selects no policies" in capsys.readouterr().err

    def test_policy_typo_rejected_before_any_target_runs(self, capsys):
        from repro.bench.cli import main

        assert main(["all", "--quick", "--policy", "fifo"]) == 2
        captured = capsys.readouterr()
        assert "unknown scheduling policy" in captured.err
        # No experiment output: the typo was caught before e1/fig4/...
        assert "E1" not in captured.out
        assert "Figure" not in captured.out


class TestGoldenParity:
    """Every registered policy reproduces its pinned Figure-7 numbers
    exactly: the paper trio against the pre-refactor scheduler, the
    post-paper policies against the run that introduced them."""

    @pytest.mark.parametrize("policy", sorted(GOLDEN))
    def test_figure7_parity(self, policy):
        result = run_scheduling_experiment(
            policy, n_tasks=60, items_per_task=80, cores=8
        )
        for field, want in GOLDEN[policy].items():
            got = getattr(result, field)
            assert got == pytest.approx(want, rel=0, abs=1e-9), (
                f"{policy}.{field}: {got!r} != golden {want!r}"
            )

    def test_every_registered_policy_has_golden_entry(self):
        """Registering a policy without pinning it is a CI failure: the
        golden table and the registry must stay in lockstep, so future
        policies cannot dodge regression coverage."""
        assert set(GOLDEN) == set(registered_policies())

    @pytest.mark.parametrize("policy", sorted(GOLDEN_TWO_CLASS))
    def test_two_class_figure7_parity(self, policy):
        """Class-aware policies reproduce their pinned two-class numbers
        — aggregates and per-class completions/misses/latency alike."""
        result = run_scheduling_experiment(
            policy, n_tasks=60, items_per_task=80, cores=8,
            service_classes=TWO_CLASS_MAP,
        )
        golden = GOLDEN_TWO_CLASS[policy]
        for field, want in golden["fields"].items():
            got = getattr(result, field)
            assert got == pytest.approx(want, rel=0, abs=1e-9), (
                f"{policy}.{field}: {got!r} != golden {want!r}"
            )
        assert set(result.class_stats) == set(golden["classes"])
        for class_name, stats in golden["classes"].items():
            for field, want in stats.items():
                got = result.class_stats[class_name][field]
                assert got == pytest.approx(want, rel=0, abs=1e-9), (
                    f"{policy}.{class_name}.{field}: "
                    f"{got!r} != golden {want!r}"
                )

    def test_class_aware_policies_have_two_class_goldens(self):
        """Lockstep gate, extended: a policy that declares
        ``supports_service_classes`` without pinning two-class goldens
        (or vice versa) is a CI failure, exactly like registering a
        policy without a plain golden entry."""
        declared = {
            name
            for name in registered_policies()
            if make_policy(name).supports_service_classes
        }
        assert declared == set(GOLDEN_TWO_CLASS)

    def test_parity_stable_across_repeats(self):
        first = run_scheduling_experiment(
            "cooperative", n_tasks=40, items_per_task=40, cores=4
        )
        second = run_scheduling_experiment(
            "cooperative", n_tasks=40, items_per_task=40, cores=4
        )
        assert first.as_dict() == second.as_dict()


class _FakeWorker:
    def __init__(self, index, queue_len):
        self.index = index
        self.queue = [object()] * queue_len


class TestVictimSelection:
    def test_default_steals_longest(self):
        workers = [_FakeWorker(0, 0), _FakeWorker(1, 1), _FakeWorker(2, 3)]
        policy = CooperativePolicy()
        assert policy.select_victim(workers[0], workers) is workers[2]

    def test_default_skips_self_and_empty(self):
        workers = [_FakeWorker(0, 5), _FakeWorker(1, 0)]
        policy = CooperativePolicy()
        assert policy.select_victim(workers[0], workers) is None

    def test_locality_steals_nearest(self):
        workers = [
            _FakeWorker(0, 0),
            _FakeWorker(1, 1),
            _FakeWorker(2, 0),
            _FakeWorker(3, 3),
        ]
        policy = LocalityPolicy()
        # Longest queue is worker 3, but worker 1 is nearer to worker 0.
        assert policy.select_victim(workers[0], workers) is workers[1]

    def test_locality_wraps_around_the_ring(self):
        workers = [
            _FakeWorker(0, 2),
            _FakeWorker(1, 0),
            _FakeWorker(2, 0),
            _FakeWorker(3, 0),
        ]
        policy = LocalityPolicy()
        assert policy.select_victim(workers[3], workers) is workers[0]
        # worker 1's nearest non-empty neighbour is worker 0 (distance 3).
        assert policy.select_victim(workers[1], workers) is workers[0]


class _ItemTask(TaskBase):
    def __init__(self, name, n, cost_us):
        super().__init__(name)
        self.remaining = n
        self.cost_us = cost_us

    def has_work(self):
        return self.remaining > 0

    def step(self, budget_us):
        elapsed = 0.0
        while self.remaining > 0:
            self.remaining -= 1
            elapsed += self.cost_us
            self.items_processed += 1
            if budget_us == 0.0:
                break
            if budget_us is not None and elapsed >= budget_us:
                break
        self.busy_us += elapsed
        return elapsed, []


class TestBatchPolicy:
    def test_rejects_bad_batch_size(self):
        with pytest.raises(RuntimeFlickError):
            BatchPolicy(k=0)

    def test_amortises_schedule_cost(self):
        """k items per decision => ~1/k the decisions of round robin."""

        def decisions(policy):
            engine = Engine()
            sched = Scheduler(engine, 2, 50.0, policy)
            tasks = [_ItemTask(f"t{i}", 64, 2.0) for i in range(4)]
            sched.start()
            for t in tasks:
                sched.notify_runnable(t)
            engine.run()
            assert all(t.remaining == 0 for t in tasks)
            return sched.tasks_executed

        rr = decisions("round_robin")
        batched = decisions(BatchPolicy(k=8))
        assert batched < rr / 4

    def test_batch_beats_round_robin_makespan(self):
        rr = run_scheduling_experiment(
            "round_robin", n_tasks=20, items_per_task=50, cores=4
        )
        batch = run_scheduling_experiment(
            "batch", n_tasks=20, items_per_task=50, cores=4
        )
        assert batch.makespan_ms < rr.makespan_ms


class TestPriorityPolicy:
    def test_light_tasks_not_starved(self):
        """On one core, weighted picking gets light tasks out well before
        plain FIFO-cooperative does, at equal makespan."""
        coop = run_scheduling_experiment(
            "cooperative", n_tasks=8, items_per_task=40, cores=1
        )
        prio = run_scheduling_experiment(
            "priority", n_tasks=8, items_per_task=40, cores=1
        )
        assert prio.light_mean_ms < 0.75 * coop.light_mean_ms
        assert prio.makespan_ms == pytest.approx(coop.makespan_ms, rel=0.05)

    def test_ewma_tracks_cost(self):
        policy = PriorityPolicy(smoothing=0.5)
        task = _ItemTask("t", 1, 1.0)
        policy.on_task_done(task, None, 10.0)
        policy.on_task_done(task, None, 20.0)
        assert policy._mean_cost[task.task_id] == pytest.approx(15.0)

    def test_scheduler_adopts_instance_timeslice(self):
        """A passed-in instance keeps its own budget, and the scheduler
        reports the effective value instead of the ignored argument."""
        sched = Scheduler(
            Engine(), 1, timeslice_us=10.0,
            policy=CooperativePolicy(timeslice_us=25.0),
        )
        assert sched.timeslice_us == 25.0
        assert sched.policy.budget(None) == 25.0
        # Name specs still take the scheduler's timeslice.
        sched = Scheduler(Engine(), 1, timeslice_us=10.0, policy="cooperative")
        assert sched.timeslice_us == 10.0
        assert sched.policy.budget(None) == 10.0

    def test_instance_shared_across_live_engines_rejected(self):
        """An engine with events still in flight counts as live: its
        policy instance cannot be adopted by another scheduler."""
        policy = PriorityPolicy()
        engine_a = Engine()
        sched_a = Scheduler(engine_a, 2, 50.0, policy)
        sched_a.start()  # worker processes now pending on engine_a
        with pytest.raises(RuntimeFlickError):
            Scheduler(Engine(), 2, 50.0, policy)
        engine_a.run()  # drains: sequential reuse becomes legal again
        Scheduler(Engine(), 2, 50.0, policy)

    def test_experiment_preserves_id_monotonicity(self):
        """run_scheduling_experiment scopes ids internally but restores
        a monotonic counter, so tasks created after it can never collide
        with tasks created before it."""
        before = _ItemTask("before", 1, 1.0)
        run_scheduling_experiment(
            "cooperative", n_tasks=20, items_per_task=5, cores=2
        )
        after = _ItemTask("after", 1, 1.0)
        assert after.task_id > before.task_id
        assert after.task_id > 20  # past the experiment's id range too

    def test_instance_shared_within_one_simulation_rejected(self):
        """Two schedulers on the same engine must not share one policy's
        mutable state; sequential reuse (fresh engine) stays allowed."""
        engine = Engine()
        policy = PriorityPolicy()
        Scheduler(engine, 2, 50.0, policy)
        with pytest.raises(RuntimeFlickError):
            Scheduler(engine, 2, 50.0, policy)
        # A fresh engine (a new run) may adopt the same instance.
        Scheduler(Engine(), 2, 50.0, policy)

    def test_completed_tasks_evicted_from_cost_map(self):
        """Priority's EWMA map stays bounded: entries are dropped once a
        task has nothing queued."""
        policy = PriorityPolicy()
        task = _ItemTask("t", 1, 1.0)
        policy.on_task_done(task, None, 5.0)
        assert task.task_id in policy._mean_cost
        task.remaining = 0
        policy.on_task_done(task, None, 5.0)
        assert task.task_id not in policy._mean_cost

    def test_reused_instance_is_deterministic(self):
        """A scheduler adopting a policy resets its learned state, so a
        reused instance cannot leak EWMA costs across runs (task ids are
        recycled per run and would collide)."""
        policy = PriorityPolicy()
        first = run_scheduling_experiment(
            policy, n_tasks=8, items_per_task=40, cores=1
        )
        second = run_scheduling_experiment(
            policy, n_tasks=8, items_per_task=40, cores=1
        )
        assert first.as_dict() == second.as_dict()

    def test_next_local_pops_cheapest_and_keeps_order(self):
        from collections import deque

        policy = PriorityPolicy()
        a, b, c = (_ItemTask(n, 1, 1.0) for n in "abc")
        policy.on_task_done(a, None, 30.0)
        policy.on_task_done(b, None, 5.0)
        policy.on_task_done(c, None, 20.0)

        class W:
            pass

        worker = W()
        worker.queue = deque([a, b, c])
        assert policy.next_local(worker) is b
        assert list(worker.queue) == [a, c]


class TestPolicySweep:
    def test_all_registered_policies_run_end_to_end(self):
        results = run_policy_sweep(
            registered_policies(), n_tasks=12, items_per_task=10, cores=4
        )
        assert set(results) == set(registered_policies())
        for result in results.values():
            assert result.makespan_ms > 0
            assert result.light_mean_ms <= result.makespan_ms

    def test_sweep_accepts_instances(self):
        results = run_policy_sweep(
            [BatchPolicy(k=4), CooperativePolicy()],
            n_tasks=8,
            items_per_task=8,
            cores=2,
        )
        assert set(results) == {"batch", "cooperative"}

    def test_sweep_keeps_same_named_instances_apart(self):
        """Parameter sweeps over one policy class must not silently
        overwrite each other's results."""
        results = run_policy_sweep(
            [BatchPolicy(k=1), BatchPolicy(k=16)],
            n_tasks=8,
            items_per_task=16,
            cores=2,
        )
        assert set(results) == {"batch", "batch#2"}
        # k=1 pays SCHEDULE_US per item, k=16 amortises it.
        assert results["batch#2"].makespan_ms < results["batch"].makespan_ms


class TestDeadlinePolicy:
    def test_rejects_bad_parameters(self):
        with pytest.raises(RuntimeFlickError):
            DeadlinePolicy(default_slo_us=0.0)
        with pytest.raises(RuntimeFlickError):
            DeadlinePolicy(timeslice_us=50.0, min_budget_us=60.0)
        with pytest.raises(RuntimeFlickError):
            DeadlinePolicy(min_budget_us=0.0)

    def test_next_local_pops_earliest_deadline(self):
        from collections import deque

        policy = DeadlinePolicy()
        a, b, c = (_ItemTask(n, 1, 1.0) for n in "abc")
        a.slo_us, b.slo_us, c.slo_us = 100.0, 5.0, 50.0

        class W:
            pass

        worker = W()
        worker.queue = deque([a, b, c])
        assert policy.next_local(worker) is b
        assert list(worker.queue) == [a, c]

    def test_select_victim_holds_globally_earliest_deadline(self):
        from collections import deque

        policy = DeadlinePolicy()
        urgent = _ItemTask("urgent", 1, 1.0)
        urgent.slo_us = 1.0
        lax = [_ItemTask(f"lax{i}", 1, 1.0) for i in range(3)]
        for task in lax:
            task.slo_us = 500.0
        workers = [_FakeWorker(0, 0), _FakeWorker(1, 0), _FakeWorker(2, 0)]
        workers[1].queue = deque(lax)  # longest queue...
        workers[2].queue = deque([urgent])  # ...but not the tightest SLO
        assert policy.select_victim(workers[0], workers) is workers[2]

    def test_steal_hands_over_the_earliest_deadline_task(self):
        """select_victim leaves the earliest-deadline task at the head
        of the victim's queue, since that is what the mechanism steals —
        a FIFO-head steal would invert EDF priority."""
        from collections import deque

        policy = DeadlinePolicy()
        lax = _ItemTask("lax", 1, 1.0)
        lax.slo_us = 10_000.0
        urgent = _ItemTask("urgent", 1, 1.0)
        urgent.slo_us = 50.0
        thief, victim = _FakeWorker(0, 0), _FakeWorker(1, 0)
        victim.queue = deque([lax, urgent])
        assert policy.select_victim(thief, [thief, victim]) is victim
        assert victim.queue[0] is urgent

    def test_budget_is_slack_clamped_to_timeslice(self):
        policy = DeadlinePolicy(timeslice_us=50.0, min_budget_us=5.0)
        relaxed = _ItemTask("relaxed", 1, 1.0)
        relaxed.slo_us = 1000.0
        tight = _ItemTask("tight", 1, 1.0)
        tight.slo_us = 2.0
        # No engine bound: now == 0, slack == slo.
        assert policy.budget(relaxed) == 50.0
        assert policy.budget(tight) == 5.0  # floored, still progresses
        assert policy.max_budget_us() == 50.0

    def test_deadline_clock_restarts_after_drain(self):
        policy = DeadlinePolicy(default_slo_us=100.0)
        engine = Engine()
        policy._bound_engine = engine
        task = _ItemTask("t", 1, 1.0)
        assert policy.deadline_of(task) == 100.0
        task.remaining = 0
        policy.on_task_done(task, None, 1.0)  # drained: deadline dropped
        engine.now = 50.0
        task.remaining = 1
        assert policy.deadline_of(task) == 150.0  # new SLO clock

    def test_configure_adopts_runtime_slo(self):
        from repro.runtime.costs import RuntimeConfig

        policy = DeadlinePolicy(default_slo_us=10_000.0)
        policy.configure(RuntimeConfig(slo_us=321.0))
        assert policy.default_slo_us == 321.0
        policy.configure(RuntimeConfig())  # slo_us=None keeps the last SLO
        assert policy.default_slo_us == 321.0

    def test_frees_light_tasks_faster_than_cooperative(self):
        """Size-proportional SLOs give EDF the signal to run light
        tasks (tight deadlines) ahead of heavy ones."""
        coop = run_scheduling_experiment(
            "cooperative", n_tasks=24, items_per_task=40, cores=4
        )
        edf = run_scheduling_experiment(
            "deadline", n_tasks=24, items_per_task=40, cores=4
        )
        assert edf.light_mean_ms < 0.75 * coop.light_mean_ms
        assert edf.makespan_ms == pytest.approx(coop.makespan_ms, rel=0.05)


class _SocketWorker(_FakeWorker):
    def __init__(self, index, queue_len, socket):
        super().__init__(index, queue_len)
        self.socket = socket


class TestNumaPolicy:
    def test_prefers_same_socket_victim(self):
        workers = [
            _SocketWorker(0, 0, 0),
            _SocketWorker(1, 2, 0),
            _SocketWorker(2, 9, 1),  # longer, but across the interconnect
        ]
        policy = NumaPolicy()
        assert policy.select_victim(workers[0], workers) is workers[1]

    def test_crosses_sockets_only_when_starved(self):
        workers = [
            _SocketWorker(0, 0, 0),
            _SocketWorker(1, 0, 0),
            _SocketWorker(2, 3, 1),
        ]
        policy = NumaPolicy()
        assert policy.select_victim(workers[0], workers) is workers[2]

    def test_place_honours_home_hint(self):
        workers = [_SocketWorker(i, 0, i // 2) for i in range(4)]
        task = _ItemTask("t", 1, 1.0)
        task.home_hint = 3
        assert NumaPolicy().place(task, workers) is workers[3]

    def test_place_balances_within_the_hashed_socket(self):
        from repro.core.ids import stable_hash

        workers = [
            _SocketWorker(0, 5, 0),
            _SocketWorker(1, 0, 0),
            _SocketWorker(2, 5, 1),
            _SocketWorker(3, 0, 1),
        ]
        task = _ItemTask("t", 1, 1.0)
        socket = stable_hash(task.task_id) % 2
        placed = NumaPolicy().place(task, workers)
        assert placed.socket == socket  # socket affinity is by hash...
        assert len(placed.queue) == 0  # ...core within it by load


class TestSchedulerTopology:
    def test_workers_labelled_with_sockets(self):
        sched = Scheduler(Engine(), 16, 50.0, "numa", topology="two-socket")
        sockets = [w.socket for w in sched._workers]
        assert sockets == [0] * 8 + [1] * 8
        assert sched.topology.name == "two-socket"

    def test_flat_default_is_all_socket_zero(self):
        sched = Scheduler(Engine(), 4, 50.0, "cooperative")
        assert all(w.socket == 0 for w in sched._workers)
        assert sched.topology is None

    def test_unknown_topology_name_rejected(self):
        with pytest.raises(RuntimeFlickError, match="unknown core topology"):
            Scheduler(Engine(), 4, 50.0, "cooperative", topology="mesh")

    def test_degenerate_topologies_rejected(self):
        from repro.net.stackprofiles import CoreTopology

        with pytest.raises(ValueError):
            CoreTopology("x", sockets=0, cores_per_socket=4,
                         remote_steal_penalty_us=1.0)
        with pytest.raises(ValueError):
            CoreTopology("x", sockets=2, cores_per_socket=0,
                         remote_steal_penalty_us=1.0)
        with pytest.raises(ValueError):
            CoreTopology("x", sockets=2, cores_per_socket=4,
                         remote_steal_penalty_us=-1.0)

    def test_remote_steals_charged_the_penalty(self):
        from repro.net.stackprofiles import CoreTopology
        from repro.runtime.costs import STEAL_US

        tiny = CoreTopology(
            name="tiny", sockets=2, cores_per_socket=1,
            remote_steal_penalty_us=5.0,
        )
        engine = Engine()
        sched = Scheduler(engine, 2, 50.0, "cooperative", topology=tiny)
        tasks = [_ItemTask(f"t{i}", 30, 2.0) for i in range(4)]
        for task in tasks:
            task.home_hint = 0  # all work lands on socket-0's core
        sched.start()
        for task in tasks:
            sched.notify_runnable(task)
        engine.run()
        assert all(t.remaining == 0 for t in tasks)
        # Worker 1 (socket 1) can only steal remotely, paying the
        # penalty on every steal operation.
        assert sched.total_steals > 0
        assert sched.total_steal_us == pytest.approx(
            sched.total_steals * (STEAL_US + 5.0)
        )


class TestAdaptiveTimeslicePolicy:
    def test_rejects_bad_parameters(self):
        with pytest.raises(RuntimeFlickError):
            AdaptiveTimeslicePolicy(min_us=0.0)
        with pytest.raises(RuntimeFlickError):
            AdaptiveTimeslicePolicy(min_us=80.0, max_us=20.0)
        with pytest.raises(RuntimeFlickError):
            AdaptiveTimeslicePolicy(depth_saturation=0.0)
        with pytest.raises(RuntimeFlickError):
            AdaptiveTimeslicePolicy(smoothing=0.0)

    def test_budget_starts_wide_open(self):
        policy = AdaptiveTimeslicePolicy(min_us=10.0, max_us=100.0)
        assert policy.budget(None) == 100.0
        assert policy.max_budget_us() == 100.0

    def test_band_defaults_scale_with_the_configured_timeslice(self):
        """The configured quantum is not ignored: it anchors the band
        (paper's 10-100 µs at the default 50 µs timeslice)."""
        default = AdaptiveTimeslicePolicy()
        assert (default.min_us, default.max_us) == (10.0, 100.0)
        scaled = AdaptiveTimeslicePolicy(timeslice_us=20.0)
        assert (scaled.min_us, scaled.max_us) == (4.0, 40.0)
        assert scaled.max_budget_us() == 40.0

    def test_deep_queues_shrink_the_budget_within_band(self):
        policy = AdaptiveTimeslicePolicy(min_us=10.0, max_us=100.0)
        worker = _FakeWorker(0, 40)
        previous = policy.budget(None)
        for _ in range(50):
            policy.on_task_done(None, worker, 1.0)
            budget = policy.budget(None)
            assert 10.0 <= budget <= previous  # monotone under pressure
            previous = budget
        assert previous == pytest.approx(10.0)  # saturated at the floor

    def test_empty_queues_grow_it_back(self):
        policy = AdaptiveTimeslicePolicy(min_us=10.0, max_us=100.0)
        deep, empty = _FakeWorker(0, 40), _FakeWorker(1, 0)
        for _ in range(50):
            policy.on_task_done(None, deep, 1.0)
        for _ in range(100):
            policy.on_task_done(None, empty, 1.0)
        assert policy.budget(None) == pytest.approx(100.0, rel=1e-3)

    def test_reset_restores_the_initial_budget(self):
        policy = AdaptiveTimeslicePolicy()
        for _ in range(20):
            policy.on_task_done(None, _FakeWorker(0, 40), 1.0)
        assert policy.budget(None) < 100.0
        policy.reset()
        assert policy.budget(None) == 100.0


class TestStealHalfPolicy:
    def test_steal_count_is_half_the_victim_queue(self):
        policy = StealHalfPolicy()
        assert policy.steal_count(None, _FakeWorker(1, 8)) == 4
        assert policy.steal_count(None, _FakeWorker(1, 9)) == 4
        assert policy.steal_count(None, _FakeWorker(1, 1)) == 1

    def test_batches_move_and_are_charged_once(self):
        from repro.runtime.costs import STEAL_US

        engine = Engine()
        sched = Scheduler(engine, 2, 50.0, "steal-half")
        tasks = [_ItemTask(f"t{i}", 20, 2.0) for i in range(8)]
        for task in tasks:
            task.home_hint = 0  # force an imbalance worth batch-stealing
        sched.start()
        for task in tasks:
            sched.notify_runnable(task)
        engine.run()
        assert all(t.remaining == 0 for t in tasks)
        # At least one steal moved more than one task, and the cost was
        # paid per operation, not per task.
        assert sched.total_stolen_tasks > sched.total_steals > 0
        assert sched.total_steal_us == pytest.approx(
            sched.total_steals * STEAL_US
        )

    def test_beats_single_steal_on_imbalanced_load(self):
        """With all work homed on one core, batch stealing rebalances in
        fewer (paid) steal operations than one-at-a-time stealing."""

        def steals(policy):
            engine = Engine()
            sched = Scheduler(engine, 4, 50.0, policy)
            tasks = [_ItemTask(f"t{i}", 16, 4.0) for i in range(16)]
            for task in tasks:
                task.home_hint = 0
            sched.start()
            for task in tasks:
                sched.notify_runnable(task)
            engine.run()
            assert all(t.remaining == 0 for t in tasks)
            return sched.total_steals

        assert steals("steal-half") < steals("cooperative")


class TestSweepDeterminism:
    def test_sweep_ignores_registry_order_and_prior_ids(self):
        """A `--policy all` sweep yields identical numbers whatever
        order the registry is iterated in and however many tasks the
        process created beforehand (TaskBase.reset_ids scoping)."""
        names = registered_policies()
        first = run_policy_sweep(
            names, n_tasks=16, items_per_task=12, cores=4
        )
        # Pollute the process-global id counter between sweeps.
        for i in range(37):
            _ItemTask(f"junk{i}", 1, 1.0)
        second = run_policy_sweep(
            tuple(reversed(names)), n_tasks=16, items_per_task=12, cores=4
        )
        assert set(first) == set(second) == set(names)
        for name in names:
            assert first[name].as_dict() == second[name].as_dict(), name


class TestPlatformPolicyThreading:
    def test_config_accepts_any_registered_name(self):
        from repro.runtime.costs import RuntimeConfig

        cfg = RuntimeConfig(policy="priority")
        assert cfg.policy == "priority"

    def test_config_accepts_instance(self):
        from repro.runtime.costs import RuntimeConfig

        policy = BatchPolicy(k=2)
        assert RuntimeConfig(policy=policy).policy is policy

    def test_config_rejects_unknown(self):
        from repro.runtime.costs import RuntimeConfig

        with pytest.raises(ValueError):
            RuntimeConfig(policy="fifo")
        with pytest.raises(ValueError):
            RuntimeConfig(policy=42)

    def test_platform_policy_override(self):
        from repro.net.simnet import GBPS
        from repro.net.tcp import TcpNetwork
        from repro.runtime.platform import FlickPlatform

        engine = Engine()
        net = TcpNetwork(engine)
        mbox = net.add_host("mbox", 10 * GBPS, "core")
        platform = FlickPlatform(engine, net, mbox, policy="locality")
        assert platform.scheduler.policy_name == "locality"

    def test_platform_accepts_policy_instance(self):
        from repro.net.simnet import GBPS
        from repro.net.tcp import TcpNetwork
        from repro.runtime.platform import FlickPlatform

        engine = Engine()
        net = TcpNetwork(engine)
        mbox = net.add_host("mbox", 10 * GBPS, "core")
        policy = BatchPolicy(k=4)
        platform = FlickPlatform(engine, net, mbox, policy=policy)
        assert platform.scheduler.policy is policy

    def test_config_validates_slo(self):
        from repro.runtime.costs import RuntimeConfig

        assert RuntimeConfig(slo_us=500.0).slo_us == 500.0
        with pytest.raises(ValueError):
            RuntimeConfig(slo_us=0.0)
        with pytest.raises(ValueError):
            RuntimeConfig(slo_us=-3.0)

    def test_config_validates_topology(self):
        from repro.net.stackprofiles import TWO_SOCKET
        from repro.runtime.costs import RuntimeConfig

        assert RuntimeConfig(topology="two-socket").topology == "two-socket"
        assert RuntimeConfig(topology=TWO_SOCKET).topology is TWO_SOCKET
        with pytest.raises(ValueError):
            RuntimeConfig(topology="mesh")
        with pytest.raises(ValueError):
            RuntimeConfig(topology=42)

    def test_platform_threads_topology_and_slo(self):
        from repro.net.simnet import GBPS
        from repro.net.tcp import TcpNetwork
        from repro.runtime.costs import RuntimeConfig
        from repro.runtime.platform import FlickPlatform

        engine = Engine()
        net = TcpNetwork(engine)
        mbox = net.add_host("mbox", 10 * GBPS, "core")
        config = RuntimeConfig(
            policy="deadline", slo_us=750.0, topology="two-socket"
        )
        platform = FlickPlatform(engine, net, mbox, config=config)
        # The scheduler consumed the topology and labelled its workers...
        assert platform.scheduler.topology.name == "two-socket"
        assert {w.socket for w in platform.scheduler._workers} == {0, 1}
        # ...and configure() handed the platform SLO to the policy.
        assert platform.scheduler.policy.default_slo_us == 750.0

    def test_graph_stamps_per_connection_slo(self):
        from repro.runtime.costs import RuntimeConfig
        from repro.runtime.graph import TaskGraph

        # _add_task is the single funnel every connection task passes
        # through; exercise it directly on a bare instance.
        graph = object.__new__(TaskGraph)
        graph.config = RuntimeConfig(slo_us=750.0)
        graph.tasks = []
        task = _ItemTask("t", 1, 1.0)
        graph._add_task(task)
        assert task.slo_us == 750.0
        graph.config = RuntimeConfig()  # no SLO: tasks stay unstamped
        bare = _ItemTask("u", 1, 1.0)
        graph._add_task(bare)
        assert not hasattr(bare, "slo_us")

    def test_task_ids_stay_unique_across_platforms(self):
        """Building a second platform must not reset the process-global
        id counter: live tasks of the first platform would collide."""
        from repro.net.simnet import GBPS
        from repro.net.tcp import TcpNetwork
        from repro.runtime.platform import FlickPlatform

        engine = Engine()
        net = TcpNetwork(engine)
        before = _ItemTask("before", 1, 1.0)
        FlickPlatform(
            engine, net, net.add_host("a", 10 * GBPS, "core")
        )
        between = _ItemTask("between", 1, 1.0)
        FlickPlatform(
            engine, net, net.add_host("b", 10 * GBPS, "core")
        )
        after = _ItemTask("after", 1, 1.0)
        assert before.task_id < between.task_id < after.task_id
