"""Scheduling-policy layer: registry, golden parity, new policies.

The GOLDEN numbers below were produced by the pre-refactor scheduler
(policy branches hard-coded in ``Scheduler._budget``) on the Figure-7
workload at 60 tasks x 80 items on 8 cores.  The policy/mechanism split
must reproduce them bit-for-bit: any drift means the mechanism no longer
matches the paper's evaluation.
"""

import pytest

from repro.bench.scheduling import (
    resolve_policy_selection,
    run_policy_sweep,
    run_scheduling_experiment,
)
from repro.core.errors import RuntimeFlickError
from repro.runtime.policy import (
    PAPER_POLICIES,
    BatchPolicy,
    CooperativePolicy,
    LocalityPolicy,
    PriorityPolicy,
    SchedulingPolicy,
    make_policy,
    register_policy,
    registered_policies,
    resolve_policy,
)
from repro.runtime.scheduler import Scheduler, TaskBase
from repro.sim.engine import Engine

GOLDEN = {
    "cooperative": {
        "light_mean_ms": 2.8394464000000004,
        "heavy_mean_ms": 19.77924613333334,
        "light_max_ms": 3.102192000000002,
        "heavy_max_ms": 21.054784000000012,
        "makespan_ms": 21.054784000000012,
    },
    "non_cooperative": {
        "light_mean_ms": 8.127984000000001,
        "heavy_mean_ms": 13.349572000000009,
        "light_max_ms": 17.04216000000001,
        "heavy_max_ms": 22.286340000000013,
        "makespan_ms": 22.286340000000013,
    },
    "round_robin": {
        "light_mean_ms": 19.419434666666554,
        "heavy_mean_ms": 20.050810133333233,
        "light_max_ms": 20.799919999999908,
        "heavy_max_ms": 21.182947999999918,
        "makespan_ms": 21.182947999999918,
    },
}


class TestRegistry:
    def test_paper_policies_registered(self):
        names = registered_policies()
        for name in PAPER_POLICIES:
            assert name in names

    def test_new_policies_registered(self):
        names = registered_policies()
        for name in ("locality", "batch", "priority"):
            assert name in names

    def test_paper_policies_listed_first(self):
        assert registered_policies()[:3] == PAPER_POLICIES

    def test_make_policy_unknown_rejected(self):
        with pytest.raises(RuntimeFlickError):
            make_policy("fifo")

    def test_resolve_accepts_instance(self):
        policy = CooperativePolicy(timeslice_us=25.0)
        assert resolve_policy(policy) is policy

    def test_resolve_accepts_name(self):
        policy = resolve_policy("cooperative", timeslice_us=30.0)
        assert isinstance(policy, CooperativePolicy)
        assert policy.timeslice_us == 30.0

    def test_resolve_rejects_garbage(self):
        with pytest.raises(RuntimeFlickError):
            resolve_policy(42)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RuntimeFlickError):
            @register_policy
            class Clash(SchedulingPolicy):
                name = "cooperative"

    def test_scheduler_exposes_policy_name(self):
        sched = Scheduler(Engine(), 2, 50.0, "locality")
        assert sched.policy_name == "locality"
        assert isinstance(sched.policy, LocalityPolicy)

    def test_selection_spec_parsing(self):
        assert resolve_policy_selection("paper") == PAPER_POLICIES
        assert resolve_policy_selection("all") == registered_policies()
        assert resolve_policy_selection("batch, priority") == (
            "batch",
            "priority",
        )

    def test_selection_spec_empty_rejected(self):
        with pytest.raises(RuntimeFlickError):
            resolve_policy_selection(",")

    def test_selection_spec_typo_rejected_before_any_run(self):
        with pytest.raises(RuntimeFlickError, match="roud_robin"):
            resolve_policy_selection("cooperative,roud_robin")


class TestCliPolicyFlag:
    def test_unknown_policy_is_a_clean_error(self, capsys):
        from repro.bench.cli import main

        assert main(["fig7", "--quick", "--policy", "fifo"]) == 2
        captured = capsys.readouterr()
        assert "unknown scheduling policy 'fifo'" in captured.err
        assert "Traceback" not in captured.err

    def test_empty_policy_is_a_clean_error(self, capsys):
        from repro.bench.cli import main

        assert main(["fig7", "--quick", "--policy", ","]) == 2
        assert "selects no policies" in capsys.readouterr().err

    def test_policy_typo_rejected_before_any_target_runs(self, capsys):
        from repro.bench.cli import main

        assert main(["all", "--quick", "--policy", "fifo"]) == 2
        captured = capsys.readouterr()
        assert "unknown scheduling policy" in captured.err
        # No experiment output: the typo was caught before e1/fig4/...
        assert "E1" not in captured.out
        assert "Figure" not in captured.out


class TestGoldenParity:
    """The three paper policies reproduce the pre-refactor Figure-7
    numbers exactly."""

    @pytest.mark.parametrize("policy", PAPER_POLICIES)
    def test_figure7_parity(self, policy):
        result = run_scheduling_experiment(
            policy, n_tasks=60, items_per_task=80, cores=8
        )
        for field, want in GOLDEN[policy].items():
            got = getattr(result, field)
            assert got == pytest.approx(want, rel=0, abs=1e-9), (
                f"{policy}.{field}: {got!r} != golden {want!r}"
            )

    def test_parity_stable_across_repeats(self):
        first = run_scheduling_experiment(
            "cooperative", n_tasks=40, items_per_task=40, cores=4
        )
        second = run_scheduling_experiment(
            "cooperative", n_tasks=40, items_per_task=40, cores=4
        )
        assert first.as_dict() == second.as_dict()


class _FakeWorker:
    def __init__(self, index, queue_len):
        self.index = index
        self.queue = [object()] * queue_len


class TestVictimSelection:
    def test_default_steals_longest(self):
        workers = [_FakeWorker(0, 0), _FakeWorker(1, 1), _FakeWorker(2, 3)]
        policy = CooperativePolicy()
        assert policy.select_victim(workers[0], workers) is workers[2]

    def test_default_skips_self_and_empty(self):
        workers = [_FakeWorker(0, 5), _FakeWorker(1, 0)]
        policy = CooperativePolicy()
        assert policy.select_victim(workers[0], workers) is None

    def test_locality_steals_nearest(self):
        workers = [
            _FakeWorker(0, 0),
            _FakeWorker(1, 1),
            _FakeWorker(2, 0),
            _FakeWorker(3, 3),
        ]
        policy = LocalityPolicy()
        # Longest queue is worker 3, but worker 1 is nearer to worker 0.
        assert policy.select_victim(workers[0], workers) is workers[1]

    def test_locality_wraps_around_the_ring(self):
        workers = [
            _FakeWorker(0, 2),
            _FakeWorker(1, 0),
            _FakeWorker(2, 0),
            _FakeWorker(3, 0),
        ]
        policy = LocalityPolicy()
        assert policy.select_victim(workers[3], workers) is workers[0]
        # worker 1's nearest non-empty neighbour is worker 0 (distance 3).
        assert policy.select_victim(workers[1], workers) is workers[0]


class _ItemTask(TaskBase):
    def __init__(self, name, n, cost_us):
        super().__init__(name)
        self.remaining = n
        self.cost_us = cost_us

    def has_work(self):
        return self.remaining > 0

    def step(self, budget_us):
        elapsed = 0.0
        while self.remaining > 0:
            self.remaining -= 1
            elapsed += self.cost_us
            self.items_processed += 1
            if budget_us == 0.0:
                break
            if budget_us is not None and elapsed >= budget_us:
                break
        self.busy_us += elapsed
        return elapsed, []


class TestBatchPolicy:
    def test_rejects_bad_batch_size(self):
        with pytest.raises(RuntimeFlickError):
            BatchPolicy(k=0)

    def test_amortises_schedule_cost(self):
        """k items per decision => ~1/k the decisions of round robin."""

        def decisions(policy):
            engine = Engine()
            sched = Scheduler(engine, 2, 50.0, policy)
            tasks = [_ItemTask(f"t{i}", 64, 2.0) for i in range(4)]
            sched.start()
            for t in tasks:
                sched.notify_runnable(t)
            engine.run()
            assert all(t.remaining == 0 for t in tasks)
            return sched.tasks_executed

        rr = decisions("round_robin")
        batched = decisions(BatchPolicy(k=8))
        assert batched < rr / 4

    def test_batch_beats_round_robin_makespan(self):
        rr = run_scheduling_experiment(
            "round_robin", n_tasks=20, items_per_task=50, cores=4
        )
        batch = run_scheduling_experiment(
            "batch", n_tasks=20, items_per_task=50, cores=4
        )
        assert batch.makespan_ms < rr.makespan_ms


class TestPriorityPolicy:
    def test_light_tasks_not_starved(self):
        """On one core, weighted picking gets light tasks out well before
        plain FIFO-cooperative does, at equal makespan."""
        coop = run_scheduling_experiment(
            "cooperative", n_tasks=8, items_per_task=40, cores=1
        )
        prio = run_scheduling_experiment(
            "priority", n_tasks=8, items_per_task=40, cores=1
        )
        assert prio.light_mean_ms < 0.75 * coop.light_mean_ms
        assert prio.makespan_ms == pytest.approx(coop.makespan_ms, rel=0.05)

    def test_ewma_tracks_cost(self):
        policy = PriorityPolicy(smoothing=0.5)
        task = _ItemTask("t", 1, 1.0)
        policy.on_task_done(task, None, 10.0)
        policy.on_task_done(task, None, 20.0)
        assert policy._mean_cost[task.task_id] == pytest.approx(15.0)

    def test_scheduler_adopts_instance_timeslice(self):
        """A passed-in instance keeps its own budget, and the scheduler
        reports the effective value instead of the ignored argument."""
        sched = Scheduler(
            Engine(), 1, timeslice_us=10.0,
            policy=CooperativePolicy(timeslice_us=25.0),
        )
        assert sched.timeslice_us == 25.0
        assert sched.policy.budget(None) == 25.0
        # Name specs still take the scheduler's timeslice.
        sched = Scheduler(Engine(), 1, timeslice_us=10.0, policy="cooperative")
        assert sched.timeslice_us == 10.0
        assert sched.policy.budget(None) == 10.0

    def test_instance_shared_across_live_engines_rejected(self):
        """An engine with events still in flight counts as live: its
        policy instance cannot be adopted by another scheduler."""
        policy = PriorityPolicy()
        engine_a = Engine()
        sched_a = Scheduler(engine_a, 2, 50.0, policy)
        sched_a.start()  # worker processes now pending on engine_a
        with pytest.raises(RuntimeFlickError):
            Scheduler(Engine(), 2, 50.0, policy)
        engine_a.run()  # drains: sequential reuse becomes legal again
        Scheduler(Engine(), 2, 50.0, policy)

    def test_experiment_preserves_id_monotonicity(self):
        """run_scheduling_experiment scopes ids internally but restores
        a monotonic counter, so tasks created after it can never collide
        with tasks created before it."""
        before = _ItemTask("before", 1, 1.0)
        run_scheduling_experiment(
            "cooperative", n_tasks=20, items_per_task=5, cores=2
        )
        after = _ItemTask("after", 1, 1.0)
        assert after.task_id > before.task_id
        assert after.task_id > 20  # past the experiment's id range too

    def test_instance_shared_within_one_simulation_rejected(self):
        """Two schedulers on the same engine must not share one policy's
        mutable state; sequential reuse (fresh engine) stays allowed."""
        engine = Engine()
        policy = PriorityPolicy()
        Scheduler(engine, 2, 50.0, policy)
        with pytest.raises(RuntimeFlickError):
            Scheduler(engine, 2, 50.0, policy)
        # A fresh engine (a new run) may adopt the same instance.
        Scheduler(Engine(), 2, 50.0, policy)

    def test_completed_tasks_evicted_from_cost_map(self):
        """Priority's EWMA map stays bounded: entries are dropped once a
        task has nothing queued."""
        policy = PriorityPolicy()
        task = _ItemTask("t", 1, 1.0)
        policy.on_task_done(task, None, 5.0)
        assert task.task_id in policy._mean_cost
        task.remaining = 0
        policy.on_task_done(task, None, 5.0)
        assert task.task_id not in policy._mean_cost

    def test_reused_instance_is_deterministic(self):
        """A scheduler adopting a policy resets its learned state, so a
        reused instance cannot leak EWMA costs across runs (task ids are
        recycled per run and would collide)."""
        policy = PriorityPolicy()
        first = run_scheduling_experiment(
            policy, n_tasks=8, items_per_task=40, cores=1
        )
        second = run_scheduling_experiment(
            policy, n_tasks=8, items_per_task=40, cores=1
        )
        assert first.as_dict() == second.as_dict()

    def test_next_local_pops_cheapest_and_keeps_order(self):
        from collections import deque

        policy = PriorityPolicy()
        a, b, c = (_ItemTask(n, 1, 1.0) for n in "abc")
        policy.on_task_done(a, None, 30.0)
        policy.on_task_done(b, None, 5.0)
        policy.on_task_done(c, None, 20.0)

        class W:
            pass

        worker = W()
        worker.queue = deque([a, b, c])
        assert policy.next_local(worker) is b
        assert list(worker.queue) == [a, c]


class TestPolicySweep:
    def test_all_registered_policies_run_end_to_end(self):
        results = run_policy_sweep(
            registered_policies(), n_tasks=12, items_per_task=10, cores=4
        )
        assert set(results) == set(registered_policies())
        for result in results.values():
            assert result.makespan_ms > 0
            assert result.light_mean_ms <= result.makespan_ms

    def test_sweep_accepts_instances(self):
        results = run_policy_sweep(
            [BatchPolicy(k=4), CooperativePolicy()],
            n_tasks=8,
            items_per_task=8,
            cores=2,
        )
        assert set(results) == {"batch", "cooperative"}

    def test_sweep_keeps_same_named_instances_apart(self):
        """Parameter sweeps over one policy class must not silently
        overwrite each other's results."""
        results = run_policy_sweep(
            [BatchPolicy(k=1), BatchPolicy(k=16)],
            n_tasks=8,
            items_per_task=16,
            cores=2,
        )
        assert set(results) == {"batch", "batch#2"}
        # k=1 pays SCHEDULE_US per item, k=16 amortises it.
        assert results["batch#2"].makespan_ms < results["batch"].makespan_ms


class TestPlatformPolicyThreading:
    def test_config_accepts_any_registered_name(self):
        from repro.runtime.costs import RuntimeConfig

        cfg = RuntimeConfig(policy="priority")
        assert cfg.policy == "priority"

    def test_config_accepts_instance(self):
        from repro.runtime.costs import RuntimeConfig

        policy = BatchPolicy(k=2)
        assert RuntimeConfig(policy=policy).policy is policy

    def test_config_rejects_unknown(self):
        from repro.runtime.costs import RuntimeConfig

        with pytest.raises(ValueError):
            RuntimeConfig(policy="fifo")
        with pytest.raises(ValueError):
            RuntimeConfig(policy=42)

    def test_platform_policy_override(self):
        from repro.net.simnet import GBPS
        from repro.net.tcp import TcpNetwork
        from repro.runtime.platform import FlickPlatform

        engine = Engine()
        net = TcpNetwork(engine)
        mbox = net.add_host("mbox", 10 * GBPS, "core")
        platform = FlickPlatform(engine, net, mbox, policy="locality")
        assert platform.scheduler.policy_name == "locality"

    def test_platform_accepts_policy_instance(self):
        from repro.net.simnet import GBPS
        from repro.net.tcp import TcpNetwork
        from repro.runtime.platform import FlickPlatform

        engine = Engine()
        net = TcpNetwork(engine)
        mbox = net.add_host("mbox", 10 * GBPS, "core")
        policy = BatchPolicy(k=4)
        platform = FlickPlatform(engine, net, mbox, policy=policy)
        assert platform.scheduler.policy is policy

    def test_task_ids_stay_unique_across_platforms(self):
        """Building a second platform must not reset the process-global
        id counter: live tasks of the first platform would collide."""
        from repro.net.simnet import GBPS
        from repro.net.tcp import TcpNetwork
        from repro.runtime.platform import FlickPlatform

        engine = Engine()
        net = TcpNetwork(engine)
        before = _ItemTask("before", 1, 1.0)
        FlickPlatform(
            engine, net, net.add_host("a", 10 * GBPS, "core")
        )
        between = _ItemTask("between", 1, 1.0)
        FlickPlatform(
            engine, net, net.add_host("b", 10 * GBPS, "core")
        )
        after = _ItemTask("after", 1, 1.0)
        assert before.task_id < between.task_id < after.task_id
