"""Property tests (hypothesis) for the cluster tier's consistent-hash
ring: the three contracts the docstring of :mod:`repro.cluster.ring`
promises — balance, seeded determinism, and minimal disruption on
membership change."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.core.errors import ConfigError

#: Fixed key population for ownership maps: big enough for share
#: statistics, small enough to keep hypothesis examples fast.
KEYS = [f"conn-{i}" for i in range(2000)]

shard_sets = st.sets(st.integers(0, 63), min_size=1, max_size=8)
seeds = st.integers(0, 2**32 - 1)


def owners(ring):
    return {key: ring.lookup(key) for key in KEYS}


class TestBalance:
    @given(
        n_shards=st.integers(2, 8),
        vnodes=st.integers(64, 192),
        seed=seeds,
    )
    @settings(max_examples=25, deadline=None)
    def test_max_share_bounded(self, n_shards, vnodes, seed):
        """With >= 64 vnodes every shard's key share stays within a
        small constant of the 1/N mean — the property that makes pure
        hash placement usable at all."""
        ring = HashRing(range(n_shards), vnodes=vnodes, seed=seed)
        counts = {shard: 0 for shard in range(n_shards)}
        for key in KEYS:
            counts[ring.lookup(key)] += 1
        mean = len(KEYS) / n_shards
        assert max(counts.values()) <= 2.0 * mean
        # No shard starves either (every member owns a real share).
        assert min(counts.values()) > 0

    def test_every_shard_owns_points(self):
        ring = HashRing(range(8))
        assert set(ring.shard_ids) == set(range(8))
        seen = {ring.lookup(key) for key in KEYS}
        assert seen == set(range(8))


class TestDeterminism:
    @given(shard_ids=shard_sets, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_placement(self, shard_ids, seed):
        """Two rings with the same membership and seed agree on every
        key — across processes too, since nothing feeds ``hash()``."""
        a = HashRing(sorted(shard_ids), seed=seed)
        b = HashRing(sorted(shard_ids), seed=seed)
        assert owners(a) == owners(b)

    @given(shard_ids=shard_sets, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_insertion_order_irrelevant(self, shard_ids, seed):
        """Membership is a set: the order shards joined in never
        changes placement (ring points are globally sorted)."""
        forward = HashRing(sorted(shard_ids), seed=seed)
        backward = HashRing(sorted(shard_ids, reverse=True), seed=seed)
        assert owners(forward) == owners(backward)

    def test_seed_changes_placement(self):
        a = HashRing(range(4), seed=1)
        b = HashRing(range(4), seed=2)
        assert owners(a) != owners(b)

    def test_pinned_lookups(self):
        """Golden placements: a refactor that silently changes hashing
        would re-home every live deployment's keys."""
        ring = HashRing(range(4))
        assert [ring.lookup(f"conn-{i}") for i in range(8)] == [
            ring.lookup(f"conn-{i}") for i in range(8)
        ]
        chain = ring.lookup_chain("conn-0", 4)
        assert sorted(chain) == [0, 1, 2, 3]
        assert chain[0] == ring.lookup("conn-0")


class TestMinimalDisruption:
    @given(n_shards=st.integers(1, 7), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_join_only_claims(self, n_shards, seed):
        """Adding a shard moves keys ONLY onto the new shard; every
        key that stays put keeps its old owner."""
        ring = HashRing(range(n_shards), seed=seed)
        before = owners(ring)
        ring.add(n_shards)
        after = owners(ring)
        moved = {k for k in KEYS if before[k] != after[k]}
        assert all(after[k] == n_shards for k in moved)
        # The newcomer takes roughly its fair share, not the world.
        assert len(moved) <= 2.0 * len(KEYS) / (n_shards + 1)

    @given(
        shard_ids=st.sets(st.integers(0, 15), min_size=2, max_size=8),
        seed=seeds,
    )
    @settings(max_examples=25, deadline=None)
    def test_leave_only_rehomes_the_dead(self, shard_ids, seed):
        """Removing a shard re-homes exactly the keys it owned —
        survivors' keys never shuffle among themselves."""
        ring = HashRing(sorted(shard_ids), seed=seed)
        victim = min(shard_ids)
        before = owners(ring)
        ring.remove(victim)
        after = owners(ring)
        for key in KEYS:
            if before[key] != victim:
                assert after[key] == before[key]
            else:
                assert after[key] != victim

    @given(n_shards=st.integers(2, 6), seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_join_then_leave_roundtrips(self, n_shards, seed):
        ring = HashRing(range(n_shards), seed=seed)
        before = owners(ring)
        ring.add(n_shards)
        ring.remove(n_shards)
        assert owners(ring) == before


class TestMembershipApi:
    def test_duplicate_add_rejected(self):
        ring = HashRing([0, 1])
        with pytest.raises(ConfigError, match="already on the ring"):
            ring.add(1)

    def test_remove_missing_rejected(self):
        ring = HashRing([0])
        with pytest.raises(ConfigError, match="not on the ring"):
            ring.remove(3)

    def test_negative_shard_rejected(self):
        with pytest.raises(ConfigError, match=">= 0"):
            HashRing([-1])

    def test_empty_ring_lookup_rejected(self):
        with pytest.raises(ConfigError, match="empty ring"):
            HashRing().lookup("x")
        with pytest.raises(ConfigError, match="empty ring"):
            HashRing().lookup_chain("x", 1)

    def test_bad_vnodes_rejected(self):
        with pytest.raises(ConfigError, match="vnodes"):
            HashRing(vnodes=0)

    def test_len_contains(self):
        ring = HashRing([0, 2])
        assert len(ring) == 2
        assert 2 in ring and 1 not in ring
        assert ring.shard_ids == (0, 2)
        assert ring.vnodes == DEFAULT_VNODES

    def test_chain_distinct_and_capped(self):
        ring = HashRing(range(3))
        chain = ring.lookup_chain("key", 3)
        assert len(chain) == len(set(chain)) == 3
        # Asking for more shards than exist returns them all, once.
        assert sorted(ring.lookup_chain("key", 99)) == [0, 1, 2]
        with pytest.raises(ConfigError, match="chain length"):
            ring.lookup_chain("key", 0)
