"""Cluster tier: routing-policy registry/decisions, shard-router
mechanism, fleet scoreboard, and end-to-end sharded runs (including
mid-run shard failure) over the simulated network."""

from collections import namedtuple

import pytest

from repro.bench.testbeds import run_http_experiment
from repro.cluster import (
    FleetView,
    HashRing,
    RoutingPolicy,
    ShardRouter,
    ShardSnapshot,
    closest_routing_name,
    make_routing,
    registered_routings,
    resolve_routing,
)
from repro.cluster.routing import register_routing
from repro.core.errors import ConfigError, SimulationError
from repro.core.units import GBPS
from repro.net.tcp import TcpNetwork
from repro.sim.engine import Engine
from repro.workloads.arrivals import make_arrival

_Record = namedtuple("_Record", "service_class latency_us missed")


class _StubBoard:
    total_completions = 0

    def __init__(self, latencies_us=()):
        self.records = [
            _Record("default", latency, False) for latency in latencies_us
        ]


def _snapshot(index, **kw):
    defaults = dict(
        index=index, alive=True, connections=0, routed=0, backlog=0,
        active_workers=4, slo_us=2000.0, scoreboard=_StubBoard(),
    )
    defaults.update(kw)
    return ShardSnapshot(**defaults)


def _view(snapshots, ring=None):
    if ring is None:
        ring = HashRing([s.index for s in snapshots if s.alive])
    return FleetView(now_us=0.0, ring=ring, shards=tuple(snapshots))


class _StubScheduler:
    def queue_depths(self):
        return (0,)

    active_workers = 1


class _StubConfig:
    slo_us = None


class _StubPlatform:
    def __init__(self, host):
        self.host = host
        self.scheduler = _StubScheduler()
        self.config = _StubConfig()
        self.scoreboard = _StubBoard()


class TestRoutingRegistry:
    def test_builtins_registered_default_first(self):
        names = registered_routings()
        assert names[0] == "hash-affinity"
        assert set(names) >= {
            "hash-affinity", "least-loaded", "rebalance-watermark",
        }

    def test_unknown_name_gets_near_miss(self):
        with pytest.raises(ConfigError) as excinfo:
            make_routing("least-loadd")
        assert "did you mean 'least-loaded'?" in str(excinfo.value)
        assert closest_routing_name("hash-afinity") == "hash-affinity"

    def test_bad_params_rejected_with_policy_name(self):
        with pytest.raises(ConfigError, match="least-loaded"):
            make_routing("least-loaded", nonsense=3)

    def test_resolve_accepts_instances_and_names_only(self):
        policy = make_routing("hash-affinity")
        assert resolve_routing(policy) is policy
        assert resolve_routing("least-loaded").name == "least-loaded"
        with pytest.raises(ConfigError, match="name or RoutingPolicy"):
            resolve_routing(42)

    def test_duplicate_and_abstract_names_rejected(self):
        with pytest.raises(ConfigError, match="registered twice"):
            @register_routing
            class Dup(RoutingPolicy):  # pragma: no cover - rejected
                name = "hash-affinity"
        with pytest.raises(ConfigError, match="needs a name"):
            @register_routing
            class Nameless(RoutingPolicy):  # pragma: no cover - rejected
                name = "abstract"


class TestHashAffinityPolicy:
    def test_is_the_pure_ring_owner(self):
        policy = make_routing("hash-affinity")
        view = _view([_snapshot(0), _snapshot(1), _snapshot(2)])
        for i in range(50):
            key = f"conn-{i}"
            assert policy.choose_shard(key, view) == view.ring.lookup(key)


class TestLeastLoadedPolicy:
    def test_picks_the_less_loaded_of_two_candidates(self):
        policy = make_routing("least-loaded")
        ring = HashRing([0, 1])
        first, second = ring.lookup_chain("conn-7", 2)
        loads = {first: 10, second: 2}
        view = _view(
            [_snapshot(i, connections=loads[i]) for i in (0, 1)], ring=ring
        )
        assert policy.choose_shard("conn-7", view) == second

    def test_tie_goes_to_the_ring_owner(self):
        policy = make_routing("least-loaded")
        ring = HashRing([0, 1])
        view = _view([_snapshot(0), _snapshot(1)], ring=ring)
        assert policy.choose_shard("conn-7", view) == ring.lookup("conn-7")

    def test_single_shard_chain_degenerates_to_lookup(self):
        policy = make_routing("least-loaded")
        view = _view([_snapshot(0, connections=99)])
        assert policy.choose_shard("anything", view) == 0


class TestRebalanceWatermarkPolicy:
    def test_below_watermark_stays_home(self):
        policy = make_routing("rebalance-watermark", queue_watermark=8.0)
        view = _view([_snapshot(0, backlog=4), _snapshot(1, backlog=4)])
        home = view.ring.lookup("conn-3")
        assert policy.choose_shard("conn-3", view) == home

    def test_queue_saturation_diverts_to_least_backlogged(self):
        policy = make_routing("rebalance-watermark", queue_watermark=2.0)
        ring = HashRing([0, 1, 2])
        home = ring.lookup("conn-3")
        spare = min(i for i in (0, 1, 2) if i != home)
        backlogs = {home: 100, spare: 1}
        snapshots = [
            _snapshot(i, backlog=backlogs.get(i, 50)) for i in (0, 1, 2)
        ]
        view = _view(snapshots, ring=ring)
        assert policy.choose_shard("conn-3", view) == spare

    def test_latency_eating_slo_headroom_diverts(self):
        policy = make_routing(
            "rebalance-watermark", headroom=0.5, window=4
        )
        ring = HashRing([0, 1])
        home = ring.lookup("conn-3")
        other = 1 - home
        snapshots = [None, None]
        # Home's recent completions sit at the SLO itself (>0.5 * slo).
        snapshots[home] = _snapshot(
            home, scoreboard=_StubBoard([2000.0] * 8), backlog=5
        )
        snapshots[other] = _snapshot(other, backlog=0)
        view = _view(snapshots, ring=ring)
        assert policy.choose_shard("conn-3", view) == other

    def test_bad_params_rejected(self):
        for params in (
            {"queue_watermark": 0.0},
            {"headroom": 0.0},
            {"headroom": 1.5},
            {"window": 0},
        ):
            with pytest.raises(ConfigError):
                make_routing("rebalance-watermark", **params)


class TestShardRouterMechanism:
    def _router(self, n_shards=2):
        engine = Engine()
        tcpnet = TcpNetwork(engine)
        front = tcpnet.add_host("front", 10 * GBPS, "core")
        router = ShardRouter(engine, tcpnet, front, 80)
        for i in range(n_shards):
            host = tcpnet.add_host(f"s{i}", 10 * GBPS, "core")
            router.add_shard(_StubPlatform(host), 80)
        return router

    def test_start_without_shards_rejected(self):
        engine = Engine()
        tcpnet = TcpNetwork(engine)
        front = tcpnet.add_host("front", 10 * GBPS, "core")
        with pytest.raises(SimulationError, match="at least one shard"):
            ShardRouter(engine, tcpnet, front, 80).start()

    def test_shard_may_not_share_the_router_host(self):
        engine = Engine()
        tcpnet = TcpNetwork(engine)
        front = tcpnet.add_host("front", 10 * GBPS, "core")
        router = ShardRouter(engine, tcpnet, front, 80)
        with pytest.raises(SimulationError, match="own"):
            router.add_shard(_StubPlatform(front), 80)

    def test_unknown_routing_rejected_at_construction(self):
        engine = Engine()
        tcpnet = TcpNetwork(engine)
        front = tcpnet.add_host("front", 10 * GBPS, "core")
        with pytest.raises(ConfigError, match="least-loaded"):
            ShardRouter(engine, tcpnet, front, 80, routing="least-loadd")

    def test_fail_shard_is_idempotent_and_logged(self):
        router = self._router()
        assert router.alive_shards == 2
        router.fail_shard(1)
        assert router.alive_shards == 1
        assert router.failed_shards == [1]
        assert 1 not in router._ring
        # failing a dead shard is a no-op, not an error
        assert router.fail_shard(1) == 0
        assert router.failed_shards == [1]

    def test_fail_shard_at_bad_index_rejected(self):
        router = self._router()
        with pytest.raises(SimulationError, match="no shard 7"):
            router.fail_shard_at(7, 1000.0)

    def test_shard_report_shape(self):
        router = self._router()
        router.fail_shard(0)
        report = router.shard_report()
        assert set(report) == {"shard0", "shard1"}
        assert report["shard0"]["alive"] is False
        assert report["shard0"]["failed_at_us"] == 0.0
        assert report["shard1"]["alive"] is True
        assert report["shard1"]["failed_at_us"] is None


def _fleet_run(**kw):
    defaults = dict(
        mode="lb",
        cores=4,
        arrival=make_arrival("poisson", rate_rps=20_000.0),
        total_requests=2000,
        slo_us=5000.0,
        shards=2,
    )
    defaults.update(kw)
    return run_http_experiment("flick-kernel", 32, **defaults)


class TestShardedRuns:
    def test_two_shards_complete_everything(self):
        result = _fleet_run()
        cluster = result.cluster_stats
        assert cluster["shards"] == 2
        assert cluster["alive_shards"] == 2
        assert cluster["connections_routed"] == 32
        assert cluster["failed_over_connections"] == 0
        assert result.extra["completed"] == 2000
        assert result.extra["failed"] == 0
        # every shard took a ring segment's worth of connections
        routed = [
            cluster["per_shard"][f"shard{i}"]["routed_connections"]
            for i in (0, 1)
        ]
        assert all(n > 0 for n in routed)
        assert sum(routed) == 32
        # the fleet scoreboard aggregates per-class server-side stats
        assert result.class_stats["default"]["completions"] > 0

    def test_sharded_runs_are_deterministic(self):
        from repro.runtime.scheduler import TaskBase

        first = _fleet_run()
        TaskBase.reset_ids()
        second = _fleet_run()
        assert first == second

    def test_least_loaded_routing_spreads_connections_evenly(self):
        result = _fleet_run(routing="least-loaded", shards=4)
        per_shard = result.cluster_stats["per_shard"]
        routed = [
            per_shard[f"shard{i}"]["routed_connections"] for i in range(4)
        ]
        # d=2 choices: 32 conns over 4 shards stays near 8 per shard
        assert max(routed) - min(routed) <= 2

    def test_mid_run_shard_failure_degrades_without_collapse(self):
        result = _fleet_run(total_requests=4000, fail_shard_at_us=50_000.0)
        cluster = result.cluster_stats
        assert cluster["alive_shards"] == 1
        assert cluster["failed_shards"] == [1]
        assert cluster["per_shard"]["shard1"]["alive"] is False
        assert cluster["per_shard"]["shard1"]["failed_at_us"] == 50_000.0
        assert cluster["failed_over_connections"] > 0
        failed = result.extra["failed"]
        completed = result.extra["completed"]
        # only the in-flight window of severed connections is lost;
        # everything offered afterwards lands on the survivor
        assert 0 < failed < 0.05 * 4000
        assert completed + failed == result.extra["admitted"] == 4000
        # the survivor absorbed the re-homed flows and kept serving
        assert (
            cluster["per_shard"]["shard0"]["routed_connections"]
            > cluster["per_shard"]["shard1"]["routed_connections"]
        )
        assert result.throughput > 0

    def test_failure_accounting_reaches_admission_summary(self):
        result = _fleet_run(
            total_requests=4000,
            fail_shard_at_us=50_000.0,
            class_mix=(("gold", 1.0), ("bronze", 1.0)),
        )
        per_class = result.admission_stats
        assert set(per_class) == {"gold", "bronze"}
        total_failed = sum(c["failed"] for c in per_class.values())
        assert total_failed == result.extra["failed"] > 0

    def test_cluster_tier_rejects_bad_configs(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            run_http_experiment("flick-kernel", 8, shards=0)
        with pytest.raises(ValueError, match="cost-model baseline"):
            run_http_experiment(
                "nginx", 8, shards=2,
                arrival=make_arrival("poisson", rate_rps=1000.0),
            )
        with pytest.raises(ValueError, match="open-loop"):
            run_http_experiment("flick-kernel", 8, shards=2)
        with pytest.raises(ValueError, match="needs shards > 1"):
            run_http_experiment(
                "flick-kernel", 8, shards=1, fail_shard_at_us=10.0
            )
        with pytest.raises(ValueError, match="needs shards > 1"):
            run_http_experiment(
                "flick-kernel", 8, shards=1, routing="least-loaded"
            )

    def test_single_shard_keeps_the_classic_path(self):
        result = run_http_experiment(
            "flick-kernel", 16, mode="lb", cores=4,
            arrival=make_arrival("poisson", rate_rps=20_000.0),
            total_requests=1000, slo_us=5000.0, shards=1,
        )
        assert result.cluster_stats == {}
