"""Scenario matrix + machine-readable results writer/comparison tests."""

import json

import pytest

from repro.bench import results as results_io
from repro.bench.scenarios import (
    APP_ENDPOINTS,
    SCENARIOS,
    Scenario,
    resolve_scenario_selection,
    run_scenario,
)
from repro.core.errors import ConfigError


class TestMatrixShape:
    def test_covers_all_three_apps(self):
        assert {s.app for s in SCENARIOS} == set(APP_ENDPOINTS)

    def test_covers_at_least_three_arrival_processes(self):
        arrivals = {s.arrival for s in SCENARIOS if s.arrival is not None}
        assert arrivals >= {"poisson", "bursty", "ramp", "replay"}

    def test_has_the_open_closed_overload_pair(self):
        by_name = {s.name: s for s in SCENARIOS}
        open_, closed = (
            by_name["http-overload-open"], by_name["http-overload-closed"],
        )
        # same middlebox, pool, volume and SLO — only the loop differs
        assert open_.arrival is not None and closed.arrival is None
        assert open_.slo_ms == closed.slo_ms is not None
        assert open_.connections == closed.connections
        assert open_.requests == closed.requests
        assert open_.cores == closed.cores

    def test_names_are_unique(self):
        names = [s.name for s in SCENARIOS]
        assert len(names) == len(set(names))

    def test_has_the_admission_survival_pair(self):
        """open vs shed differ only in the admission policy, so the
        pinned pair isolates what shedding buys under overload."""
        by_name = {s.name: s for s in SCENARIOS}
        open_, shed = (
            by_name["http-overload-open"], by_name["http-overload-shed"],
        )
        assert open_.admission == "admit-all"
        assert shed.admission == "shed-bronze"
        assert shed.admission_params
        assert open_.class_mix == shed.class_mix != ()
        assert open_.arrival == shed.arrival
        assert open_.arrival_params == shed.arrival_params
        assert open_.slo_ms == shed.slo_ms is not None
        assert open_.requests == shed.requests
        assert open_.cores == shed.cores

    def test_has_an_elastic_allocator_scenario(self):
        by_name = {s.name: s for s in SCENARIOS}
        ramp = by_name["http-ramp-elastic"]
        assert ramp.allocator == "queue-depth"
        assert ramp.arrival == "ramp"


class TestSelection:
    def test_all_selects_the_whole_matrix(self):
        assert resolve_scenario_selection("all") == SCENARIOS

    def test_comma_list_preserves_request_order(self):
        picked = resolve_scenario_selection(
            "http-open-poisson,http-closed-baseline"
        )
        assert [s.name for s in picked] == [
            "http-open-poisson", "http-closed-baseline",
        ]

    def test_duplicate_names_run_once(self):
        picked = resolve_scenario_selection(
            "http-open-poisson,http-open-poisson"
        )
        assert [s.name for s in picked] == ["http-open-poisson"]

    def test_unknown_name_gets_near_miss_suggestion(self):
        with pytest.raises(ConfigError) as excinfo:
            resolve_scenario_selection("http-overload-opne")
        assert "unknown scenario 'http-overload-opne'" in str(excinfo.value)
        assert "did you mean 'http-overload-open'?" in str(excinfo.value)

    def test_empty_selection_rejected(self):
        with pytest.raises(ConfigError, match="selects no scenarios"):
            resolve_scenario_selection(", ,")


class TestRunner:
    def test_unknown_app_rejected(self):
        bogus = Scenario(name="x", app="quic_proxy", arrival=None)
        with pytest.raises(ConfigError, match="unknown app"):
            run_scenario(bogus)

    def test_hadoop_rejects_fields_its_testbed_ignores(self):
        # silently dropping these would let the entry report a config
        # that never ran
        with pytest.raises(ConfigError, match="does not support"):
            run_scenario(Scenario(
                name="x", app="hadoop_agg", arrival=None,
                service_classes=("mappers=gold:1000",),
            ))
        with pytest.raises(ConfigError, match="does not support"):
            run_scenario(Scenario(
                name="x", app="hadoop_agg", arrival=None, slo_ms=2.0,
            ))

    def test_mode_is_http_only(self):
        with pytest.raises(ConfigError, match="http_lb-only"):
            run_scenario(Scenario(
                name="x", app="memcached_proxy", arrival=None, mode="web",
            ))

    def test_entry_schema(self):
        scenario = Scenario(
            name="tiny", app="http_lb", arrival="poisson",
            arrival_params=(("rate_rps", 30_000.0),),
            connections=16, requests=256, slo_ms=2.0, cores=4,
        )
        entry = run_scenario(scenario, quick=True)
        assert entry["app"] == "http_lb"
        assert entry["arrival"].startswith("poisson")
        assert entry["offered"] == entry["completed"] == 256
        # open loop has no warmup window: every request is measured
        assert entry["measured"] == 256
        assert entry["throughput"] > 0
        assert set(entry["latency_ms"]) == {"mean", "p50", "p99", "max"}
        assert entry["slo"]["misses"] == entry["slo"]["miss_rate"] * 256
        assert "default" in entry["classes"]
        assert entry["steals"]["steals"] >= 0
        assert set(entry["arrival_gaps_us"]) == {"mean", "p50", "p99"}

    def test_open_loop_overload_misses_slo_where_closed_loop_cannot(self):
        """The acceptance pair: open-loop makes overload observable."""
        by_name = {s.name: s for s in SCENARIOS}
        open_entry = run_scenario(by_name["http-overload-open"], quick=True)
        closed_entry = run_scenario(
            by_name["http-overload-closed"], quick=True
        )
        assert open_entry["slo"]["misses"] > 0
        assert closed_entry["slo"]["misses"] == 0
        # the closed loop self-throttled: its p99 never saw the backlog
        assert (
            open_entry["latency_ms"]["p99"]
            > 2 * closed_entry["latency_ms"]["p99"]
        )

    def test_service_classes_thread_through_to_accounting(self):
        scenario = Scenario(
            name="classed", app="http_lb", arrival="poisson",
            arrival_params=(("rate_rps", 30_000.0),),
            service_classes=("client=gold:2000@2",),
            connections=16, requests=256, slo_ms=2.0, cores=4,
        )
        entry = run_scenario(scenario, quick=True)
        assert "gold" in entry["classes"]

    def test_runs_are_order_independent(self):
        """A scenario's numbers must not depend on what ran before it
        in the same process (else a --scenario-filtered run could not
        be gated against the full-matrix baseline)."""
        scenario = Scenario(
            name="tiny", app="http_lb", arrival="poisson",
            arrival_params=(("rate_rps", 30_000.0),),
            connections=16, requests=256, slo_ms=2.0, cores=4,
        )
        first = run_scenario(scenario, quick=True)
        # pollute the global task-id counter with an unrelated run
        run_scenario(
            Scenario(name="other", app="http_lb", arrival=None,
                     connections=8, requests=256, slo_ms=2.0, cores=2),
            quick=True,
        )
        assert run_scenario(scenario, quick=True) == first

    def test_unknown_allocator_and_admission_get_near_misses(self):
        with pytest.raises(ConfigError) as excinfo:
            run_scenario(Scenario(
                name="x", app="http_lb", arrival=None,
                allocator="queue-deph",
            ))
        assert "did you mean 'queue-depth'?" in str(excinfo.value)
        with pytest.raises(ConfigError) as excinfo:
            run_scenario(Scenario(
                name="x", app="http_lb", arrival="poisson",
                admission="shed-bronz",
            ))
        assert "did you mean 'shed-bronze'?" in str(excinfo.value)

    def test_admission_fields_need_an_open_loop_scenario(self):
        # silently dropping them would pin numbers under a config that
        # never ran — same rule as hadoop's service_classes
        for fields in (
            {"admission": "shed-bronze"},
            {"admission_params": (("max_inflight", 8),)},
            {"class_mix": (("gold", 1.0),)},
        ):
            with pytest.raises(ConfigError, match="open-loop"):
                run_scenario(Scenario(
                    name="x", app="http_lb", arrival=None, **fields
                ))
        with pytest.raises(ConfigError, match="open-loop"):
            run_scenario(Scenario(
                name="x", app="hadoop_agg", arrival="poisson",
                admission="token-bucket",
            ))

    def test_entry_allocator_and_admission_sections(self):
        scenario = Scenario(
            name="tiny-shed", app="http_lb", arrival="poisson",
            arrival_params=(("rate_rps", 30_000.0),),
            connections=16, requests=256, slo_ms=2.0, cores=4,
            admission="shed-bronze",
            admission_params=(("max_inflight", 8),),
            class_mix=(("gold", 1.0), ("bronze", 1.0)),
        )
        entry = run_scenario(scenario, quick=True)
        assert entry["allocator"] == {
            "name": "static", "changes": 0, "moved_tasks": 0,
            "active_workers": {"min": 4, "max": 4, "final": 4},
        }
        admission = entry["admission"]
        assert admission["policy"] == "shed-bronze"
        assert admission["class_mix"] == {"gold": 1.0, "bronze": 1.0}
        assert set(admission["per_class"]) == {"gold", "bronze"}
        for stats in admission["per_class"].values():
            assert stats["admitted"] + stats["shed"] == stats["offered"]
        assert admission["admitted"] + admission["shed"] == 256

    def test_closed_loop_entry_has_allocator_but_no_admission(self):
        entry = run_scenario(Scenario(
            name="closed", app="http_lb", arrival=None,
            connections=8, requests=256, slo_ms=2.0, cores=2,
        ), quick=True)
        assert entry["allocator"]["name"] == "static"
        assert "admission" not in entry

    def test_ramp_elastic_scenario_records_allocation_changes(self):
        by_name = {s.name: s for s in SCENARIOS}
        scenario = by_name["http-ramp-elastic"]
        entry = run_scenario(scenario, quick=True)
        alloc = entry["allocator"]
        assert alloc["name"] == "queue-depth"
        assert alloc["changes"] > 0
        assert alloc["active_workers"]["min"] < scenario.cores

    def test_shedding_bounds_gold_misses_where_admit_all_collapses(self):
        """The PR's acceptance pair at matrix level: same offered load,
        and only the shed run keeps the premium class inside its SLO
        budget."""
        by_name = {s.name: s for s in SCENARIOS}
        open_entry = run_scenario(by_name["http-overload-open"], quick=True)
        shed_entry = run_scenario(by_name["http-overload-shed"], quick=True)
        open_gold = open_entry["admission"]["per_class"]["gold"]
        shed_gold = shed_entry["admission"]["per_class"]["gold"]
        assert open_entry["admission"]["shed"] == 0
        assert shed_entry["admission"]["per_class"]["bronze"]["shed"] > 0
        assert shed_gold["shed"] == 0
        assert shed_gold["slo_misses"] < open_gold["slo_misses"]
        assert (
            shed_entry["latency_ms"]["p99"] < open_entry["latency_ms"]["p99"]
        )

    def test_hadoop_scenario_runs_with_paced_mappers(self):
        scenario = Scenario(
            name="h", app="hadoop_agg", arrival="ramp",
            arrival_params=(
                ("start_rps", 100.0), ("end_rps", 1000.0),
                ("duration_us", 20_000.0),
            ),
            cores=2,
        )
        entry = run_scenario(scenario, quick=True)
        assert entry["throughput_unit"] == "Mb/s"
        assert entry["throughput"] > 0


class TestResultsDocument:
    def _doc(self, **scenarios):
        return results_io.results_document(scenarios, quick=True)

    def _entry(self, throughput=100.0, p99=1.0):
        return {
            "throughput": throughput,
            "latency_ms": {"mean": p99 / 2, "p50": p99 / 2, "p99": p99,
                           "max": p99 * 2},
        }

    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_scenarios.json"
        document = self._doc(a=self._entry())
        results_io.write_results(path, document)
        assert results_io.load_results(path) == document

    def test_written_document_is_stable_text(self, tmp_path):
        path = tmp_path / "r.json"
        results_io.write_results(path, self._doc(a=self._entry()))
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(
            json.loads(text), indent=2, sort_keys=True
        ) + "\n"

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "r.json"
        document = self._doc(a=self._entry())
        document["schema_version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(ConfigError, match="schema_version"):
            results_io.load_results(path)

    def test_malformed_documents_rejected(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("not json {")
        with pytest.raises(ConfigError, match="not valid JSON"):
            results_io.load_results(path)
        with pytest.raises(ConfigError, match="cannot read"):
            results_io.load_results(tmp_path / "missing.json")
        with pytest.raises(ConfigError, match="lacks 'throughput'"):
            results_io.validate_document(
                self._doc(a={"latency_ms": {}})
            )


class TestBaselineComparison:
    def _docs(self, base_thr=100.0, now_thr=100.0, base_p99=1.0, now_p99=1.0):
        def doc(thr, p99):
            return results_io.results_document(
                {"s": {"throughput": thr,
                       "latency_ms": {"p99": p99}}},
                quick=True,
            )
        return doc(now_thr, now_p99), doc(base_thr, base_p99)

    def test_green_when_within_limits(self):
        current, baseline = self._docs(now_thr=95.0, now_p99=1.1)
        assert results_io.compare_to_baseline(current, baseline) == []

    def test_exactly_at_the_limit_is_not_a_regression(self):
        current, baseline = self._docs(now_thr=90.0, now_p99=1.15)
        assert results_io.compare_to_baseline(current, baseline) == []

    def test_throughput_drop_flagged(self):
        current, baseline = self._docs(now_thr=80.0)
        (regression,) = results_io.compare_to_baseline(current, baseline)
        assert regression.metric == "throughput"
        assert "dropped 20.0%" in str(regression)

    def test_p99_rise_flagged(self):
        current, baseline = self._docs(now_p99=1.5)
        (regression,) = results_io.compare_to_baseline(current, baseline)
        assert regression.metric == "p99_latency"
        assert "rose 50.0%" in str(regression)

    def test_custom_limits_respected(self):
        current, baseline = self._docs(now_thr=95.0)
        regressions = results_io.compare_to_baseline(
            current, baseline, max_throughput_drop_pct=2.0
        )
        assert [r.metric for r in regressions] == ["throughput"]

    def test_scenario_missing_from_current_is_a_coverage_regression(self):
        current = results_io.results_document({}, quick=True)
        _, baseline = self._docs()
        (regression,) = results_io.compare_to_baseline(current, baseline)
        assert regression.metric == "coverage"
        assert "missing from this run" in str(regression)

    def test_restrict_to_skips_unselected_baseline_scenarios(self):
        # a filtered run omits the rest of the matrix on purpose
        current = results_io.results_document(
            {"s": {"throughput": 100.0, "latency_ms": {"p99": 1.0}}},
            quick=True,
        )
        baseline = results_io.results_document(
            {"s": {"throughput": 100.0, "latency_ms": {"p99": 1.0}},
             "unselected": {"throughput": 50.0,
                            "latency_ms": {"p99": 9.0}}},
            quick=True,
        )
        assert results_io.compare_to_baseline(baseline, baseline) == []
        assert (
            results_io.compare_to_baseline(
                current, baseline, restrict_to=["s"]
            )
            == []
        )
        # without the restriction the same comparison flags coverage
        (regression,) = results_io.compare_to_baseline(current, baseline)
        assert regression.metric == "coverage"

    def test_field_set_change_is_a_fields_regression(self):
        """A schema change (new/renamed sections) must fail the gate
        until the baseline is regenerated in the same PR — silently
        ignoring unknown keys would let it slide."""
        def doc(extra_key):
            return results_io.results_document(
                {"s": {"throughput": 100.0,
                       "latency_ms": {"p99": 1.0},
                       extra_key: {}}},
                quick=True,
            )
        (regression,) = results_io.compare_to_baseline(
            doc("admission"), doc("steals")
        )
        assert regression.metric == "fields"
        text = str(regression)
        assert "gained: admission" in text
        assert "lost: steals" in text
        assert "regenerate the baseline" in text
        # identical field sets stay green
        assert results_io.compare_to_baseline(
            doc("admission"), doc("admission")
        ) == []

    def test_scenario_new_in_current_passes(self):
        current, _ = self._docs()
        baseline = results_io.results_document({}, quick=True)
        assert results_io.compare_to_baseline(current, baseline) == []

    def test_zero_baseline_values_never_flag(self):
        current, baseline = self._docs(base_thr=0.0, base_p99=0.0,
                                       now_thr=0.0, now_p99=5.0)
        assert results_io.compare_to_baseline(current, baseline) == []

    def test_committed_baseline_is_schema_valid(self):
        from pathlib import Path

        document = results_io.load_results(
            Path(__file__).parent.parent
            / "benchmarks" / "baseline_scenarios.json"
        )
        assert document["quick"] is True
        assert {e["app"] for e in document["scenarios"].values()} == set(
            APP_ENDPOINTS
        )


class TestClusterScenarioFields:
    def test_matrix_has_the_scaling_curve_and_failover(self):
        by_name = {s.name: s for s in SCENARIOS}
        assert by_name["http-fleet-scale-2"].shards == 2
        assert by_name["http-fleet-scale-4"].shards == 4
        failover = by_name["http-fleet-failover"]
        assert failover.shards == 2
        assert failover.fail_shard_at_us is not None

    def test_shards_below_one_rejected(self):
        with pytest.raises(ConfigError, match="shards must be >= 1"):
            run_scenario(Scenario(
                name="x", app="http_lb", arrival="poisson", shards=0,
            ))

    def test_cluster_knobs_need_shards(self):
        # same no-silent-drop rule as admission/class_mix: cluster knobs
        # on a single-middlebox scenario report a config that never ran
        with pytest.raises(ConfigError, match="needs shards > 1"):
            run_scenario(Scenario(
                name="x", app="http_lb", arrival="poisson",
                routing="least-loaded",
            ))
        with pytest.raises(ConfigError, match="needs shards > 1"):
            run_scenario(Scenario(
                name="x", app="http_lb", arrival="poisson",
                fail_shard_at_us=100.0,
            ))

    def test_cluster_tier_is_open_loop_http_only(self):
        with pytest.raises(ConfigError, match="http_lb"):
            run_scenario(Scenario(
                name="x", app="memcached_proxy", arrival="poisson",
                shards=2,
            ))
        with pytest.raises(ConfigError, match="open-loop"):
            run_scenario(Scenario(
                name="x", app="http_lb", arrival=None, shards=2,
            ))

    def test_unknown_routing_gets_near_miss(self):
        with pytest.raises(ConfigError) as excinfo:
            run_scenario(Scenario(
                name="x", app="http_lb", arrival="poisson",
                shards=2, routing="hash-afinity",
            ))
        assert "did you mean 'hash-affinity'?" in str(excinfo.value)

    def test_nonpositive_fail_time_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            run_scenario(Scenario(
                name="x", app="http_lb", arrival="poisson",
                shards=2, fail_shard_at_us=0.0,
            ))

    def test_sharded_entry_has_a_cluster_section(self):
        scenario = Scenario(
            name="tiny-fleet", app="http_lb", arrival="poisson",
            arrival_params=(("rate_rps", 30_000.0),),
            connections=16, requests=256, slo_ms=5.0, cores=4, shards=2,
        )
        entry = run_scenario(scenario, quick=True)
        cluster = entry["cluster"]
        assert cluster["shards"] == 2
        assert cluster["routing"] == "hash-affinity"
        assert cluster["alive_shards"] == 2
        assert set(cluster["per_shard"]) == {"shard0", "shard1"}
        assert entry["failed"] == 0
        assert entry["completed"] == 256

    def test_single_shard_entry_has_no_cluster_section(self):
        scenario = Scenario(
            name="tiny", app="http_lb", arrival="poisson",
            arrival_params=(("rate_rps", 30_000.0),),
            connections=16, requests=256, slo_ms=2.0, cores=4,
        )
        entry = run_scenario(scenario, quick=True)
        assert "cluster" not in entry
        assert entry["failed"] == 0
