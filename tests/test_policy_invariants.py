"""Policy-invariant conformance harness.

Every registered scheduling policy — present and future — is run through
randomized (but seeded) workloads and checked against the cross-cutting
invariants of the policy/mechanism contract, so a new policy gets
regression coverage the moment it is registered:

* **conservation** — no task is lost or duplicated: every admitted task
  drains exactly its item count, ends IDLE, and every worker queue is
  empty when the simulation quiesces;
* **steal accounting** — batch steals move at least as many tasks as
  there are steal operations, and the workers' busy time decomposes
  exactly into task work + per-decision ``SCHEDULE_US`` + charged steal
  costs (including topology penalties);
* **budget bounds** — every finite value a policy's ``budget()`` hook
  returns lies in ``[0, policy.max_budget_us()]``;
* **determinism** — identical seeds produce identical schedules;
* **reusability** — ``reset()`` (fired when a scheduler adopts the
  policy) restores a used instance to a state indistinguishable from a
  fresh one;
* **SLO outcomes** — the scheduler's per-service-class scoreboard is
  conserved (class completion counts sum to the total), coherent (no
  recorded deadline precedes its admission), and seed-deterministic
  (identical seeds produce identical per-class SLO-miss counts).

Workloads mix item counts, per-item costs, SLOs, service classes,
pinned and hash-placed tasks, and staggered arrival times, so the
sleep/wake and steal paths are all exercised.
"""

import random

import pytest

from repro.net.stackprofiles import CoreTopology
from repro.runtime.costs import SCHEDULE_US
from repro.runtime.policy import make_policy, registered_policies
from repro.runtime.qos import ServiceClass
from repro.runtime.scheduler import IDLE, Scheduler, TaskBase
from repro.sim.engine import Engine

SEEDS = (7, 23)
CORES = 4
N_TASKS = 24

#: 4 cores across 2 sockets, so steals can cross the interconnect.
PAIR_TOPOLOGY = CoreTopology(
    name="pair", sockets=2, cores_per_socket=2, remote_steal_penalty_us=2.0
)

#: QoS tiers randomly stamped on workload tasks (None = unclassified).
SERVICE_CLASSES = (
    None,
    ServiceClass("gold", slo_us=800.0, weight=4.0),
    ServiceClass("silver", slo_us=5_000.0, weight=2.0),
    ServiceClass("bronze", slo_us=50_000.0),
)


class HarnessTask(TaskBase):
    """Finite task with per-item cost; detects concurrent stepping."""

    def __init__(self, name, n_items, item_cost_us, engine, slo_us=None):
        super().__init__(name)
        self._engine = engine
        self.total_items = n_items
        self.remaining = n_items
        self.item_cost_us = item_cost_us
        if slo_us is not None:
            self.slo_us = slo_us
        self.finished_at = None
        self._stepping = False

    def has_work(self):
        return self.remaining > 0

    def step(self, budget_us):
        # Two workers stepping one task at once would double-process
        # items without tripping the per-item counters; catch it here.
        assert not self._stepping, f"{self.name} stepped concurrently"
        self._stepping = True
        try:
            elapsed = 0.0
            while self.remaining > 0:
                self.remaining -= 1
                elapsed += self.item_cost_us
                self.items_processed += 1
                if budget_us == 0.0:
                    break
                if budget_us is not None and elapsed >= budget_us:
                    break
            emissions = []
            if self.remaining == 0 and self.finished_at is None:
                def mark():
                    self.finished_at = self._engine.now

                emissions.append(mark)
            self.busy_us += elapsed
            return elapsed, emissions
        finally:
            self._stepping = False


class BudgetRecorder:
    """Wraps a policy instance's ``budget`` hook, recording every return."""

    def __init__(self, policy):
        self.policy = policy
        self.budgets = []
        inner = policy.budget

        def recording(task):
            value = inner(task)
            self.budgets.append(value)
            return value

        policy.budget = recording


def run_workload(policy, seed, topology=None):
    """One randomized run; returns ``(scheduler, tasks)`` at quiescence."""
    TaskBase.reset_ids()
    rng = random.Random(seed)
    engine = Engine()
    scheduler = Scheduler(engine, CORES, 50.0, policy, topology)
    tasks = []
    for index in range(N_TASKS):
        task = HarnessTask(
            f"task{index}",
            rng.randint(1, 30),
            rng.choice((0.5, 2.0, 4.0, 16.0)),
            engine,
            slo_us=rng.choice((None, 50.0, 500.0, 5000.0)),
        )
        service_class = rng.choice(SERVICE_CLASSES)
        if service_class is not None:
            task.service_class = service_class
            task.slo_us = service_class.slo_us
        if rng.random() < 0.5:
            task.home_hint = rng.randrange(CORES)
        tasks.append(task)
    arrivals = sorted(
        (rng.uniform(0.0, 400.0), index) for index in range(N_TASKS)
    )
    scheduler.start()

    def admit():
        now = 0.0
        for at, index in arrivals:
            if at > now:
                yield engine.timeout(at - now)
                now = at
            scheduler.notify_runnable(tasks[index])

    engine.process(admit())
    engine.run()
    return scheduler, tasks


def snapshot(scheduler, tasks):
    """Everything a schedule determines, for determinism comparisons."""
    return {
        "tasks": [
            (t.name, t.items_processed, t.busy_us, t.finished_at)
            for t in tasks
        ],
        "executed": scheduler.tasks_executed,
        "busy_us": scheduler.total_busy_us,
        "steals": scheduler.total_steals,
        "stolen_tasks": scheduler.total_stolen_tasks,
        "slo_completions": scheduler.scoreboard.completions_by_class(),
        "slo_misses": scheduler.scoreboard.misses_by_class(),
    }


def check_conservation(scheduler, tasks):
    for task in tasks:
        assert task.remaining == 0, f"{task.name} lost work"
        assert task.items_processed == task.total_items, (
            f"{task.name} processed {task.items_processed} items, "
            f"admitted {task.total_items}"
        )
        assert task.finished_at is not None, f"{task.name} never finished"
        assert task.sched_state == IDLE
    assert all(not w.queue for w in scheduler._workers), (
        "worker queues must be empty at quiescence"
    )


def check_steal_accounting(scheduler, tasks):
    assert scheduler.total_stolen_tasks >= scheduler.total_steals
    if scheduler.total_steals == 0:
        assert scheduler.total_stolen_tasks == 0
        assert scheduler.total_steal_us == 0.0
    assert scheduler.total_busy_us == pytest.approx(
        sum(t.busy_us for t in tasks)
        + scheduler.tasks_executed * SCHEDULE_US
        + scheduler.total_steal_us
    ), "busy time must decompose into work + decisions + steals"


def check_budget_bounds(recorder):
    assert recorder.budgets, "no scheduling decision recorded a budget"
    cap = recorder.policy.max_budget_us()
    for budget in recorder.budgets:
        if budget is None:  # run-to-completion is always legal
            continue
        assert 0.0 <= budget <= cap + 1e-9, (
            f"budget {budget} outside [0, {cap}]"
        )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", registered_policies())
class TestPolicyInvariants:
    def test_conservation_and_accounting(self, name, seed):
        policy = make_policy(name)
        recorder = BudgetRecorder(policy)
        scheduler, tasks = run_workload(policy, seed)
        check_conservation(scheduler, tasks)
        check_steal_accounting(scheduler, tasks)
        check_budget_bounds(recorder)

    def test_invariants_hold_on_a_numa_topology(self, name, seed):
        policy = make_policy(name)
        recorder = BudgetRecorder(policy)
        scheduler, tasks = run_workload(policy, seed, PAIR_TOPOLOGY)
        check_conservation(scheduler, tasks)
        check_steal_accounting(scheduler, tasks)
        check_budget_bounds(recorder)

    def test_identical_seeds_identical_schedules(self, name, seed):
        first = snapshot(*run_workload(make_policy(name), seed))
        second = snapshot(*run_workload(make_policy(name), seed))
        assert first == second

    def test_reset_restores_a_reusable_policy(self, name, seed):
        policy = make_policy(name)
        used = snapshot(*run_workload(policy, seed))
        # Same instance again: adoption resets learned state, so the
        # second run must be indistinguishable from the first.
        reused = snapshot(*run_workload(policy, seed))
        assert used == reused

    def test_slo_completions_sum_to_total(self, name, seed):
        """Scoreboard conservation: per-class completion counts sum to
        the total, and every admitted task is accounted exactly once
        (this workload admits each task a single time)."""
        scheduler, tasks = run_workload(make_policy(name), seed)
        scoreboard = scheduler.scoreboard
        by_class = scoreboard.completions_by_class()
        assert sum(by_class.values()) == scoreboard.total_completions
        assert scoreboard.total_completions == len(scoreboard.records)
        recorded_ids = sorted(r.task_id for r in scoreboard.records)
        assert recorded_ids == sorted(t.task_id for t in tasks)
        # The class breakdown mirrors what was stamped on the tasks.
        expected = {}
        for task in tasks:
            cls = task.service_class.name if task.service_class else "default"
            expected[cls] = expected.get(cls, 0) + 1
        assert by_class == expected

    def test_slo_deadline_never_precedes_admission(self, name, seed):
        """Scoreboard coherence: every record's completion and deadline
        sit at or after its admission, and classified records carry
        their class's SLO."""
        scheduler, tasks = run_workload(make_policy(name), seed)
        classes = {t.task_id: t.service_class for t in tasks}
        for record in scheduler.scoreboard.records:
            assert record.completed_us >= record.admitted_us
            assert record.latency_us >= 0.0
            deadline = record.deadline_us
            if deadline is not None:
                assert deadline >= record.admitted_us
                assert record.missed == (record.completed_us > deadline)
            service_class = classes[record.task_id]
            if service_class is not None:
                assert record.service_class == service_class.name
                assert record.slo_us == service_class.slo_us

    def test_slo_miss_counts_are_seed_deterministic(self, name, seed):
        """Identical seeds must yield identical per-class SLO misses."""
        first, _ = run_workload(make_policy(name), seed)
        second, _ = run_workload(make_policy(name), seed)
        assert (
            first.scoreboard.misses_by_class()
            == second.scoreboard.misses_by_class()
        )
        assert (
            first.scoreboard.completions_by_class()
            == second.scoreboard.completions_by_class()
        )


def test_harness_covers_whole_registry():
    """The parametrization above is the conformance gate: it must track
    the registry, not a hand-maintained list."""
    assert len(registered_policies()) >= 10
    assert len(set(registered_policies())) == len(registered_policies())
