#!/usr/bin/env python
"""Cluster tier: a consistent-hash shard router over N FLICK platforms.

One ``FlickPlatform`` is one middlebox; production scale means a
fleet.  ``ShardRouter`` is an L4 byte-pipe proxy on its own simulated
host: it terminates client TCP, picks a shard per connection on a
seeded consistent-hash ring (so placement is stable across runs and
processes), and splices bytes both ways.  Two demonstrations:

1. **The scaling curve** — the same open-loop offered load against 1,
   2 and 4 shards.  Completion throughput must roughly double per
   shard doubling (CI pins >= 1.7x); the ``least-loaded``
   power-of-two-choices policy keeps the per-shard split tight where
   pure hash affinity would wear a binomial imbalance.

2. **Failover** — a 2-shard fleet loses a shard mid-run.  The ring
   remaps the dead shard's segment to the survivor, severed
   connections drain their in-flight requests as ``failed`` (a
   first-class outcome next to completions, sheds and the fault
   plane's retries — all four are pinned per entry in the schema-v4
   scenario documents), and the clients reconnect — bounded loss, not
   collapse.

Run:  python examples/sharded_fleet.py
"""

from repro.bench.testbeds import run_http_experiment
from repro.workloads.arrivals import make_arrival

#: Offered load shared by every point on the curve: what saturates one
#: shard should be comfortably absorbed by four.
RATE_RPS = 800_000.0
REQUESTS = 4096
CONNECTIONS = 128


def scaling_point(shards):
    """Fixed offered load, variable fleet size."""
    result = run_http_experiment(
        "flick-kernel",
        CONNECTIONS,
        mode="web",  # static-web mode: the shard itself is the bottleneck
        cores=4,
        arrival=make_arrival("poisson", rate_rps=RATE_RPS),
        total_requests=REQUESTS,
        shards=shards,
        routing="least-loaded" if shards > 1 else "hash-affinity",
    )
    return result.throughput, result.cluster_stats


def main() -> None:
    print(f"== Scaling curve: {RATE_RPS / 1000:.0f}k req/s offered ==")
    previous = None
    for shards in (1, 2, 4):
        throughput, cluster = scaling_point(shards)
        speedup = (
            f"  ({throughput / previous:.2f}x over previous)"
            if previous
            else ""
        )
        print(f"  {shards} shard(s): {throughput:8.1f} kreq/s{speedup}")
        if cluster:
            per_shard = cluster["per_shard"]
            routed = {
                name: int(report["routed_connections"])
                for name, report in per_shard.items()
            }
            print(f"      connections per shard: {routed}")
        previous = throughput

    print("\n== Failover: shard 1 of 2 dies at t=10ms ==")
    result = run_http_experiment(
        "flick-kernel",
        64,
        mode="lb",
        cores=4,
        arrival=make_arrival("poisson", rate_rps=60_000.0),
        total_requests=REQUESTS,
        slo_us=5_000.0,
        shards=2,
        fail_shard_at_us=10_000.0,
    )
    cluster = result.cluster_stats
    failed = int(result.extra["failed"])
    completed = int(result.extra["completed"])
    print(
        f"  alive shards: {cluster['alive_shards']}/{cluster['shards']}"
        f"  (failed: {cluster['failed_shards']})"
    )
    print(
        f"  connections failed over: {cluster['failed_over_connections']}"
    )
    print(
        f"  requests: {completed} completed, {failed} failed "
        f"({failed / (completed + failed):.2%} of admitted)"
    )
    print(f"  survivor throughput: {result.throughput:.1f} kreq/s")


if __name__ == "__main__":
    main()
