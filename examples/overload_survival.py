#!/usr/bin/env python
"""Overload survival: admission control + elastic core allocation.

An open-loop client population offers 160k req/s to an 8-core FLICK
load balancer that can serve ~100k — the paper's testbed could push a
middlebox to saturation, but not *past* it, so this is the regime the
simulator adds.  Two policy planes decide what happens next:

1. **Admission control** — the same overloaded workload twice, half
   gold / half bronze traffic.  Under ``admit-all`` the backlog grows
   without bound and takes the gold class's SLO down with it; under
   ``shed-bronze`` the bronze arrivals are dropped at the door the
   moment the in-flight count crosses the watermark, and gold's misses
   stay bounded no matter how long the overload lasts.

2. **Elastic core allocation** — a ramp from 10k to 250k req/s under
   the ``queue-depth`` allocator: the scheduler parks idle workers
   while the ramp is low and unparks them as the backlog builds, with
   every applied change in the scheduler's alloc log.

Accounting note: since the fault-injection plane landed, ``shed`` is
one of *four* first-class request outcomes — ``completed``, ``failed``
(dead connection), ``retried`` (impatient client gave up and
re-offered) and ``shed`` — and scenario documents (schema v4) carry
all four per entry plus a ``faults`` section on injected runs.  The
matrix's ``http-retry-storm`` / ``http-retry-storm-shed`` pair extends
this example's story to the metastable regime: retries *amplify* the
overload under ``admit-all``, and the same shed-bronze door breaks the
feedback loop (see docs/scenarios.md).

Run:  python examples/overload_survival.py
"""

from repro.bench.testbeds import run_http_experiment
from repro.runtime.admission import make_admission
from repro.workloads.arrivals import make_arrival

#: Half the offered load is premium traffic, interleaved deterministically.
CLASS_MIX = (("gold", 1.0), ("bronze", 1.0))


def overloaded_run(admission):
    """1024 requests offered at 160k req/s against ~100k of capacity."""
    return run_http_experiment(
        "flick-kernel",
        64,  # persistent connection pool
        mode="lb",
        cores=8,
        arrival=make_arrival("poisson", rate_rps=160_000.0),
        total_requests=1024,
        slo_us=2_000.0,
        admission=admission,
        class_mix=CLASS_MIX,
    )


def admission_control() -> None:
    """admit-all collapse vs shed-bronze survival, class by class."""
    runs = {
        "admit-all": overloaded_run("admit-all"),
        "shed-bronze": overloaded_run(
            make_admission("shed-bronze", max_inflight=96)
        ),
    }
    print("== 160k req/s offered, ~100k served: who misses their SLO? ==")
    for name, result in runs.items():
        print(f"\n-- {name} (p99 {result.extra['p99_ms']:.2f} ms) --")
        for cls, stats in result.admission_stats.items():
            print(
                f"  {cls:<6} offered={stats['offered']:<4.0f} "
                f"shed={stats['shed']:<4.0f} "
                f"slo_misses={stats['slo_misses']:.0f}"
            )
    gold_all = runs["admit-all"].admission_stats["gold"]["slo_misses"]
    gold_shed = runs["shed-bronze"].admission_stats["gold"]["slo_misses"]
    print(
        f"\nshedding bronze cut gold SLO misses {gold_all:.0f} -> "
        f"{gold_shed:.0f} (and they stay bounded as the overload runs on)"
    )


def elastic_allocation() -> None:
    """The queue-depth allocator following a 25x load ramp."""
    result = run_http_experiment(
        "flick-kernel",
        64,
        mode="web",
        cores=8,
        arrival=make_arrival(
            "ramp",
            start_rps=10_000.0,
            end_rps=250_000.0,
            duration_us=30_000.0,
        ),
        total_requests=1024,
        slo_us=2_000.0,
        allocator="queue-depth",
    )
    extra = result.extra
    print("\n== queue-depth allocator on a 10k -> 250k req/s ramp ==")
    print(
        f"  allocation changes: {extra['alloc_changes']:.0f}, active "
        f"workers spanned [{extra['active_workers_min']:.0f}, "
        f"{extra['active_workers_max']:.0f}] of 8, "
        f"finished at {extra['active_workers_final']:.0f}"
    )


if __name__ == "__main__":
    admission_control()
    elastic_allocation()
