#!/usr/bin/env python
"""HTTP load balancer on FLICK vs the Nginx cost model (Figure 4 slice).

Stands up the compiled FLICK balancer (kernel and mTCP stacks) and the
Nginx baseline in identical simulated testbeds — 10 web backends, 200
closed-loop keep-alive clients — and prints the throughput/latency
comparison with per-backend request counts demonstrating connection
stickiness.

Run:  python examples/http_load_balancer.py
"""

from repro.bench.testbeds import run_http_experiment
from repro.core.units import GBPS
from repro.net.tcp import TcpNetwork
from repro.runtime.costs import RuntimeConfig
from repro.runtime.graph import OutboundTarget
from repro.runtime.platform import FlickPlatform
from repro.apps import http_lb
from repro.sim.engine import Engine
from repro.workloads.backends import BackendWebServer
from repro.workloads.http_clients import HttpClientPopulation


def show_stickiness() -> None:
    """Each client connection sticks to one backend (hash of 4-tuple)."""
    engine = Engine()
    tcpnet = TcpNetwork(engine)
    mbox = tcpnet.add_host("mbox", 10 * GBPS, "core")
    clients = [tcpnet.add_host(f"c{i}", 1 * GBPS, "edge") for i in range(4)]
    backend_hosts = [
        tcpnet.add_host(f"b{i}", 1 * GBPS, "edge") for i in range(10)
    ]
    servers = [
        BackendWebServer(engine, tcpnet, host, 8080) for host in backend_hosts
    ]
    platform = FlickPlatform(
        engine, tcpnet, mbox, RuntimeConfig(cores=4),
        http_lb.http_codec_registry(),
    )
    platform.register_program(
        http_lb.compile_http_lb(), "HttpBalancer", 80,
        http_lb.lb_bindings(
            [OutboundTarget(host, 8080) for host in backend_hosts]
        ),
    )
    platform.start()
    population = HttpClientPopulation(
        engine, tcpnet, clients, mbox, 80, concurrency=12, persistent=True,
        requests_per_client=15, warmup_requests=1,
    )
    population.start()
    engine.run()
    counts = [s.requests_served for s in servers]
    print("per-backend requests:", counts)
    print("(each count is a multiple of 15: connections stick to one backend)")


def compare_systems() -> None:
    print(f"{'system':14s} {'throughput':>12s} {'mean latency':>14s}")
    for system in ("flick-kernel", "flick-mtcp", "nginx", "apache"):
        result = run_http_experiment(
            system, 200, persistent=True, mode="lb", cores=16,
            requests_per_client=25,
        )
        print(
            f"{system:14s} {result.throughput:9.1f} k/s "
            f"{result.latency_ms:11.3f} ms"
        )


def main() -> None:
    print("== connection stickiness ==")
    show_stickiness()
    print("\n== throughput comparison (200 persistent clients, 16 cores) ==")
    compare_systems()


if __name__ == "__main__":
    main()
