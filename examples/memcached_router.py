#!/usr/bin/env python
"""The paper's flagship example: the Memcached cache router (Listing 1).

Runs the full Listing-1 program — GETK responses are cached in
process-global state; future hits are answered from inside the network —
against 4 Memcached backend shards and a population of clients with a
skewed key space, then reports the cache's effect on backend traffic.

Run:  python examples/memcached_router.py
"""

from repro import Engine, FlickPlatform, RuntimeConfig
from repro.apps import memcached_proxy
from repro.core.units import GBPS
from repro.net.tcp import TcpNetwork
from repro.runtime.graph import OutboundTarget
from repro.workloads.backends import BackendMemcachedServer
from repro.workloads.memcached_clients import MemcachedClientPopulation

N_BACKENDS = 4
N_CLIENTS = 32
REQUESTS_PER_CLIENT = 30
KEY_SPACE = 40  # hot keys: every key is requested ~24 times


def run(cache_router: bool):
    engine = Engine()
    tcpnet = TcpNetwork(engine)
    mbox = tcpnet.add_host("mbox", 10 * GBPS, "core")
    client_hosts = [
        tcpnet.add_host(f"client{i}", 1 * GBPS, "edge") for i in range(8)
    ]
    backend_hosts = [
        tcpnet.add_host(f"backend{i}", 1 * GBPS, "edge")
        for i in range(N_BACKENDS)
    ]
    servers = [
        BackendMemcachedServer(engine, tcpnet, host, 11211)
        for host in backend_hosts
    ]

    if cache_router:
        program = memcached_proxy.compile_cache_router()
        proc_name = "memcached"
    else:
        program = memcached_proxy.compile_proxy()
        proc_name = "Memcached"

    platform = FlickPlatform(
        engine, tcpnet, mbox, RuntimeConfig(cores=4),
        memcached_proxy.memcached_codec_registry(program),
    )
    platform.register_program(
        program, proc_name, 11211,
        memcached_proxy.proxy_bindings(
            [OutboundTarget(host, 11211) for host in backend_hosts]
        ),
    )
    platform.start()

    population = MemcachedClientPopulation(
        engine, tcpnet, client_hosts, mbox, 11211,
        concurrency=N_CLIENTS, requests_per_client=REQUESTS_PER_CLIENT,
        warmup_requests=2, key_space=KEY_SPACE,
    )
    population.start()
    engine.run()
    assert population.finished and population.errors == 0
    backend_requests = sum(s.requests_served for s in servers)
    return population, backend_requests


def main() -> None:
    total = N_CLIENTS * REQUESTS_PER_CLIENT
    print(f"workload: {N_CLIENTS} clients x {REQUESTS_PER_CLIENT} GETK "
          f"requests over {KEY_SPACE} hot keys, {N_BACKENDS} backend shards")
    for label, cache_router in (("plain proxy", False), ("cache router", True)):
        population, backend_requests = run(cache_router)
        hit_rate = 1.0 - backend_requests / total
        print(
            f"{label:13s} backend requests: {backend_requests:4d} / {total}"
            f"  (cache hit rate {hit_rate:5.1%})"
            f"  mean latency {population.latency.mean_us():6.1f} us"
        )


if __name__ == "__main__":
    main()
