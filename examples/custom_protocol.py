#!/usr/bin/env python
"""Defining a custom protocol grammar and a FLICK service over it.

Shows the part of the paper most useful to downstream users: writing a
Spicy-style grammar (section 4.2) for your own application protocol —
here a tiny telemetry format with dependent lengths — and an
application-specific aggregation service over it.  Also demonstrates
parser specialisation: the service only reads ``sensor_id`` and
``reading``, so the generated parser skips the (possibly large)
``annotation`` payload.

Run:  python examples/custom_protocol.py
"""

from repro import Record, compile_source
from repro.grammar.dsl import parse_unit
from repro.grammar.engine import make_codec

TELEMETRY_GRAMMAR = """
type telemetry = unit {
    %byteorder = big;

    version : uint8;
    sensor_id : uint16;
    reading : uint32;
    note_len : uint16;
    annotation : bytes &length = self.note_len;
};
"""

FLICK_SOURCE = """
type telemetry: record
    sensor_id : integer
    reading : integer

proc Telemetry: (telemetry/telemetry collector)
    collector => threshold() => collector

fun threshold: (t: telemetry) -> (telemetry)
    if t.reading > 1000:
        t
    else:
        t
"""


def main() -> None:
    unit = parse_unit(TELEMETRY_GRAMMAR)
    print("grammar fields:", [f.name or "_" for f in unit.fields])
    print("structural fields (always decoded):",
          sorted(unit.structural_fields()))

    # Compile the service; the checker records which fields it accesses.
    program = compile_source(FLICK_SOURCE)
    accessed = program.accessed_fields("telemetry")
    print("fields the FLICK program accesses:", sorted(accessed))

    # Build both a full codec and one specialised to the program.
    full = make_codec(unit)
    specialised = make_codec(unit, project=set(accessed))

    message = Record(
        "telemetry",
        {
            "version": 1,
            "sensor_id": 42,
            "reading": 1500,
            "note_len": 0,
            "annotation": b"Z" * 4096,  # bulky payload the program ignores
        },
    )
    wire, _ = full.serialize(message)
    print(f"wire message: {len(wire)} bytes")

    # Parse with both codecs and compare the work done.
    full_parser = full.parser()
    full_parser.feed(wire)
    full_parser.poll()
    spec_parser = specialised.parser()
    spec_parser.feed(wire)
    parsed = spec_parser.poll()
    print(f"full parse cost: {full_parser.take_ops():8.1f} ops")
    print(f"specialised:     {spec_parser.take_ops():8.1f} ops "
          "(annotation skipped, not decoded)")
    assert "annotation" not in parsed
    assert parsed.sensor_id == 42 and parsed.reading == 1500

    # Forwarding a specialised record is lossless: raw spans are spliced.
    out, _ = specialised.serialize(parsed)
    assert out == wire
    print("specialised forwarding reproduced the wire bytes: OK")


if __name__ == "__main__":
    main()
