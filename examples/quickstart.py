#!/usr/bin/env python
"""Quickstart: write a FLICK service, compile it, run traffic through it.

Builds a tiny uppercase-echo middlebox: a FLICK process that reads
length-prefixed text messages, transforms them, and sends them back.
Demonstrates the full pipeline — grammar DSL, FLICK program, compilation
(type + termination checking), the platform, and a simulated client —
in under a hundred lines.

Run:  python examples/quickstart.py
"""

from repro import Bindings, CodecRegistry, Engine, FlickPlatform, RuntimeConfig, compile_source
from repro.core.units import GBPS
from repro.grammar.dsl import parse_unit
from repro.grammar.engine import make_codec
from repro.net.tcp import TcpNetwork

# 1. A wire grammar for our message type (Listing-2 style syntax).
MSG_GRAMMAR = """
type msg = unit {
    %byteorder = big;
    body_len : uint16;
    body : string &length = self.body_len;
};
"""

# 2. The FLICK service itself: every message is shouted back.
FLICK_SOURCE = """
type msg: record
    body : string

proc Shout: (msg/msg client)
    client => shout() => client

fun shout: (m: msg) -> (msg)
    msg(concat(m.body, "!"))
"""


def main() -> None:
    # Compile: parse -> type check -> termination check -> task-graph spec.
    program = compile_source(FLICK_SOURCE)
    spec = program.proc("Shout")
    print(f"compiled process {spec.name!r} with endpoints:",
          [ep.name for ep in spec.endpoints])

    # Wire the FLICK type to its codec.
    codec = make_codec(parse_unit(MSG_GRAMMAR))
    registry = CodecRegistry()
    registry.register_parser("msg", codec.parser)
    registry.register_serializer("msg", codec.serialize)

    # Build a two-host simulated network and the platform.
    engine = Engine()
    tcpnet = TcpNetwork(engine)
    middlebox = tcpnet.add_host("middlebox", 10 * GBPS, "core")
    client_host = tcpnet.add_host("client", 1 * GBPS, "edge")

    platform = FlickPlatform(
        engine, tcpnet, middlebox, RuntimeConfig(cores=2), registry
    )
    platform.register_program(program, "Shout", 7000, Bindings())
    platform.start()

    # A client sends three messages and prints the replies.
    from repro.lang.values import Record

    replies = []

    def on_connect(socket):
        parser = codec.parser()

        def on_data(data):
            parser.feed(data)
            for record in parser.messages():
                replies.append(record.body)

        socket.on_receive(on_data)
        for text in ("hello", "flick", "world"):
            record = Record("msg", {"body_len": len(text), "body": text})
            data, _ = codec.serialize(record)
            socket.send(data)

    tcpnet.connect(client_host, middlebox, 7000, on_connect)
    engine.run()

    print("replies:", replies)
    print(f"simulated time: {engine.now:.1f} us")
    assert replies == ["hello!", "flick!", "world!"]
    print("OK")


if __name__ == "__main__":
    main()
