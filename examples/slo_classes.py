#!/usr/bin/env python
"""Per-endpoint SLO service classes: gold and bronze traffic sharing
one FLICK middlebox.

Two angles on the service-class QoS subsystem:

1. **Platform threading** — two compiled FLICK programs (``Gold`` and
   ``Bronze``) run on one platform under the ``deadline`` policy.  A
   :class:`~repro.runtime.qos.ServiceClassMap` with program-scoped keys
   gives gold connections a 1 ms SLO (weight 4) and bronze ones 50 ms
   (weight 1); the task graphs stamp each connection task with its
   endpoint's class and the scheduler's scoreboard reports completions,
   latency and SLO misses per class.

2. **Figure-7 workload** — the scheduling microbenchmark under a
   two-class map: gold (light) tasks get tight EDF deadlines, bronze
   (heavy) ones slack, so gold SLO misses collapse versus a
   single-class platform at the same load.

Run:  python examples/slo_classes.py
"""

from repro import Engine, FlickPlatform, RuntimeConfig, ServiceClass, compile_source
from repro.apps import http_lb
from repro.bench.scheduling import run_scheduling_experiment
from repro.core.units import GBPS
from repro.net.tcp import TcpNetwork
from repro.workloads.http_clients import HttpClientPopulation

TWO_TIER_SOURCE = """
type http_req: record
    method : string
    path : string

type http_resp: record
    status : integer
    body : string

proc Gold: (http_req/http_resp client)
    client => respond() => client

proc Bronze: (http_req/http_resp client)
    client => respond() => client

fun respond: (req: http_req) -> (http_resp)
    http_resp(200, "ok")
"""

#: Program-scoped keys: both procs call their inbound endpoint
#: ``client``, so the tier is selected by "Program:endpoint".
SERVICE_CLASSES = {
    "Gold:client": ServiceClass("gold", slo_us=1_000.0, weight=4.0),
    "Bronze:client": ServiceClass("bronze", slo_us=50_000.0),
}


def shared_platform() -> None:
    """Gold and bronze programs on one middlebox, accounted per class."""
    engine = Engine()
    tcpnet = TcpNetwork(engine)
    middlebox = tcpnet.add_host("middlebox", 10 * GBPS, "core")
    gold_users = [tcpnet.add_host(f"g{i}", 1 * GBPS, "edge") for i in range(2)]
    bronze_users = [tcpnet.add_host(f"b{i}", 1 * GBPS, "edge") for i in range(2)]

    config = RuntimeConfig(
        cores=4,
        policy="deadline",
        service_classes=SERVICE_CLASSES,
        topology="two-socket",
    )
    platform = FlickPlatform(
        engine, tcpnet, middlebox, config, http_lb.http_codec_registry()
    )
    program = compile_source(TWO_TIER_SOURCE)
    platform.register_program(program, "Gold", 8001)
    platform.register_program(program, "Bronze", 8002)
    platform.start()

    for hosts, port in ((gold_users, 8001), (bronze_users, 8002)):
        HttpClientPopulation(
            engine, tcpnet, hosts, middlebox, port, concurrency=8,
            persistent=True, requests_per_client=10, warmup_requests=0,
        ).start()
    engine.run()

    print("one platform, two tiers (policy: deadline, two-socket):")
    print(f"{'class':8s} {'completions':>11s} {'misses':>7s} "
          f"{'mean':>9s} {'p99':>9s}")
    for name, stats in sorted(platform.scoreboard.summary().items()):
        print(f"{name:8s} {stats['completions']:11.0f} "
              f"{stats['misses']:7.0f} {stats['mean_ms']:7.2f}ms "
              f"{stats['p99_ms']:7.2f}ms")


def figure7_two_class() -> None:
    """Gold SLO misses: single-class platform vs gold/bronze classes."""
    kwargs = dict(n_tasks=40, items_per_task=40, cores=8)
    single = run_scheduling_experiment(
        "deadline",
        service_classes={"light": ServiceClass("uniform", 1_000.0),
                         "heavy": ServiceClass("uniform", 1_000.0)},
        **kwargs,
    )
    tiered = run_scheduling_experiment(
        "deadline",
        service_classes={"light": ServiceClass("gold", 1_000.0, weight=4.0),
                         "heavy": ServiceClass("bronze", 50_000.0)},
        **kwargs,
    )
    # In the single-class run every task shares the 1 ms target; the
    # gold population is the light half, so compare the light tasks'
    # outcomes against the tiered run's gold class.
    print("Figure-7 workload, gold (=light) SLO misses at 1 ms:")
    print(f"  single class : {single.class_stats['uniform']['misses']:.0f} "
          f"misses / {single.class_stats['uniform']['completions']:.0f} "
          "tasks (gold drowned by bronze)")
    gold = tiered.class_stats["gold"]
    print(f"  gold/bronze  : {gold['misses']:.0f} misses / "
          f"{gold['completions']:.0f} gold tasks "
          f"(mean {gold['mean_ms']:.2f} ms)")
    assert gold["misses"] < single.class_stats["uniform"]["misses"]


def main() -> None:
    shared_platform()
    print()
    figure7_two_class()


if __name__ == "__main__":
    main()
