#!/usr/bin/env python
"""In-network Hadoop word-count aggregation (Listing 3 / Figure 3c).

Eight mappers stream sorted (word, count) pairs to the FLICK middlebox,
where the compiled ``foldt`` combine tree merges them into one reduced
stream for the reducer.  Verifies the result against a reference
word count and prints the data-reduction ratio and task-tree shape.

Run:  python examples/hadoop_wordcount.py
"""

from repro import Engine, FlickPlatform, RuntimeConfig
from repro.apps import hadoop_agg
from repro.core.units import GBPS, throughput_mbps
from repro.net.tcp import TcpNetwork
from repro.workloads.hadoop_mappers import (
    Mapper,
    ReducerSink,
    generate_mapper_output,
    reference_wordcount,
)

N_MAPPERS = 8
KB_PER_MAPPER = 24
WORD_LEN = 8


def main() -> None:
    engine = Engine()
    tcpnet = TcpNetwork(engine)
    mbox = tcpnet.add_host("mbox", 10 * GBPS, "core")
    reducer_host = tcpnet.add_host("reducer", 10 * GBPS, "core")
    mapper_hosts = [
        tcpnet.add_host(f"mapper{i}", 1 * GBPS, "edge")
        for i in range(N_MAPPERS)
    ]
    sink = ReducerSink(engine, tcpnet, reducer_host, 9000)

    program = hadoop_agg.compile_hadoop()
    platform = FlickPlatform(
        engine, tcpnet, mbox, RuntimeConfig(cores=8),
        hadoop_agg.hadoop_codec_registry(),
    )
    platform.register_program(
        program, "hadoop", 9100,
        hadoop_agg.hadoop_bindings(reducer_host, 9000, N_MAPPERS),
    )
    platform.start()

    outputs = [
        generate_mapper_output(i, KB_PER_MAPPER * 1024, WORD_LEN, vocabulary=256)
        for i in range(N_MAPPERS)
    ]
    mappers = [
        Mapper(engine, tcpnet, host, mbox, 9100, pairs)
        for host, pairs in zip(mapper_hosts, outputs)
    ]
    ingress = sum(m.bytes_total for m in mappers)
    for mapper in mappers:
        mapper.start()
    engine.run()

    expected = reference_wordcount(outputs)
    got = sink.counts()
    assert got == expected, "aggregated counts differ from reference!"
    print(f"task tree: {N_MAPPERS} input tasks -> {N_MAPPERS - 1} merge "
          "tasks -> 1 output task (Figure 3c)")
    print(f"distinct words: {len(expected)}")
    print(f"ingress: {ingress} B, egress: {sink.bytes_received} B "
          f"(reduction {ingress / sink.bytes_received:.1f}x)")
    print(f"aggregate throughput: "
          f"{throughput_mbps(ingress, sink.finished_at):.1f} Mb/s "
          f"over {sink.finished_at / 1000:.1f} virtual ms")
    print("word counts verified against reference: OK")


if __name__ == "__main__":
    main()
