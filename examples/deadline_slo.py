#!/usr/bin/env python
"""SLO-driven scheduling: the 'deadline' (EDF) policy end to end.

Two angles on the same policy:

1. **Platform threading** — `RuntimeConfig(policy="deadline",
   slo_us=...)` runs a real FLICK middlebox whose task graphs stamp the
   per-connection SLO on every task; the policy turns each SLO into an
   earliest-deadline-first deadline at admission.
2. **Figure-7 workload** — the scheduling microbenchmark gives every
   synthetic task an SLO proportional to its total work, so EDF runs
   the tight-deadline (light) tasks first.  Compare the light-task
   completion times against plain cooperative scheduling.

Run:  python examples/deadline_slo.py
"""

from repro import Engine, FlickPlatform, RuntimeConfig, compile_source
from repro.bench.scheduling import run_scheduling_experiment
from repro.core.units import GBPS
from repro.net.tcp import TcpNetwork

FLICK_SOURCE = """
type msg: record
    body : string

proc Echo: (msg/msg client)
    client => client
"""


def platform_with_slo() -> None:
    """A middlebox whose connections carry a 500 µs SLO."""
    engine = Engine()
    tcpnet = TcpNetwork(engine)
    middlebox = tcpnet.add_host("middlebox", 10 * GBPS, "core")

    config = RuntimeConfig(
        cores=4,
        policy="deadline",
        slo_us=500.0,          # per-connection SLO -> EDF deadlines
        topology="two-socket",  # sockets priced; any policy may use them
    )
    platform = FlickPlatform(engine, tcpnet, middlebox, config)
    platform.register_program(compile_source(FLICK_SOURCE), "Echo", 7000)
    platform.start()

    policy = platform.scheduler.policy
    print(f"platform policy: {platform.scheduler.policy_name!r}, "
          f"SLO {policy.default_slo_us:.0f} us, "
          f"topology {platform.scheduler.topology.name!r}")


def figure7_under_edf() -> None:
    """Light tasks (tight SLOs) finish far earlier under EDF."""
    coop = run_scheduling_experiment(
        "cooperative", n_tasks=60, items_per_task=80, cores=8
    )
    edf = run_scheduling_experiment(
        "deadline", n_tasks=60, items_per_task=80, cores=8
    )
    print(f"{'policy':12s} {'light_mean':>10s} {'heavy_mean':>10s} "
          f"{'makespan':>9s}")
    for result in (coop, edf):
        print(f"{result.policy:12s} {result.light_mean_ms:9.2f}ms "
              f"{result.heavy_mean_ms:9.2f}ms {result.makespan_ms:8.2f}ms")
    assert edf.light_mean_ms < coop.light_mean_ms
    print("OK: EDF freed light (tight-SLO) tasks "
          f"{coop.light_mean_ms / edf.light_mean_ms:.1f}x earlier "
          "at the same makespan")


def main() -> None:
    platform_with_slo()
    print()
    figure7_under_edf()


if __name__ == "__main__":
    main()
