"""Figure 6 — Hadoop data aggregator throughput vs CPU cores.

Paper: median ingress throughput of the 8-mapper word-count aggregation
scales with cores up to ~7,513 Mbps at 16 cores (the capacity of the
8 x 1 Gbps mapper links after TCP overhead); datasets of 8/12/16-char
words, with longer words processed more efficiently (fewer pairs/byte).

Our testbed runs on scaled links (DESIGN.md §3, HADOOP_LINK_SCALE), so
absolute Mbps are smaller; asserted shapes: monotone scaling 1->8 cores,
saturation 8->16, and the word-length ordering at low core counts.
"""


from benchmarks.conftest import print_series, run_once
from repro.bench.testbeds import run_hadoop_experiment

CORES = (1, 2, 4, 8, 16)
WORD_LENGTHS = (8, 12, 16)


def _sweep():
    return {
        wl: [
            run_hadoop_experiment(cores, word_len=wl, data_kb_per_mapper=64)
            for cores in CORES
        ]
        for wl in WORD_LENGTHS
    }


def test_fig6_hadoop_aggregator(benchmark):
    series = run_once(benchmark, _sweep)
    rows = []
    for wl, points in series.items():
        rows.append(
            f"WC {wl:2d} char: "
            + " ".join(f"{p.throughput:6.1f}" for p in points)
            + "  Mb/s"
        )
    print_series(f"Figure 6 (cores: {CORES})", rows)

    for wl, points in series.items():
        thr = [p.throughput for p in points]
        # Scales with cores (strictly up to 8)...
        assert thr[0] < thr[1] < thr[2] < thr[3]
        # ...then saturates: 8 -> 16 gains less than 25%.
        assert thr[4] <= thr[3] * 1.25
        # Meaningful multi-core speedup overall (paper: ~3.7x 1->16).
        assert thr[4] / thr[0] > 1.8

    # Longer words yield higher Mb/s at low core counts (per-pair costs
    # amortise over more bytes), Figure 6's series ordering.
    for lo, hi in ((8, 12), (12, 16)):
        assert series[hi][0].throughput > series[lo][0].throughput

    # The aggregation output is much smaller than its input (the whole
    # point of in-network reduction).
    point = series[8][3]
    assert point.extra["egress_bytes"] < point.extra["ingress_bytes"] / 2
