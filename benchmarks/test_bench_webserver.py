"""E1 — §6.3 in-text static web server numbers.

Paper (16 cores): persistent — FLICK 306k, FLICK+mTCP 380k, Apache 159k,
Nginx 217k requests/s; non-persistent — FLICK 45k, FLICK+mTCP 193k,
Apache 35k, Nginx 44k.  Shape assertions: the orderings above.
"""

import pytest

from benchmarks.conftest import print_series, run_once
from repro.bench.testbeds import run_http_experiment

PAPER_PERSISTENT = {
    "flick-kernel": 306, "flick-mtcp": 380, "apache": 159, "nginx": 217,
}
PAPER_NONPERSISTENT = {
    "flick-kernel": 45, "flick-mtcp": 193, "apache": 35, "nginx": 44,
}
SYSTEMS = tuple(PAPER_PERSISTENT)


@pytest.mark.parametrize("system", SYSTEMS)
def test_webserver_persistent(benchmark, system):
    result = run_once(
        benchmark, run_http_experiment, system, 400,
        persistent=True, mode="web", cores=16, requests_per_client=40,
    )
    print_series(
        "E1 persistent web server",
        [f"{system}: measured {result.throughput:.0f}k req/s "
         f"(paper {PAPER_PERSISTENT[system]}k)"],
    )
    # Within +-25% of the paper's absolute number.
    assert result.throughput == pytest.approx(
        PAPER_PERSISTENT[system], rel=0.25
    )


@pytest.mark.parametrize("system", SYSTEMS)
def test_webserver_non_persistent(benchmark, system):
    result = run_once(
        benchmark, run_http_experiment, system, 400,
        persistent=False, mode="web", cores=16, requests_per_client=8,
    )
    print_series(
        "E1 non-persistent web server",
        [f"{system}: measured {result.throughput:.0f}k req/s "
         f"(paper {PAPER_NONPERSISTENT[system]}k)"],
    )
    assert result.throughput == pytest.approx(
        PAPER_NONPERSISTENT[system], rel=0.30
    )


def test_webserver_orderings(benchmark):
    """The who-beats-whom structure of §6.3 in one run set."""
    def sweep():
        out = {}
        for system in SYSTEMS:
            out[system] = run_http_experiment(
                system, 400, persistent=True, mode="web", cores=16,
                requests_per_client=30,
            ).throughput
        return out

    thr = run_once(benchmark, sweep)
    assert thr["flick-mtcp"] > thr["flick-kernel"] > thr["nginx"] > thr["apache"]
