"""Figure 5 — Memcached proxy throughput/latency vs CPU cores.

Paper: FLICK-kernel peaks ~126k req/s around 8 cores; FLICK+mTCP keeps
scaling to ~198k at 16; Moxi peaks at ~82k with 4 cores then *degrades*
as threads contend, with rising latency.  128 closed-loop clients over
persistent connections, 10 backends.

Known deviation (recorded in EXPERIMENTS.md): our uniform per-op
contention model lets kernel-FLICK keep gaining past 8 cores instead of
plateauing; the kernel-vs-mTCP ordering and Moxi's peak-and-decline are
reproduced.
"""

import pytest

from benchmarks.conftest import print_series, run_once
from repro.bench.testbeds import run_memcached_experiment

CORES = (1, 2, 4, 8, 16)
SYSTEMS = ("flick-kernel", "flick-mtcp", "moxi")


def _sweep():
    series = {}
    for system in SYSTEMS:
        series[system] = [
            run_memcached_experiment(
                system, cores, concurrency=128, requests_per_client=40
            )
            for cores in CORES
        ]
    return series


def test_fig5_memcached_proxy(benchmark):
    series = run_once(benchmark, _sweep)
    rows = []
    for system, points in series.items():
        thr = " ".join(f"{p.throughput:7.1f}" for p in points)
        lat = " ".join(f"{p.latency_ms:6.2f}" for p in points)
        rows.append(f"{system:13s} thr[k/s]: {thr}")
        rows.append(f"{system:13s} lat[ms]:  {lat}")
    print_series(f"Figure 5 (cores: {CORES})", rows)

    flick_k = {c: p for c, p in zip(CORES, series["flick-kernel"])}
    flick_m = {c: p for c, p in zip(CORES, series["flick-mtcp"])}
    moxi = {c: p for c, p in zip(CORES, series["moxi"])}

    # 5a: mTCP scales through 16 cores and beats kernel there.
    assert flick_m[16].throughput > flick_m[8].throughput
    assert flick_m[16].throughput > flick_k[16].throughput
    # mTCP's 16-core peak lands near the paper's 198k.
    assert flick_m[16].throughput == pytest.approx(198, rel=0.25)
    # Moxi peaks at 4 cores (~82k) and declines beyond.
    moxi_peak_cores = max(CORES, key=lambda c: moxi[c].throughput)
    assert moxi_peak_cores == 4
    assert moxi[4].throughput == pytest.approx(82, rel=0.25)
    assert moxi[16].throughput < moxi[4].throughput
    # FLICK beats Moxi from 8 cores on.
    assert flick_k[8].throughput > moxi[8].throughput

    # 5b: latency falls with added cores up to each system's peak, and
    # Moxi's latency *rises* past its 4-core peak.
    assert flick_m[16].latency_ms < flick_m[1].latency_ms
    assert moxi[16].latency_ms > moxi[4].latency_ms
    assert flick_m[16].latency_ms < moxi[16].latency_ms
