#!/usr/bin/env python
"""Microbenchmark: interpreter vs compiled tier on the handler hot path.

Measures handler invocations (and FLICK abstract ops) per wall-clock
second for the per-request rule handlers of the three application
programs, exactly as the runtime drives them: through
``build_rule_handler`` with bound contexts, stub channels and
pre-synthesised request records.  Both tiers charge bit-identical op
counts, so the ops/sec ratio equals the calls/sec ratio.

Run with ``PYTHONPATH=src python benchmarks/bench_exec_tier.py``.
Exits non-zero if any workload's compiled tier is below the required
speedup (default 3x) so CI can gate on it.
"""

from __future__ import annotations

import argparse
import itertools
import sys
import time

from repro.apps.hadoop_agg import HADOOP_SOURCE
from repro.apps.http_lb import HTTP_LB_SOURCE, STATIC_WEB_SOURCE
from repro.apps.memcached_proxy import CACHE_ROUTER_SOURCE
from repro.lang import types as ty
from repro.lang.compiler import build_rule_handler, compile_source
from repro.lang.values import Record

WORKLOADS = (
    ("static-web", STATIC_WEB_SOURCE),
    ("http-lb", HTTP_LB_SOURCE),
    ("cache-router", CACHE_ROUTER_SOURCE),
)


class _NullChannel:
    """Discards sends; keeps the sink out of the measurement."""

    __slots__ = ()

    def send(self, value):
        pass


def _synth(t, counter, depth=0):
    t = ty.strip_ref(t)
    if isinstance(t, ty.IntType):
        return next(counter) % 13
    if isinstance(t, ty.StringType):
        return f"k{next(counter) % 8}"
    if isinstance(t, ty.BoolType):
        return next(counter) % 2 == 0
    if isinstance(t, ty.RecordType):
        return Record(
            t.name,
            {name: _synth(ft, counter, depth + 1) for name, ft in t.fields},
        )
    if isinstance(t, ty.DictMapType):
        if depth > 2:
            return {}
        return {
            _synth(t.key, counter, depth + 1): _synth(t.value, counter, depth + 1)
            for _ in range(2)
        }
    if isinstance(t, ty.ListSeqType):
        return [_synth(t.element, counter, depth + 1) for _ in range(3)]
    if isinstance(t, ty.ChannelEndType):
        return [_NullChannel() for _ in range(4)] if t.is_array else _NullChannel()
    return None


def _handler_cases(program, tier):
    """(handler, message pool) for every record-typed rule in the program."""
    cases = []
    checked = program.checked
    interp = program.executor("interp")
    for pname in sorted(program.procs):
        spec = program.procs[pname]
        context = {}
        for param_name, ptype in checked.proc_params[pname]:
            context[param_name] = _synth(ptype, itertools.count(1))
        for gname, init in spec.globals:
            context[gname] = interp.eval_const(init)
        for rule in spec.rules:
            read_type = spec.endpoint(rule.source).read_type
            record_type = checked.records.get(read_type) if read_type else None
            if record_type is None:
                continue
            handler = build_rule_handler(program, rule, dict(context), tier)
            counter = itertools.count(3)
            pool = [_synth(record_type, counter) for _ in range(16)]
            cases.append((handler, pool))
    return cases


def _measure(source, tier, calls):
    program = compile_source(source)
    cases = _handler_cases(program, tier)
    if not cases:
        raise SystemExit("workload has no record-typed rules to benchmark")
    # Pre-expand the round-robin schedule so the timed loop is nothing
    # but handler invocations (same harness cost for both tiers).
    plan = [
        (cases[i % len(cases)][0],
         cases[i % len(cases)][1][i % 16])
        for i in range(calls)
    ]

    def drive(schedule):
        total_ops = 0
        for handler, message in schedule:
            total_ops += handler(message)
        return total_ops

    drive(plan[: max(500, calls // 10)])  # warmup (also triggers codegen)
    start = time.perf_counter()
    ops = drive(plan)
    elapsed = time.perf_counter() - start
    return calls / elapsed, ops / elapsed, ops / calls


def _measure_foldt(tier, calls):
    """hadoop-agg's per-record work is the foldt combine, not a rule."""
    from repro.lang.compiler import build_foldt_handler

    program = compile_source(HADOOP_SOURCE)
    plan = program.procs["hadoop"].foldt
    handler = build_foldt_handler(program, plan, tier)
    pool = [
        Record("kv", {"key": f"k{i % 8}", "value": str(i % 23)})
        for i in range(16)
    ]

    def drive(n):
        total_ops = 0
        for i in range(n):
            _, ops = handler.combine_with_ops(pool[i % 16], pool[(i + 1) % 16])
            total_ops += ops
        return total_ops

    drive(max(500, calls // 10))
    start = time.perf_counter()
    ops = drive(calls)
    elapsed = time.perf_counter() - start
    return calls / elapsed, ops / elapsed, ops / calls


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--calls", type=int, default=20_000,
                        help="timed handler invocations per workload/tier")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail if any workload speeds up less than this")
    args = parser.parse_args(argv)

    print(f"{'workload':<14} {'tier':<9} {'calls/s':>12} {'ops/s':>14} "
          f"{'ops/call':>9}")
    failures = []
    measurements = [
        (name, lambda tier, source=source: _measure(source, tier, args.calls))
        for name, source in WORKLOADS
    ]
    measurements.append(
        ("hadoop-foldt", lambda tier: _measure_foldt(tier, args.calls))
    )
    for name, measure in measurements:
        rates = {}
        for tier in ("interp", "compiled"):
            calls_s, ops_s, ops_per_call = measure(tier)
            rates[tier] = ops_s
            print(f"{name:<14} {tier:<9} {calls_s:>12,.0f} {ops_s:>14,.0f} "
                  f"{ops_per_call:>9.1f}")
        speedup = rates["compiled"] / rates["interp"]
        print(f"{name:<14} {'speedup':<9} {speedup:>11.2f}x")
        if speedup < args.min_speedup:
            failures.append((name, speedup))

    if failures:
        for name, speedup in failures:
            print(f"FAIL: {name} speedup {speedup:.2f}x "
                  f"< required {args.min_speedup:.1f}x", file=sys.stderr)
        return 1
    print(f"all workloads >= {args.min_speedup:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
