"""Figure 7 — completion time of light vs heavy tasks under three
scheduling policies (section 6.4).

Paper: with 200 tasks (100 over 1 KB items, 100 over 16 KB items):

* **cooperative** (FLICK): light tasks complete well before heavy ones
  without increasing the overall runtime;
* **round robin** (one item per schedule): light tasks are delayed by the
  heavy tasks' long items and finish nearly with them;
* **non-cooperative** (run to completion): completion is determined by
  scheduling order, spreading light-task completions widely.
"""

import pytest

from benchmarks.conftest import print_series, run_once
from repro.bench.scheduling import SyntheticTask, run_scheduling_experiment
from repro.runtime.policy import PAPER_POLICIES, registered_policies

POLICIES = PAPER_POLICIES


def _sweep():
    return {
        policy: run_scheduling_experiment(
            policy, n_tasks=200, items_per_task=200, cores=16
        )
        for policy in POLICIES
    }


def test_fig7_scheduling_policies(benchmark):
    results = run_once(benchmark, _sweep)
    rows = [
        f"{policy:16s} light={r.light_mean_ms:7.1f}ms "
        f"heavy={r.heavy_mean_ms:7.1f}ms makespan={r.makespan_ms:7.1f}ms"
        for policy, r in results.items()
    ]
    print_series("Figure 7 (virtual ms)", rows)

    coop = results["cooperative"]
    noncoop = results["non_cooperative"]
    rr = results["round_robin"]

    # Cooperative: light tasks finish far ahead of heavy ones...
    assert coop.light_mean_ms < coop.heavy_mean_ms / 4
    # ...without increasing total runtime relative to the alternatives.
    assert coop.makespan_ms <= 1.1 * min(noncoop.makespan_ms, rr.makespan_ms)

    # Round robin: heavy items hog workers, light tasks finish nearly
    # with the heavy ones.
    assert rr.light_mean_ms > 0.8 * rr.heavy_mean_ms
    assert rr.light_mean_ms > 5 * coop.light_mean_ms

    # Non-cooperative: order-determined completion — light tasks do
    # better than round robin but far worse than cooperative.
    assert coop.light_mean_ms < noncoop.light_mean_ms < rr.light_mean_ms


def test_fig7_timeslice_matters(benchmark):
    """Sanity: an absurdly large timeslice degenerates cooperative
    scheduling towards non-cooperative behaviour for light tasks."""
    def sweep():
        small = run_scheduling_experiment(
            "cooperative", n_tasks=80, items_per_task=120, cores=8,
            timeslice_us=50.0,
        )
        huge = run_scheduling_experiment(
            "cooperative", n_tasks=80, items_per_task=120, cores=8,
            timeslice_us=1e7,
        )
        return small, huge

    small, huge = run_once(benchmark, sweep)
    assert small.light_mean_ms < huge.light_mean_ms


@pytest.mark.parametrize("policy", registered_policies())
def test_fig7_any_registered_policy(benchmark, policy):
    """Every policy in the registry runs the Figure-7 workload
    end-to-end: all 200 tasks complete and the class means are sane."""
    result = run_once(
        benchmark,
        run_scheduling_experiment,
        policy,
        n_tasks=200,
        items_per_task=200,
        cores=16,
    )
    assert result.policy == policy
    assert 0 < result.light_mean_ms <= result.makespan_ms
    assert 0 < result.heavy_mean_ms <= result.makespan_ms
    assert result.makespan_ms == max(result.light_max_ms, result.heavy_max_ms)


def test_fig7_new_policies_extend_the_figure(benchmark):
    """The policies the paper could not test sit where they should on
    the Figure-7 axes: priority frees light tasks even faster than
    cooperative, and batch amortises scheduling overhead over round
    robin without changing its fairness shape."""

    def sweep():
        return {
            policy: run_scheduling_experiment(
                policy, n_tasks=200, items_per_task=200, cores=16
            )
            for policy in ("cooperative", "round_robin", "priority", "batch")
        }

    results = run_once(benchmark, sweep)
    assert (
        results["priority"].light_mean_ms
        < results["cooperative"].light_mean_ms
    )
    assert results["batch"].makespan_ms < results["round_robin"].makespan_ms
    assert results["batch"].light_mean_ms > 0.8 * results["batch"].heavy_mean_ms


def test_fig7_roadmap_policies_rows(benchmark):
    """The four roadmap policies (deadline / numa / adaptive-timeslice /
    steal-half) produce Figure-7 rows alongside the paper trio: EDF with
    size-proportional SLOs frees light tasks fastest of all, and the
    others keep the cooperative fairness shape at equal makespan."""

    def sweep():
        return {
            policy: run_scheduling_experiment(
                policy, n_tasks=200, items_per_task=200, cores=16
            )
            for policy in (
                "cooperative",
                "round_robin",
                "deadline",
                "numa",
                "adaptive-timeslice",
                "steal-half",
            )
        }

    results = run_once(benchmark, sweep)
    rows = [
        f"{policy:18s} light={r.light_mean_ms:7.1f}ms "
        f"heavy={r.heavy_mean_ms:7.1f}ms makespan={r.makespan_ms:7.1f}ms"
        for policy, r in results.items()
    ]
    print_series("Figure 7, roadmap policies (virtual ms)", rows)

    coop = results["cooperative"]
    # Tight SLOs on light tasks make EDF the most aggressive
    # light-first policy on the figure.
    assert results["deadline"].light_mean_ms < coop.light_mean_ms
    # numa and steal-half keep cooperative's light-first fairness.
    for policy in ("numa", "steal-half"):
        result = results[policy]
        assert result.light_mean_ms < result.heavy_mean_ms / 4, policy
    # Deep queues (200 tasks on 16 cores) push the adaptive budget to
    # the 10 µs floor, so it lands between cooperative's long slices
    # and round robin's per-item interleave on the light axis.
    adaptive = results["adaptive-timeslice"]
    assert (
        coop.light_mean_ms
        < adaptive.light_mean_ms
        < results["round_robin"].light_mean_ms
    )
    # None of the four buys fairness with total runtime.
    for policy in ("deadline", "numa", "adaptive-timeslice", "steal-half"):
        assert results[policy].makespan_ms == pytest.approx(
            coop.makespan_ms, rel=0.05
        ), policy


def test_fig7_numa_topology_prices_remote_steals(benchmark):
    """On a two-socket topology the numa policy's on-socket preference
    pays less steal cost than topology-blind longest-queue stealing."""

    def sweep():
        from repro.runtime.scheduler import Scheduler, TaskBase
        from repro.sim.engine import Engine

        costs = {}
        for policy in ("cooperative", "numa"):
            TaskBase.reset_ids()
            engine = Engine()
            sched = Scheduler(engine, 16, 50.0, policy, "two-socket")
            # Imbalanced piles on BOTH sockets: a socket-1 thief has a
            # local victim (core 8) and a longer remote one (core 0).
            # Longest-queue stealing reaches across the interconnect;
            # numa stays on-socket and skips the penalty.
            tasks = []
            for i in range(40):
                task = SyntheticTask(f"a{i}", 60, 4 * 1024, engine)
                task.home_hint = 0
                tasks.append(task)
            for i in range(20):
                task = SyntheticTask(f"b{i}", 60, 4 * 1024, engine)
                task.home_hint = 8
                tasks.append(task)
            sched.start()
            for task in tasks:
                sched.notify_runnable(task)
            engine.run()
            assert all(not t.has_work() for t in tasks)
            costs[policy] = (sched.total_steal_us, sched.total_steals)
        return costs

    costs = run_once(benchmark, sweep)
    coop_us, coop_steals = costs["cooperative"]
    numa_us, numa_steals = costs["numa"]
    print_series(
        "two-socket steal cost",
        [
            f"cooperative steal_us={coop_us:8.1f} steals={coop_steals}",
            f"numa        steal_us={numa_us:8.1f} steals={numa_steals}",
        ],
    )
    assert numa_steals > 0
    # On-socket preference cuts both the total steal bill and the
    # average price per steal.
    assert numa_us < coop_us
    assert numa_us / numa_steals < coop_us / coop_steals
