"""Figure 7 — completion time of light vs heavy tasks under three
scheduling policies (section 6.4).

Paper: with 200 tasks (100 over 1 KB items, 100 over 16 KB items):

* **cooperative** (FLICK): light tasks complete well before heavy ones
  without increasing the overall runtime;
* **round robin** (one item per schedule): light tasks are delayed by the
  heavy tasks' long items and finish nearly with them;
* **non-cooperative** (run to completion): completion is determined by
  scheduling order, spreading light-task completions widely.
"""

import pytest

from benchmarks.conftest import print_series, run_once
from repro.bench.scheduling import run_scheduling_experiment
from repro.runtime.policy import PAPER_POLICIES, registered_policies

POLICIES = PAPER_POLICIES


def _sweep():
    return {
        policy: run_scheduling_experiment(
            policy, n_tasks=200, items_per_task=200, cores=16
        )
        for policy in POLICIES
    }


def test_fig7_scheduling_policies(benchmark):
    results = run_once(benchmark, _sweep)
    rows = [
        f"{policy:16s} light={r.light_mean_ms:7.1f}ms "
        f"heavy={r.heavy_mean_ms:7.1f}ms makespan={r.makespan_ms:7.1f}ms"
        for policy, r in results.items()
    ]
    print_series("Figure 7 (virtual ms)", rows)

    coop = results["cooperative"]
    noncoop = results["non_cooperative"]
    rr = results["round_robin"]

    # Cooperative: light tasks finish far ahead of heavy ones...
    assert coop.light_mean_ms < coop.heavy_mean_ms / 4
    # ...without increasing total runtime relative to the alternatives.
    assert coop.makespan_ms <= 1.1 * min(noncoop.makespan_ms, rr.makespan_ms)

    # Round robin: heavy items hog workers, light tasks finish nearly
    # with the heavy ones.
    assert rr.light_mean_ms > 0.8 * rr.heavy_mean_ms
    assert rr.light_mean_ms > 5 * coop.light_mean_ms

    # Non-cooperative: order-determined completion — light tasks do
    # better than round robin but far worse than cooperative.
    assert coop.light_mean_ms < noncoop.light_mean_ms < rr.light_mean_ms


def test_fig7_timeslice_matters(benchmark):
    """Sanity: an absurdly large timeslice degenerates cooperative
    scheduling towards non-cooperative behaviour for light tasks."""
    def sweep():
        small = run_scheduling_experiment(
            "cooperative", n_tasks=80, items_per_task=120, cores=8,
            timeslice_us=50.0,
        )
        huge = run_scheduling_experiment(
            "cooperative", n_tasks=80, items_per_task=120, cores=8,
            timeslice_us=1e7,
        )
        return small, huge

    small, huge = run_once(benchmark, sweep)
    assert small.light_mean_ms < huge.light_mean_ms


@pytest.mark.parametrize("policy", registered_policies())
def test_fig7_any_registered_policy(benchmark, policy):
    """Every policy in the registry runs the Figure-7 workload
    end-to-end: all 200 tasks complete and the class means are sane."""
    result = run_once(
        benchmark,
        run_scheduling_experiment,
        policy,
        n_tasks=200,
        items_per_task=200,
        cores=16,
    )
    assert result.policy == policy
    assert 0 < result.light_mean_ms <= result.makespan_ms
    assert 0 < result.heavy_mean_ms <= result.makespan_ms
    assert result.makespan_ms == max(result.light_max_ms, result.heavy_max_ms)


def test_fig7_new_policies_extend_the_figure(benchmark):
    """The policies the paper could not test sit where they should on
    the Figure-7 axes: priority frees light tasks even faster than
    cooperative, and batch amortises scheduling overhead over round
    robin without changing its fairness shape."""

    def sweep():
        return {
            policy: run_scheduling_experiment(
                policy, n_tasks=200, items_per_task=200, cores=16
            )
            for policy in ("cooperative", "round_robin", "priority", "batch")
        }

    results = run_once(benchmark, sweep)
    assert (
        results["priority"].light_mean_ms
        < results["cooperative"].light_mean_ms
    )
    assert results["batch"].makespan_ms < results["round_robin"].makespan_ms
    assert results["batch"].light_mean_ms > 0.8 * results["batch"].heavy_mean_ms
