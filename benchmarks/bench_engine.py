#!/usr/bin/env python
"""Microbenchmark: calendar engine vs seed heap engine dispatch rates.

Measures events dispatched per wall-clock second through ``run()`` for
the event-arrival shapes the scenario matrix produces at million-request
scale, on both the production calendar engine (:mod:`repro.sim.engine`)
and the seed heap-only oracle (:mod:`repro.sim.reference`).  The two
fire bit-identical sequences (locked by
``tests/test_engine_equivalence.py``), so the rate ratio is a pure
hot-path comparison.

Workloads:

* ``tick-cascade`` — preloaded waves whose callbacks each schedule a
  zero-delay follow-up; exercises the same-tick ready-queue drain that
  handler chains and ``Event.trigger`` fan-out produce.
* ``equal-ts-waves`` — dense runs of equal nonzero timestamps;
  exercises the equal-timestamp bulk batch drain (open-loop arrival
  ticks that collide on the admission clock).
* ``timeout-backlog`` — millions of pending timeouts colliding on ~1k
  distinct timestamps; wheel insert + promotion + bulk drain.
* ``timeout-spread`` — millions of pending timeouts on *distinct*
  timestamps (the hardest case: no equal-run batching applies);
  wheel promotion argsort + index drain.
* ``http-overload-mix`` — self-rescheduling actors drawing delays from
  the http-overload-* scenario profile (1% same-tick, 35% under 16 µs,
  29% 16 µs–1 ms, 35% 1–10 ms); end-to-end insert *and* dispatch.
  Informational only: the timed region is dominated by per-event
  insertion, where the seed's C ``heappush`` (O(1) average sift-up) is
  already near-optimal, so no 5x is available even in principle.

The four dispatch workloads are gated: exits non-zero if any speeds up
less than ``--min-speedup`` (default 5x), mirroring the exec-tier gate,
so CI can hold the line.  Backlog sizes default to 3M events because
the seed heap's relative cost grows with pending-set size (deeper
sift-downs, more cache misses) — that *is* the regime the overhaul
targets; ``--scale`` shrinks sizes for quick local runs but disables
the gate below 1.0 since the ratio is not size-invariant.

Run with ``PYTHONPATH=src python benchmarks/bench_engine.py``.
"""

from __future__ import annotations

import argparse
import gc
import json
import subprocess
import sys
import time

from repro.sim.engine import Engine
from repro.sim.reference import ReferenceEngine


def _noop():
    pass


def build_cascade(cls, n):
    """Waves of events whose callbacks each post one zero-delay event."""
    eng = cls()

    def fire():
        eng.schedule(0.0, _noop)

    for wave in range(max(n // 1000, 1)):
        t = 10.0 + wave * 50.0
        for _ in range(500):
            eng.at(t, fire)
    return eng, lambda: n


def build_waves(cls, n):
    """1000-event runs of exactly equal nonzero timestamps."""
    eng = cls()
    at = eng.at
    for i in range(n):
        at(10.0 + (i // 1000) * 50.0, _noop)
    return eng, lambda: n


def build_backlog(cls, n):
    """Huge pending set colliding on ~1k distinct timestamps."""
    eng = cls()
    sched = eng.schedule
    for i in range(n):
        sched(0.7 + ((i * 37) % 997), _noop)
    return eng, lambda: n


def build_spread(cls, n):
    """Huge pending set of fully distinct timestamps."""
    eng = cls()
    sched = eng.schedule
    for i in range(n):
        sched(0.7 + ((i * 37) % 997) + (i % 10007) * 9.5e-5, _noop)
    return eng, lambda: n


def build_mix(cls, n):
    """Self-rescheduling actors on the http-overload delay profile.

    The LCG draw sequence depends only on firing order, which both
    engines reproduce identically, so each sees the same delays.
    """
    eng = cls()
    state = [n, 0, 12345]  # remaining, fired, lcg

    def rnd():
        state[2] = (state[2] * 1103515245 + 12345) & 0x7FFFFFFF
        return state[2] / 0x7FFFFFFF

    def tick():
        state[1] += 1
        left = state[0]
        if left <= 0:
            return
        state[0] = left - 1
        r = rnd()
        if r < 0.01:
            eng.schedule(0.0, tick)
        elif r < 0.36:
            eng.schedule(0.5 + rnd() * 15.5, tick)
        elif r < 0.65:
            eng.schedule(16.0 + rnd() * 984.0, tick)
        else:
            eng.schedule(1_000.0 + rnd() * 9_000.0, tick)

    for _ in range(64):
        eng.schedule(rnd() * 100.0, tick)
    return eng, lambda: state[1]


#: (name, builder, default events, part of the gated set)
WORKLOADS = (
    ("tick-cascade", build_cascade, 1_000_000, True),
    ("equal-ts-waves", build_waves, 1_000_000, True),
    ("timeout-backlog", build_backlog, 3_000_000, True),
    ("timeout-spread", build_spread, 3_000_000, True),
    ("http-overload-mix", build_mix, 500_000, False),
)


def _measure(cls, build, n, reps):
    """Best-of-``reps`` dispatch rate through ``run()`` (setup untimed)."""
    best = 0.0
    for _ in range(reps):
        eng, count = build(cls, n)
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            eng.run()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        best = max(best, count() / elapsed)
    return best


_ENGINES = {"heap": ReferenceEngine, "calendar": Engine}


def _run_worker(name, engine, n, reps):
    """Measure one workload/engine in this process; print the rate."""
    build = dict((w[0], w[1]) for w in WORKLOADS)[name]
    json.dump(_measure(_ENGINES[engine], build, n, reps), sys.stdout)
    return 0


def _measure_isolated(name, n, reps):
    """Measure one workload in a fresh interpreter per engine.

    Process-per-measurement keeps every run on a clean allocator:
    million-event runs fragment the arenas enough to shave ~10% off
    whatever runs after them in the same process, which is exactly the
    kind of noise a 5x gate must not wobble on.
    """
    rates = {}
    for engine in _ENGINES:
        proc = subprocess.run(
            [sys.executable, __file__, "--worker", name, "--engine", engine,
             "--events", str(n), "--reps", str(reps)],
            capture_output=True, text=True, check=True,
        )
        rates[engine] = json.loads(proc.stdout)
    return rates


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="fail if a gated workload speeds up less")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per workload/engine (best-of)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiply event counts (gate needs >= 1.0)")
    parser.add_argument("--worker", metavar="WORKLOAD",
                        help=argparse.SUPPRESS)
    parser.add_argument("--engine", choices=sorted(_ENGINES),
                        help=argparse.SUPPRESS)
    parser.add_argument("--events", type=int, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.worker:
        return _run_worker(args.worker, args.engine, args.events, args.reps)
    gated_run = args.scale >= 1.0

    print(f"{'workload':<18} {'engine':<9} {'events':>10} {'events/s':>12}")
    failures = []
    for name, build, base_n, gated in WORKLOADS:
        n = max(int(base_n * args.scale), 1000)
        rates = _measure_isolated(name, n, args.reps)
        for label in ("heap", "calendar"):
            print(f"{name:<18} {label:<9} {n:>10,} {rates[label]:>12,.0f}")
        speedup = rates["calendar"] / rates["heap"]
        tag = "" if gated else "  (informational)"
        print(f"{name:<18} {'speedup':<9} {speedup:>22.2f}x{tag}")
        if gated and gated_run and speedup < args.min_speedup:
            failures.append((name, speedup))

    if failures:
        for name, speedup in failures:
            print(f"FAIL: {name} speedup {speedup:.2f}x "
                  f"< required {args.min_speedup:.1f}x", file=sys.stderr)
        return 1
    if gated_run:
        print(f"all gated workloads >= {args.min_speedup:.1f}x")
    else:
        print(f"scale {args.scale} < 1.0: gate skipped "
              "(ratios are not size-invariant)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
