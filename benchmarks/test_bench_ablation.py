"""Ablations E11-E13: design choices DESIGN.md calls out.

* E11 — cooperative timeslice sweep (section 5 gives 10-100 µs as the
  operating range): fairness for light tasks degrades as the quantum
  grows.
* E12 — graph-pool pre-allocation (section 5: "the platform maintains a
  pre-allocated pool of task graphs to avoid the overhead of
  construction"): disabling the pool costs non-persistent throughput.
* E13 — parser specialisation (section 4.2): decoding only accessed
  fields beats the full-grammar parser on proxy throughput.
"""


from benchmarks.conftest import print_series, run_once
from repro.bench.scheduling import run_scheduling_experiment
from repro.bench.testbeds import run_http_experiment, run_memcached_experiment


def test_e11_timeslice_sweep(benchmark):
    """The quantum has a sweet spot (the paper's 10-100 µs range, upper
    half here): a quantum *below one heavy item* (65 µs of work that
    cannot be split) degenerates towards round-robin — every task gets
    one item per turn regardless of the budget — while a quantum larger
    than a whole task degenerates to run-to-completion.  Both ends hurt
    light tasks; in between the policy is insensitive to the value."""
    def sweep():
        return {
            ts: run_scheduling_experiment(
                "cooperative", n_tasks=200, items_per_task=200, cores=16,
                timeslice_us=ts,
            )
            for ts in (10.0, 50.0, 100.0, 100_000.0)
        }

    results = run_once(benchmark, sweep)
    print_series(
        "E11 timeslice sweep",
        [
            f"timeslice={ts:7.0f}us light={r.light_mean_ms:6.1f}ms "
            f"heavy={r.heavy_mean_ms:6.1f}ms"
            for ts, r in results.items()
        ],
    )
    sweet = [results[ts].light_mean_ms for ts in (50.0, 100.0)]
    # Flat across the sweet spot (<15% spread).
    assert max(sweet) < 1.15 * min(sweet)
    # Sub-item quantum degenerates towards round-robin fairness loss.
    assert results[10.0].light_mean_ms > 1.4 * max(sweet)
    # A quantum exceeding a whole task degenerates to run-to-completion.
    assert results[100_000.0].light_mean_ms > 1.4 * max(sweet)


def test_e12_graph_pool(benchmark):
    def sweep():
        pooled = run_http_experiment(
            "flick-kernel", 200, persistent=False, mode="web", cores=16,
            requests_per_client=6, graph_pool_size=512,
        )
        unpooled = run_http_experiment(
            "flick-kernel", 200, persistent=False, mode="web", cores=16,
            requests_per_client=6, graph_pool_size=0,
        )
        return pooled, unpooled

    pooled, unpooled = run_once(benchmark, sweep)
    print_series(
        "E12 graph pool (non-persistent web)",
        [
            f"pool=512: {pooled.throughput:6.1f}k req/s",
            f"pool=0:   {unpooled.throughput:6.1f}k req/s",
        ],
    )
    assert pooled.throughput > unpooled.throughput


def test_e13_parser_specialisation(benchmark):
    """Measured on the cache-router variant: its response path runs the
    generated parser (the plain proxy raw-forwards responses, so parsing
    cost never appears there).  4 KiB values make the skipped payload
    decoding visible."""
    def sweep():
        spec = run_memcached_experiment(
            "flick-kernel", 8, concurrency=64, requests_per_client=30,
            specialised_parser=True, cache_router=True, value_bytes=4096,
        )
        full = run_memcached_experiment(
            "flick-kernel", 8, concurrency=64, requests_per_client=30,
            specialised_parser=False, cache_router=True, value_bytes=4096,
        )
        return spec, full

    spec, full = run_once(benchmark, sweep)
    print_series(
        "E13 parser specialisation (memcached proxy, 8 cores)",
        [
            f"specialised: {spec.throughput:6.1f}k req/s",
            f"full parse:  {full.throughput:6.1f}k req/s",
        ],
    )
    assert spec.throughput > full.throughput
    assert spec.extra["errors"] == 0 and full.extra["errors"] == 0


def test_cache_router_offload(benchmark):
    """Bonus ablation: the Listing-1 cache cuts backend traffic by an
    order of magnitude on a skewed key space."""
    def sweep():
        plain = run_memcached_experiment(
            "flick-kernel", 8, concurrency=64, requests_per_client=30,
            cache_router=False, key_space=64,
        )
        cached = run_memcached_experiment(
            "flick-kernel", 8, concurrency=64, requests_per_client=30,
            cache_router=True, key_space=64,
        )
        return plain, cached

    plain, cached = run_once(benchmark, sweep)
    print_series(
        "cache router backend offload",
        [
            f"plain proxy:  {plain.extra['backend_requests']:7.0f} backend reqs",
            f"cache router: {cached.extra['backend_requests']:7.0f} backend reqs",
        ],
    )
    assert cached.extra["backend_requests"] < plain.extra["backend_requests"] / 5
