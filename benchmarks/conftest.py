"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark runs its experiment exactly once inside pytest-benchmark's
timer (``pedantic(rounds=1)``): the *measured quantity* of interest is the
virtual-time result printed to stdout, not the wall-clock time of the
simulation, so repeating runs would only waste time (the simulator is
deterministic).
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_series(title: str, rows) -> None:
    print(f"\n== {title} ==")
    for row in rows:
        print("  " + row)
