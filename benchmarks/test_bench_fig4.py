"""Figure 4 — HTTP load balancer throughput/latency vs concurrent clients.

Four panels: (a) throughput and (b) latency with persistent connections,
(c)/(d) with non-persistent connections; systems FLICK, FLICK+mTCP,
Apache, Nginx over 10 backends.  Shape assertions: FLICK above Nginx
above Apache with persistent connections (paper ratios 1.4x / 2.2x);
kernel-FLICK *below* Nginx non-persistent (no pooled backend connections)
while FLICK+mTCP dominates everything; FLICK latency lowest.
"""


from benchmarks.conftest import print_series, run_once
from repro.bench.testbeds import run_http_experiment

SYSTEMS = ("flick-kernel", "flick-mtcp", "apache", "nginx")
CLIENT_COUNTS = (100, 200, 400, 800, 1600)


def _sweep(persistent, requests_per_client):
    series = {}
    for system in SYSTEMS:
        series[system] = [
            run_http_experiment(
                system, n, persistent=persistent, mode="lb", cores=16,
                requests_per_client=requests_per_client,
            )
            for n in CLIENT_COUNTS
        ]
    return series


def _print(series, title):
    rows = []
    for system, points in series.items():
        thr = " ".join(f"{p.throughput:7.1f}" for p in points)
        lat = " ".join(f"{p.latency_ms:6.2f}" for p in points)
        rows.append(f"{system:13s} thr[k/s]: {thr}")
        rows.append(f"{system:13s} lat[ms]:  {lat}")
    print_series(title + f" (clients: {CLIENT_COUNTS})", rows)


def test_fig4ab_persistent(benchmark):
    series = run_once(benchmark, _sweep, True, 30)
    _print(series, "Figure 4a/4b — persistent connections")
    peak = {s: max(p.throughput for p in pts) for s, pts in series.items()}
    # 4a orderings and rough ratios (paper: 1.4x nginx, 2.2x apache).
    assert peak["flick-kernel"] > peak["nginx"] > peak["apache"]
    assert peak["flick-mtcp"] > peak["flick-kernel"]
    assert peak["flick-kernel"] / peak["apache"] > 1.7
    assert peak["flick-kernel"] / peak["nginx"] > 1.15
    # 4b: FLICK latency at the highest concurrency is the lowest.
    last = {s: pts[-1].latency_ms for s, pts in series.items()}
    assert last["flick-mtcp"] <= min(last["apache"], last["nginx"])
    assert last["flick-kernel"] <= last["apache"]


def test_fig4cd_non_persistent(benchmark):
    series = run_once(benchmark, _sweep, False, 6)
    _print(series, "Figure 4c/4d — non-persistent connections")
    peak = {s: max(p.throughput for p in pts) for s, pts in series.items()}
    # 4c: kernel FLICK pays per-connection backend setup and trails
    # Nginx; mTCP recovers the win by a wide margin (paper ~2.5x Nginx).
    assert peak["flick-kernel"] < peak["nginx"]
    assert peak["flick-mtcp"] > 2.0 * peak["nginx"]
    assert peak["flick-mtcp"] > 2.0 * peak["apache"]
    # 4d: mTCP-FLICK keeps the lowest latency at high concurrency.
    last = {s: pts[-1].latency_ms for s, pts in series.items()}
    assert last["flick-mtcp"] == min(last.values())
