"""Message grammars: model, DSL front end, codec engine, protocol library."""

from repro.grammar.dsl import parse_grammar, parse_unit
from repro.grammar.engine import IncrementalUnitParser, UnitCodec, make_codec
from repro.grammar.model import (
    BIG,
    Binary,
    Const,
    ConstField,
    DataField,
    Field,
    FieldRef,
    IntField,
    LITTLE,
    SelfRef,
    Unit,
    VarField,
    eval_expr,
)

__all__ = [
    "parse_grammar",
    "parse_unit",
    "IncrementalUnitParser",
    "UnitCodec",
    "make_codec",
    "BIG",
    "Binary",
    "Const",
    "ConstField",
    "DataField",
    "Field",
    "FieldRef",
    "IntField",
    "LITTLE",
    "SelfRef",
    "Unit",
    "VarField",
    "eval_expr",
]
