"""Declarative message-grammar model (Spicy-style, section 4.2).

A :class:`Unit` describes the wire format of one message type as an
ordered sequence of fields:

* :class:`IntField` — fixed-size (1/2/4/8 byte) integer, signed or not,
  in the unit's byte order;
* :class:`DataField` — byte string whose length is either constant or an
  expression over previously parsed fields (``key : string &length =
  self.key_len``); decoded as ``str`` or kept as ``bytes``;
* :class:`VarField` — a *computed* value: no bytes on the wire, derived
  during parsing by ``parse_expr`` and driving other fields during
  serialisation through ``serialize_target``/``serialize_expr``
  (Listing 2's ``value_len`` / ``total_len`` pattern);
* :class:`ConstField` — a fixed byte literal (magic numbers, delimiters).

Length expressions use the small arithmetic language below
(:class:`Const`, :class:`FieldRef`, :class:`Binary`) so that grammars are
data, not code — the engine compiles them to closures once per grammar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.core.errors import GrammarError

BIG = "big"
LITTLE = "little"

_INT_SIZES = (1, 2, 4, 8)


# ---------------------------------------------------------------------------
# Size / value expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SizeExpr:
    """Base class for grammar arithmetic expressions."""


@dataclass(frozen=True)
class Const(SizeExpr):
    value: int


@dataclass(frozen=True)
class FieldRef(SizeExpr):
    """``self.<name>`` — the parsed value of an earlier field."""

    name: str


@dataclass(frozen=True)
class SelfRef(SizeExpr):
    """``$$`` — the value of the field owning the expression."""


@dataclass(frozen=True)
class Binary(SizeExpr):
    op: str  # '+', '-', '*'
    left: SizeExpr
    right: SizeExpr


def eval_expr(expr: SizeExpr, values: Dict[str, int], own: Optional[int] = None) -> int:
    """Evaluate a grammar expression over parsed field ``values``."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, FieldRef):
        try:
            return values[expr.name]
        except KeyError:
            raise GrammarError(
                f"expression references field {expr.name!r} before it is "
                "available"
            ) from None
    if isinstance(expr, SelfRef):
        if own is None:
            raise GrammarError("'$$' used outside a field context")
        return own
    if isinstance(expr, Binary):
        left = eval_expr(expr.left, values, own)
        right = eval_expr(expr.right, values, own)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        raise GrammarError(f"unknown grammar operator {expr.op!r}")
    raise GrammarError(f"unknown grammar expression {expr!r}")


def referenced_fields(expr: Optional[SizeExpr]) -> Tuple[str, ...]:
    """All field names mentioned by ``expr`` (deterministic order)."""
    if expr is None:
        return ()
    if isinstance(expr, FieldRef):
        return (expr.name,)
    if isinstance(expr, Binary):
        seen = []
        for name in referenced_fields(expr.left) + referenced_fields(expr.right):
            if name not in seen:
                seen.append(name)
        return tuple(seen)
    return ()


# ---------------------------------------------------------------------------
# Fields
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Field:
    """Base class for unit fields."""

    name: Optional[str]  # None = anonymous padding (the listings' '_')

    @property
    def anonymous(self) -> bool:
        return self.name is None


@dataclass(frozen=True)
class IntField(Field):
    size: int = 4
    signed: bool = False

    def __post_init__(self):
        if self.size not in _INT_SIZES:
            raise GrammarError(
                f"integer field {self.name!r}: size must be one of "
                f"{_INT_SIZES}, got {self.size}"
            )


@dataclass(frozen=True)
class DataField(Field):
    """Bytes/string payload with constant or computed length."""

    length: Union[SizeExpr, int] = 0
    text: bool = False  # decode as UTF-8 str (FLICK 'string') vs bytes

    def length_expr(self) -> SizeExpr:
        if isinstance(self.length, int):
            return Const(self.length)
        return self.length


@dataclass(frozen=True)
class VarField(Field):
    """Computed field: parsed via an expression, optionally back-writing
    another field at serialisation time.

    ``parse_expr`` yields the field's value from earlier fields.
    ``serialize_target``/``serialize_expr`` implement Listing 2's
    ``&serialize = self.total_len = ... + $$`` form: when serialising,
    ``serialize_target`` is assigned ``serialize_expr`` with ``$$`` bound
    to this var's own (recomputed) value.
    """

    parse_expr: Optional[SizeExpr] = None
    serialize_target: Optional[str] = None
    serialize_expr: Optional[SizeExpr] = None


@dataclass(frozen=True)
class ConstField(Field):
    value: bytes = b""


# ---------------------------------------------------------------------------
# Units
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Unit:
    """A complete message grammar."""

    name: str
    fields: Tuple[Field, ...]
    byteorder: str = BIG

    def __post_init__(self):
        if self.byteorder not in (BIG, LITTLE):
            raise GrammarError(f"unknown byte order {self.byteorder!r}")
        seen = set()
        available = set()
        for f in self.fields:
            if f.name is not None:
                if f.name in seen:
                    raise GrammarError(
                        f"unit {self.name!r}: duplicate field {f.name!r}"
                    )
                seen.add(f.name)
            for expr in self._exprs_of(f):
                for ref in referenced_fields(expr):
                    if ref not in available:
                        raise GrammarError(
                            f"unit {self.name!r}: field {f.name!r} references "
                            f"{ref!r} before it is parsed"
                        )
            if f.name is not None:
                available.add(f.name)
        if not self.fields:
            raise GrammarError(f"unit {self.name!r} has no fields")

    @staticmethod
    def _exprs_of(f: Field):
        if isinstance(f, DataField) and isinstance(f.length, SizeExpr):
            yield f.length
        if isinstance(f, VarField):
            if f.parse_expr is not None:
                yield f.parse_expr
            # serialize_expr may reference later fields via $$; validated
            # at serialisation time instead.

    def field_named(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(name)

    def named_fields(self) -> Tuple[Field, ...]:
        return tuple(f for f in self.fields if f.name is not None)

    def structural_fields(self) -> frozenset:
        """Fields whose *values* are required to locate message boundaries
        or to drive serialisation: anything referenced by a length or var
        expression.  These are always decoded, even by specialised
        parsers."""
        needed = set()
        for f in self.fields:
            if isinstance(f, DataField) and isinstance(f.length, SizeExpr):
                needed.update(referenced_fields(f.length))
            if isinstance(f, VarField):
                needed.update(referenced_fields(f.parse_expr))
                needed.update(referenced_fields(f.serialize_expr))
                if f.serialize_target is not None:
                    needed.add(f.serialize_target)
                if f.name is not None:
                    needed.add(f.name)
        return frozenset(needed)
