"""Parser/serialiser generation from message grammars (section 4.2).

:class:`UnitCodec` compiles a :class:`repro.grammar.model.Unit` into

* an **incremental parser** (:class:`IncrementalUnitParser`) that consumes
  a byte stream in arbitrary chunks, never allocates per-message scratch
  beyond the reusable buffer, and emits :class:`repro.lang.values.Record`
  messages as they complete — mirroring the generated input-task code;
* a **serialiser** that re-encodes records, automatically recomputing
  dependent length fields (Listing 2's ``key_len``/``total_len``), with a
  zero-work fast path for unmodified records (raw copy).

A codec may be **specialised** with ``project=...`` — the set of fields
the FLICK program actually accesses.  Non-structural fields outside the
projection are *skipped*: their bytes are located but never decoded, and
serialisation splices their raw spans back verbatim.  This is the paper's
"only parse and serialise the required fields and their dependencies".

Parsing/serialisation cost is reported in abstract **ops** (see
``OPS_PER_*`` constants); the runtime converts ops into virtual CPU time.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.errors import ParseError, SerializeError
from repro.grammar.model import (
    ConstField,
    DataField,
    Field,
    FieldRef,
    IntField,
    Unit,
    VarField,
    eval_expr,
)
from repro.lang.values import Record

# Abstract cost weights (ops).  Decoded payload costs per byte; skipped
# payload is only pointer arithmetic.  Chosen so that a full parse of a
# typical Memcached command is ~an order of magnitude above a skip-parse.
OPS_PER_FIELD = 1.0
OPS_PER_DECODED_BYTE = 1.0 / 16.0
OPS_PER_SKIPPED_BYTE = 1.0 / 512.0
OPS_PER_RAW_COPY_BYTE = 1.0 / 256.0

_COMPACT_THRESHOLD = 1 << 16


class IncrementalUnitParser:
    """Resumable parser for one byte stream of ``unit`` messages."""

    def __init__(self, codec: "UnitCodec"):
        self._codec = codec
        self._buf = bytearray()
        self._pos = 0  # consume offset into _buf
        self._msg_start = 0  # start of the in-progress message
        self._field_idx = 0
        self._values: Dict[str, object] = {}
        self._spans: Dict[str, Tuple[int, int]] = {}  # relative to message
        self.ops = 0.0

    # -- byte intake -------------------------------------------------------

    def feed(self, data: bytes) -> None:
        """Append stream bytes; call :meth:`poll` to harvest messages."""
        self._buf.extend(data)

    def pending_bytes(self) -> int:
        """Bytes buffered but not yet consumed by a complete message."""
        return len(self._buf) - self._msg_start

    def take_ops(self) -> float:
        ops, self.ops = self.ops, 0.0
        return ops

    # -- message extraction ---------------------------------------------------

    def poll(self) -> Optional[Record]:
        """Return the next complete message, or None if more bytes are
        needed.  Raises :class:`ParseError` on malformed input."""
        unit = self._codec.unit
        fields = unit.fields
        while self._field_idx < len(fields):
            if not self._step(fields[self._field_idx]):
                return None
            self._field_idx += 1
        return self._finish_message()

    def messages(self) -> Iterator[Record]:
        """Drain every complete message currently buffered."""
        while True:
            record = self.poll()
            if record is None:
                return
            yield record

    # -- internals ---------------------------------------------------------------

    def _step(self, field: Field) -> bool:
        """Try to consume ``field``; False if more bytes are needed."""
        codec = self._codec
        if isinstance(field, VarField):
            value = eval_expr(field.parse_expr, self._int_values())
            if value < 0:
                raise ParseError(
                    f"{codec.unit.name}.{field.name}: computed negative "
                    f"value {value}"
                )
            self._values[field.name] = value
            self.ops += OPS_PER_FIELD
            return True
        size = self._field_size(field)
        if len(self._buf) - self._pos < size:
            return False
        start = self._pos
        end = start + size
        rel = (start - self._msg_start, end - self._msg_start)
        if isinstance(field, IntField):
            if field.name is not None:
                self._values[field.name] = int.from_bytes(
                    self._buf[start:end],
                    codec.unit.byteorder,
                    signed=field.signed,
                )
                self._spans[field.name] = rel
            else:
                self._spans[f"__anon_{self._field_idx}"] = rel
            self.ops += OPS_PER_FIELD
        elif isinstance(field, ConstField):
            if bytes(self._buf[start:end]) != field.value:
                raise ParseError(
                    f"{codec.unit.name}: constant field mismatch at "
                    f"offset {start - self._msg_start}"
                )
            self.ops += OPS_PER_FIELD
        elif isinstance(field, DataField):
            span_key = (
                field.name
                if field.name is not None
                else f"__anon_{self._field_idx}"
            )
            self._spans[span_key] = rel
            if field.name in codec.decoded_fields:
                raw = bytes(self._buf[start:end])
                self._values[field.name] = (
                    raw.decode("utf-8", "replace") if field.text else raw
                )
                self.ops += OPS_PER_FIELD + size * OPS_PER_DECODED_BYTE
            else:
                self.ops += OPS_PER_FIELD + size * OPS_PER_SKIPPED_BYTE
        else:  # pragma: no cover - exhaustive over field kinds
            raise ParseError(f"unknown field kind {field!r}")
        self._pos = end
        return True

    def _field_size(self, field: Field) -> int:
        if isinstance(field, IntField):
            return field.size
        if isinstance(field, ConstField):
            return len(field.value)
        if isinstance(field, DataField):
            size = eval_expr(field.length_expr(), self._int_values())
            if size < 0:
                raise ParseError(
                    f"{self._codec.unit.name}.{field.name}: negative "
                    f"length {size}"
                )
            return size
        raise ParseError(f"field {field!r} has no wire size")

    def _int_values(self) -> Dict[str, int]:
        return self._values

    def _finish_message(self) -> Record:
        codec = self._codec
        raw = bytes(self._buf[self._msg_start : self._pos])
        fields = {
            name: self._values[name]
            for name in codec.record_fields
            if name in self._values
        }
        record = Record(codec.unit.name, fields, raw)
        record.spans = dict(self._spans)
        # Reset per-message state and compact the buffer when it grows.
        self._msg_start = self._pos
        self._field_idx = 0
        self._values = {}
        self._spans = {}
        if self._pos > _COMPACT_THRESHOLD:
            del self._buf[: self._pos]
            self._msg_start -= self._pos
            self._pos = 0
        return record


class UnitCodec:
    """Compiled parser/serialiser pair for one grammar unit."""

    def __init__(self, unit: Unit, project: Optional[Set[str]] = None):
        self.unit = unit
        named = [f.name for f in unit.named_fields()]
        structural = unit.structural_fields()
        # Integer and var fields are always decoded: they are cheap and the
        # serialiser needs them to re-emit spliced messages.  Projection
        # therefore only elides *payload* (DataField) decoding, which is
        # where the savings are.
        always = {
            f.name
            for f in unit.fields
            if isinstance(f, (IntField, VarField)) and f.name is not None
        }
        if project is None:
            decoded = set(named)
        else:
            unknown = set(project) - set(named)
            if unknown:
                raise SerializeError(
                    f"projection names unknown fields: {sorted(unknown)}"
                )
            decoded = set(project) | set(structural) | always
        #: fields whose values are decoded during parsing
        self.decoded_fields: frozenset = frozenset(decoded)
        #: fields exposed on produced records (decoded, in unit order)
        self.record_fields: Tuple[str, ...] = tuple(
            n for n in named if n in decoded
        )

    # -- parsing ------------------------------------------------------------

    def parser(self) -> IncrementalUnitParser:
        return IncrementalUnitParser(self)

    def parse_all(self, data: bytes) -> List[Record]:
        """Parse a complete buffer; raises if bytes are left over."""
        p = self.parser()
        p.feed(data)
        records = list(p.messages())
        if p.pending_bytes():
            raise ParseError(
                f"{self.unit.name}: {p.pending_bytes()} trailing byte(s)"
            )
        return records

    # -- serialisation ---------------------------------------------------------

    def serialize(self, record: Record) -> Tuple[bytes, float]:
        """Encode ``record``; returns (bytes, ops cost).

        Fast path: a parsed, unmodified record is emitted as its raw
        bytes.  Otherwise dependent length fields are recomputed and the
        message re-encoded, splicing raw spans for skipped fields.
        """
        if record.raw is not None and not record.dirty:
            return record.raw, len(record.raw) * OPS_PER_RAW_COPY_BYTE
        return self._encode(record)

    def _encode(self, record: Record) -> Tuple[bytes, float]:
        unit = self.unit
        values: Dict[str, object] = {}
        spans = getattr(record, "spans", None) or {}
        raw = record.raw
        for f in unit.named_fields():
            if f.name in record:
                values[f.name] = record[f.name]
        # Pass 1: invert simple length references from payload sizes.
        for f in unit.fields:
            if isinstance(f, DataField) and f.name is not None:
                payload = self._payload_bytes(f, values, spans, raw)
                if payload is None:
                    raise SerializeError(
                        f"{unit.name}.{f.name}: no value and no raw span "
                        "to serialise"
                    )
                values[f.name] = payload
                expr = f.length_expr()
                if isinstance(expr, FieldRef):
                    values[expr.name] = len(payload)
        # Pass 2: var-field serialisation rules (total_len etc.).
        for f in unit.fields:
            if isinstance(f, VarField):
                own = self._var_own_value(f, values)
                values[f.name] = own
                if f.serialize_target is not None:
                    values[f.serialize_target] = eval_expr(
                        f.serialize_expr, values, own
                    )
        # Pass 3: emit.
        out = bytearray()
        ops = 0.0
        for idx, f in enumerate(unit.fields):
            ops += OPS_PER_FIELD
            if isinstance(f, VarField):
                continue
            if isinstance(f, ConstField):
                out.extend(f.value)
                continue
            if isinstance(f, IntField):
                if f.name is None:
                    span = spans.get(f"__anon_{idx}")
                    if span is not None and raw is not None:
                        out.extend(raw[span[0] : span[1]])
                    else:
                        out.extend(b"\x00" * f.size)
                    continue
                value = values.get(f.name)
                if value is None:
                    raise SerializeError(
                        f"{unit.name}.{f.name}: missing integer value"
                    )
                try:
                    out.extend(
                        int(value).to_bytes(
                            f.size, unit.byteorder, signed=f.signed
                        )
                    )
                except OverflowError:
                    raise SerializeError(
                        f"{unit.name}.{f.name}: value {value} does not fit "
                        f"in {f.size} byte(s)"
                    ) from None
                continue
            # DataField
            length = eval_expr(f.length_expr(), values)
            if f.name is None:
                span = spans.get(f"__anon_{idx}")
                if span is not None and raw is not None:
                    chunk = bytes(raw[span[0] : span[1]])
                else:
                    chunk = b"\x00" * length
            else:
                chunk = values[f.name]
            if len(chunk) != length:
                raise SerializeError(
                    f"{unit.name}.{f.name or '_'}: payload is "
                    f"{len(chunk)} byte(s) but length fields say {length}"
                )
            out.extend(chunk)
            ops += length * OPS_PER_DECODED_BYTE
        return bytes(out), ops

    def _payload_bytes(
        self, f: DataField, values, spans, raw
    ) -> Optional[bytes]:
        if f.name in values and values[f.name] is not None:
            value = values[f.name]
            if isinstance(value, str):
                return value.encode("utf-8")
            return bytes(value)
        span = spans.get(f.name)
        if span is not None and raw is not None:
            return bytes(raw[span[0] : span[1]])
        return None

    def _var_own_value(self, f: VarField, values) -> int:
        # A var field's serialisation-time value is the recomputed length
        # of whatever payload its parse expression measured.  For the
        # common pattern ``var L ... ; data &length = self.L`` the pass-1
        # inversion already set it; fall back to the parse expression.
        if f.name in values and values[f.name] is not None:
            return values[f.name]
        try:
            return eval_expr(f.parse_expr, values)
        except Exception as exc:  # pragma: no cover - defensive
            raise SerializeError(
                f"cannot compute var field {f.name!r}: {exc}"
            ) from exc


def make_codec(unit: Unit, project: Optional[Set[str]] = None) -> UnitCodec:
    """Build a (possibly specialised) codec for ``unit``."""
    return UnitCodec(unit, project)
