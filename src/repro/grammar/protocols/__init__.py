"""Reusable protocol grammars: HTTP, Memcached binary, Hadoop key/value."""
