"""Memcached binary protocol grammar (Listing 2 of the paper).

The grammar below is the paper's Listing 2 verbatim (modulo the anonymous
reserved field's placement in the DSL).  Helpers build well-formed request
and response commands for workload generators and tests.

Protocol reference: the Memcached "binary protocol revamped" spec [50].
"""

from __future__ import annotations

from typing import Optional

from repro.grammar.dsl import parse_unit
from repro.grammar.engine import UnitCodec, make_codec
from repro.grammar.model import Unit
from repro.lang.values import Record

MEMCACHED_GRAMMAR_TEXT = """
type cmd = unit {
    %byteorder = big;

    magic_code : uint8;
    opcode : uint8;
    key_len : uint16;
    extras_len : uint8;
    : uint8;                       # data type, reserved for future use
    status_or_v_bucket : uint16;
    total_len : uint32;
    opaque : uint32;
    cas : uint64;

    var value_len : uint32
        &parse = self.total_len - (self.extras_len + self.key_len)
        &serialize = self.total_len = self.key_len + self.extras_len + $$;
    extras : bytes &length = self.extras_len;
    key : string &length = self.key_len;
    value : bytes &length = self.value_len;
};
"""

#: Compiled grammar unit for Memcached binary commands.
MEMCACHED_UNIT: Unit = parse_unit(MEMCACHED_GRAMMAR_TEXT)

# Magic codes
MAGIC_REQUEST = 0x80
MAGIC_RESPONSE = 0x81

# Opcodes used by the evaluation's proxy workload.
OP_GET = 0x00
OP_SET = 0x01
OP_GETK = 0x0C

STATUS_OK = 0x0000
STATUS_KEY_NOT_FOUND = 0x0001

HEADER_LEN = 24


def full_codec() -> UnitCodec:
    """Codec that decodes every field (a generic, unspecialised parser)."""
    return make_codec(MEMCACHED_UNIT)


def specialized_codec(accessed: Optional[frozenset] = None) -> UnitCodec:
    """Codec specialised to the fields a FLICK program accesses.

    With the Listing 1 router, ``accessed`` is ``{opcode, key}`` — the
    ``extras`` and ``value`` payloads are skipped, not decoded.
    """
    project = set(accessed or ()) or {"opcode", "key"}
    return make_codec(MEMCACHED_UNIT, project=project)


def _command(
    magic: int,
    opcode: int,
    key: str,
    value: bytes = b"",
    extras: bytes = b"",
    status: int = 0,
    opaque: int = 0,
    cas: int = 0,
) -> Record:
    key_bytes = key.encode("utf-8")
    return Record(
        "cmd",
        {
            "magic_code": magic,
            "opcode": opcode,
            "key_len": len(key_bytes),
            "extras_len": len(extras),
            "status_or_v_bucket": status,
            "total_len": len(extras) + len(key_bytes) + len(value),
            "opaque": opaque,
            "cas": cas,
            "value_len": len(value),
            "extras": extras,
            "key": key,
            "value": value,
        },
    )


def make_request(
    opcode: int, key: str, value: bytes = b"", opaque: int = 0
) -> Record:
    """Build a client request command record."""
    extras = b"\x00" * 8 if opcode == OP_SET else b""
    return _command(
        MAGIC_REQUEST, opcode, key, value=value, extras=extras, opaque=opaque
    )


def make_response(
    opcode: int,
    key: str,
    value: bytes,
    status: int = STATUS_OK,
    opaque: int = 0,
) -> Record:
    """Build a server response command record.

    GETK responses echo the key (which is what lets the Listing 1 router
    cache them); plain GET responses do not.
    """
    included_key = key if opcode == OP_GETK else ""
    extras = b"\x00\x00\x00\x00" if opcode in (OP_GET, OP_GETK) else b""
    return _command(
        MAGIC_RESPONSE,
        opcode,
        included_key,
        value=value,
        extras=extras,
        status=status,
        opaque=opaque,
    )


def encode(record: Record) -> bytes:
    """Serialise a command record with the full codec."""
    data, _ = full_codec().serialize(record)
    return data
