"""HTTP/1.1 request/response codec.

HTTP's head is line-oriented rather than length-prefixed, so this codec is
hand-written (the paper ships reusable grammars for common protocols;
text-protocol support corresponds to the grammar language's "text based
formats").  It presents exactly the same incremental interface as the
generated binary parsers — ``feed`` / ``poll`` / ``messages`` /
``take_ops`` — so input/output tasks treat all protocols uniformly.

Only the subset exercised by the evaluation is implemented: request line,
status line, headers, fixed ``Content-Length`` bodies, and persistent
vs ``Connection: close`` semantics.  A request with no Content-Length has
an empty body; chunked transfer encoding is rejected explicitly.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.errors import ParseError
from repro.grammar.engine import (
    OPS_PER_DECODED_BYTE,
    OPS_PER_FIELD,
    OPS_PER_RAW_COPY_BYTE,
)
from repro.lang.values import Record

_CRLF = b"\r\n"
_HEAD_END = b"\r\n\r\n"
_MAX_HEAD = 64 * 1024

REQUEST_TYPE = "http_req"
RESPONSE_TYPE = "http_resp"


class _HttpParserBase:
    """Incremental head+body parser shared by requests and responses."""

    record_type = ""

    def __init__(self):
        self._buf = bytearray()
        self._head: Optional[Tuple] = None  # parsed head awaiting body
        self._body_len = 0
        self.ops = 0.0

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)
        if len(self._buf) > _MAX_HEAD and self._head is None:
            if _HEAD_END not in self._buf:
                raise ParseError("HTTP head exceeds maximum size")

    def pending_bytes(self) -> int:
        return len(self._buf)

    def take_ops(self) -> float:
        ops, self.ops = self.ops, 0.0
        return ops

    def poll(self) -> Optional[Record]:
        if self._head is None:
            end = self._buf.find(_HEAD_END)
            if end < 0:
                return None
            head_bytes = bytes(self._buf[: end + len(_HEAD_END)])
            self._head = self._parse_head(head_bytes)
            self._body_len = self._content_length(self._head[-1])
            del self._buf[: end + len(_HEAD_END)]
            self.ops += OPS_PER_FIELD * 4 + len(head_bytes) * OPS_PER_DECODED_BYTE
        if len(self._buf) < self._body_len:
            return None
        body = bytes(self._buf[: self._body_len])
        del self._buf[: self._body_len]
        self.ops += OPS_PER_FIELD + len(body) * OPS_PER_RAW_COPY_BYTE
        head, self._head = self._head, None
        record = self._make_record(head, body)
        record.raw = self._render(record)
        return record

    def messages(self) -> Iterator[Record]:
        while True:
            record = self.poll()
            if record is None:
                return
            yield record

    @staticmethod
    def _content_length(headers: Dict[str, str]) -> int:
        if headers.get("transfer-encoding", "").lower() == "chunked":
            raise ParseError("chunked transfer encoding is not supported")
        try:
            return int(headers.get("content-length", "0"))
        except ValueError:
            raise ParseError("malformed Content-Length header") from None

    @staticmethod
    def _parse_headers(lines: List[bytes]) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        for line in lines:
            if not line:
                continue
            name, sep, value = line.partition(b":")
            if not sep:
                raise ParseError(f"malformed header line {line!r}")
            headers[name.strip().decode("latin-1").lower()] = (
                value.strip().decode("latin-1")
            )
        return headers

    # Subclass hooks -------------------------------------------------------

    def _parse_head(self, head: bytes) -> Tuple:
        raise NotImplementedError

    def _make_record(self, head: Tuple, body: bytes) -> Record:
        raise NotImplementedError

    def _render(self, record: Record) -> bytes:
        raise NotImplementedError


class HttpRequestParser(_HttpParserBase):
    record_type = REQUEST_TYPE

    def _parse_head(self, head: bytes) -> Tuple:
        lines = head[: -len(_HEAD_END)].split(_CRLF)
        parts = lines[0].split()
        if len(parts) != 3:
            raise ParseError(f"malformed request line {lines[0]!r}")
        method, path, version = (p.decode("latin-1") for p in parts)
        if not version.startswith("HTTP/"):
            raise ParseError(f"malformed HTTP version {version!r}")
        return method, path, version, self._parse_headers(lines[1:])

    def _make_record(self, head: Tuple, body: bytes) -> Record:
        method, path, version, headers = head
        return Record(
            REQUEST_TYPE,
            {
                "method": method,
                "path": path,
                "version": version,
                "headers": headers,
                "body": body,
            },
        )

    def _render(self, record: Record) -> bytes:
        return render_request(record)


class HttpResponseParser(_HttpParserBase):
    record_type = RESPONSE_TYPE

    def _parse_head(self, head: bytes) -> Tuple:
        lines = head[: -len(_HEAD_END)].split(_CRLF)
        parts = lines[0].split(None, 2)
        if len(parts) < 2:
            raise ParseError(f"malformed status line {lines[0]!r}")
        version = parts[0].decode("latin-1")
        try:
            status = int(parts[1])
        except ValueError:
            raise ParseError(f"malformed status code {parts[1]!r}") from None
        reason = parts[2].decode("latin-1") if len(parts) == 3 else ""
        return version, status, reason, self._parse_headers(lines[1:])

    def _make_record(self, head: Tuple, body: bytes) -> Record:
        version, status, reason, headers = head
        return Record(
            RESPONSE_TYPE,
            {
                "version": version,
                "status": status,
                "reason": reason,
                "headers": headers,
                "body": body,
            },
        )

    def _render(self, record: Record) -> bytes:
        return render_response(record)


# ---------------------------------------------------------------------------
# Constructors and serialisers
# ---------------------------------------------------------------------------


def make_request(
    method: str,
    path: str,
    headers: Optional[Dict[str, str]] = None,
    body: bytes = b"",
    keep_alive: bool = True,
) -> Record:
    hdrs = {k.lower(): v for k, v in (headers or {}).items()}
    hdrs.setdefault("host", "flick.test")
    if body:
        hdrs["content-length"] = str(len(body))
    if not keep_alive:
        hdrs["connection"] = "close"
    record = Record(
        REQUEST_TYPE,
        {
            "method": method,
            "path": path,
            "version": "HTTP/1.1",
            "headers": hdrs,
            "body": body,
        },
    )
    record.raw = render_request(record)
    return record


def make_response(
    status: int = 200,
    reason: str = "OK",
    headers: Optional[Dict[str, str]] = None,
    body: bytes = b"",
) -> Record:
    hdrs = {k.lower(): v for k, v in (headers or {}).items()}
    hdrs["content-length"] = str(len(body))
    record = Record(
        RESPONSE_TYPE,
        {
            "version": "HTTP/1.1",
            "status": status,
            "reason": reason,
            "headers": hdrs,
            "body": body,
        },
    )
    record.raw = render_response(record)
    return record


def render_request(record: Record) -> bytes:
    head = f"{record.method} {record.path} {record.version}\r\n"
    head += "".join(f"{k}: {v}\r\n" for k, v in record.headers.items())
    return head.encode("latin-1") + _CRLF + record.body


def render_response(record: Record) -> bytes:
    head = f"{record.version} {record.status} {record.reason}\r\n"
    head += "".join(f"{k}: {v}\r\n" for k, v in record.headers.items())
    return head.encode("latin-1") + _CRLF + record.body


def serialize(record: Record) -> Tuple[bytes, float]:
    """Serialise an HTTP record; raw fast path when unmodified."""
    if record.raw is not None and not record.dirty:
        return record.raw, len(record.raw) * OPS_PER_RAW_COPY_BYTE
    if record.type_name == REQUEST_TYPE:
        data = render_request(record)
    else:
        data = render_response(record)
    return data, OPS_PER_FIELD * 4 + len(data) * OPS_PER_DECODED_BYTE


def wants_keep_alive(record: Record) -> bool:
    """Connection persistence per RFC 2616 section 8.1."""
    connection = record.headers.get("connection", "").lower()
    if record.version == "HTTP/1.0":
        return connection == "keep-alive"
    return connection != "close"
