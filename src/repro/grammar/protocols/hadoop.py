"""Hadoop intermediate key/value wire format.

Section 2.1/6.1: the in-network aggregator consumes the stream of
intermediate map-output key/value pairs and emits combined pairs in the
same format.  We use the length-prefixed layout of Hadoop's intermediate
``IFile`` records, simplified to (key length, key bytes, value length,
value bytes) with big-endian prefixes — an "application-specific Hadoop
data type" grammar in the paper's terms (section 4.2).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.grammar.dsl import parse_unit
from repro.grammar.engine import UnitCodec, make_codec
from repro.grammar.model import Unit
from repro.lang.values import Record

HADOOP_GRAMMAR_TEXT = """
type kv = unit {
    %byteorder = big;

    key_len : uint16;
    value_len : uint32;
    key : string &length = self.key_len;
    value : string &length = self.value_len;
};
"""

#: Compiled grammar for Hadoop intermediate key/value pairs.
HADOOP_UNIT: Unit = parse_unit(HADOOP_GRAMMAR_TEXT)


def codec() -> UnitCodec:
    return make_codec(HADOOP_UNIT)


def make_pair(key: str, value: str) -> Record:
    """Build a key/value record as produced by a mapper."""
    return Record(
        "kv",
        {
            "key_len": len(key.encode("utf-8")),
            "value_len": len(value.encode("utf-8")),
            "key": key,
            "value": value,
        },
    )


def encode_pairs(pairs: Iterable[Tuple[str, str]]) -> bytes:
    """Serialise (key, value) tuples into one mapper output stream."""
    c = codec()
    out = bytearray()
    for key, value in pairs:
        data, _ = c.serialize(make_pair(key, value))
        out.extend(data)
    return bytes(out)


def decode_pairs(data: bytes) -> List[Tuple[str, str]]:
    """Parse a complete mapper stream back into (key, value) tuples."""
    return [(r.key, r.value) for r in codec().parse_all(data)]
