"""Text front end for message grammars, following Listing 2's syntax.

Accepts Spicy-style unit definitions::

    type cmd = unit {
        %byteorder = big;

        magic_code : uint8;
        opcode : uint8;
        key_len : uint16;
        : uint8;                      # anonymous / reserved field
        total_len : uint32;

        var value_len : uint32
            &parse = self.total_len - (self.extras_len + self.key_len)
            &serialize = self.total_len = self.key_len + self.extras_len + $$;
        key : string &length = self.key_len;
        value : bytes &length = self.value_len;
    };

and compiles them to :class:`repro.grammar.model.Unit` objects.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.core.errors import GrammarError
from repro.grammar.model import (
    BIG,
    Binary,
    Const,
    DataField,
    Field,
    FieldRef,
    IntField,
    LITTLE,
    SelfRef,
    SizeExpr,
    Unit,
    VarField,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<ws>\s+)
  | (?P<selfref>\$\$)
  | (?P<number>0x[0-9a-fA-F]+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>&[a-z]+|%[a-z]+|[{}();:=+\-*.,])
    """,
    re.VERBOSE,
)

_INT_TYPES = {
    "uint8": (1, False),
    "uint16": (2, False),
    "uint32": (4, False),
    "uint64": (8, False),
    "int8": (1, True),
    "int16": (2, True),
    "int32": (4, True),
    "int64": (8, True),
}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise GrammarError(
                f"grammar DSL: unexpected character {text[pos]!r} at "
                f"offset {pos}"
            )
        pos = match.end()
        if match.lastgroup in ("comment", "ws"):
            continue
        tokens.append(match.group())
    return tokens


class _DslParser:
    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self, offset: int = 0) -> Optional[str]:
        idx = self._pos + offset
        return self._tokens[idx] if idx < len(self._tokens) else None

    def _next(self) -> str:
        tok = self._peek()
        if tok is None:
            raise GrammarError("grammar DSL: unexpected end of input")
        self._pos += 1
        return tok

    def _expect(self, tok: str) -> None:
        got = self._next()
        if got != tok:
            raise GrammarError(
                f"grammar DSL: expected {tok!r}, found {got!r}"
            )

    def _accept(self, tok: str) -> bool:
        if self._peek() == tok:
            self._pos += 1
            return True
        return False

    # -- units -------------------------------------------------------------

    def parse_units(self) -> List[Unit]:
        units: List[Unit] = []
        while self._peek() is not None:
            units.append(self._parse_unit())
        return units

    def _parse_unit(self) -> Unit:
        self._expect("type")
        name = self._next()
        self._expect("=")
        self._expect("unit")
        self._expect("{")
        byteorder = BIG
        fields: List[Field] = []
        while not self._accept("}"):
            if self._accept("%byteorder"):
                self._expect("=")
                order = self._next()
                if order not in (BIG, LITTLE):
                    raise GrammarError(
                        f"grammar DSL: unknown byte order {order!r}"
                    )
                byteorder = order
                self._expect(";")
                continue
            fields.append(self._parse_field())
        self._accept(";")
        return Unit(name, tuple(fields), byteorder)

    # -- fields --------------------------------------------------------------

    def _parse_field(self) -> Field:
        if self._accept("var"):
            return self._parse_var_field()
        if self._accept(":"):
            # anonymous field: ``: uint8;``
            return self._finish_data_or_int(None)
        name = self._next()
        self._expect(":")
        return self._finish_data_or_int(name)

    def _finish_data_or_int(self, name: Optional[str]) -> Field:
        type_name = self._next()
        if type_name in _INT_TYPES:
            size, signed = _INT_TYPES[type_name]
            self._expect(";")
            return IntField(name, size, signed)
        if type_name in ("bytes", "string"):
            length: SizeExpr = Const(0)
            if self._accept("&length"):
                self._expect("=")
                length = self._parse_expr()
            self._expect(";")
            return DataField(name, length, text=(type_name == "string"))
        raise GrammarError(f"grammar DSL: unknown field type {type_name!r}")

    def _parse_var_field(self) -> VarField:
        name = self._next()
        self._expect(":")
        type_name = self._next()
        if type_name not in _INT_TYPES:
            raise GrammarError(
                f"grammar DSL: var field {name!r} must have an integer "
                f"type, got {type_name!r}"
            )
        parse_expr: Optional[SizeExpr] = None
        serialize_target: Optional[str] = None
        serialize_expr: Optional[SizeExpr] = None
        while True:
            if self._accept("&parse"):
                self._expect("=")
                parse_expr = self._parse_expr()
            elif self._accept("&serialize"):
                self._expect("=")
                # Form: self.<target> = <expr possibly using $$>
                self._expect("self")
                self._expect(".")
                serialize_target = self._next()
                self._expect("=")
                serialize_expr = self._parse_expr()
            else:
                break
        self._expect(";")
        if parse_expr is None:
            raise GrammarError(
                f"grammar DSL: var field {name!r} needs a &parse expression"
            )
        return VarField(name, parse_expr, serialize_target, serialize_expr)

    # -- expressions ----------------------------------------------------------

    def _parse_expr(self) -> SizeExpr:
        return self._parse_additive()

    def _parse_additive(self) -> SizeExpr:
        left = self._parse_multiplicative()
        while self._peek() in ("+", "-"):
            op = self._next()
            left = Binary(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> SizeExpr:
        left = self._parse_atom()
        while self._peek() == "*":
            self._next()
            left = Binary("*", left, self._parse_atom())
        return left

    def _parse_atom(self) -> SizeExpr:
        tok = self._peek()
        if tok == "(":
            self._next()
            expr = self._parse_expr()
            self._expect(")")
            return expr
        if tok == "$$":
            self._next()
            return SelfRef()
        if tok == "self":
            self._next()
            self._expect(".")
            return FieldRef(self._next())
        if tok is not None and (tok.isdigit() or tok.startswith("0x")):
            self._next()
            return Const(int(tok, 0))
        raise GrammarError(
            f"grammar DSL: expected an expression, found {tok!r}"
        )


def parse_grammar(text: str) -> List[Unit]:
    """Parse grammar DSL ``text`` into a list of units."""
    return _DslParser(_tokenize(text)).parse_units()


def parse_unit(text: str) -> Unit:
    """Parse exactly one unit definition."""
    units = parse_grammar(text)
    if len(units) != 1:
        raise GrammarError(f"expected exactly one unit, found {len(units)}")
    return units[0]
