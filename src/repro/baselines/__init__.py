"""Calibrated cost-model baselines: Apache, Nginx, Moxi."""
