"""Nginx cost model (event-driven worker processes).

Architecture: one event-loop worker per core, epoll-driven, so the
per-request cost is lower than Apache's and nearly independent of the
number of connections; concurrency only adds mild bookkeeping.  Nginx
pools upstream keep-alive connections, which keeps its non-persistent
numbers ahead of kernel-FLICK (Figure 4c) — exactly the comparison the
paper draws.
"""

from __future__ import annotations

from repro.baselines.base import BaselineHttpServer

#: Calibrated parameters (µs); see DESIGN.md §3 and EXPERIMENTS.md.
REQUEST_US = 59.0
CONN_SETUP_US = 180.0
LB_EXTRA_US = 55.0
EVENT_OVERHEAD_US_PER_CONN = 0.004


class NginxServer(BaselineHttpServer):
    """Event-driven server model."""

    name = "nginx"

    def __init__(self, engine, tcpnet, host, port, cores=16, backends=None,
                 body=b"x" * 137):
        super().__init__(
            engine,
            tcpnet,
            host,
            port,
            cores,
            request_us=REQUEST_US,
            conn_setup_us=CONN_SETUP_US,
            lb_extra_us=LB_EXTRA_US,
            backends=backends,
            body=body,
        )

    def request_overhead_us(self) -> float:
        return self.active_connections * EVENT_OVERHEAD_US_PER_CONN
