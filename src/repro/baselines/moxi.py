"""Moxi cost model (multi-threaded Memcached proxy).

Moxi is multi-threaded with shared proxy state (the paper chose it
because "it supports the binary Memcached protocol and is
multi-threaded").  Its defining behaviour in Figure 5 is that throughput
peaks at 4 cores (~82k requests/s) and then *degrades* as threads contend
on common data structures; latency rises past the peak.  We model that
with a per-request lock-contention term that grows with the core count
beyond 4.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.base import CorePool
from repro.core.ids import stable_hash
from repro.grammar.protocols import memcached as mc
from repro.net.simnet import Host
from repro.net.tcp import TcpNetwork, TcpSocket
from repro.sim.engine import Engine

#: Calibrated parameters (µs); see DESIGN.md §3 and EXPERIMENTS.md.
REQUEST_US = 44.0
CONN_SETUP_US = 120.0
CONTENTION_US_PER_CORE = 15.0
CONTENTION_FREE_CORES = 4


class MoxiProxy:
    """Multi-threaded Memcached proxy with shared-state contention."""

    name = "moxi"

    def __init__(
        self,
        engine: Engine,
        tcpnet: TcpNetwork,
        host: Host,
        port: int,
        backends: List,
        cores: int = 4,
    ):
        self.engine = engine
        self.tcpnet = tcpnet
        self.host = host
        self.cores = cores
        self.pool = CorePool(engine, cores)
        self.backends = backends
        self.requests_served = 0
        self._upstreams: Dict[int, "_McUpstream"] = {}
        tcpnet.listen(host, port, self._accept)

    def request_cost_us(self) -> float:
        contention = max(0, self.cores - CONTENTION_FREE_CORES)
        return REQUEST_US + contention * CONTENTION_US_PER_CORE

    def _accept(self, socket: TcpSocket) -> None:
        parser = mc.full_codec().parser()
        state = {"setup_done": False}

        def on_data(data: bytes) -> None:
            parser.feed(data)
            for request in parser.messages():
                service = self.request_cost_us()
                if not state["setup_done"]:
                    state["setup_done"] = True
                    service += CONN_SETUP_US
                self.pool.submit(
                    service, lambda r=request: self._route(socket, r)
                )

        socket.on_receive(on_data)

    def _route(self, client: TcpSocket, request) -> None:
        if client.closed:
            return
        index = stable_hash(request.key) % len(self.backends)
        upstream = self._upstreams.get(index)
        if upstream is None:
            upstream = _McUpstream(self, self.backends[index])
            self._upstreams[index] = upstream
        upstream.forward(client, request)


class _McUpstream:
    """Persistent connection to one Memcached backend, FIFO matching."""

    def __init__(self, proxy: MoxiProxy, target) -> None:
        self._proxy = proxy
        self._target = target
        self._socket: Optional[TcpSocket] = None
        self._connecting = False
        self._send_queue: List[bytes] = []
        self._pending: List[TcpSocket] = []
        self._parser = mc.full_codec().parser()

    def forward(self, client: TcpSocket, request) -> None:
        raw = request.raw if request.raw is not None else mc.encode(request)
        self._pending.append(client)
        if self._socket is None:
            self._send_queue.append(raw)
            self._connect()
        else:
            self._socket.send(raw)

    def _connect(self) -> None:
        if self._connecting:
            return
        self._connecting = True

        def connected(socket: TcpSocket) -> None:
            self._socket = socket
            socket.on_receive(self._on_response)
            pending, self._send_queue = self._send_queue, []
            for raw in pending:
                socket.send(raw)

        self._proxy.tcpnet.connect(
            self._proxy.host, self._target.host, self._target.port, connected
        )

    def _on_response(self, data: bytes) -> None:
        self._parser.feed(data)
        for response in self._parser.messages():
            if not self._pending:
                return
            client = self._pending.pop(0)
            if client.closed:
                continue
            self._proxy.requests_served += 1
            client.send(response.raw)
