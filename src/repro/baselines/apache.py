"""Apache httpd cost model (worker MPM + mod_proxy_balancer).

Architecture: a thread per connection.  Beyond a comfortable thread
count, per-request cost grows with the number of active connections —
context switches, run-queue pressure and per-thread cache footprint —
which is why Apache's latency curve bends hardest of the three systems
at 800-1600 concurrent connections (Figure 4b/4d) and why it saturates
lowest (§6.3: 159k requests/s static, 35k/s non-persistent).
"""

from __future__ import annotations

from repro.baselines.base import BaselineHttpServer

#: Calibrated parameters (µs); see DESIGN.md §3 and EXPERIMENTS.md.
REQUEST_US = 80.0
CONN_SETUP_US = 180.0
LB_EXTRA_US = 110.0
THREAD_OVERHEAD_US_PER_CONN = 0.012


class ApacheServer(BaselineHttpServer):
    """Thread-per-connection server model."""

    name = "apache"

    def __init__(self, engine, tcpnet, host, port, cores=16, backends=None,
                 body=b"x" * 137):
        super().__init__(
            engine,
            tcpnet,
            host,
            port,
            cores,
            request_us=REQUEST_US,
            conn_setup_us=CONN_SETUP_US,
            lb_extra_us=LB_EXTRA_US,
            backends=backends,
            body=body,
        )

    def request_overhead_us(self) -> float:
        # Context-switch and scheduling pressure grows with the number of
        # live threads (= active connections in the worker MPM).
        return self.active_connections * THREAD_OVERHEAD_US_PER_CONN * (
            1.0 + self.active_connections / 1200.0
        )
