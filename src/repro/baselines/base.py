"""Shared machinery for baseline (comparator) server models.

The paper compares FLICK against Apache, Nginx and Moxi — large C
programs we cannot run inside the simulator.  Each baseline is therefore
an explicit queueing/cost model of its concurrency architecture (see
DESIGN.md §3): a :class:`CorePool` of k FCFS cores serves requests whose
service time is the model's calibrated per-request CPU cost plus
architecture-specific overheads (thread context switching for Apache,
lock contention for Moxi, ...).

Unlike the FLICK platform, baselines keep **persistent backend
connections** (both Apache's ``mod_proxy`` and Nginx pool upstream
connections), which is exactly the asymmetry that makes kernel-FLICK lose
the non-persistent experiment (Figure 4c) while winning the persistent
one.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.grammar.protocols import http
from repro.net.simnet import Host
from repro.net.tcp import TcpNetwork, TcpSocket
from repro.sim.engine import Engine


class CorePool:
    """k identical cores serving jobs FCFS (earliest-free-core)."""

    def __init__(self, engine: Engine, cores: int):
        if cores < 1:
            raise ValueError("need at least one core")
        self.engine = engine
        self.cores = cores
        self._free_at = [0.0] * cores
        self.busy_us = 0.0
        self.jobs = 0

    def submit(self, service_us: float, callback: Callable[[], None]) -> float:
        """Queue a job of ``service_us``; returns its completion time."""
        now = self.engine.now
        idx = min(range(self.cores), key=self._free_at.__getitem__)
        start = max(now, self._free_at[idx])
        end = start + service_us
        self._free_at[idx] = end
        self.busy_us += service_us
        self.jobs += 1
        self.engine.at(end, callback)
        return end


class BaselineHttpServer:
    """Cost-model HTTP server/load-balancer base class.

    Subclasses (Apache, Nginx) supply the calibrated cost parameters via
    constructor arguments and their concurrency-model overhead via
    :meth:`request_overhead_us`.

    In **static** mode every request is answered locally with ``body``;
    in **lb** mode requests are forwarded to backends over persistent
    upstream connections chosen round-robin per client connection.
    """

    name = "baseline"

    def __init__(
        self,
        engine: Engine,
        tcpnet: TcpNetwork,
        host: Host,
        port: int,
        cores: int,
        request_us: float,
        conn_setup_us: float,
        lb_extra_us: float = 0.0,
        backends: Optional[List] = None,
        body: bytes = b"x" * 137,
    ):
        self.engine = engine
        self.tcpnet = tcpnet
        self.host = host
        self.cores = cores
        self.pool = CorePool(engine, cores)
        self.request_us = request_us
        self.conn_setup_us = conn_setup_us
        self.lb_extra_us = lb_extra_us
        self.backends = backends or []
        self.body = body
        self.active_connections = 0
        self.requests_served = 0
        self._upstreams: Dict[int, "_Upstream"] = {}
        self._next_backend = 0
        tcpnet.listen(host, port, self._accept)

    # -- concurrency-model hook ----------------------------------------------

    def request_overhead_us(self) -> float:
        """Extra per-request cost from the server's concurrency model."""
        return 0.0

    # -- connection handling -----------------------------------------------------

    def _accept(self, socket: TcpSocket) -> None:
        self.active_connections += 1
        parser = http.HttpRequestParser()
        # Each client connection sticks to one upstream, like a round-robin
        # balancer with keep-alive upstream pools.
        backend_idx = (
            self._next_backend % len(self.backends) if self.backends else -1
        )
        self._next_backend += 1
        state = {"setup_done": False}

        def on_data(data: bytes) -> None:
            parser.feed(data)
            for request in parser.messages():
                service = self.request_us + self.request_overhead_us()
                if not state["setup_done"]:
                    state["setup_done"] = True
                    service += self.conn_setup_us
                keep = http.wants_keep_alive(request)
                if backend_idx >= 0:
                    service += self.lb_extra_us
                    self.pool.submit(
                        service,
                        lambda k=keep: self._forward(socket, backend_idx, k),
                    )
                else:
                    self.pool.submit(
                        service, lambda k=keep: self._respond(socket, k)
                    )

        socket.on_receive(on_data)
        socket.on_close(self._on_close)

    def _on_close(self) -> None:
        self.active_connections = max(0, self.active_connections - 1)

    def _respond(self, socket: TcpSocket, keep_alive: bool) -> None:
        if socket.closed:
            return
        self.requests_served += 1
        socket.send(http.make_response(body=self.body).raw)
        if not keep_alive:
            socket.close()

    # -- upstream (LB) path ----------------------------------------------------------

    def _forward(self, client: TcpSocket, backend_idx: int, keep: bool) -> None:
        if client.closed:
            return
        upstream = self._upstreams.get(backend_idx)
        if upstream is None:
            upstream = _Upstream(self, self.backends[backend_idx])
            self._upstreams[backend_idx] = upstream
        upstream.forward(client, keep)


class _Upstream:
    """One persistent upstream connection with FIFO response matching."""

    def __init__(self, server: BaselineHttpServer, target) -> None:
        self._server = server
        self._target = target  # OutboundTarget-like: .host / .port
        self._socket: Optional[TcpSocket] = None
        self._connecting = False
        self._send_queue: deque = deque()
        self._pending: deque = deque()  # (client socket, keep_alive)
        self._parser = http.HttpResponseParser()

    def forward(self, client: TcpSocket, keep: bool) -> None:
        request = http.make_request("GET", "/upstream", keep_alive=True)
        self._pending.append((client, keep))
        if self._socket is None:
            self._send_queue.append(request.raw)
            self._connect()
        else:
            self._socket.send(request.raw)

    def _connect(self) -> None:
        if self._connecting:
            return
        self._connecting = True

        def connected(socket: TcpSocket) -> None:
            self._socket = socket
            socket.on_receive(self._on_response)
            while self._send_queue:
                socket.send(self._send_queue.popleft())

        self._server.tcpnet.connect(
            self._server.host, self._target.host, self._target.port, connected
        )

    def _on_response(self, data: bytes) -> None:
        self._parser.feed(data)
        for response in self._parser.messages():
            if not self._pending:
                return
            client, keep = self._pending.popleft()
            if client.closed:
                continue
            self._server.requests_served += 1
            client.send(response.raw)
            if not keep:
                client.close()
