"""Cluster tier: consistent-hash shard routing over N FLICK platforms.

:mod:`repro.cluster.ring` — the seeded consistent-hash ring (mechanism
substrate); :mod:`repro.cluster.routing` — the string-keyed
:class:`RoutingPolicy` registry (policy); :mod:`repro.cluster.fleet` —
the :class:`ShardRouter` front end piping client connections to shard
platforms with connection affinity, fleet-level SLO aggregation and
mid-run shard-failure injection (mechanism).
"""

from repro.cluster.fleet import FleetScoreboard, ShardRouter
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.routing import (
    FleetView,
    RoutingPolicy,
    ShardSnapshot,
    closest_routing_name,
    make_routing,
    register_routing,
    registered_routings,
    resolve_routing,
    unknown_routing_message,
)
