"""The cluster tier's mechanism: a front-end shard router over N platforms.

One :class:`~repro.runtime.platform.FlickPlatform` is one middlebox;
this module scales the data plane *out*.  A :class:`ShardRouter` is an
L4 front end living on its own simulated host: it accepts client
connections on the public port, picks a shard **once per connection**
(delegated to a :class:`~repro.cluster.routing.RoutingPolicy`; the
seeded consistent-hash ring of :mod:`repro.cluster.ring` is the
default placement), opens an upstream connection to the chosen shard's
platform and pipes bytes both ways for the connection's lifetime —
connection affinity is mechanism-enforced, never policy-revocable.

Every hop is on the simulated network, so the router's NIC serialises
the fleet's aggregate traffic exactly like any other host's; the
router burns no modeled CPU (it is a cut-through L4 proxy, not a FLICK
program).

Each shard keeps its own scheduler, allocator, service classes and
:class:`~repro.sim.stats.SloScoreboard`; :class:`FleetScoreboard`
aggregates them (plus client-side sheds) into the same per-class
summary shape a single platform reports, so testbeds and scenario JSON
are shard-count-agnostic.

**Failure**: :meth:`ShardRouter.fail_shard` kills a shard mid-run — its
ring segment is released to the clockwise survivors, every connection
pinned to it is severed (both pipe ends closed, so clients observe EOF
after any in-flight bytes), and new connections route over the
surviving ring.  The dead platform keeps draining whatever it already
holds; its responses land on closed sockets and are dropped with
byte accounting, exactly like a real host vanishing mid-flight.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.routing import (
    FleetView,
    ShardSnapshot,
    resolve_routing,
)
from repro.core.errors import SimulationError
from repro.net.simnet import Host
from repro.net.tcp import TcpNetwork, TcpSocket
from repro.sim.engine import Engine
from repro.sim.stats import LatencySeries, SloScoreboard
from repro.core.units import millis


class _Shard:
    """Router-side state for one platform in the fleet."""

    __slots__ = (
        "index", "host", "port", "platform", "alive",
        "connections", "routed", "failed_at_us",
    )

    def __init__(self, index: int, host: Host, port: int, platform):
        self.index = index
        self.host = host
        self.port = port
        self.platform = platform
        self.alive = True
        #: Connections currently pinned here (live pipes).
        self.connections = 0
        #: Connections ever routed here (monotonic).
        self.routed = 0
        self.failed_at_us: Optional[float] = None


class _ProxiedConnection:
    """One client flow: downstream socket piped to a pinned shard."""

    __slots__ = (
        "router", "down", "up", "shard_index", "_pending",
        "_released", "_severed",
    )

    def __init__(self, router: "ShardRouter", down: TcpSocket, shard_index: int):
        self.router = router
        self.down = down
        self.up: Optional[TcpSocket] = None
        self.shard_index = shard_index
        #: Client bytes that arrived before the upstream connected.
        self._pending: List[bytes] = []
        self._released = False
        self._severed = False
        shard = router._shards[shard_index]
        shard.connections += 1
        shard.routed += 1
        down.on_receive(self._from_client)
        down.on_close(self._client_closed)
        router.tcpnet.connect(
            router.host, shard.host, shard.port, self._upstream_ready
        )

    def _upstream_ready(self, up: TcpSocket) -> None:
        shard = self.router._shards[self.shard_index]
        if self._severed or self.down.closed or not shard.alive:
            # The world moved on while the handshake was in flight
            # (shard failed / client gone): tear both ends down so the
            # client re-routes instead of talking to a corpse.
            up.close()
            if not self.down.closed:
                self.down.close()
            self._release()
            return
        self.up = up
        up.on_receive(self._from_shard)
        up.on_close(self._shard_closed)
        pending, self._pending = self._pending, []
        for chunk in pending:
            up.send(chunk)

    # -- byte pipe -----------------------------------------------------------

    def _from_client(self, data: bytes) -> None:
        if self._severed:
            return
        if self.up is None:
            self._pending.append(data)
        elif not self.up.closed:
            self.up.send(data)

    def _from_shard(self, data: bytes) -> None:
        if not self.down.closed:
            self.down.send(data)

    # -- teardown ------------------------------------------------------------

    def _client_closed(self) -> None:
        if self.up is not None and not self.up.closed:
            self.up.close()
        self._release()

    def _shard_closed(self) -> None:
        if not self.down.closed:
            self.down.close()
        self._release()

    def sever(self) -> None:
        """Failure path: cut both pipe ends (in-flight bytes drop)."""
        if self._severed:
            return
        self._severed = True
        if self.up is not None and not self.up.closed:
            self.up.close()
        if not self.down.closed:
            self.down.close()
        self._release()

    def _release(self) -> None:
        if self._released:
            return
        self._released = True
        self.router._shards[self.shard_index].connections -= 1
        self.router._pipes.pop(self, None)


class FleetScoreboard:
    """Per-class SLO accounting aggregated across every shard.

    Presents the :meth:`~repro.sim.stats.SloScoreboard.summary` shape
    (completions / misses / shed / latency per class) by merging the
    per-shard boards' public ``records`` logs, so fleet results drop
    into the same report and JSON slots as a single platform's.  Sheds
    happen client-side before routing — the open-loop population
    mirrors them here (:meth:`record_shed`), fleet-level, because a
    request dropped at the door never reached *any* shard.
    """

    def __init__(self, router: "ShardRouter"):
        self._router = router
        self._sheds: Dict[str, int] = {}

    def record_shed(self, service_class: str, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"negative shed count {count}")
        if count:
            self._sheds[service_class] = (
                self._sheds.get(service_class, 0) + count
            )

    def sheds_by_class(self) -> Dict[str, int]:
        return dict(self._sheds)

    @property
    def total_sheds(self) -> int:
        return sum(self._sheds.values())

    @property
    def total_completions(self) -> int:
        return sum(
            shard.platform.scoreboard.total_completions
            for shard in self._router._shards
        )

    def summary(self) -> Dict[str, Dict[str, float]]:
        completions: Dict[str, int] = {}
        misses: Dict[str, int] = {}
        latency: Dict[str, LatencySeries] = {}
        for shard in self._router._shards:
            board: SloScoreboard = shard.platform.scoreboard
            for record in board.records:
                name = record.service_class
                completions[name] = completions.get(name, 0) + 1
                if record.missed:
                    misses[name] = misses.get(name, 0) + 1
                latency.setdefault(name, LatencySeries()).record(
                    record.latency_us
                )
        report: Dict[str, Dict[str, float]] = {}
        for name in {**completions, **self._sheds}:
            series = latency.get(name)
            report[name] = {
                "completions": completions.get(name, 0),
                "misses": misses.get(name, 0),
                "shed": self._sheds.get(name, 0),
                "mean_ms": series.mean_ms() if series else 0.0,
                "p99_ms": (
                    millis(series.percentile_us(99.0)) if series else 0.0
                ),
                "max_ms": millis(series.max_us()) if series else 0.0,
            }
        return report


class ShardRouter:
    """Front-end router: the fleet's public endpoint and its mechanism.

    Build the shard platforms first (each on its own host, program
    registered and started on ``shard_port``), :meth:`add_shard` them,
    then :meth:`start` the router; clients connect to
    ``(router host, port)`` exactly as they would to one middlebox.

    ``routing`` is a registered policy name
    (:func:`~repro.cluster.routing.registered_routings`) or a ready
    :class:`~repro.cluster.routing.RoutingPolicy`; ``seed`` keys the
    consistent-hash ring, so placement is deterministic per seed.
    """

    def __init__(
        self,
        engine: Engine,
        tcpnet: TcpNetwork,
        host: Host,
        port: int,
        routing="hash-affinity",
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0xF11C,
    ):
        self.engine = engine
        self.tcpnet = tcpnet
        self.host = host
        self.port = port
        self.policy = resolve_routing(routing)
        self.policy.reset()  # a reused instance must not carry state
        self.routing_name = self.policy.name
        self._ring = HashRing(vnodes=vnodes, seed=seed)
        self._shards: List[_Shard] = []
        #: Live pipes in accept order.  A dict-as-ordered-set, NOT a
        #: set: failure injection iterates this, and set order varies
        #: with object addresses — severing must replay identically
        #: across processes for run results to be byte-stable.
        self._pipes: Dict[_ProxiedConnection, None] = {}
        self._started = False
        self.scoreboard = FleetScoreboard(self)
        #: Connections accepted by the router (any shard).
        self.connections_routed = 0
        #: Connections refused because no shard was alive.
        self.connections_refused = 0
        #: Connections severed by shard failures (their flows re-home).
        self.failed_over_connections = 0
        #: Indices of shards killed via :meth:`fail_shard`, in order.
        self.failed_shards: List[int] = []

    # -- fleet membership ----------------------------------------------------

    def add_shard(self, platform, port: int) -> int:
        """Register ``platform`` (listening on its host's ``port``)."""
        if platform.host is self.host:
            raise SimulationError(
                "a shard cannot share the router's host "
                f"({self.host.name}); give each shard its own"
            )
        index = len(self._shards)
        self._ring.add(index)
        self._shards.append(_Shard(index, platform.host, port, platform))
        return index

    def start(self) -> None:
        if self._started:
            return
        if not self._shards:
            raise SimulationError("router needs at least one shard")
        self._started = True
        self.tcpnet.listen(self.host, self.port, self._on_client)

    @property
    def shards(self) -> int:
        return len(self._shards)

    @property
    def alive_shards(self) -> int:
        return sum(1 for s in self._shards if s.alive)

    # -- routing -------------------------------------------------------------

    def _view(self) -> FleetView:
        snapshots = tuple(
            ShardSnapshot(
                index=shard.index,
                alive=shard.alive,
                connections=shard.connections,
                routed=shard.routed,
                backlog=sum(shard.platform.scheduler.queue_depths()),
                active_workers=shard.platform.scheduler.active_workers,
                slo_us=shard.platform.config.slo_us,
                scoreboard=shard.platform.scoreboard,
            )
            for shard in self._shards
        )
        return FleetView(
            now_us=self.engine.now, ring=self._ring, shards=snapshots
        )

    def _on_client(self, down: TcpSocket) -> None:
        if not len(self._ring):
            # Total fleet loss: refuse at the door (EOF), don't hang.
            self.connections_refused += 1
            down.close()
            return
        choice = self.policy.choose_shard(down.conn_id, self._view())
        if (
            not isinstance(choice, int)
            or not 0 <= choice < len(self._shards)
            or not self._shards[choice].alive
        ):
            # Mechanism guard: a policy answer that is dead or out of
            # range degrades to the ring owner instead of black-holing.
            choice = self._ring.lookup(down.conn_id)
        self.connections_routed += 1
        self._pipes[_ProxiedConnection(self, down, choice)] = None

    # -- failure injection ---------------------------------------------------

    def fail_shard(self, index: int) -> int:
        """Kill shard ``index`` now; returns how many flows it severed."""
        shard = self._shards[index]
        if not shard.alive:
            return 0  # already dead: failing twice is a no-op
        shard.alive = False
        shard.failed_at_us = self.engine.now
        self._ring.remove(index)
        severed = [p for p in self._pipes if p.shard_index == index]
        for pipe in severed:
            pipe.sever()
        self.failed_over_connections += len(severed)
        self.failed_shards.append(index)
        return len(severed)

    def fail_shard_at(self, index: int, at_us: float) -> None:
        """Schedule :meth:`fail_shard` at virtual time ``at_us``."""
        if not 0 <= index < len(self._shards):
            raise SimulationError(f"no shard {index} to fail")
        self.engine.at(at_us, lambda: self.fail_shard(index))

    # -- reporting -----------------------------------------------------------

    def shard_report(self) -> Dict[str, Dict[str, float]]:
        """Per-shard routing/completion counters (JSON-ready)."""
        return {
            f"shard{shard.index}": {
                "alive": bool(shard.alive),
                "routed_connections": int(shard.routed),
                "completions": int(
                    shard.platform.scoreboard.total_completions
                ),
                "failed_at_us": (
                    float(shard.failed_at_us)
                    if shard.failed_at_us is not None
                    else None
                ),
            }
            for shard in self._shards
        }
