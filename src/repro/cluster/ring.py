"""Seeded consistent-hash ring with virtual nodes.

The cluster tier's placement substrate: shard ids own ``vnodes`` points
each on a 64-bit ring, and a key belongs to the first point clockwise
from its own hash.  Hashing is :func:`hashlib.blake2b` keyed by the
ring's seed, so lookups are deterministic across processes and Python
versions (``hash()`` randomisation never leaks in) and two rings built
with the same seed agree point for point.

Consistent hashing's contract — the reason the router uses it — is
*minimal disruption*: adding a shard only claims keys for the new shard
(everything that moves, moves onto it), and removing a shard only
re-homes the keys that lived on it (its ring segments fall to their
clockwise successors; nothing else moves).  With ``vnodes`` ≥ 64 the
per-shard key share also concentrates near 1/N.  Both properties are
locked by hypothesis tests (``tests/test_hash_ring.py``).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from typing import Iterable, List, Tuple

from repro.core.errors import ConfigError

#: Default virtual nodes per shard: enough for a max/mean key share
#: close to 1 at small fleet sizes (the balance property test's bound).
DEFAULT_VNODES = 64


class HashRing:
    """Consistent hashing over integer shard ids (seeded, deterministic).

    ``seed`` keys every hash, so distinct rings (e.g. the router's and
    a test oracle's) can be compared exactly, and re-seeding yields an
    independent placement without touching the key space.
    """

    def __init__(
        self,
        shard_ids: Iterable[int] = (),
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0xF11C,
    ):
        if vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        self._key = self.seed.to_bytes(8, "little", signed=False)
        #: Sorted ``(point_hash, shard_id)`` pairs; the shard id breaks
        #: point-hash ties, so iteration order is fully deterministic.
        self._points: List[Tuple[int, int]] = []
        self._shards: set = set()
        for shard_id in shard_ids:
            self.add(shard_id)

    # -- hashing -------------------------------------------------------------

    def _hash(self, data: str) -> int:
        digest = hashlib.blake2b(
            data.encode("utf-8"), digest_size=8, key=self._key
        ).digest()
        return int.from_bytes(digest, "big")

    # -- membership ----------------------------------------------------------

    def add(self, shard_id: int) -> None:
        """Claim ``vnodes`` ring points for ``shard_id``."""
        shard_id = int(shard_id)
        if shard_id < 0:
            raise ConfigError(f"shard ids must be >= 0, got {shard_id}")
        if shard_id in self._shards:
            raise ConfigError(f"shard {shard_id} already on the ring")
        self._shards.add(shard_id)
        for vnode in range(self.vnodes):
            # Namespaced so a vnode point can never collide with a key
            # hash by construction of the preimage.
            point = self._hash(f"s:{shard_id}:{vnode}")
            insort(self._points, (point, shard_id))

    def remove(self, shard_id: int) -> None:
        """Release ``shard_id``'s points (its segments fall clockwise)."""
        shard_id = int(shard_id)
        if shard_id not in self._shards:
            raise ConfigError(f"shard {shard_id} is not on the ring")
        self._shards.remove(shard_id)
        self._points = [p for p in self._points if p[1] != shard_id]

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        """Current members, ascending."""
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self._shards

    # -- lookup --------------------------------------------------------------

    def lookup(self, key: str) -> int:
        """The shard owning ``key`` (first ring point clockwise)."""
        if not self._points:
            raise ConfigError("lookup on an empty ring")
        point = self._hash(f"k:{key}")
        index = bisect_right(self._points, (point, -1))
        if index == len(self._points):
            index = 0  # wrap past twelve o'clock
        return self._points[index][1]

    def lookup_chain(self, key: str, count: int) -> Tuple[int, ...]:
        """The first ``count`` *distinct* shards clockwise from ``key``.

        Entry 0 is :meth:`lookup`; the rest are the successive distinct
        owners walking the ring — the candidate set for
        power-of-two-choices routing and the failover order when the
        primary is saturated or dead.
        """
        if not self._points:
            raise ConfigError("lookup on an empty ring")
        if count < 1:
            raise ConfigError(f"chain length must be >= 1, got {count}")
        point = self._hash(f"k:{key}")
        start = bisect_right(self._points, (point, -1))
        chain: List[int] = []
        for offset in range(len(self._points)):
            shard = self._points[(start + offset) % len(self._points)][1]
            if shard not in chain:
                chain.append(shard)
                if len(chain) == count:
                    break
        return tuple(chain)
