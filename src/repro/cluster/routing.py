"""Cross-shard routing policies: the *policy* half of the cluster tier.

Same policy/mechanism discipline as :mod:`repro.runtime.policy` and
:mod:`repro.runtime.allocator`: the mechanism — the consistent-hash
ring, connection piping, affinity, failure re-mapping — lives in
:mod:`repro.cluster.fleet`; every *placement decision* is delegated to
a string-keyed :class:`RoutingPolicy` through one hook:

* ``choose_shard(key, view)`` — which shard a new connection should be
  pinned to, given the flow key and a :class:`FleetView` snapshot
  (mirroring the :class:`~repro.runtime.allocator.AllocView` pattern:
  per-shard liveness, active connection counts, scheduler backlog and
  the live per-shard :class:`~repro.sim.stats.SloScoreboard`); the
  mechanism falls back to the ring if the answer is dead or out of
  range, so a buggy policy degrades instead of black-holing flows.

A decision is made **once per connection** (at accept) and never
revisited — connection affinity is mechanism-enforced, so a flow's
requests stay on one shard for the connection's lifetime.

Three policies ship built in: ``hash-affinity`` (the default: pure ring
lookup — deterministic, stateless, minimal disruption on membership
change), ``least-loaded`` (power-of-two-choices over the ring's two
clockwise candidates, breaking the tie toward fewer active
connections) and ``rebalance-watermark`` (hash affinity until the home
shard saturates — backlog per active worker above a watermark, or
recent latency eating the SLO headroom — then new connections divert
to the least-backlogged live shard).  Unknown names get near-miss
suggestions, like every other registry in the tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

from repro.cluster.ring import HashRing
from repro.core.errors import ConfigError
from repro.runtime.qos import closest_name


@dataclass(frozen=True)
class ShardSnapshot:
    """What a routing policy may observe about one shard.

    ``backlog`` is the shard scheduler's total queued-task count and
    ``active_workers`` its unparked core count (so watermarks can be
    phrased per worker and stay meaningful under an elastic allocator);
    ``scoreboard`` is the shard's live per-class SLO accounting.  All
    fields are read-only snapshots taken at decision time.
    """

    index: int
    alive: bool
    #: Router-side connections currently pinned to this shard.
    connections: int
    #: Connections ever routed here (monotonic).
    routed: int
    #: Queued tasks across the shard scheduler's workers.
    backlog: int
    #: Unparked workers (the elastic allocator may have shrunk this).
    active_workers: int
    #: Platform-wide SLO of the shard (µs), if one is configured.
    slo_us: Optional[float]
    #: The shard's :class:`~repro.sim.stats.SloScoreboard` (read-only).
    scoreboard: object


@dataclass(frozen=True)
class FleetView:
    """One routing decision's worth of fleet state (read-only).

    ``ring`` only ever contains live shards — the mechanism removes a
    dead shard's segment before the next decision — so pure ring
    lookups are failure-safe by construction.
    """

    now_us: float
    ring: HashRing
    shards: Tuple[ShardSnapshot, ...]

    @property
    def alive(self) -> Tuple[ShardSnapshot, ...]:
        return tuple(s for s in self.shards if s.alive)


class RoutingPolicy:
    """Base class: route by pure ring lookup (subclasses override)."""

    #: Registry key; subclasses must override.
    name = "abstract"

    def choose_shard(self, key: str, view: FleetView) -> int:
        """Index of the shard the connection keyed ``key`` should join.

        The mechanism clamps the answer onto a live shard (falling back
        to ``view.ring.lookup(key)``), so policies may assume but need
        not guarantee liveness.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Drop learned state; called when a fleet adopts the policy."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name!r}>"


# -- registry ----------------------------------------------------------------

_REGISTRY: Dict[str, Type[RoutingPolicy]] = {}


def register_routing(cls: Type[RoutingPolicy]) -> Type[RoutingPolicy]:
    """Class decorator adding ``cls`` to the registry under ``cls.name``."""
    if not cls.name or cls.name == "abstract":
        raise ConfigError(f"routing class {cls.__name__} needs a name")
    if cls.name in _REGISTRY:
        raise ConfigError(f"routing policy {cls.name!r} registered twice")
    _REGISTRY[cls.name] = cls
    return cls


def registered_routings() -> tuple:
    """All routing-policy names: ``hash-affinity`` first, rest sorted."""
    extras = sorted(name for name in _REGISTRY if name != "hash-affinity")
    return ("hash-affinity",) + tuple(extras)


def closest_routing_name(name: str) -> Optional[str]:
    """The registered name a typo most plausibly meant, or ``None``."""
    return closest_name(name, _REGISTRY)


def unknown_routing_message(name: str) -> str:
    """Error text for an unregistered routing name, with a near-miss."""
    message = (
        f"unknown routing policy {name!r}; registered: "
        f"{', '.join(sorted(_REGISTRY))}"
    )
    suggestion = closest_routing_name(name)
    if suggestion is not None:
        message += f"; did you mean {suggestion!r}?"
    return message


def make_routing(name: str, **params) -> RoutingPolicy:
    """Instantiate the registered routing policy ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(unknown_routing_message(name)) from None
    try:
        return cls(**params)
    except TypeError as exc:
        raise ConfigError(
            f"bad parameters for routing policy {name!r}: {exc}"
        ) from None


def resolve_routing(spec, **params) -> RoutingPolicy:
    """Accept a routing name or a ready instance; return an instance."""
    if isinstance(spec, RoutingPolicy):
        return spec
    if isinstance(spec, str):
        return make_routing(spec, **params)
    raise ConfigError(
        f"routing must be a name or RoutingPolicy, got {type(spec).__name__}"
    )


# -- built-in policies -------------------------------------------------------


@register_routing
class HashAffinityRouting(RoutingPolicy):
    """Pure consistent-hash placement: the ring's owner, nothing else.

    Stateless and deterministic, so a shard join/leave remaps exactly
    the segment that changed hands (the ring's minimal-disruption
    property) and two routers with the same seed agree on every flow.
    """

    name = "hash-affinity"

    def choose_shard(self, key: str, view: FleetView) -> int:
        return view.ring.lookup(key)


@register_routing
class LeastLoadedRouting(RoutingPolicy):
    """Power-of-two-choices over the ring's clockwise candidates.

    The ring nominates the first two distinct shards for the key; the
    one with fewer active router-side connections wins (the ring owner
    on ties).  Classic d=2 balancing: near-exponential improvement in
    the max load over pure hashing, while keeping placement mostly
    hash-local so a membership change still disrupts minimally.
    """

    name = "least-loaded"

    def choose_shard(self, key: str, view: FleetView) -> int:
        first, *rest = view.ring.lookup_chain(key, 2)
        if not rest:
            return first
        second = rest[0]
        if view.shards[second].connections < view.shards[first].connections:
            return second
        return first


@register_routing
class RebalanceWatermarkRouting(RoutingPolicy):
    """Hash affinity until the home shard saturates, then divert.

    A shard counts as *saturated* when its scheduler backlog per active
    worker exceeds ``queue_watermark``, or when the mean latency of its
    last ``window`` completed busy periods eats more than ``headroom``
    of the shard's SLO.  Saturation only redirects **new** connections
    (affinity of established flows is mechanism-owned and never
    revoked): they go to the live shard with the smallest backlog,
    ties broken by fewest connections, then lowest index.
    """

    name = "rebalance-watermark"

    def __init__(
        self,
        queue_watermark: float = 8.0,
        headroom: float = 0.9,
        window: int = 64,
    ):
        if queue_watermark <= 0:
            raise ConfigError(
                f"queue_watermark must be positive, got {queue_watermark:g}"
            )
        if not 0 < headroom <= 1:
            raise ConfigError(
                f"headroom must be in (0, 1], got {headroom:g}"
            )
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        self.queue_watermark = float(queue_watermark)
        self.headroom = float(headroom)
        self.window = int(window)

    def _saturated(self, shard: ShardSnapshot) -> bool:
        workers = max(1, shard.active_workers)
        if shard.backlog / workers > self.queue_watermark:
            return True
        if shard.slo_us is not None:
            records = getattr(shard.scoreboard, "records", ())
            recent = records[-self.window:]
            if recent:
                mean_us = sum(r.latency_us for r in recent) / len(recent)
                if mean_us > self.headroom * shard.slo_us:
                    return True
        return False

    def choose_shard(self, key: str, view: FleetView) -> int:
        home = view.ring.lookup(key)
        if not self._saturated(view.shards[home]):
            return home
        spare = min(
            view.alive,
            key=lambda s: (s.backlog, s.connections, s.index),
        )
        return spare.index
