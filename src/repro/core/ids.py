"""Small deterministic id generators and stable hashing.

Python's built-in ``hash`` for ``str`` is salted per process, which would
make simulated runs non-deterministic.  The runtime and the compiled FLICK
``hash`` builtin both use :func:`stable_hash` instead (FNV-1a, 64-bit),
so request routing is reproducible across runs and platforms.
"""

from __future__ import annotations

import itertools
from typing import Iterator

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def stable_hash(data) -> int:
    """Return a deterministic 64-bit FNV-1a hash of ``data``.

    Accepts ``bytes``, ``str`` (UTF-8 encoded), ``int`` and tuples of those;
    this covers everything FLICK programs are allowed to hash.
    """
    if isinstance(data, tuple):
        h = _FNV_OFFSET
        for part in data:
            h = (h ^ stable_hash(part)) * _FNV_PRIME & _MASK64
        return h
    if isinstance(data, str):
        data = data.encode("utf-8")
    elif isinstance(data, int):
        data = data.to_bytes(8, "little", signed=True)
    elif isinstance(data, bool):  # pragma: no cover - bool is int subclass
        data = bytes([int(data)])
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"stable_hash does not support {type(data).__name__}")
    h = _FNV_OFFSET
    for byte in bytes(data):
        h = ((h ^ byte) * _FNV_PRIME) & _MASK64
    return h


class IdAllocator:
    """Monotonically increasing integer ids with a readable prefix."""

    def __init__(self, prefix: str = "id"):
        self._prefix = prefix
        self._counter: Iterator[int] = itertools.count()

    def next_int(self) -> int:
        return next(self._counter)

    def next_id(self) -> str:
        return f"{self._prefix}-{next(self._counter)}"
