"""Unit helpers for virtual time, data sizes and rates.

The simulator's clock is a float measured in **microseconds**.  All cost
parameters across the code base use these helpers so the unit is explicit
at the point of definition (``5 * MILLISECONDS`` rather than a bare
``5000.0``).
"""

from __future__ import annotations

# -- time ---------------------------------------------------------------

MICROSECONDS = 1.0
MILLISECONDS = 1_000.0
SECONDS = 1_000_000.0


def seconds(us: float) -> float:
    """Convert a virtual-time duration in microseconds to seconds."""
    return us / SECONDS


def millis(us: float) -> float:
    """Convert a virtual-time duration in microseconds to milliseconds."""
    return us / MILLISECONDS


# -- data sizes ----------------------------------------------------------

BYTES = 1
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

# -- rates ---------------------------------------------------------------

BITS_PER_SECOND = 1.0
KBPS = 1_000.0
MBPS = 1_000_000.0
GBPS = 1_000_000_000.0


def transmission_time_us(nbytes: float, rate_bps: float) -> float:
    """Time (µs) to push ``nbytes`` through a link of ``rate_bps`` bits/s.

    ``nbytes`` may be fractional: wire-overhead inflation produces
    non-integral wire-byte counts and the fraction must be charged.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return (nbytes * 8.0) / rate_bps * SECONDS


def throughput_mbps(nbytes: int, duration_us: float) -> float:
    """Goodput in Mbit/s for ``nbytes`` transferred over ``duration_us``."""
    if duration_us <= 0:
        return 0.0
    return (nbytes * 8.0) / (duration_us / SECONDS) / MBPS


def rate_per_second(count: int, duration_us: float) -> float:
    """Events per second for ``count`` events over ``duration_us``."""
    if duration_us <= 0:
        return 0.0
    return count / (duration_us / SECONDS)
