"""Exception hierarchy shared across the FLICK reproduction.

Every layer of the system raises a subclass of :class:`FlickError` so that
callers can catch framework errors without accidentally swallowing Python
built-ins.  The language front end attaches source locations to its errors
so diagnostics point at the offending token.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class FlickError(Exception):
    """Base class for all errors raised by this package."""


@dataclass(frozen=True)
class SourceLocation:
    """A position in a FLICK source file (1-based line and column)."""

    line: int
    column: int
    filename: str = "<flick>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class FlickSyntaxError(FlickError):
    """Raised by the lexer or parser on malformed FLICK source."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class FlickTypeError(FlickError):
    """Raised by the static type checker."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class TerminationError(FlickError):
    """Raised when a program cannot be proven to terminate.

    FLICK only admits programs with bounded iteration (fold/map/filter over
    finite structures) and a recursion-free call graph; anything else is a
    static error, mirroring section 4.3 of the paper.
    """


class GrammarError(FlickError):
    """Raised on malformed message grammars or grammar DSL text."""


class ParseError(FlickError):
    """Raised by generated message parsers on malformed wire data."""


class SerializeError(FlickError):
    """Raised by generated serialisers when a value does not fit its field."""


class RuntimeFlickError(FlickError):
    """Raised by the task-graph runtime (scheduler, channels, dispatch)."""


class ChannelClosed(RuntimeFlickError):
    """Raised when writing to, or draining from, a closed channel."""


class ChannelFull(RuntimeFlickError):
    """Raised when a bounded channel cannot accept another item."""


class BufferPoolExhausted(RuntimeFlickError):
    """Raised when the pre-allocated buffer pool has no free buffers."""


class SimulationError(FlickError):
    """Raised by the discrete-event engine on misuse (e.g. past-time events)."""


class ConfigError(FlickError):
    """Raised when a configuration object fails validation."""
