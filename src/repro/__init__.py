"""FLICK reproduction: an application-specific network-service framework.

Reimplementation of "FLICK: Developing and Running Application-Specific
Network Services" (USENIX ATC 2016): the FLICK DSL and compiler, the
grammar-driven message codec generator, the cooperatively scheduled
task-graph platform, the paper's three use cases, its baselines, and a
benchmark harness regenerating every figure.

Quickstart::

    from repro import compile_source

    program = compile_source('''
    type cmd: record
        key : string

    proc Echo: (cmd/cmd client)
        client => identity() => client

    fun identity: (req: cmd) -> (cmd)
        req
    ''')
    spec = program.proc("Echo")

See ``examples/`` for runnable end-to-end scenarios.
"""

from repro.lang import (
    CompiledProgram,
    Interpreter,
    Record,
    check_program,
    check_termination,
    compile_program,
    compile_source,
    format_program,
    parse,
)
from repro.runtime import (
    Bindings,
    CodecRegistry,
    FlickPlatform,
    OutboundTarget,
    RuntimeConfig,
    Scheduler,
    ServiceClass,
    ServiceClassMap,
)
from repro.sim.engine import Engine

__version__ = "1.0.0"

__all__ = [
    "CompiledProgram",
    "Interpreter",
    "Record",
    "check_program",
    "check_termination",
    "compile_program",
    "compile_source",
    "format_program",
    "parse",
    "Bindings",
    "CodecRegistry",
    "FlickPlatform",
    "OutboundTarget",
    "RuntimeConfig",
    "Scheduler",
    "ServiceClass",
    "ServiceClassMap",
    "Engine",
    "__version__",
]
