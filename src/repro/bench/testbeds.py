"""Experiment testbeds: one function per evaluation configuration.

Each ``run_*`` function builds the paper's topology (section 6.2: client
and backend machines with 1 Gbps NICs on an edge switch, the middlebox
with a 10 Gbps NIC on a core switch, 20 Gbps trunk), drives the workload
to completion in virtual time, and returns a
:class:`repro.sim.stats.RunResult` — one plotted point of a figure.

Systems under test:

* ``flick-kernel`` / ``flick-mtcp`` — the real FLICK runtime (compiled
  programs on the cooperative scheduler) over the respective stack
  profile;
* ``apache`` / ``nginx`` / ``moxi`` — calibrated cost-model baselines.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.apps import hadoop_agg, http_lb, memcached_proxy
from repro.baselines.apache import ApacheServer
from repro.baselines.moxi import MoxiProxy
from repro.baselines.nginx import NginxServer
from repro.cluster import ShardRouter
from repro.core.units import GBPS, throughput_mbps
from repro.net.faults import resolve_fault
from repro.net.tcp import TcpNetwork
from repro.runtime.costs import RuntimeConfig
from repro.runtime.graph import OutboundTarget
from repro.runtime.platform import FlickPlatform
from repro.sim.engine import Engine
from repro.sim.stats import RunResult
from repro.workloads.arrivals import (
    HttpRequestCodec,
    MemcachedRequestCodec,
    OpenLoopClients,
    resolve_arrival,
)
from repro.workloads.backends import BackendMemcachedServer, BackendWebServer
from repro.workloads.hadoop_mappers import (
    Mapper,
    ReducerSink,
    generate_mapper_output,
)
from repro.workloads.http_clients import HttpClientPopulation
from repro.workloads.memcached_clients import MemcachedClientPopulation

N_CLIENT_HOSTS = 16
N_BACKENDS = 10

FLICK_SYSTEMS = ("flick-kernel", "flick-mtcp")
HTTP_BASELINES = ("apache", "nginx")


def _stack_of(system: str) -> str:
    return "mtcp" if system == "flick-mtcp" else "kernel"


def _check_admission_args(arrival, admission, class_mix) -> None:
    """Admission control needs the open loop: reject it elsewhere."""
    if arrival is None and (admission != "admit-all" or class_mix):
        raise ValueError(
            "admission control and class_mix need an open-loop arrival "
            "process; closed-loop clients self-throttle, so there is "
            "nothing to shed"
        )


def _resolve_fault_args(faults, arrival, use_backends: bool):
    """Resolve/validate a testbed's ``faults`` argument (or ``None``).

    Fault injection rides the open-loop machinery (retry/failure
    accounting lives there), and backend-targeting injectors need
    backend servers behind the middlebox — both are config errors, not
    silently dropped knobs.
    """
    if faults is None:
        return None
    fault = resolve_fault(faults)
    if arrival is None:
        raise ValueError(
            f"fault injection ({fault.name!r}) needs an open-loop "
            "arrival process; closed-loop clients have no retry/failure "
            "accounting"
        )
    if fault.needs_backends and not use_backends:
        raise ValueError(
            f"fault {fault.name!r} targets backend servers; this "
            "testbed configuration has none"
        )
    return fault


def _steal_extra(platform: Optional[FlickPlatform]) -> dict:
    """Scheduler steal counters for the result's ``extra`` dict."""
    if platform is None:
        return {}
    scheduler = platform.scheduler
    return {
        "steals": float(scheduler.total_steals),
        "stolen_tasks": float(scheduler.total_stolen_tasks),
        "steal_us": float(scheduler.total_steal_us),
    }


def _alloc_extra(platform: Optional[FlickPlatform]) -> dict:
    """Core-allocator counters for the result's ``extra`` dict.

    ``active_workers_min``/``max`` span the whole run (the initial
    all-active state included), so a static run reads cores/cores with
    zero changes.
    """
    if platform is None:
        return {}
    scheduler = platform.scheduler
    counts = [scheduler.cores]
    counts.extend(len(r.active_after) for r in scheduler.alloc_log)
    return {
        "alloc_changes": float(len(scheduler.alloc_log)),
        "alloc_moved_tasks": float(
            sum(r.moved_tasks for r in scheduler.alloc_log)
        ),
        "active_workers_min": float(min(counts)),
        "active_workers_max": float(max(counts)),
        "active_workers_final": float(scheduler.active_workers),
    }


def _fleet_steal_extra(platforms) -> dict:
    """Shard-summed :func:`_steal_extra` (same keys, fleet totals)."""
    totals = {"steals": 0.0, "stolen_tasks": 0.0, "steal_us": 0.0}
    for platform in platforms:
        for key, value in _steal_extra(platform).items():
            totals[key] += value
    return totals


def _fleet_alloc_extra(platforms) -> dict:
    """Fleet view of :func:`_alloc_extra`: counters summed across the
    shards, ``active_workers_min``/``max`` the tightest/widest any one
    shard reached, ``final`` the fleet's total live cores at the end."""
    per_shard = [_alloc_extra(p) for p in platforms]
    return {
        "alloc_changes": sum(e["alloc_changes"] for e in per_shard),
        "alloc_moved_tasks": sum(e["alloc_moved_tasks"] for e in per_shard),
        "active_workers_min": min(e["active_workers_min"] for e in per_shard),
        "active_workers_max": max(e["active_workers_max"] for e in per_shard),
        "active_workers_final": sum(
            e["active_workers_final"] for e in per_shard
        ),
    }


def _open_loop_extra(population: OpenLoopClients) -> dict:
    """Client-side latency/SLO/inter-arrival accounting for ``extra``.

    ``measured`` is the number of requests the latency/SLO accounting
    covers — every *admitted* request, for the open loop (no warmup
    window); shed requests never enter the latency series.
    """
    latency = population.latency
    gaps = population.inter_arrivals
    return {
        "offered": float(population.offered),
        "admitted": float(population.admitted),
        "shed": float(population.shed),
        "completed": float(population.completed),
        "failed": float(population.failed),
        "retried": float(population.retried),
        "measured": float(latency.count),
        "errors": float(population.errors),
        "slo_misses": float(population.slo_misses),
        "p50_ms": latency.percentile_us(50.0) / 1000.0,
        "p99_ms": latency.percentile_us(99.0) / 1000.0,
        "max_ms": latency.max_us() / 1000.0,
        "arrival_gap_mean_us": gaps.mean_us(),
        "arrival_gap_p50_us": gaps.percentile_us(50.0),
        "arrival_gap_p99_us": gaps.percentile_us(99.0),
    }


def _closed_loop_extra(population, total_requests: int, slo_us) -> dict:
    """The closed-loop populations' equivalent of :func:`_open_loop_extra`.

    ``slo_misses`` is counted over the measured (post-warmup) window,
    the only one the latency series records; ``measured`` sizes that
    window so miss *rates* are computed over the same denominator
    rather than diluted by warmup requests that can never miss.
    """
    latency = population.latency
    return {
        "offered": float(total_requests),
        "completed": float(total_requests),
        "measured": float(latency.count),
        "errors": float(population.errors),
        "slo_misses": float(latency.count_over(slo_us)),
        "p50_ms": latency.percentile_us(50.0) / 1000.0,
        "p99_ms": latency.percentile_us(99.0) / 1000.0,
        "max_ms": latency.max_us() / 1000.0,
    }


def _build_topology(n_backends: int = N_BACKENDS):
    engine = Engine()
    tcpnet = TcpNetwork(engine)
    mbox = tcpnet.add_host("mbox", 10 * GBPS, "core")
    clients = [
        tcpnet.add_host(f"client{i}", 1 * GBPS, "edge")
        for i in range(N_CLIENT_HOSTS)
    ]
    backends = [
        tcpnet.add_host(f"backend{i}", 1 * GBPS, "edge")
        for i in range(n_backends)
    ]
    return engine, tcpnet, mbox, clients, backends


# ---------------------------------------------------------------------------
# E1 + Figure 4: HTTP (static web server and load balancer)
# ---------------------------------------------------------------------------


def run_http_experiment(
    system: str,
    concurrency: int,
    persistent: bool = True,
    mode: str = "lb",
    cores: int = 16,
    requests_per_client: int = 40,
    timeslice_us: float = 50.0,
    graph_pool_size: Optional[int] = None,
    policy=None,
    topology=None,
    service_classes=None,
    slo_us: Optional[float] = None,
    arrival=None,
    total_requests: Optional[int] = None,
    seed: int = 0xF11C,
    exec_tier: str = "compiled",
    allocator="static",
    admission="admit-all",
    class_mix=(),
    shards: int = 1,
    routing="hash-affinity",
    fail_shard_at_us: Optional[float] = None,
    faults=None,
) -> RunResult:
    """One data point of Figure 4 (mode='lb') or the §6.3 web test
    (mode='web').

    ``faults`` (a registered :mod:`repro.net.faults` name or a
    :class:`~repro.net.faults.FaultPolicy` instance) injects an
    adversarial condition: backend slowdowns/flaps, connection churn,
    or an impatient retry storm.  Open-loop single-platform runs only;
    injected counters land in the result's ``extra`` under ``fault_*``
    keys.

    ``arrival`` (an :class:`~repro.workloads.arrivals.ArrivalProcess`
    or registered name) switches the client side from the closed-loop
    ApacheBench population to :class:`~repro.workloads.arrivals.\
OpenLoopClients`: ``concurrency`` becomes the size of the persistent
    connection pool and ``total_requests`` the number of admissions
    (default ``concurrency * requests_per_client``).  ``policy`` /
    ``topology`` / ``service_classes`` / ``slo_us`` / ``allocator``
    thread straight into the platform's
    :class:`~repro.runtime.costs.RuntimeConfig`; ``slo_us``
    additionally drives client-side SLO-miss accounting.  ``admission``
    and ``class_mix`` configure the open-loop population's admission
    control (open loop only — closed-loop clients self-throttle, so
    there is nothing to shed).

    ``shards`` > 1 switches to the cluster tier: ``shards`` identical
    platforms behind one :class:`~repro.cluster.fleet.ShardRouter`
    (placement chosen by the registered ``routing`` policy), clients
    connecting to the router exactly as to one middlebox.
    ``fail_shard_at_us`` kills the highest-indexed shard at that
    virtual time (failover drills).  The cluster tier requires a FLICK
    system and an open-loop ``arrival`` (failure accounting lives in
    the open-loop population).
    """
    if mode not in ("lb", "web"):
        raise ValueError(f"unknown mode {mode!r}")
    _check_admission_args(arrival, admission, class_mix)
    fault = _resolve_fault_args(faults, arrival, use_backends=(mode == "lb"))
    if fault is not None and system not in FLICK_SYSTEMS and fault.needs_backends:
        raise ValueError(
            f"fault {fault.name!r} models the FLICK forwarding path; "
            f"{system!r} is a cost-model baseline without one"
        )
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        if fail_shard_at_us is not None:
            raise ValueError("fail_shard_at_us needs shards > 1")
        if routing != "hash-affinity":
            raise ValueError("a non-default routing policy needs shards > 1")
    else:
        if system not in FLICK_SYSTEMS:
            raise ValueError(
                f"the cluster tier shards FLICK platforms; {system!r} "
                "is a cost-model baseline"
            )
        if arrival is None:
            raise ValueError(
                "the cluster tier needs an open-loop arrival process "
                "(connection-failure accounting lives there)"
            )
        if fault is not None:
            raise ValueError(
                "fault injection is single-platform for now; drop either "
                "faults or shards"
            )
        return _run_http_fleet(
            system=system,
            concurrency=concurrency,
            mode=mode,
            cores=cores,
            requests_per_client=requests_per_client,
            timeslice_us=timeslice_us,
            graph_pool_size=graph_pool_size,
            policy=policy,
            topology=topology,
            service_classes=service_classes,
            slo_us=slo_us,
            arrival=arrival,
            total_requests=total_requests,
            seed=seed,
            exec_tier=exec_tier,
            allocator=allocator,
            admission=admission,
            class_mix=class_mix,
            shards=shards,
            routing=routing,
            fail_shard_at_us=fail_shard_at_us,
        )
    engine, tcpnet, mbox, clients, backend_hosts = _build_topology()
    use_backends = mode == "lb"
    if use_backends:
        # Bound to keep the servers' identity obvious; they stay alive
        # through the run via their socket callbacks.
        _backend_servers = [
            BackendWebServer(engine, tcpnet, host, 8080)
            for host in backend_hosts
        ]
        targets = [OutboundTarget(host, 8080) for host in backend_hosts]
    else:
        targets = []

    platform = None
    if system in FLICK_SYSTEMS:
        config = RuntimeConfig(
            cores=cores,
            stack=_stack_of(system),
            timeslice_us=timeslice_us,
            graph_pool_size=(
                graph_pool_size if graph_pool_size is not None else 512
            ),
            policy="cooperative" if policy is None else policy,
            topology=topology,
            service_classes=service_classes,
            slo_us=slo_us,
            exec_tier=exec_tier,
            allocator=allocator,
            admission=admission,
            backend_close_teardown=(
                fault is not None and fault.tears_down_on_backend_close
            ),
        )
        platform = FlickPlatform(
            engine, tcpnet, mbox, config, http_lb.http_codec_registry()
        )
        if use_backends:
            platform.register_program(
                http_lb.compile_http_lb(),
                "HttpBalancer",
                80,
                http_lb.lb_bindings(targets),
            )
        else:
            platform.register_program(
                http_lb.compile_static_web(), "StaticWeb", 80
            )
        platform.start()
    elif system == "apache":
        ApacheServer(engine, tcpnet, mbox, 80, cores=cores, backends=targets or None)
    elif system == "nginx":
        NginxServer(engine, tcpnet, mbox, 80, cores=cores, backends=targets or None)
    else:
        raise ValueError(f"unknown system {system!r}")

    if fault is not None:
        fault.install(engine, _backend_servers if use_backends else [])

    if arrival is not None:
        population = OpenLoopClients(
            engine,
            tcpnet,
            clients,
            mbox,
            80,
            codec=HttpRequestCodec(),
            arrival=resolve_arrival(arrival),
            n_requests=(
                total_requests
                if total_requests is not None
                else concurrency * requests_per_client
            ),
            connections=concurrency,
            seed=seed,
            slo_us=slo_us,
            admission=admission,
            class_mix=class_mix,
            scoreboard=platform.scoreboard if platform is not None else None,
            **(fault.population_kwargs() if fault is not None else {}),
        )
        extra_of = _open_loop_extra
    else:
        population = HttpClientPopulation(
            engine,
            tcpnet,
            clients,
            mbox,
            80,
            concurrency=concurrency,
            persistent=persistent,
            requests_per_client=requests_per_client,
            warmup_requests=max(2, requests_per_client // 10),
        )

        def extra_of(pop):
            return _closed_loop_extra(
                pop, concurrency * requests_per_client, slo_us
            )

    population.start()
    engine.run()
    if not population.finished:
        raise RuntimeError(
            f"{system} x={concurrency}: workload did not complete"
        )
    extra = extra_of(population)
    extra.update(_steal_extra(platform))
    extra.update(_alloc_extra(platform))
    if fault is not None:
        extra.update(fault.counters(population))
    return RunResult(
        system=system,
        x=concurrency,
        throughput=population.kreqs_per_sec(),
        latency_ms=population.mean_latency_ms(),
        extra=extra,
        class_stats=(
            platform.scoreboard.summary() if platform is not None else {}
        ),
        admission_stats=(
            population.admission_summary() if arrival is not None else {}
        ),
    )


def _run_http_fleet(
    system: str,
    concurrency: int,
    mode: str,
    cores: int,
    requests_per_client: int,
    timeslice_us: float,
    graph_pool_size: Optional[int],
    policy,
    topology,
    service_classes,
    slo_us: Optional[float],
    arrival,
    total_requests: Optional[int],
    seed: int,
    exec_tier: str,
    allocator,
    admission,
    class_mix,
    shards: int,
    routing,
    fail_shard_at_us: Optional[float],
) -> RunResult:
    """The sharded half of :func:`run_http_experiment`.

    ``shards`` identical FLICK platforms, each on its own 10 Gbps core
    host, behind a :class:`~repro.cluster.fleet.ShardRouter` on the
    public ``mbox`` host; LB mode shares one backend pool across the
    fleet (the paper's topology, scaled out at the middlebox tier).
    ``fail_shard_at_us`` kills the highest-indexed shard — the one
    whose loss exercises ring-segment hand-off to every survivor.
    """
    engine, tcpnet, mbox, clients, backend_hosts = _build_topology()
    use_backends = mode == "lb"
    if use_backends:
        _backend_servers = [
            BackendWebServer(engine, tcpnet, host, 8080)
            for host in backend_hosts
        ]
        targets = [OutboundTarget(host, 8080) for host in backend_hosts]
    else:
        targets = []

    router = ShardRouter(engine, tcpnet, mbox, 80, routing=routing, seed=seed)
    platforms = []
    for i in range(shards):
        shard_host = tcpnet.add_host(f"shard{i}", 10 * GBPS, "core")
        config = RuntimeConfig(
            cores=cores,
            stack=_stack_of(system),
            timeslice_us=timeslice_us,
            graph_pool_size=(
                graph_pool_size if graph_pool_size is not None else 512
            ),
            policy="cooperative" if policy is None else policy,
            topology=topology,
            service_classes=service_classes,
            slo_us=slo_us,
            exec_tier=exec_tier,
            allocator=allocator,
            admission=admission,
        )
        platform = FlickPlatform(
            engine, tcpnet, shard_host, config, http_lb.http_codec_registry()
        )
        if use_backends:
            platform.register_program(
                http_lb.compile_http_lb(),
                "HttpBalancer",
                80,
                http_lb.lb_bindings(targets),
            )
        else:
            platform.register_program(
                http_lb.compile_static_web(), "StaticWeb", 80
            )
        platform.start()
        router.add_shard(platform, 80)
        platforms.append(platform)
    router.start()
    if fail_shard_at_us is not None:
        router.fail_shard_at(shards - 1, fail_shard_at_us)

    population = OpenLoopClients(
        engine,
        tcpnet,
        clients,
        mbox,
        80,
        codec=HttpRequestCodec(),
        arrival=resolve_arrival(arrival),
        n_requests=(
            total_requests
            if total_requests is not None
            else concurrency * requests_per_client
        ),
        connections=concurrency,
        seed=seed,
        slo_us=slo_us,
        admission=admission,
        class_mix=class_mix,
        scoreboard=router.scoreboard,
    )
    population.start()
    engine.run()
    if not population.finished:
        raise RuntimeError(
            f"{system} x={concurrency} shards={shards}: "
            "workload did not complete"
        )
    extra = _open_loop_extra(population)
    extra.update(_fleet_steal_extra(platforms))
    extra.update(_fleet_alloc_extra(platforms))
    return RunResult(
        system=system,
        x=concurrency,
        throughput=population.kreqs_per_sec(),
        latency_ms=population.mean_latency_ms(),
        extra=extra,
        class_stats=router.scoreboard.summary(),
        admission_stats=population.admission_summary(),
        cluster_stats={
            "shards": shards,
            "routing": router.routing_name,
            "alive_shards": router.alive_shards,
            "connections_routed": router.connections_routed,
            "connections_refused": router.connections_refused,
            "failed_over_connections": router.failed_over_connections,
            "failed_shards": list(router.failed_shards),
            "per_shard": router.shard_report(),
        },
    )


# ---------------------------------------------------------------------------
# Figure 5: Memcached proxy vs CPU cores
# ---------------------------------------------------------------------------


def run_memcached_experiment(
    system: str,
    cores: int,
    concurrency: int = 128,
    requests_per_client: int = 40,
    specialised_parser: bool = True,
    cache_router: bool = False,
    key_space: int = 10_000,
    value_bytes: int = 64,
    policy=None,
    topology=None,
    service_classes=None,
    slo_us: Optional[float] = None,
    arrival=None,
    total_requests: Optional[int] = None,
    seed: int = 0xF11C,
    exec_tier: str = "compiled",
    allocator="static",
    admission="admit-all",
    class_mix=(),
    faults=None,
) -> RunResult:
    """One data point of Figure 5 (or the parser/cache ablations).

    ``arrival`` switches the client side to the open-loop population,
    exactly as in :func:`run_http_experiment`; ``allocator`` /
    ``admission`` / ``class_mix`` / ``faults`` thread the same way
    (the memcached proxy always has backend servers, so every
    registered fault applies here).
    """
    _check_admission_args(arrival, admission, class_mix)
    fault = _resolve_fault_args(faults, arrival, use_backends=True)
    if fault is not None and system not in FLICK_SYSTEMS and fault.needs_backends:
        raise ValueError(
            f"fault {fault.name!r} models the FLICK forwarding path; "
            f"{system!r} is a cost-model baseline without one"
        )
    engine, tcpnet, mbox, clients, backend_hosts = _build_topology()
    filler = b"v" * value_bytes
    backend_servers = [
        BackendMemcachedServer(
            engine, tcpnet, host, 11211, value_fn=lambda key: filler
        )
        for host in backend_hosts
    ]
    targets = [OutboundTarget(host, 11211) for host in backend_hosts]

    platform = None
    if system in FLICK_SYSTEMS:
        if cache_router:
            program = memcached_proxy.compile_cache_router()
            proc_name = "memcached"
        else:
            program = memcached_proxy.compile_proxy()
            proc_name = "Memcached"
        config = RuntimeConfig(
            cores=cores,
            stack=_stack_of(system),
            policy="cooperative" if policy is None else policy,
            topology=topology,
            service_classes=service_classes,
            slo_us=slo_us,
            exec_tier=exec_tier,
            allocator=allocator,
            admission=admission,
            backend_close_teardown=(
                fault is not None and fault.tears_down_on_backend_close
            ),
        )
        platform = FlickPlatform(
            engine,
            tcpnet,
            mbox,
            config,
            memcached_proxy.memcached_codec_registry(
                program, specialised=specialised_parser
            ),
        )
        platform.register_program(
            program,
            proc_name,
            11211,
            memcached_proxy.proxy_bindings(targets),
        )
        platform.start()
    elif system == "moxi":
        MoxiProxy(engine, tcpnet, mbox, 11211, targets, cores=cores)
    else:
        raise ValueError(f"unknown system {system!r}")

    if fault is not None:
        fault.install(engine, backend_servers)

    if arrival is not None:
        population = OpenLoopClients(
            engine,
            tcpnet,
            clients,
            mbox,
            11211,
            codec=MemcachedRequestCodec(key_space=key_space),
            arrival=resolve_arrival(arrival),
            n_requests=(
                total_requests
                if total_requests is not None
                else concurrency * requests_per_client
            ),
            connections=concurrency,
            seed=seed,
            slo_us=slo_us,
            admission=admission,
            class_mix=class_mix,
            scoreboard=platform.scoreboard if platform is not None else None,
            **(fault.population_kwargs() if fault is not None else {}),
        )
        extra_of = _open_loop_extra
    else:
        population = MemcachedClientPopulation(
            engine,
            tcpnet,
            clients,
            mbox,
            11211,
            concurrency=concurrency,
            requests_per_client=requests_per_client,
            warmup_requests=max(2, requests_per_client // 10),
            key_space=key_space,
        )

        def extra_of(pop):
            return _closed_loop_extra(
                pop, concurrency * requests_per_client, slo_us
            )

    population.start()
    engine.run()
    if not population.finished:
        raise RuntimeError(f"{system} cores={cores}: workload did not complete")
    backend_hits = sum(s.requests_served for s in backend_servers)
    extra = extra_of(population)
    extra["backend_requests"] = float(backend_hits)
    extra.update(_steal_extra(platform))
    extra.update(_alloc_extra(platform))
    if fault is not None:
        extra.update(fault.counters(population))
    return RunResult(
        system=system,
        x=cores,
        throughput=population.kreqs_per_sec(),
        latency_ms=population.mean_latency_ms(),
        extra=extra,
        class_stats=(
            platform.scoreboard.summary() if platform is not None else {}
        ),
        admission_stats=(
            population.admission_summary() if arrival is not None else {}
        ),
    )


# ---------------------------------------------------------------------------
# Figure 6: Hadoop data aggregator vs CPU cores
# ---------------------------------------------------------------------------

#: Link scaling for the Hadoop testbed: interpreted per-pair compute costs
#: are far above the paper's generated C++, so links are scaled by the
#: matching factor to preserve the compute/network balance (DESIGN.md §3).  The
#: plateau is then ~20 Mbps (pipeline-bound) instead of the paper's ~7,513 Mbps.
HADOOP_LINK_SCALE = 0.012


def run_hadoop_experiment(
    cores: int,
    word_len: int = 8,
    data_kb_per_mapper: int = 96,
    n_mappers: int = 8,
    stack: str = "kernel",
    policy=None,
    topology=None,
    slo_us: Optional[float] = None,
    arrival=None,
    seed: int = 0xF11C,
    exec_tier: str = "compiled",
    allocator="static",
) -> RunResult:
    """One data point of Figure 6: aggregate ingress throughput (Mb/s).

    ``arrival`` (an arrival process or registered name) staggers the
    mappers: instead of all ``n_mappers`` connecting at time zero (the
    paper's setup), mapper ``i`` starts at the ``i``-th arrival tick —
    modelling a job whose map tasks finish, and ship their output, on
    the cluster scheduler's clock rather than in lockstep.  A finite
    trace shorter than ``n_mappers`` starts the remainder at the last
    stamp.
    """
    engine = Engine()
    tcpnet = TcpNetwork(engine)
    scale = HADOOP_LINK_SCALE
    mbox = tcpnet.add_host("mbox", 10 * GBPS * scale, "core")
    reducer_host = tcpnet.add_host("reducer", 10 * GBPS * scale, "core")
    mapper_hosts = [
        tcpnet.add_host(f"mapper{i}", 1 * GBPS * scale, "edge")
        for i in range(n_mappers)
    ]
    tcpnet.network._trunk_rate = 20 * GBPS * scale

    sink = ReducerSink(engine, tcpnet, reducer_host, 9000)
    platform = FlickPlatform(
        engine,
        tcpnet,
        mbox,
        RuntimeConfig(
            cores=cores,
            stack=stack,
            policy="cooperative" if policy is None else policy,
            topology=topology,
            slo_us=slo_us,
            exec_tier=exec_tier,
            allocator=allocator,
        ),
        hadoop_agg.hadoop_codec_registry(),
    )
    platform.register_program(
        hadoop_agg.compile_hadoop(),
        "hadoop",
        9100,
        hadoop_agg.hadoop_bindings(reducer_host, 9000, n_mappers),
    )
    platform.start()

    outputs = [
        generate_mapper_output(
            i, data_kb_per_mapper * 1024, word_len, vocabulary=4096
        )
        for i in range(n_mappers)
    ]
    mappers = [
        Mapper(engine, tcpnet, host, mbox, 9100, pairs)
        for host, pairs in zip(mapper_hosts, outputs)
    ]
    total_bytes = sum(m.bytes_total for m in mappers)
    if arrival is not None:
        gaps = resolve_arrival(arrival).gaps(random.Random(seed))
        start_at = 0.0
        for mapper in mappers:
            start_at += next(gaps, 0.0)
            engine.schedule(start_at, mapper.start)
    else:
        for mapper in mappers:
            mapper.start()
    engine.run()
    if sink.finished_at is None:
        raise RuntimeError(f"hadoop cores={cores}: aggregation did not finish")
    extra = {
        "ingress_bytes": float(total_bytes),
        "egress_bytes": float(sink.bytes_received),
        "word_len": float(word_len),
    }
    extra.update(_steal_extra(platform))
    extra.update(_alloc_extra(platform))
    return RunResult(
        system=f"flick-{stack}",
        x=cores,
        throughput=throughput_mbps(total_bytes, sink.finished_at),
        latency_ms=sink.finished_at / 1000.0,
        extra=extra,
        class_stats=platform.scoreboard.summary(),
    )
