"""Experiment testbeds: one function per evaluation configuration.

Each ``run_*`` function builds the paper's topology (section 6.2: client
and backend machines with 1 Gbps NICs on an edge switch, the middlebox
with a 10 Gbps NIC on a core switch, 20 Gbps trunk), drives the workload
to completion in virtual time, and returns a
:class:`repro.sim.stats.RunResult` — one plotted point of a figure.

Systems under test:

* ``flick-kernel`` / ``flick-mtcp`` — the real FLICK runtime (compiled
  programs on the cooperative scheduler) over the respective stack
  profile;
* ``apache`` / ``nginx`` / ``moxi`` — calibrated cost-model baselines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps import hadoop_agg, http_lb, memcached_proxy
from repro.baselines.apache import ApacheServer
from repro.baselines.moxi import MoxiProxy
from repro.baselines.nginx import NginxServer
from repro.core.units import GBPS, throughput_mbps
from repro.net.tcp import TcpNetwork
from repro.runtime.costs import RuntimeConfig
from repro.runtime.graph import OutboundTarget
from repro.runtime.platform import FlickPlatform
from repro.sim.engine import Engine
from repro.sim.stats import RunResult
from repro.workloads.backends import BackendMemcachedServer, BackendWebServer
from repro.workloads.hadoop_mappers import (
    Mapper,
    ReducerSink,
    generate_mapper_output,
)
from repro.workloads.http_clients import HttpClientPopulation
from repro.workloads.memcached_clients import MemcachedClientPopulation

N_CLIENT_HOSTS = 16
N_BACKENDS = 10

FLICK_SYSTEMS = ("flick-kernel", "flick-mtcp")
HTTP_BASELINES = ("apache", "nginx")


def _stack_of(system: str) -> str:
    return "mtcp" if system == "flick-mtcp" else "kernel"


def _build_topology(n_backends: int = N_BACKENDS):
    engine = Engine()
    tcpnet = TcpNetwork(engine)
    mbox = tcpnet.add_host("mbox", 10 * GBPS, "core")
    clients = [
        tcpnet.add_host(f"client{i}", 1 * GBPS, "edge")
        for i in range(N_CLIENT_HOSTS)
    ]
    backends = [
        tcpnet.add_host(f"backend{i}", 1 * GBPS, "edge")
        for i in range(n_backends)
    ]
    return engine, tcpnet, mbox, clients, backends


# ---------------------------------------------------------------------------
# E1 + Figure 4: HTTP (static web server and load balancer)
# ---------------------------------------------------------------------------


def run_http_experiment(
    system: str,
    concurrency: int,
    persistent: bool = True,
    mode: str = "lb",
    cores: int = 16,
    requests_per_client: int = 40,
    timeslice_us: float = 50.0,
    graph_pool_size: Optional[int] = None,
) -> RunResult:
    """One data point of Figure 4 (mode='lb') or the §6.3 web test
    (mode='web')."""
    if mode not in ("lb", "web"):
        raise ValueError(f"unknown mode {mode!r}")
    engine, tcpnet, mbox, clients, backend_hosts = _build_topology()
    use_backends = mode == "lb"
    if use_backends:
        backend_servers = [
            BackendWebServer(engine, tcpnet, host, 8080)
            for host in backend_hosts
        ]
        targets = [OutboundTarget(host, 8080) for host in backend_hosts]
    else:
        backend_servers, targets = [], []

    if system in FLICK_SYSTEMS:
        config = RuntimeConfig(
            cores=cores,
            stack=_stack_of(system),
            timeslice_us=timeslice_us,
            graph_pool_size=(
                graph_pool_size if graph_pool_size is not None else 512
            ),
        )
        platform = FlickPlatform(
            engine, tcpnet, mbox, config, http_lb.http_codec_registry()
        )
        if use_backends:
            platform.register_program(
                http_lb.compile_http_lb(),
                "HttpBalancer",
                80,
                http_lb.lb_bindings(targets),
            )
        else:
            platform.register_program(
                http_lb.compile_static_web(), "StaticWeb", 80
            )
        platform.start()
    elif system == "apache":
        ApacheServer(engine, tcpnet, mbox, 80, cores=cores, backends=targets or None)
    elif system == "nginx":
        NginxServer(engine, tcpnet, mbox, 80, cores=cores, backends=targets or None)
    else:
        raise ValueError(f"unknown system {system!r}")

    population = HttpClientPopulation(
        engine,
        tcpnet,
        clients,
        mbox,
        80,
        concurrency=concurrency,
        persistent=persistent,
        requests_per_client=requests_per_client,
        warmup_requests=max(2, requests_per_client // 10),
    )
    population.start()
    engine.run()
    if not population.finished:
        raise RuntimeError(
            f"{system} x={concurrency}: workload did not complete"
        )
    del backend_servers
    return RunResult(
        system=system,
        x=concurrency,
        throughput=population.kreqs_per_sec(),
        latency_ms=population.mean_latency_ms(),
        extra={"errors": float(population.errors)},
    )


# ---------------------------------------------------------------------------
# Figure 5: Memcached proxy vs CPU cores
# ---------------------------------------------------------------------------


def run_memcached_experiment(
    system: str,
    cores: int,
    concurrency: int = 128,
    requests_per_client: int = 40,
    specialised_parser: bool = True,
    cache_router: bool = False,
    key_space: int = 10_000,
    value_bytes: int = 64,
) -> RunResult:
    """One data point of Figure 5 (or the parser/cache ablations)."""
    engine, tcpnet, mbox, clients, backend_hosts = _build_topology()
    filler = b"v" * value_bytes
    backend_servers = [
        BackendMemcachedServer(
            engine, tcpnet, host, 11211, value_fn=lambda key: filler
        )
        for host in backend_hosts
    ]
    targets = [OutboundTarget(host, 11211) for host in backend_hosts]

    if system in FLICK_SYSTEMS:
        if cache_router:
            program = memcached_proxy.compile_cache_router()
            proc_name = "memcached"
        else:
            program = memcached_proxy.compile_proxy()
            proc_name = "Memcached"
        config = RuntimeConfig(cores=cores, stack=_stack_of(system))
        platform = FlickPlatform(
            engine,
            tcpnet,
            mbox,
            config,
            memcached_proxy.memcached_codec_registry(
                program, specialised=specialised_parser
            ),
        )
        platform.register_program(
            program,
            proc_name,
            11211,
            memcached_proxy.proxy_bindings(targets),
        )
        platform.start()
    elif system == "moxi":
        MoxiProxy(engine, tcpnet, mbox, 11211, targets, cores=cores)
    else:
        raise ValueError(f"unknown system {system!r}")

    population = MemcachedClientPopulation(
        engine,
        tcpnet,
        clients,
        mbox,
        11211,
        concurrency=concurrency,
        requests_per_client=requests_per_client,
        warmup_requests=max(2, requests_per_client // 10),
        key_space=key_space,
    )
    population.start()
    engine.run()
    if not population.finished:
        raise RuntimeError(f"{system} cores={cores}: workload did not complete")
    backend_hits = sum(s.requests_served for s in backend_servers)
    return RunResult(
        system=system,
        x=cores,
        throughput=population.kreqs_per_sec(),
        latency_ms=population.mean_latency_ms(),
        extra={
            "errors": float(population.errors),
            "backend_requests": float(backend_hits),
        },
    )


# ---------------------------------------------------------------------------
# Figure 6: Hadoop data aggregator vs CPU cores
# ---------------------------------------------------------------------------

#: Link scaling for the Hadoop testbed: interpreted per-pair compute costs
#: are far above the paper's generated C++, so links are scaled by the
#: matching factor to preserve the compute/network balance (DESIGN.md §3).  The
#: plateau is then ~20 Mbps (pipeline-bound) instead of the paper's ~7,513 Mbps.
HADOOP_LINK_SCALE = 0.012


def run_hadoop_experiment(
    cores: int,
    word_len: int = 8,
    data_kb_per_mapper: int = 96,
    n_mappers: int = 8,
    stack: str = "kernel",
) -> RunResult:
    """One data point of Figure 6: aggregate ingress throughput (Mb/s)."""
    engine = Engine()
    tcpnet = TcpNetwork(engine)
    scale = HADOOP_LINK_SCALE
    mbox = tcpnet.add_host("mbox", 10 * GBPS * scale, "core")
    reducer_host = tcpnet.add_host("reducer", 10 * GBPS * scale, "core")
    mapper_hosts = [
        tcpnet.add_host(f"mapper{i}", 1 * GBPS * scale, "edge")
        for i in range(n_mappers)
    ]
    tcpnet.network._trunk_rate = 20 * GBPS * scale

    sink = ReducerSink(engine, tcpnet, reducer_host, 9000)
    platform = FlickPlatform(
        engine,
        tcpnet,
        mbox,
        RuntimeConfig(cores=cores, stack=stack),
        hadoop_agg.hadoop_codec_registry(),
    )
    platform.register_program(
        hadoop_agg.compile_hadoop(),
        "hadoop",
        9100,
        hadoop_agg.hadoop_bindings(reducer_host, 9000, n_mappers),
    )
    platform.start()

    outputs = [
        generate_mapper_output(
            i, data_kb_per_mapper * 1024, word_len, vocabulary=4096
        )
        for i in range(n_mappers)
    ]
    mappers = [
        Mapper(engine, tcpnet, host, mbox, 9100, pairs)
        for host, pairs in zip(mapper_hosts, outputs)
    ]
    total_bytes = sum(m.bytes_total for m in mappers)
    for mapper in mappers:
        mapper.start()
    engine.run()
    if sink.finished_at is None:
        raise RuntimeError(f"hadoop cores={cores}: aggregation did not finish")
    return RunResult(
        system=f"flick-{stack}",
        x=cores,
        throughput=throughput_mbps(total_bytes, sink.finished_at),
        latency_ms=sink.finished_at / 1000.0,
        extra={
            "ingress_bytes": float(total_bytes),
            "egress_bytes": float(sink.bytes_received),
            "word_len": float(word_len),
        },
    )
