"""Figure 7 resource-sharing microbenchmark (section 6.4).

200 synthetic tasks, each consuming a finite number of data items and
"computing a simple addition for each input byte": 100 **light** tasks
over 1 KB items and 100 **heavy** tasks over 16 KB items.  The paper
runs them under its three scheduling policies (cooperative /
non-cooperative / round-robin) and reports the completion time of each
class; here ``policy`` accepts *any* registered policy name — or a
:class:`~repro.runtime.policy.SchedulingPolicy` instance — so the same
workload sweeps scheduling scenarios the paper could not test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.errors import RuntimeFlickError
from repro.runtime.policy import (
    PAPER_POLICIES,
    closest_policy_name,
    registered_policies,
    unknown_policy_message,
)
from repro.runtime.qos import ServiceClassMap
from repro.runtime.scheduler import Scheduler, TaskBase
from repro.sim.engine import Engine

#: The workload's two endpoints, as `--slo-class` sees them: every light
#: task belongs to endpoint "light", every heavy task to "heavy".
ENDPOINTS = ("light", "heavy")

#: Cost of the per-byte addition loop (µs/byte of item data).
PER_BYTE_US = 0.004

LIGHT_ITEM_BYTES = 1 * 1024
HEAVY_ITEM_BYTES = 16 * 1024

#: SLO slack granted per µs of a task's total work: a task's deadline
#: budget is twice its ideal (uncontended) runtime, mirroring SLOs that
#: scale with request size.  The 'deadline' policy consumes this; every
#: other policy ignores the attribute.
SLO_SLACK_FACTOR = 2.0


class SyntheticTask(TaskBase):
    """Consumes ``n_items`` of ``item_bytes`` each; records finish time."""

    def __init__(self, name: str, n_items: int, item_bytes: int, engine: Engine):
        super().__init__(name)
        self._engine = engine
        self._remaining = n_items
        self._item_cost = item_bytes * PER_BYTE_US
        self.slo_us = n_items * self._item_cost * SLO_SLACK_FACTOR
        self.finished_at: Optional[float] = None

    def has_work(self) -> bool:
        return self._remaining > 0

    def step(self, budget_us: Optional[float]):
        elapsed = 0.0
        while self._remaining > 0:
            self._remaining -= 1
            elapsed += self._item_cost
            self.items_processed += 1
            if budget_us == 0.0:
                break
            if budget_us is not None and elapsed >= budget_us:
                break
        emissions = []
        if self._remaining == 0 and self.finished_at is None:
            def mark() -> None:
                self.finished_at = self._engine.now

            emissions.append(mark)
        self.busy_us += elapsed
        return elapsed, emissions


@dataclass
class SchedulingResult:
    """Completion times (ms, virtual) for the two task classes.

    ``class_stats`` is the scheduler scoreboard's per-service-class
    summary (completions, SLO misses, latency) — keyed by class name
    when the run carried a service-class map, by "default" otherwise;
    ``scoreboard`` keeps the full per-completion record log behind it.
    """

    policy: str
    light_mean_ms: float
    heavy_mean_ms: float
    light_max_ms: float
    heavy_max_ms: float
    makespan_ms: float
    class_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    scoreboard: object = None

    def as_dict(self) -> Dict[str, float]:
        return {
            "light_mean_ms": self.light_mean_ms,
            "heavy_mean_ms": self.heavy_mean_ms,
            "light_max_ms": self.light_max_ms,
            "heavy_max_ms": self.heavy_max_ms,
            "makespan_ms": self.makespan_ms,
        }


def run_scheduling_experiment(
    policy,
    n_tasks: int = 200,
    items_per_task: int = 200,
    cores: int = 16,
    timeslice_us: float = 50.0,
    interleaved: bool = True,
    topology=None,
    service_classes=None,
) -> SchedulingResult:
    """Run the Figure 7 workload under ``policy`` (name or instance).

    Tasks are admitted interleaved (light, heavy, light, ...) so that
    under the non-cooperative policy completion is determined purely by
    scheduling order, as the paper describes.  ``topology`` (a
    :class:`~repro.net.stackprofiles.CoreTopology` or a registered name)
    labels the cores with sockets and prices cross-socket steals.

    ``service_classes`` (a :class:`~repro.runtime.qos.ServiceClassMap`
    or dict shorthand) maps the workload's endpoints — ``"light"`` and
    ``"heavy"`` — to QoS tiers: a classified task carries its class's
    SLO and weight instead of the default size-proportional SLO, and
    the result's ``class_stats`` breaks completions, latency and SLO
    misses down per class.
    """
    if service_classes is not None:
        service_classes = ServiceClassMap.from_spec(service_classes)
    # Scoped task ids: the experiment's placement must not depend on how
    # many tasks the process created before, and the process counter
    # must never move backwards for tasks created after (adaptive
    # policies key state by id), so record where it was and restore
    # past both ranges afterwards.
    resume_from = next(TaskBase._ids)
    TaskBase.reset_ids()
    engine = Engine()
    scheduler = Scheduler(engine, cores, timeslice_us, policy, topology)
    light: List[SyntheticTask] = []
    heavy: List[SyntheticTask] = []
    for index in range(n_tasks):
        is_light = (index % 2 == 0) if interleaved else (index < n_tasks // 2)
        size = LIGHT_ITEM_BYTES if is_light else HEAVY_ITEM_BYTES
        endpoint = "light" if is_light else "heavy"
        task = SyntheticTask(
            f"{endpoint}{index}",
            items_per_task,
            size,
            engine,
        )
        if service_classes is not None:
            service_class = service_classes.class_for(endpoint)
            if service_class is not None:
                task.service_class = service_class
                task.slo_us = service_class.slo_us
        # Balanced placement: consecutive (light, heavy) pairs share a
        # worker, so every queue has the same class mix.  Hash placement
        # (the platform default) makes each queue's composition a
        # lottery, which swamps the policy effect this experiment
        # isolates.
        task.home_hint = (index // 2) % cores
        (light if is_light else heavy).append(task)
    scheduler.start()
    for index in range(n_tasks):
        task = light[index // 2] if index % 2 == 0 else heavy[index // 2]
        if not interleaved:
            ordered = light + heavy
            task = ordered[index]
        scheduler.notify_runnable(task)
    engine.run()

    def _collect(tasks: List[SyntheticTask]) -> List[float]:
        times = []
        for task in tasks:
            if task.finished_at is None:
                raise RuntimeError(f"task {task.name} never finished")
            times.append(task.finished_at)
        return times

    light_times = _collect(light)
    heavy_times = _collect(heavy)
    TaskBase.reset_ids(max(resume_from, n_tasks + 1))
    return SchedulingResult(
        policy=scheduler.policy_name,
        light_mean_ms=sum(light_times) / len(light_times) / 1000.0,
        heavy_mean_ms=sum(heavy_times) / len(heavy_times) / 1000.0,
        light_max_ms=max(light_times) / 1000.0,
        heavy_max_ms=max(heavy_times) / 1000.0,
        makespan_ms=max(max(light_times), max(heavy_times)) / 1000.0,
        class_stats=scheduler.scoreboard.summary(),
        scoreboard=scheduler.scoreboard,
    )


def resolve_policy_selection(selection: str) -> Sequence[str]:
    """Map a CLI ``--policy`` value to a list of policy names.

    ``"paper"`` → the three Figure-7 policies, ``"all"`` → every
    registered policy, otherwise a comma-separated list of names.
    """
    if selection == "paper":
        return PAPER_POLICIES
    if selection == "all":
        return registered_policies()
    names = tuple(
        name.strip() for name in selection.split(",") if name.strip()
    )
    if not names:
        raise RuntimeFlickError(
            f"--policy {selection!r} selects no policies; registered: "
            f"{', '.join(registered_policies())}"
        )
    unknown = [name for name in names if name not in registered_policies()]
    if unknown:
        # Reject up front: a typo must not surface only after the
        # preceding policies' experiments have already run.
        if len(unknown) == 1:
            raise RuntimeFlickError(unknown_policy_message(unknown[0]))
        message = (
            f"unknown scheduling policies {', '.join(map(repr, unknown))}; "
            f"registered: {', '.join(sorted(registered_policies()))}"
        )
        hints = [
            f"did you mean {suggestion!r} for {name!r}?"
            for name in unknown
            for suggestion in [closest_policy_name(name)]
            if suggestion is not None
        ]
        if hints:
            message += "; " + " ".join(hints)
        raise RuntimeFlickError(message)
    return names


def run_policy_sweep(
    policies: Optional[Sequence] = None, **kwargs
) -> Dict[str, SchedulingResult]:
    """Run the Figure 7 workload once per policy (names or instances).

    Keys are policy names; two entries with the same name (e.g. two
    ``BatchPolicy`` instances with different ``k``) are disambiguated
    with ``#2``, ``#3``, ... so no sweep result is silently dropped.
    """
    results: Dict[str, SchedulingResult] = {}
    for policy in policies if policies is not None else PAPER_POLICIES:
        result = run_scheduling_experiment(policy, **kwargs)
        key = result.policy
        serial = 2
        while key in results:
            key = f"{result.policy}#{serial}"
            serial += 1
        results[key] = result
    return results
