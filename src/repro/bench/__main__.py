"""``python -m repro.bench`` — figure regeneration CLI."""

import sys

from repro.bench.cli import main

sys.exit(main())
