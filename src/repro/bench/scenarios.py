"""Declarative scenario matrix: app x arrival process x policy x topology.

A :class:`Scenario` is a named tuple describing one end-to-end run —
which app (``http_lb`` / ``memcached_proxy`` / ``hadoop_agg``), which
arrival process (a :mod:`repro.workloads.arrivals` registry name, or
``None`` for the paper's closed-loop clients), which scheduling policy,
core topology, service classes and core count.  :data:`SCENARIOS` is the
built-in matrix; ``python -m repro.bench scenarios`` runs it (or a
``--scenario`` filter) on the existing testbeds and emits the
machine-readable ``BENCH_scenarios.json`` through
:mod:`repro.bench.results`.

The matrix deliberately pairs ``http-overload-open`` with
``http-overload-closed``: the same middlebox, connection pool, SLO and
request volume, once driven open-loop past saturation and once by
self-throttling closed-loop clients.  The open-loop run accumulates
queueing latency and misses its SLO; the closed-loop run never does —
the blind spot of ApacheBench-style evaluation, now a pinned number.

The fault-injection entries (``faults=`` names a
:mod:`repro.net.faults` registry entry) pin adversarial conditions the
same way: the ``http-retry-storm`` / ``http-retry-storm-shed`` pair
drives identical impatient-client load once into ``cooperative`` +
``admit-all`` (retries amplify the overload — the metastable feedback
loop) and once into ``deadline`` + ``shed-bronze`` (the door sheds the
amplification), so "admission control breaks the retry storm" is a
gated number rather than a claim.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, NamedTuple, Optional, Sequence, Tuple

from repro.apps import hadoop_agg, http_lb, memcached_proxy
from repro.cluster import registered_routings, unknown_routing_message
from repro.core.errors import ConfigError
from repro.net.faults import (
    make_fault,
    registered_faults,
    unknown_fault_message,
)
from repro.bench.testbeds import (
    run_hadoop_experiment,
    run_http_experiment,
    run_memcached_experiment,
)
from repro.runtime.admission import (
    make_admission,
    registered_admissions,
    unknown_admission_message,
)
from repro.runtime.allocator import (
    registered_allocators,
    unknown_allocator_message,
)
from repro.runtime.qos import closest_name, parse_slo_class_specs
from repro.runtime.scheduler import TaskBase
from repro.workloads.arrivals import make_arrival

#: Apps a scenario can target, and the endpoint names their programs
#: expose to ``service_classes`` specs.
APP_ENDPOINTS: Dict[str, Tuple[str, ...]] = {
    "http_lb": (http_lb.CLIENT_ENDPOINT,),
    "memcached_proxy": (memcached_proxy.CLIENT_ENDPOINT,),
    "hadoop_agg": (hadoop_agg.CLIENT_ENDPOINT,),
}


class Scenario(NamedTuple):
    """One declarative entry of the matrix (all fields hashable)."""

    name: str
    app: str
    #: Registered arrival-process name, or ``None`` for closed-loop.
    arrival: Optional[str]
    #: Parameters for :func:`~repro.workloads.arrivals.make_arrival`.
    arrival_params: Tuple[Tuple[str, object], ...] = ()
    policy: str = "cooperative"
    topology: Optional[str] = None
    #: ``--slo-class``-style specs (``endpoint=[name:]slo_us[@weight]``).
    service_classes: Tuple[str, ...] = ()
    cores: int = 8
    #: Persistent connection pool (open-loop) / concurrency (closed-loop).
    connections: int = 64
    #: Total requests; scaled down by ``--quick``.
    requests: int = 4096
    #: Client-side SLO in ms; completions slower than this are misses.
    slo_ms: Optional[float] = None
    #: http_lb only: "lb" (with backends) or "web" (static server).
    mode: str = "lb"
    #: Registered core-allocator name (``static`` = fixed worker set).
    allocator: str = "static"
    #: Registered admission-policy name (open-loop scenarios only).
    admission: str = "admit-all"
    #: Parameters for :func:`~repro.runtime.admission.make_admission`.
    admission_params: Tuple[Tuple[str, object], ...] = ()
    #: ``((class_name, weight), ...)`` service-class labels applied to
    #: arrivals by weighted round-robin (open-loop scenarios only).
    class_mix: Tuple[Tuple[str, float], ...] = ()
    #: Cluster tier: platforms behind one shard router (1 = classic
    #: single-middlebox path, no router in the topology).
    shards: int = 1
    #: Registered routing-policy name (shards > 1 only).
    routing: str = "hash-affinity"
    #: Kill the highest-indexed shard at this virtual µs (shards > 1).
    fail_shard_at_us: Optional[float] = None
    #: Registered fault-injector name (open-loop, single-platform only).
    faults: Optional[str] = None
    #: Parameters for :func:`~repro.net.faults.make_fault`.
    fault_params: Tuple[Tuple[str, object], ...] = ()


def _burst_trace(
    bursts: int, per_burst: int, gap_us: float, spacing_us: float
) -> Tuple[float, ...]:
    """A deterministic replay trace: square bursts separated by silence."""
    stamps = []
    for burst in range(bursts):
        start = burst * spacing_us
        stamps.extend(start + i * gap_us for i in range(per_burst))
    return tuple(stamps)


#: The built-in matrix.  Rates are calibrated against the 8-core
#: testbeds: http_lb saturates near ~110 kreq/s and the memcached proxy
#: near ~100 kreq/s, so the "overload" entries offer well past capacity
#: while the steady entries sit at roughly 40% utilisation.
SCENARIOS: Tuple[Scenario, ...] = (
    # Moderate-load closed-loop sanity point (half the overload pair's
    # connection pool, so it is NOT a duplicate of http-overload-closed).
    Scenario(
        name="http-closed-baseline",
        app="http_lb",
        arrival=None,
        connections=32,
        requests=2048,
        slo_ms=2.0,
    ),
    Scenario(
        name="http-open-poisson",
        app="http_lb",
        arrival="poisson",
        arrival_params=(("rate_rps", 40_000.0),),
        slo_ms=2.0,
    ),
    Scenario(
        name="http-open-bursty",
        app="http_lb",
        arrival="bursty",
        arrival_params=(
            ("burst_rate_rps", 80_000.0),
            ("mean_on_us", 10_000.0),
            ("mean_off_us", 10_000.0),
        ),
        slo_ms=2.0,
    ),
    Scenario(
        name="http-web-ramp",
        app="http_lb",
        mode="web",
        arrival="ramp",
        arrival_params=(
            ("start_rps", 20_000.0),
            ("end_rps", 250_000.0),
            ("duration_us", 60_000.0),
        ),
        slo_ms=2.0,
    ),
    Scenario(
        name="http-overload-open",
        app="http_lb",
        arrival="poisson",
        arrival_params=(("rate_rps", 160_000.0),),
        slo_ms=2.0,
        class_mix=(("gold", 1.0), ("bronze", 1.0)),
    ),
    # The overload-survival headline: identical offered load to
    # http-overload-open, but bronze arrivals are shed above an
    # in-flight watermark sized so queueing delay stays inside the SLO —
    # gold misses stop scaling with run length (startup transient only)
    # where admit-all's grow without bound.
    Scenario(
        name="http-overload-shed",
        app="http_lb",
        arrival="poisson",
        arrival_params=(("rate_rps", 160_000.0),),
        slo_ms=2.0,
        admission="shed-bronze",
        admission_params=(("max_inflight", 96),),
        class_mix=(("gold", 1.0), ("bronze", 1.0)),
    ),
    Scenario(
        name="http-overload-closed",
        app="http_lb",
        arrival=None,
        slo_ms=2.0,
    ),
    # The metastable retry storm: the overload pair's offered load, but
    # clients give up after the SLO and re-offer (up to 3 times) — the
    # classic feedback loop where retries amplify the very overload that
    # caused them.  Under cooperative + admit-all the amplification
    # lands unchecked; the -shed sibling routes the identical storm
    # through deadline scheduling + bronze shedding, which breaks the
    # loop at the door.  The pair is the faults plane's acceptance gate.
    Scenario(
        name="http-retry-storm",
        app="http_lb",
        arrival="poisson",
        arrival_params=(("rate_rps", 160_000.0),),
        slo_ms=2.0,
        class_mix=(("gold", 1.0), ("bronze", 1.0)),
        faults="retry-storm",
        fault_params=(("retry_after_us", 2_000.0), ("max_retries", 3)),
    ),
    Scenario(
        name="http-retry-storm-shed",
        app="http_lb",
        arrival="poisson",
        arrival_params=(("rate_rps", 160_000.0),),
        policy="deadline",
        slo_ms=2.0,
        admission="shed-bronze",
        admission_params=(("max_inflight", 96),),
        class_mix=(("gold", 1.0), ("bronze", 1.0)),
        faults="retry-storm",
        fault_params=(("retry_after_us", 2_000.0), ("max_retries", 3)),
    ),
    # Backend-side fault drills at comfortable load: service-time
    # inflation windows (slow-backend) and bounded up/down flaps with
    # connection resets (flapping-backend) — the injected degradation,
    # not the load, is what the pinned numbers isolate.
    Scenario(
        name="http-slow-backend",
        app="http_lb",
        arrival="poisson",
        arrival_params=(("rate_rps", 40_000.0),),
        slo_ms=2.0,
        faults="slow-backend",
        # 15 µs of backend service is noise next to the ~0.7 ms
        # middlebox path; x120 pushes slow-window responses past the
        # 2 ms SLO, so the inflation windows show up as misses.
        fault_params=(("factor", 120.0),),
    ),
    Scenario(
        name="http-flapping-backend",
        app="http_lb",
        arrival="poisson",
        arrival_params=(("rate_rps", 40_000.0),),
        slo_ms=5.0,
        faults="flapping-backend",
    ),
    # Elastic-allocation ramp: offered load sweeps from far below to far
    # past capacity, so the queue-depth allocator first parks idle
    # workers and then unparks them back up to the full core count —
    # both directions land in the alloc log and the pinned worker-count
    # envelope.
    Scenario(
        name="http-ramp-elastic",
        app="http_lb",
        mode="web",
        arrival="ramp",
        arrival_params=(
            ("start_rps", 10_000.0),
            ("end_rps", 250_000.0),
            ("duration_us", 30_000.0),
        ),
        slo_ms=2.0,
        allocator="queue-depth",
    ),
    Scenario(
        name="http-open-numa-classes",
        app="http_lb",
        arrival="poisson",
        arrival_params=(("rate_rps", 40_000.0),),
        policy="numa",
        topology="two-socket",
        service_classes=("client=gold:2000@2",),
        slo_ms=2.0,
    ),
    Scenario(
        name="memcached-open-poisson",
        app="memcached_proxy",
        arrival="poisson",
        arrival_params=(("rate_rps", 40_000.0),),
        slo_ms=2.0,
    ),
    Scenario(
        name="memcached-open-replay",
        app="memcached_proxy",
        arrival="replay",
        arrival_params=(
            (
                "timestamps_us",
                _burst_trace(
                    bursts=4, per_burst=1024, gap_us=12.5,
                    spacing_us=25_000.0,
                ),
            ),
        ),
        requests=4096,
        slo_ms=2.0,
    ),
    # Connection churn: short-lived connections recycled every 16
    # requests, so accept/teardown cost rides the steady-state number.
    Scenario(
        name="memcached-conn-churn",
        app="memcached_proxy",
        arrival="poisson",
        arrival_params=(("rate_rps", 40_000.0),),
        slo_ms=2.0,
        faults="conn-churn",
        fault_params=(("lifetime_requests", 16),),
    ),
    # Cluster-tier scaling curve: the SAME open-loop offered load
    # (800 kreq/s, far past one shard's ~110 kreq/s saturation point)
    # against 1, 2 and 4 shards — completion throughput must scale
    # with the fleet (the CI gate pins >= 1.7x per doubling).  The
    # multi-shard points route least-loaded (power-of-two-choices):
    # connection-granular hash placement is binomially imbalanced at
    # this pool size and would cap the 4-shard point below the gate.
    Scenario(
        name="http-fleet-scale-1",
        app="http_lb",
        mode="web",
        arrival="poisson",
        arrival_params=(("rate_rps", 800_000.0),),
        connections=128,
        requests=8192,
    ),
    Scenario(
        name="http-fleet-scale-2",
        app="http_lb",
        mode="web",
        arrival="poisson",
        arrival_params=(("rate_rps", 800_000.0),),
        connections=128,
        requests=8192,
        shards=2,
        routing="least-loaded",
    ),
    Scenario(
        name="http-fleet-scale-4",
        app="http_lb",
        mode="web",
        arrival="poisson",
        arrival_params=(("rate_rps", 800_000.0),),
        connections=128,
        requests=8192,
        shards=4,
        routing="least-loaded",
    ),
    # Failover drill: a 2-shard fleet at comfortable load loses one
    # shard mid-run.  The ring hands the dead segment to the survivor,
    # severed clients reconnect, and the fleet finishes degraded but
    # alive — bounded in-flight failures, no metastable collapse (the
    # CI gate pins completion and failure envelopes).
    Scenario(
        name="http-fleet-failover",
        app="http_lb",
        arrival="poisson",
        arrival_params=(("rate_rps", 60_000.0),),
        connections=64,
        requests=8192,
        slo_ms=5.0,
        shards=2,
        fail_shard_at_us=10_000.0,
    ),
    Scenario(
        name="hadoop-ramp-mappers",
        app="hadoop_agg",
        arrival="ramp",
        arrival_params=(
            ("start_rps", 50.0),
            ("end_rps", 500.0),
            ("duration_us", 50_000.0),
        ),
        cores=4,
    ),
)

SCENARIO_NAMES: Tuple[str, ...] = tuple(s.name for s in SCENARIOS)
_BY_NAME: Dict[str, Scenario] = {s.name: s for s in SCENARIOS}


def resolve_scenario_selection(selection: str) -> Tuple[Scenario, ...]:
    """Map a CLI ``--scenario`` value to matrix entries.

    ``"all"`` (the default) selects the whole matrix, otherwise a
    comma-separated list of scenario names; typos get a near-miss
    suggestion, mirroring ``--policy``.
    """
    if selection == "all":
        return SCENARIOS
    # Order-preserving dedup: `--scenario x,x` must not run x twice
    # (the second run's result would silently overwrite the first).
    names = tuple(
        dict.fromkeys(
            name.strip() for name in selection.split(",") if name.strip()
        )
    )
    if not names:
        raise ConfigError(
            f"--scenario {selection!r} selects no scenarios; known: "
            f"{', '.join(SCENARIO_NAMES)}"
        )
    unknown = [name for name in names if name not in _BY_NAME]
    if unknown:
        message = (
            f"unknown scenario{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(map(repr, unknown))}; known: "
            f"{', '.join(SCENARIO_NAMES)}"
        )
        if len(unknown) == 1:
            hints = [
                f"did you mean {suggestion!r}?"
                for suggestion in [closest_name(unknown[0], _BY_NAME)]
                if suggestion is not None
            ]
        else:
            hints = [
                f"did you mean {suggestion!r} for {name!r}?"
                for name in unknown
                for suggestion in [closest_name(name, _BY_NAME)]
                if suggestion is not None
            ]
        if hints:
            message += "; " + " ".join(hints)
        raise ConfigError(message)
    return tuple(_BY_NAME[name] for name in names)


def _validate_scenario(scenario: Scenario) -> None:
    if scenario.app not in APP_ENDPOINTS:
        raise ConfigError(
            f"scenario {scenario.name!r}: unknown app {scenario.app!r}; "
            f"known: {', '.join(sorted(APP_ENDPOINTS))}"
        )
    # Fields the hadoop testbed does not consume must not be silently
    # dropped — the entry would report them as if they were in effect
    # and the gate would pin numbers under a config that never ran.
    if scenario.app == "hadoop_agg":
        unsupported = [
            label
            for label, is_set in (
                ("service_classes", bool(scenario.service_classes)),
                ("slo_ms", scenario.slo_ms is not None),
            )
            if is_set
        ]
        if unsupported:
            raise ConfigError(
                f"scenario {scenario.name!r}: hadoop_agg does not "
                f"support {', '.join(unsupported)} (mapper streams are "
                "not per-request workloads)"
            )
    if scenario.mode != "lb" and scenario.app != "http_lb":
        raise ConfigError(
            f"scenario {scenario.name!r}: mode={scenario.mode!r} is an "
            "http_lb-only field"
        )
    if scenario.allocator not in registered_allocators():
        raise ConfigError(
            f"scenario {scenario.name!r}: "
            + unknown_allocator_message(scenario.allocator)
        )
    if scenario.admission not in registered_admissions():
        raise ConfigError(
            f"scenario {scenario.name!r}: "
            + unknown_admission_message(scenario.admission)
        )
    # Admission control gates open-loop arrivals; everywhere else the
    # fields would be silently dropped, pinning numbers under a config
    # that never ran (same rule as hadoop's service_classes above).
    uses_admission = (
        scenario.admission != "admit-all"
        or bool(scenario.admission_params)
        or bool(scenario.class_mix)
    )
    if uses_admission and (
        scenario.arrival is None or scenario.app == "hadoop_agg"
    ):
        raise ConfigError(
            f"scenario {scenario.name!r}: admission control and "
            "class_mix need an open-loop arrival process on a "
            "request/response app (closed-loop clients self-throttle "
            "and hadoop mapper streams are not per-request workloads)"
        )
    # Fault injection follows the same no-silent-drop discipline.
    if scenario.fault_params and scenario.faults is None:
        raise ConfigError(
            f"scenario {scenario.name!r}: fault_params without faults "
            "would be silently dropped"
        )
    if scenario.faults is not None:
        if scenario.faults not in registered_faults():
            raise ConfigError(
                f"scenario {scenario.name!r}: "
                + unknown_fault_message(scenario.faults)
            )
        try:
            fault = make_fault(
                scenario.faults, **dict(scenario.fault_params)
            )
        except ConfigError as exc:
            raise ConfigError(
                f"scenario {scenario.name!r}: {exc}"
            ) from None
        if scenario.arrival is None or scenario.app == "hadoop_agg":
            raise ConfigError(
                f"scenario {scenario.name!r}: fault injection needs an "
                "open-loop arrival process on a request/response app "
                "(retry/failure accounting lives there)"
            )
        if (
            fault.needs_backends
            and scenario.app == "http_lb"
            and scenario.mode != "lb"
        ):
            raise ConfigError(
                f"scenario {scenario.name!r}: fault {fault.name!r} "
                "targets backend servers; mode='web' has none"
            )
        if scenario.shards != 1:
            raise ConfigError(
                f"scenario {scenario.name!r}: fault injection is "
                "single-platform for now; drop either faults or shards"
            )
    if scenario.shards < 1:
        raise ConfigError(
            f"scenario {scenario.name!r}: shards must be >= 1, got "
            f"{scenario.shards}"
        )
    if scenario.shards == 1:
        # Same no-silent-drop rule as above: cluster knobs on a
        # single-middlebox scenario would report a config that never ran.
        if scenario.routing != "hash-affinity":
            raise ConfigError(
                f"scenario {scenario.name!r}: routing={scenario.routing!r} "
                "needs shards > 1"
            )
        if scenario.fail_shard_at_us is not None:
            raise ConfigError(
                f"scenario {scenario.name!r}: fail_shard_at_us needs "
                "shards > 1"
            )
    else:
        if scenario.app != "http_lb":
            raise ConfigError(
                f"scenario {scenario.name!r}: the cluster tier shards "
                "http_lb platforms only"
            )
        if scenario.arrival is None:
            raise ConfigError(
                f"scenario {scenario.name!r}: the cluster tier needs an "
                "open-loop arrival process (connection-failure "
                "accounting lives there)"
            )
        if scenario.routing not in registered_routings():
            raise ConfigError(
                f"scenario {scenario.name!r}: "
                + unknown_routing_message(scenario.routing)
            )
        if (
            scenario.fail_shard_at_us is not None
            and scenario.fail_shard_at_us <= 0
        ):
            raise ConfigError(
                f"scenario {scenario.name!r}: fail_shard_at_us must be "
                f"positive, got {scenario.fail_shard_at_us:g}"
            )


def run_scenario(
    scenario: Scenario, quick: bool = False, exec_tier: str = "compiled"
) -> dict:
    """Run one scenario; return its JSON-ready result dict.

    ``quick`` quarters the request volume (CI smoke sizes) — the
    committed baseline is generated with the same flag, so gate
    comparisons are like-for-like (enforced via the document envelope).

    ``exec_tier`` selects the handler execution backend.  It is
    deliberately *not* recorded in the result: both tiers must produce
    byte-identical results (all costs are modeled), and the golden-parity
    CI leg re-runs the matrix under ``interp`` to prove it.
    """
    _validate_scenario(scenario)
    requests = max(256, scenario.requests // 4) if quick else scenario.requests
    arrival = None
    if scenario.arrival is not None:
        arrival = make_arrival(
            scenario.arrival, **dict(scenario.arrival_params)
        )
    class_map = (
        parse_slo_class_specs(
            scenario.service_classes,
            valid_endpoints=APP_ENDPOINTS[scenario.app],
        )
        if scenario.service_classes
        else None
    )
    slo_us = scenario.slo_ms * 1000.0 if scenario.slo_ms is not None else None
    # Closed-loop runs take the plain default so the testbed's "nothing
    # to shed" guard sees it; open-loop runs get a parameterised instance.
    admission = (
        make_admission(scenario.admission, **dict(scenario.admission_params))
        if scenario.arrival is not None and scenario.app != "hadoop_agg"
        else "admit-all"
    )
    fault = (
        make_fault(scenario.faults, **dict(scenario.fault_params))
        if scenario.faults is not None
        else None
    )

    common = dict(
        policy=scenario.policy,
        topology=scenario.topology,
        slo_us=slo_us,
        exec_tier=exec_tier,
        allocator=scenario.allocator,
    )
    # Scoped task ids, exactly as the fig7 sweep does: a scenario's
    # numbers must not depend on which scenarios ran before it in this
    # process (hash placement keys off task ids), and the process
    # counter must never move backwards afterwards.
    resume_from = next(TaskBase._ids)
    TaskBase.reset_ids()
    try:
        if scenario.app == "http_lb":
            result = run_http_experiment(
                "flick-kernel",
                scenario.connections,
                mode=scenario.mode,
                cores=scenario.cores,
                requests_per_client=max(1, requests // scenario.connections),
                service_classes=class_map,
                arrival=arrival,
                total_requests=requests,
                admission=admission,
                class_mix=scenario.class_mix,
                shards=scenario.shards,
                routing=scenario.routing,
                fail_shard_at_us=scenario.fail_shard_at_us,
                faults=fault,
                **common,
            )
            unit = "kreq/s"
        elif scenario.app == "memcached_proxy":
            result = run_memcached_experiment(
                "flick-kernel",
                scenario.cores,
                concurrency=scenario.connections,
                requests_per_client=max(1, requests // scenario.connections),
                service_classes=class_map,
                arrival=arrival,
                total_requests=requests,
                admission=admission,
                class_mix=scenario.class_mix,
                faults=fault,
                **common,
            )
            unit = "kreq/s"
        else:  # hadoop_agg
            result = run_hadoop_experiment(
                scenario.cores,
                data_kb_per_mapper=16 if quick else 48,
                arrival=arrival,
                **common,
            )
            unit = "Mb/s"
    finally:
        TaskBase.reset_ids(max(resume_from, next(TaskBase._ids)))

    extra = result.extra
    offered = int(extra.get("offered", 0))
    completed = int(extra.get("completed", 0))
    measured = int(extra.get("measured", 0))
    misses = int(extra.get("slo_misses", 0))
    entry = {
        "app": scenario.app,
        "arrival": (
            arrival.describe() if arrival is not None else "closed-loop"
        ),
        "policy": scenario.policy,
        "topology": scenario.topology or "uniform",
        "service_classes": list(scenario.service_classes),
        "cores": scenario.cores,
        "requests": requests,
        "offered": offered,
        "completed": completed,
        "failed": int(extra.get("failed", 0)),
        "retried": int(extra.get("retried", 0)),
        "measured": measured,
        "errors": int(extra.get("errors", 0)),
        "throughput": result.throughput,
        "throughput_unit": unit,
        "latency_ms": {
            "mean": result.latency_ms,
            "p50": extra.get("p50_ms", result.latency_ms),
            "p99": extra.get("p99_ms", result.latency_ms),
            "max": extra.get("max_ms", result.latency_ms),
        },
        "slo": {
            "slo_ms": scenario.slo_ms,
            "misses": misses,
            # Misses are only counted over the measured window (the
            # closed loop excludes warmup), so the rate must share
            # that denominator or warmup requests would dilute it.
            "miss_rate": (misses / measured) if measured else 0.0,
        },
        "classes": result.class_stats,
        "steals": {
            "steals": int(extra.get("steals", 0)),
            "stolen_tasks": int(extra.get("stolen_tasks", 0)),
            "steal_us": extra.get("steal_us", 0.0),
        },
        "allocator": {
            "name": scenario.allocator,
            "changes": int(extra.get("alloc_changes", 0)),
            "moved_tasks": int(extra.get("alloc_moved_tasks", 0)),
            "active_workers": {
                "min": int(extra.get("active_workers_min", scenario.cores)),
                "max": int(extra.get("active_workers_max", scenario.cores)),
                "final": int(
                    extra.get("active_workers_final", scenario.cores)
                ),
            },
        },
    }
    if result.admission_stats:
        entry["admission"] = {
            "policy": scenario.admission,
            "class_mix": {name: w for name, w in scenario.class_mix},
            "admitted": int(extra.get("admitted", offered)),
            "shed": int(extra.get("shed", 0)),
            "per_class": result.admission_stats,
        }
    if "arrival_gap_mean_us" in extra:
        entry["arrival_gaps_us"] = {
            "mean": extra["arrival_gap_mean_us"],
            "p50": extra["arrival_gap_p50_us"],
            "p99": extra["arrival_gap_p99_us"],
        }
    if result.cluster_stats:
        entry["cluster"] = result.cluster_stats
    if fault is not None:
        entry["faults"] = {
            "name": fault.name,
            "params": fault.params(),
            "counters": {
                key[len("fault_"):]: int(value)
                for key, value in sorted(extra.items())
                if key.startswith("fault_")
            },
        }
    return entry


def _scenario_job(
    scenario: Scenario, quick: bool, exec_tier: str
) -> Tuple[str, dict]:
    """Worker-process entry point for the parallel matrix runner."""
    return scenario.name, run_scenario(
        scenario, quick=quick, exec_tier=exec_tier
    )


def run_scenario_matrix(
    scenarios: Sequence[Scenario],
    quick: bool = False,
    exec_tier: str = "compiled",
    jobs: int = 1,
) -> Dict[str, dict]:
    """Run ``scenarios``; map name → JSON-ready result, selection order.

    ``jobs`` > 1 fans the scenarios out over that many worker
    processes.  The output is byte-identical to the serial run:
    :func:`run_scenario` scopes every global (task ids, seeded RNGs)
    per scenario, so a scenario's numbers never depend on which process
    ran it or what ran before it — parallelism only changes wall-clock
    time.  Results are collected in selection order regardless of
    completion order.
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(scenarios) <= 1:
        return {
            scenario.name: run_scenario(
                scenario, quick=quick, exec_tier=exec_tier
            )
            for scenario in scenarios
        }
    # Config errors surface here, in the parent, not as opaque
    # worker-process tracebacks.
    for scenario in scenarios:
        _validate_scenario(scenario)
    workers = min(jobs, len(scenarios))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_scenario_job, scenario, quick, exec_tier)
            for scenario in scenarios
        ]
        return dict(future.result() for future in futures)
