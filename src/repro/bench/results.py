"""Machine-readable benchmark output: schema-versioned JSON + regression gate.

Every scenario run (``python -m repro.bench scenarios``) is serialised
to a ``BENCH_scenarios.json`` document so the perf trajectory of the
repo is a diffable artifact instead of a printed table.  The document is
deliberately free of wall-clock timestamps: the simulator is
deterministic, so two runs of the same code produce byte-identical
documents and a committed baseline (``benchmarks/baseline_scenarios.json``)
can gate regressions exactly.

:func:`compare_to_baseline` is the CI gate: a scenario regresses when
its throughput drops by more than ``max_throughput_drop_pct`` or its p99
latency rises by more than ``max_p99_rise_pct`` against the baseline.
Scenarios new in the current run pass (the baseline is refreshed in the
same PR); scenarios that *disappeared* fail, so coverage cannot silently
shrink.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.errors import ConfigError

#: Bump when the document layout changes shape (not when scenarios are
#: added/removed — the comparison handles that).  v2 added the
#: per-scenario "allocator" section and (on open-loop entries) the
#: "admission" section with per-class shed counts.  v3 added the
#: top-level "failed" count (requests lost to dead connections), a
#: per-class "failed" in the admission section, and (on sharded
#: entries) the "cluster" section with routing/failover counters.
#: v4 added the top-level "retried" count (impatient-client
#: re-submissions), a per-class "retried" in the admission and classes
#: sections, and (on fault-injected entries) the "faults" section with
#: the injector's name, parameters and counters.
SCHEMA_VERSION = 4

#: CI gate defaults (ISSUE: fail if throughput drops >10% or p99 rises >15%).
MAX_THROUGHPUT_DROP_PCT = 10.0
MAX_P99_RISE_PCT = 15.0


def results_document(scenarios: Dict[str, dict], quick: bool) -> dict:
    """Wrap per-scenario result dicts in the versioned envelope."""
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "scenarios",
        "quick": bool(quick),
        "scenarios": scenarios,
    }


def validate_document(document: dict, source: str = "document") -> dict:
    """Check the envelope; raise :class:`ConfigError` on a bad shape."""
    if not isinstance(document, dict):
        raise ConfigError(f"{source}: expected a JSON object")
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigError(
            f"{source}: schema_version {version!r} is not the supported "
            f"{SCHEMA_VERSION} — regenerate it with "
            "'python -m repro.bench scenarios'"
        )
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, dict):
        raise ConfigError(f"{source}: missing 'scenarios' object")
    for name, result in scenarios.items():
        if not isinstance(result, dict):
            raise ConfigError(f"{source}: scenario {name!r} is not an object")
        for key in ("throughput", "latency_ms"):
            if key not in result:
                raise ConfigError(
                    f"{source}: scenario {name!r} lacks {key!r}"
                )
    return document


def write_results(path, document: dict) -> Path:
    """Validate and write ``document`` (sorted keys, trailing newline)."""
    path = Path(path)
    validate_document(document, source=str(path))
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_results(path) -> dict:
    """Read and validate a results document."""
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read benchmark results {path}: {exc}")
    try:
        document = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path} is not valid JSON: {exc}") from None
    return validate_document(document, source=str(path))


@dataclass(frozen=True)
class Regression:
    """One gate violation, ready to print."""

    scenario: str
    metric: str
    baseline: float
    current: float
    change_pct: float
    limit_pct: float
    #: Free-form context for non-numeric violations (field mismatches).
    detail: str = ""

    def __str__(self) -> str:
        if self.metric == "coverage":
            return (
                f"{self.scenario}: present in the baseline but missing "
                "from this run (remove it from the baseline to drop it "
                "deliberately)"
            )
        if self.metric == "fields":
            return (
                f"{self.scenario}: result fields diverged from the "
                f"baseline ({self.detail}) — the schema changed, "
                "regenerate the baseline in the same PR"
            )
        direction = "dropped" if self.metric == "throughput" else "rose"
        return (
            f"{self.scenario}: {self.metric} {direction} "
            f"{abs(self.change_pct):.1f}% (baseline {self.baseline:g} -> "
            f"{self.current:g}, limit {self.limit_pct:g}%)"
        )


def _p99_ms(result: dict) -> float:
    latency = result.get("latency_ms")
    if isinstance(latency, dict):
        return float(latency.get("p99", 0.0))
    return float(latency or 0.0)


def compare_to_baseline(
    current: dict,
    baseline: dict,
    max_throughput_drop_pct: float = MAX_THROUGHPUT_DROP_PCT,
    max_p99_rise_pct: float = MAX_P99_RISE_PCT,
    restrict_to: Optional[Sequence[str]] = None,
) -> List[Regression]:
    """Regressions of ``current`` against ``baseline`` (empty = gate green).

    Both arguments are validated documents.  Throughput is compared per
    scenario in its own unit (the drop is relative, so units cancel);
    p99 latency is read from ``latency_ms.p99``.  A baseline value of
    zero never flags (nothing meaningful to compare against).

    ``restrict_to`` limits the comparison — including the
    scenario-disappeared coverage check — to the named scenarios: a
    ``--scenario``-filtered run deliberately omits the rest of the
    baseline, which must not read as vanished coverage.

    A scenario whose top-level field set gained or lost keys against
    the baseline flags a ``fields`` regression: silently ignoring
    unknown keys would let a schema change (new sections, renamed
    metrics) slide past the gate with a stale baseline still green.
    """
    regressions: List[Regression] = []
    current_scenarios = current["scenarios"]
    baseline_scenarios = baseline["scenarios"]
    names = (
        sorted(baseline_scenarios)
        if restrict_to is None
        else [n for n in sorted(baseline_scenarios) if n in set(restrict_to)]
    )
    for name in names:
        base = baseline_scenarios[name]
        if name not in current_scenarios:
            regressions.append(
                Regression(
                    scenario=name,
                    metric="coverage",
                    baseline=1.0,
                    current=0.0,
                    change_pct=100.0,
                    limit_pct=0.0,
                )
            )
            continue
        now = current_scenarios[name]
        gained = sorted(set(now) - set(base))
        lost = sorted(set(base) - set(now))
        if gained or lost:
            parts = []
            if gained:
                parts.append(f"gained: {', '.join(gained)}")
            if lost:
                parts.append(f"lost: {', '.join(lost)}")
            regressions.append(
                Regression(
                    scenario=name,
                    metric="fields",
                    baseline=float(len(base)),
                    current=float(len(now)),
                    change_pct=0.0,
                    limit_pct=0.0,
                    detail="; ".join(parts),
                )
            )
        base_thr = float(base.get("throughput", 0.0))
        now_thr = float(now.get("throughput", 0.0))
        if base_thr > 0:
            drop_pct = 100.0 * (base_thr - now_thr) / base_thr
            if drop_pct > max_throughput_drop_pct:
                regressions.append(
                    Regression(
                        scenario=name,
                        metric="throughput",
                        baseline=base_thr,
                        current=now_thr,
                        change_pct=-drop_pct,
                        limit_pct=max_throughput_drop_pct,
                    )
                )
        base_p99 = _p99_ms(base)
        now_p99 = _p99_ms(now)
        if base_p99 > 0:
            rise_pct = 100.0 * (now_p99 - base_p99) / base_p99
            if rise_pct > max_p99_rise_pct:
                regressions.append(
                    Regression(
                        scenario=name,
                        metric="p99_latency",
                        baseline=base_p99,
                        current=now_p99,
                        change_pct=rise_pct,
                        limit_pct=max_p99_rise_pct,
                    )
                )
    return regressions
