"""Plain-text rendering of experiment results: tables and ASCII charts.

Used by the ``python -m repro.bench`` CLI to print figure-shaped output
(one line per plotted series) without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.sim.stats import RunResult


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a left-aligned text table."""
    columns = [
        [str(h)] + [str(row[i]) for row in rows]
        for i, h in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series_chart(
    series: Dict[str, List[float]],
    x_labels: Sequence[object],
    width: int = 50,
    unit: str = "",
) -> str:
    """Render one horizontal bar chart row per (series, x) point.

    Bars are scaled to the global maximum, so relative magnitudes — the
    thing the paper's figures communicate — are visible at a glance.
    """
    peak = max(
        (v for values in series.values() for v in values), default=0.0
    )
    if peak <= 0:
        return "(no data)"
    lines = []
    for name, values in series.items():
        for x, value in zip(x_labels, values):
            bar = "#" * max(1, int(round(width * value / peak)))
            lines.append(
                f"{name:>14s} x={str(x):<5s} {value:10.1f}{unit} {bar}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def format_policy_table(results) -> str:
    """Per-policy comparison table for the Figure-7 scheduling sweep.

    ``results`` maps policy name to
    :class:`~repro.bench.scheduling.SchedulingResult` (duck-typed, so
    the report layer stays import-free of the bench harness).
    """
    rows = [
        (
            name,
            f"{r.light_mean_ms:.1f}",
            f"{r.light_max_ms:.1f}",
            f"{r.heavy_mean_ms:.1f}",
            f"{r.heavy_max_ms:.1f}",
            f"{r.makespan_ms:.1f}",
        )
        for name, r in results.items()
    ]
    return format_table(
        (
            "policy",
            "light_mean_ms",
            "light_max_ms",
            "heavy_mean_ms",
            "heavy_max_ms",
            "makespan_ms",
        ),
        rows,
    )


def format_service_class_table(results) -> str:
    """Per-policy, per-service-class SLO outcome table.

    ``results`` maps policy name to an object with a ``class_stats``
    dict (class name → completions/misses/latency aggregates, as
    produced by :meth:`~repro.sim.stats.SloScoreboard.summary`); rows
    are emitted in the scoreboard's class order.
    """
    rows = []
    for name, result in results.items():
        for class_name, stats in result.class_stats.items():
            completions = int(stats.get("completions", 0))
            misses = int(stats.get("misses", 0))
            miss_pct = 100.0 * misses / completions if completions else 0.0
            rows.append(
                (
                    name,
                    class_name,
                    completions,
                    misses,
                    f"{miss_pct:.0f}%",
                    int(stats.get("shed", 0)),
                    f"{stats.get('mean_ms', 0.0):.2f}",
                    f"{stats.get('p99_ms', 0.0):.2f}",
                )
            )
    if not rows:
        return "(no service-class data)"
    return format_table(
        (
            "policy",
            "class",
            "completions",
            "slo_misses",
            "miss_rate",
            "shed",
            "mean_ms",
            "p99_ms",
        ),
        rows,
    )


def format_scenario_table(results: Dict[str, dict]) -> str:
    """One row per scenario of the matrix runner's JSON-ready results."""
    rows = []
    for name, entry in results.items():
        latency = entry.get("latency_ms", {})
        slo = entry.get("slo", {})
        rows.append(
            (
                name,
                entry.get("arrival", "?"),
                entry.get("policy", "?"),
                f"{entry.get('throughput', 0.0):.1f}"
                f" {entry.get('throughput_unit', '')}".rstrip(),
                f"{latency.get('p50', 0.0):.3f}",
                f"{latency.get('p99', 0.0):.3f}",
                slo.get("misses", 0),
                entry.get("admission", {}).get("shed", 0),
                entry.get("steals", {}).get("steals", 0),
                entry.get("cluster", {}).get("shards", 1),
            )
        )
    if not rows:
        return "(no scenarios selected)"
    return format_table(
        (
            "scenario",
            "arrival",
            "policy",
            "throughput",
            "p50_ms",
            "p99_ms",
            "slo_misses",
            "shed",
            "steals",
            "shards",
        ),
        rows,
    )


def format_scenario_listing(scenarios) -> str:
    """One row per :class:`~repro.bench.scenarios.Scenario` definition.

    The ``scenarios --list`` view: every axis a matrix entry pins,
    without running anything.
    """
    rows = []
    for scenario in scenarios:
        rows.append(
            (
                scenario.name,
                scenario.app,
                scenario.arrival or "closed-loop",
                scenario.policy,
                scenario.allocator,
                scenario.admission,
                scenario.faults or "-",
                scenario.shards,
                scenario.routing if scenario.shards > 1 else "-",
                (
                    f"@{scenario.fail_shard_at_us:g}us"
                    if scenario.fail_shard_at_us is not None
                    else "-"
                ),
                scenario.cores,
                scenario.connections,
                scenario.requests,
            )
        )
    if not rows:
        return "(no scenarios selected)"
    return format_table(
        (
            "scenario",
            "app",
            "arrival",
            "policy",
            "allocator",
            "admission",
            "faults",
            "shards",
            "routing",
            "fail",
            "cores",
            "conns",
            "requests",
        ),
        rows,
    )


def results_to_series(
    results: Dict[str, List[RunResult]], field: str = "throughput"
) -> Dict[str, List[float]]:
    """Extract one metric from per-system result lists."""
    return {
        system: [getattr(point, field) for point in points]
        for system, points in results.items()
    }


def summarize(results: Dict[str, List[RunResult]]) -> str:
    """A compact table of throughput and latency per system/x."""
    rows = []
    for system, points in results.items():
        for point in points:
            rows.append(
                (
                    system,
                    f"{point.x:g}",
                    f"{point.throughput:.1f}",
                    f"{point.latency_ms:.3f}",
                )
            )
    return format_table(
        ("system", "x", "throughput", "latency_ms"), rows
    )
