"""Benchmark harness: testbeds and experiments for every paper figure."""
