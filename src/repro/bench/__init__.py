"""Benchmark harness: testbeds and experiments for every paper figure —
plus the declarative scenario matrix (:mod:`~repro.bench.scenarios`)
and its machine-readable, baseline-gated output
(:mod:`~repro.bench.results`).  See :mod:`repro.bench.cli` for the
command-line surface."""
