"""Command-line entry point: regenerate any figure from the paper.

Usage::

    python -m repro.bench e1          # §6.3 web server numbers
    python -m repro.bench fig4        # HTTP LB sweep (slow)
    python -m repro.bench fig5        # Memcached proxy vs cores
    python -m repro.bench fig6        # Hadoop aggregator vs cores
    python -m repro.bench fig7        # scheduling policies
    python -m repro.bench fig7 --policy all    # sweep every registered policy
    python -m repro.bench fig7 --policy all --topology four-socket
    python -m repro.bench fig7 --policy deadline \\
        --slo-class light=gold:1000@4 --slo-class heavy=bronze:50000
    python -m repro.bench all --quick # everything, reduced sizes
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.core.errors import ConfigError, RuntimeFlickError
from repro.bench.report import (
    format_policy_table,
    format_series_chart,
    format_service_class_table,
    results_to_series,
    summarize,
)
from repro.bench.scheduling import (
    ENDPOINTS,
    resolve_policy_selection,
    run_policy_sweep,
)
from repro.bench.testbeds import (
    run_hadoop_experiment,
    run_http_experiment,
    run_memcached_experiment,
)
from repro.net.stackprofiles import TOPOLOGIES
from repro.runtime.policy import registered_policies
from repro.runtime.qos import parse_slo_class_specs


def _e1(args) -> None:
    quick = args.quick
    reqs = 20 if quick else 40
    print("== E1: §6.3 static web server (16 cores) ==")
    results = {}
    for persistent in (True, False):
        label = "persistent" if persistent else "non-persistent"
        results[label] = {
            system: [
                run_http_experiment(
                    system, 400, persistent=persistent, mode="web",
                    cores=16, requests_per_client=reqs if persistent else 6,
                )
            ]
            for system in ("flick-kernel", "flick-mtcp", "apache", "nginx")
        }
        print(f"\n-- {label} --")
        print(summarize(results[label]))


def _fig4(args) -> None:
    quick = args.quick
    counts = (100, 400) if quick else (100, 200, 400, 800, 1600)
    print("== Figure 4: HTTP load balancer ==")
    for persistent in (True, False):
        label = "persistent" if persistent else "non-persistent"
        results = {
            system: [
                run_http_experiment(
                    system, n, persistent=persistent, mode="lb", cores=16,
                    requests_per_client=20 if persistent else 5,
                )
                for n in counts
            ]
            for system in ("flick-kernel", "flick-mtcp", "apache", "nginx")
        }
        print(f"\n-- {label} (clients: {counts}) --")
        print(summarize(results))
        print()
        print(format_series_chart(
            results_to_series(results), counts, unit="k"
        ))


def _fig5(args) -> None:
    quick = args.quick
    cores = (2, 8) if quick else (1, 2, 4, 8, 16)
    print(f"== Figure 5: Memcached proxy (cores: {cores}) ==")
    results = {
        system: [
            run_memcached_experiment(
                system, c, concurrency=64 if quick else 128,
                requests_per_client=20 if quick else 40,
            )
            for c in cores
        ]
        for system in ("flick-kernel", "flick-mtcp", "moxi")
    }
    print(summarize(results))
    print()
    print(format_series_chart(results_to_series(results), cores, unit="k"))


def _fig6(args) -> None:
    quick = args.quick
    cores = (2, 8) if quick else (1, 2, 4, 8, 16)
    lengths = (8,) if quick else (8, 12, 16)
    print(f"== Figure 6: Hadoop aggregator (cores: {cores}) ==")
    results = {
        f"WC {wl} char": [
            run_hadoop_experiment(
                c, word_len=wl, data_kb_per_mapper=32 if quick else 64
            )
            for c in cores
        ]
        for wl in lengths
    }
    print(summarize(results))
    print()
    print(format_series_chart(results_to_series(results), cores, unit="Mb/s"))


def _fig7(args) -> None:
    quick = args.quick
    n = 80 if quick else 200
    items = 100 if quick else 200
    names = resolve_policy_selection(args.policy)
    topology = args.topology
    service_classes = _service_classes(args)
    suffix = f", topology: {topology}" if topology else ""
    if service_classes:
        tiers = ", ".join(
            f"{endpoint}={cls.name}:{cls.slo_us:g}us@{cls.weight:g}"
            for endpoint, cls in service_classes
        )
        suffix += f", classes: {tiers}"
    print(
        f"== Figure 7: scheduling policies ({n} tasks, "
        f"policies: {', '.join(names)}{suffix}) =="
    )
    results = run_policy_sweep(
        names,
        n_tasks=n,
        items_per_task=items,
        topology=topology,
        service_classes=service_classes,
    )
    print(format_policy_table(results))
    if service_classes:
        print()
        print("-- per-service-class SLO outcomes --")
        print(format_service_class_table(results))


def _service_classes(args):
    """The fig7 service-class map from repeated ``--slo-class`` flags."""
    if not getattr(args, "slo_class", None):
        return None
    return parse_slo_class_specs(args.slo_class, valid_endpoints=ENDPOINTS)


_TARGETS = {
    "e1": _e1,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "target",
        choices=sorted(_TARGETS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced workload sizes for a fast smoke run",
    )
    parser.add_argument(
        "--policy",
        default="paper",
        metavar="NAME[,NAME...]",
        help="fig7 only: which scheduling policies to sweep. 'paper' "
        "(default) runs the three Figure-7 policies, 'all' sweeps every "
        "registered policy, or give a comma-separated list of names. "
        f"Registered: {', '.join(registered_policies())}.",
    )
    parser.add_argument(
        "--topology",
        default=None,
        choices=sorted(TOPOLOGIES),
        help="fig7 only: socket layout of the simulated cores. Prices "
        "cross-socket steals per interconnect hop and feeds the 'numa' "
        "policy's hierarchical placement/stealing; default is a flat "
        "(penalty-free) layout.",
    )
    parser.add_argument(
        "--slo-class",
        action="append",
        default=None,
        metavar="EP=[NAME:]US[@W]",
        help="fig7 only, repeatable: bind a workload endpoint ('light' "
        "or 'heavy') to a QoS tier — e.g. --slo-class light=gold:1000@4 "
        "--slo-class heavy=bronze:50000. Classified tasks carry the "
        "class SLO/weight and the sweep reports per-class SLO misses.",
    )
    args = parser.parse_args(argv)
    try:
        # Reject --policy / --slo-class typos up front, before any
        # (expensive) target runs — not only when the loop eventually
        # reaches fig7.
        resolve_policy_selection(args.policy)
        _service_classes(args)
    except (RuntimeFlickError, ConfigError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    targets = sorted(_TARGETS) if args.target == "all" else [args.target]
    for name in targets:
        try:
            _TARGETS[name](args)
        except (RuntimeFlickError, ConfigError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
