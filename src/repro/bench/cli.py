"""Command-line entry point: regenerate any figure from the paper —
plus the scenario matrix the paper's testbed could not run.

Usage::

    python -m repro.bench e1          # §6.3 web server numbers
    python -m repro.bench fig4        # HTTP LB sweep (slow)
    python -m repro.bench fig5        # Memcached proxy vs cores
    python -m repro.bench fig6        # Hadoop aggregator vs cores
    python -m repro.bench fig7        # scheduling policies
    python -m repro.bench fig7 --policy all    # sweep every registered policy
    python -m repro.bench fig7 --policy all --topology four-socket
    python -m repro.bench fig7 --policy deadline \\
        --slo-class light=gold:1000@4 --slo-class heavy=bronze:50000
    python -m repro.bench scenarios   # declarative matrix -> BENCH_scenarios.json
    python -m repro.bench scenarios --scenario http-overload-open
    python -m repro.bench scenarios --scenario http-overload-shed \\
        --admission shed-bronze --allocator queue-depth
    python -m repro.bench scenarios --list            # names + axes, no run
    python -m repro.bench scenarios --quick --jobs 4  # parallel smoke run
    python -m repro.bench scenarios --scenario http-open-poisson \\
        --shards 4 --routing least-loaded   # cluster-tier override
    python -m repro.bench scenarios --scenario http-open-poisson \\
        --faults retry-storm   # fault-injection override
    python -m repro.bench scenarios --quick \\
        --baseline benchmarks/baseline_scenarios.json   # CI perf gate
    python -m repro.bench all --quick # everything, reduced sizes

``scenarios`` crosses apps with open-loop arrival processes
(:mod:`repro.workloads.arrivals`: poisson, bursty MMPP, ramp, replay),
scheduling policies, topologies and service classes
(:mod:`repro.bench.scenarios`), prints a summary table, and always
writes the machine-readable, schema-versioned ``BENCH_scenarios.json``
(:mod:`repro.bench.results`).  With ``--baseline``, the run is compared
against a committed document and exits 1 on a >10% throughput drop or a
>15% p99 latency rise — the CI perf-regression gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.core.errors import ConfigError, RuntimeFlickError
from repro.bench import results as results_io
from repro.bench.report import (
    format_policy_table,
    format_scenario_listing,
    format_scenario_table,
    format_series_chart,
    format_service_class_table,
    results_to_series,
    summarize,
)
from repro.cluster import registered_routings, unknown_routing_message
from repro.bench.scenarios import (
    resolve_scenario_selection,
    run_scenario_matrix,
)
from repro.bench.scheduling import (
    ENDPOINTS,
    resolve_policy_selection,
    run_policy_sweep,
)
from repro.bench.testbeds import (
    run_hadoop_experiment,
    run_http_experiment,
    run_memcached_experiment,
)
from repro.net.faults import registered_faults, unknown_fault_message
from repro.net.stackprofiles import TOPOLOGIES
from repro.runtime.admission import (
    registered_admissions,
    unknown_admission_message,
)
from repro.runtime.allocator import (
    registered_allocators,
    unknown_allocator_message,
)
from repro.runtime.policy import registered_policies
from repro.runtime.qos import parse_slo_class_specs


def _e1(args) -> None:
    quick = args.quick
    reqs = 20 if quick else 40
    print("== E1: §6.3 static web server (16 cores) ==")
    results = {}
    for persistent in (True, False):
        label = "persistent" if persistent else "non-persistent"
        results[label] = {
            system: [
                run_http_experiment(
                    system, 400, persistent=persistent, mode="web",
                    cores=16, requests_per_client=reqs if persistent else 6,
                    exec_tier=args.exec_tier,
                )
            ]
            for system in ("flick-kernel", "flick-mtcp", "apache", "nginx")
        }
        print(f"\n-- {label} --")
        print(summarize(results[label]))


def _fig4(args) -> None:
    quick = args.quick
    counts = (100, 400) if quick else (100, 200, 400, 800, 1600)
    print("== Figure 4: HTTP load balancer ==")
    for persistent in (True, False):
        label = "persistent" if persistent else "non-persistent"
        results = {
            system: [
                run_http_experiment(
                    system, n, persistent=persistent, mode="lb", cores=16,
                    requests_per_client=20 if persistent else 5,
                    exec_tier=args.exec_tier,
                )
                for n in counts
            ]
            for system in ("flick-kernel", "flick-mtcp", "apache", "nginx")
        }
        print(f"\n-- {label} (clients: {counts}) --")
        print(summarize(results))
        print()
        print(format_series_chart(
            results_to_series(results), counts, unit="k"
        ))


def _fig5(args) -> None:
    quick = args.quick
    cores = (2, 8) if quick else (1, 2, 4, 8, 16)
    print(f"== Figure 5: Memcached proxy (cores: {cores}) ==")
    results = {
        system: [
            run_memcached_experiment(
                system, c, concurrency=64 if quick else 128,
                requests_per_client=20 if quick else 40,
                exec_tier=args.exec_tier,
            )
            for c in cores
        ]
        for system in ("flick-kernel", "flick-mtcp", "moxi")
    }
    print(summarize(results))
    print()
    print(format_series_chart(results_to_series(results), cores, unit="k"))


def _fig6(args) -> None:
    quick = args.quick
    cores = (2, 8) if quick else (1, 2, 4, 8, 16)
    lengths = (8,) if quick else (8, 12, 16)
    print(f"== Figure 6: Hadoop aggregator (cores: {cores}) ==")
    results = {
        f"WC {wl} char": [
            run_hadoop_experiment(
                c, word_len=wl, data_kb_per_mapper=32 if quick else 64,
                exec_tier=args.exec_tier,
            )
            for c in cores
        ]
        for wl in lengths
    }
    print(summarize(results))
    print()
    print(format_series_chart(results_to_series(results), cores, unit="Mb/s"))


def _fig7(args) -> None:
    quick = args.quick
    n = 80 if quick else 200
    items = 100 if quick else 200
    names = resolve_policy_selection(args.policy)
    topology = args.topology
    service_classes = _service_classes(args)
    suffix = f", topology: {topology}" if topology else ""
    if service_classes:
        tiers = ", ".join(
            f"{endpoint}={cls.name}:{cls.slo_us:g}us@{cls.weight:g}"
            for endpoint, cls in service_classes
        )
        suffix += f", classes: {tiers}"
    print(
        f"== Figure 7: scheduling policies ({n} tasks, "
        f"policies: {', '.join(names)}{suffix}) =="
    )
    results = run_policy_sweep(
        names,
        n_tasks=n,
        items_per_task=items,
        topology=topology,
        service_classes=service_classes,
    )
    print(format_policy_table(results))
    if service_classes:
        print()
        print("-- per-service-class SLO outcomes --")
        print(format_service_class_table(results))


def _service_classes(args):
    """The fig7 service-class map from repeated ``--slo-class`` flags."""
    if not getattr(args, "slo_class", None):
        return None
    return parse_slo_class_specs(args.slo_class, valid_endpoints=ENDPOINTS)


def _scenario_overrides(args) -> dict:
    """Pinned-field overrides from ``--allocator`` / ``--admission`` /
    ``--shards`` / ``--routing`` / ``--faults``."""
    overrides = {}
    if getattr(args, "allocator", None) is not None:
        overrides["allocator"] = args.allocator
    if getattr(args, "admission", None) is not None:
        overrides["admission"] = args.admission
    if getattr(args, "shards", None) is not None:
        overrides["shards"] = args.shards
    if getattr(args, "routing", None) is not None:
        overrides["routing"] = args.routing
    if getattr(args, "faults", None) is not None:
        # Replacing the injector invalidates any scenario-pinned
        # parameters (they belong to the original fault's signature).
        overrides["faults"] = args.faults
        overrides["fault_params"] = ()
    return overrides


def _scenario_output_path(args) -> str:
    """Where the scenarios document goes when ``--output`` is omitted.

    Only a full-matrix, full-size, unmodified run writes the committed
    trajectory file ``BENCH_scenarios.json``; quick, filtered, or
    overridden (``--allocator``/``--admission``) runs default to
    ``BENCH_scenarios.quick.json`` so the documented CI-gate command
    cannot silently clobber the repo's full-size trajectory point.
    """
    if args.output is not None:
        return args.output
    if args.quick or args.scenario != "all" or _scenario_overrides(args):
        return "BENCH_scenarios.quick.json"
    return "BENCH_scenarios.json"


def _scenarios(args) -> int:
    """Run the scenario matrix; write JSON; optionally gate on a baseline."""
    selected = resolve_scenario_selection(args.scenario)
    overrides = _scenario_overrides(args)
    if overrides:
        selected = tuple(
            scenario._replace(**overrides) for scenario in selected
        )
    if args.list_scenarios:
        print(format_scenario_listing(selected))
        return 0
    suffix = "".join(
        f", {field}={value}" for field, value in sorted(overrides.items())
    )
    print(
        f"== Scenario matrix ({len(selected)} scenarios"
        f"{', quick' if args.quick else ''}{suffix}) =="
    )
    results = run_scenario_matrix(
        selected, quick=args.quick, exec_tier=args.exec_tier, jobs=args.jobs
    )
    print(format_scenario_table(results))
    document = results_io.results_document(results, quick=args.quick)
    path = results_io.write_results(_scenario_output_path(args), document)
    print(f"\nwrote {path}")
    if args.baseline is None:
        return 0
    baseline = results_io.load_results(args.baseline)
    if bool(baseline.get("quick")) != bool(args.quick):
        raise ConfigError(
            f"baseline {args.baseline} was generated with "
            f"quick={baseline.get('quick')}, this run with "
            f"quick={args.quick}; perf comparisons must be like-for-like"
        )
    regressions = results_io.compare_to_baseline(
        document,
        baseline,
        # A filtered run deliberately omits the rest of the matrix; only
        # a full run vouches for coverage.
        restrict_to=(
            None
            if args.scenario == "all"
            else [scenario.name for scenario in selected]
        ),
    )
    if regressions:
        print(
            f"\nPERF REGRESSION against {args.baseline}:", file=sys.stderr
        )
        for regression in regressions:
            print(f"  - {regression}", file=sys.stderr)
        return 1
    print(f"no perf regressions against {args.baseline}")
    return 0


_TARGETS = {
    "e1": _e1,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "scenarios": _scenarios,
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "target",
        choices=sorted(_TARGETS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced workload sizes for a fast smoke run",
    )
    parser.add_argument(
        "--policy",
        default="paper",
        metavar="NAME[,NAME...]",
        help="fig7 only: which scheduling policies to sweep. 'paper' "
        "(default) runs the three Figure-7 policies, 'all' sweeps every "
        "registered policy, or give a comma-separated list of names. "
        f"Registered: {', '.join(registered_policies())}.",
    )
    parser.add_argument(
        "--topology",
        default=None,
        choices=sorted(TOPOLOGIES),
        help="fig7 only: socket layout of the simulated cores. Prices "
        "cross-socket steals per interconnect hop and feeds the 'numa' "
        "policy's hierarchical placement/stealing; default is a flat "
        "(penalty-free) layout.",
    )
    parser.add_argument(
        "--slo-class",
        action="append",
        default=None,
        metavar="EP=[NAME:]US[@W]",
        help="fig7 only, repeatable: bind a workload endpoint ('light' "
        "or 'heavy') to a QoS tier — e.g. --slo-class light=gold:1000@4 "
        "--slo-class heavy=bronze:50000. Classified tasks carry the "
        "class SLO/weight and the sweep reports per-class SLO misses.",
    )
    parser.add_argument(
        "--exec-tier",
        default="compiled",
        choices=("interp", "compiled"),
        dest="exec_tier",
        help="execution backend for FLICK handler bodies: 'compiled' "
        "(default) runs generated Python, 'interp' the AST-walking "
        "oracle interpreter. Both produce byte-identical results (all "
        "costs are modeled); 'interp' exists for golden-parity checks "
        "and differential debugging. fig7 is synthetic and unaffected.",
    )
    parser.add_argument(
        "--scenario",
        default="all",
        metavar="NAME[,NAME...]",
        help="scenarios only: which matrix entries to run ('all' or a "
        "comma-separated list of scenario names; typos get a near-miss "
        "suggestion).",
    )
    parser.add_argument(
        "--allocator",
        default=None,
        metavar="NAME",
        help="scenarios only: override the core-allocation policy on "
        "every selected scenario (typos get a near-miss suggestion). "
        f"Registered: {', '.join(registered_allocators())}.",
    )
    parser.add_argument(
        "--admission",
        default=None,
        metavar="NAME",
        help="scenarios only: override the admission-control policy on "
        "every selected scenario; only open-loop request/response "
        "scenarios accept one (typos get a near-miss suggestion). "
        f"Registered: {', '.join(registered_admissions())}.",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="scenarios only: run the selected scenarios in N worker "
        "processes. Output is byte-identical to --jobs 1 (every "
        "scenario scopes its task ids and seeds); only wall-clock time "
        "changes.",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="scenarios only: override the cluster-tier shard count on "
        "every selected scenario. N > 1 puts N FLICK platforms behind "
        "one consistent-hash shard router (http_lb open-loop scenarios "
        "only); combine with --scenario to target specific entries.",
    )
    parser.add_argument(
        "--routing",
        default=None,
        metavar="NAME",
        help="scenarios only: override the cross-shard routing policy "
        "on every selected scenario; needs --shards > 1 (typos get a "
        "near-miss suggestion). "
        f"Registered: {', '.join(registered_routings())}.",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="NAME",
        help="scenarios only: override the fault injector on every "
        "selected scenario (with the injector's default parameters); "
        "only open-loop single-platform request/response scenarios "
        "accept one (typos get a near-miss suggestion). "
        f"Registered: {', '.join(registered_faults())}.",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="scenarios only: print the selected scenario names and "
        "their axes (app, arrival, policy, shards, routing, ...) "
        "without running anything, then exit 0.",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="scenarios only: where the machine-readable JSON document "
        "is written. Default: BENCH_scenarios.json for a full-matrix "
        "full-size run, BENCH_scenarios.quick.json for --quick or "
        "--scenario-filtered runs (so the committed trajectory file is "
        "never clobbered by a smoke run).",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="scenarios only: compare the run against a committed "
        "results document and exit 1 on a perf regression (>"
        f"{results_io.MAX_THROUGHPUT_DROP_PCT:g}%% throughput drop or >"
        f"{results_io.MAX_P99_RISE_PCT:g}%% p99 rise).",
    )
    args = parser.parse_args(argv)
    try:
        # Reject --policy / --slo-class / --scenario / --allocator /
        # --admission typos up front, before any (expensive) target
        # runs — not only when the loop eventually reaches the target
        # that consumes the flag.
        resolve_policy_selection(args.policy)
        _service_classes(args)
        resolve_scenario_selection(args.scenario)
        if (
            args.allocator is not None
            and args.allocator not in registered_allocators()
        ):
            raise ConfigError(unknown_allocator_message(args.allocator))
        if (
            args.admission is not None
            and args.admission not in registered_admissions()
        ):
            raise ConfigError(unknown_admission_message(args.admission))
        if args.jobs < 1:
            raise ConfigError(f"--jobs must be >= 1, got {args.jobs}")
        if args.shards is not None and args.shards < 1:
            raise ConfigError(f"--shards must be >= 1, got {args.shards}")
        if (
            args.routing is not None
            and args.routing not in registered_routings()
        ):
            raise ConfigError(unknown_routing_message(args.routing))
        if (
            args.faults is not None
            and args.faults not in registered_faults()
        ):
            raise ConfigError(unknown_fault_message(args.faults))
    except (RuntimeFlickError, ConfigError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    targets = sorted(_TARGETS) if args.target == "all" else [args.target]
    exit_code = 0
    for name in targets:
        try:
            code = _TARGETS[name](args)
        except (RuntimeFlickError, ConfigError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        exit_code = exit_code or (code or 0)
        print()
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
