"""Generate ``docs/registries.md`` from the live policy registries.

The repo has six string-keyed extension registries (scheduling,
allocation, admission, routing, arrivals, faults), all following the
same discipline: a module-level ``_REGISTRY`` dict, a ``register_*``
class decorator, near-miss suggestions on unknown names.  Their
documentation is *generated* from the live registries — every
registered name, its class, its constructor knobs and defaults — so
the doc cannot drift from the code: ``tests/test_docs.py`` diffs the
committed ``docs/registries.md`` against :func:`render_markdown` and
fails the build on any divergence.

Regenerate after adding or changing a registered policy::

    PYTHONPATH=src python -m repro.bench.registry_docs

``--check`` exits 1 instead of rewriting (the CI mode).
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path
from typing import List, NamedTuple


class RegistrySpec(NamedTuple):
    """One registry's identity: where it lives and what consumes it."""

    title: str
    module: str
    decorator: str
    #: How a config/CLI surface reaches it.
    consumed_by: str


#: The six registries, in layer order (runtime -> cluster -> workload).
REGISTRIES: List[RegistrySpec] = [
    RegistrySpec(
        title="Scheduling policies",
        module="repro.runtime.policy",
        decorator="register_policy",
        consumed_by=(
            "`RuntimeConfig(policy=...)`; CLI `fig7 --policy NAME`"
        ),
    ),
    RegistrySpec(
        title="Core-allocation policies",
        module="repro.runtime.allocator",
        decorator="register_allocator",
        consumed_by=(
            "`RuntimeConfig(allocator=...)`; CLI `scenarios "
            "--allocator NAME`"
        ),
    ),
    RegistrySpec(
        title="Admission-control policies",
        module="repro.runtime.admission",
        decorator="register_admission",
        consumed_by=(
            "`RuntimeConfig(admission=...)` / open-loop populations; "
            "CLI `scenarios --admission NAME`"
        ),
    ),
    RegistrySpec(
        title="Cross-shard routing policies",
        module="repro.cluster.routing",
        decorator="register_routing",
        consumed_by=(
            "`ShardRouter(routing=...)`; CLI `scenarios --routing NAME` "
            "(needs `--shards` > 1)"
        ),
    ),
    RegistrySpec(
        title="Arrival processes",
        module="repro.workloads.arrivals",
        decorator="register_arrival",
        consumed_by=(
            "`OpenLoopClients(arrival=...)`; `Scenario(arrival=..., "
            "arrival_params=...)`"
        ),
    ),
    RegistrySpec(
        title="Fault injectors",
        module="repro.net.faults",
        decorator="register_fault",
        consumed_by=(
            "testbeds' `faults=` argument; `Scenario(faults=..., "
            "fault_params=...)`; CLI `scenarios --faults NAME`"
        ),
    ),
]


def _registry_of(spec: RegistrySpec) -> dict:
    """The live ``_REGISTRY`` dict of ``spec.module``."""
    module = __import__(spec.module, fromlist=["_REGISTRY"])
    return module._REGISTRY


def _summary_of(cls) -> str:
    """First docstring line, flattened to one markdown-table-safe cell."""
    doc = inspect.getdoc(cls) or ""
    first = doc.split("\n\n", 1)[0].replace("\n", " ").strip()
    return first.replace("|", "\\|").replace("``", "`")


def _knobs_of(cls) -> str:
    """``name=default`` cells for every constructor parameter."""
    try:
        signature = inspect.signature(cls.__init__)
    except (TypeError, ValueError):  # pragma: no cover - C-level init
        return "—"
    knobs = []
    for parameter in signature.parameters.values():
        if parameter.name == "self" or parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        if parameter.default is inspect.Parameter.empty:
            knobs.append(f"`{parameter.name}` (required)")
        else:
            default = repr(parameter.default)
            if len(default) > 40:
                default = default[:37] + "..."
            knobs.append(f"`{parameter.name}={default}`")
    return ", ".join(knobs) if knobs else "—"


def render_markdown() -> str:
    """The full ``docs/registries.md`` body, from the live registries."""
    lines = [
        "# Policy registries",
        "",
        "<!-- GENERATED FILE - do not edit by hand.",
        "     Regenerate: PYTHONPATH=src python -m repro.bench.registry_docs",
        "     CI (tests/test_docs.py) diffs this file against the live",
        "     registries and fails the build on drift. -->",
        "",
        "Every pluggable axis of the simulator is a string-keyed registry:",
        "a module-level `_REGISTRY` dict mapping a stable name to a policy",
        "class, filled by a `register_*` class decorator at import time.",
        "All six share the same contract:",
        "",
        "- **Lookup by name.** Config objects and CLI flags take the",
        "  registered string; `make_*(name, **params)` instantiates it and",
        "  `resolve_*(spec)` additionally accepts a ready instance.",
        "- **Near-miss errors.** An unknown name lists the registered",
        "  names and suggests the closest one (`did you mean ...?`) —",
        "  typos fail fast, before any simulation runs.",
        "- **No silent drops.** A registry-consuming field that the",
        "  selected configuration cannot honour (e.g. `fault_params`",
        "  without `faults`, `routing` without shards) is a config error,",
        "  never ignored.",
        "- **Determinism.** Registered policies draw randomness only from",
        "  seeded RNGs handed in by the harness, so one seed reproduces a",
        "  byte-identical run regardless of registration order or",
        "  parallelism.",
        "",
    ]
    for spec in REGISTRIES:
        registry = _registry_of(spec)
        lines.append(f"## {spec.title}")
        lines.append("")
        lines.append(
            f"Registry: `{spec.module}` (decorator "
            f"`@{spec.decorator}`). Consumed by: {spec.consumed_by}."
        )
        lines.append("")
        lines.append("| name | class | knobs | summary |")
        lines.append("| --- | --- | --- | --- |")
        for name in sorted(registry):
            cls = registry[name]
            lines.append(
                f"| `{name}` | `{cls.__name__}` | {_knobs_of(cls)} "
                f"| {_summary_of(cls)} |"
            )
        lines.append("")
    return "\n".join(lines)


def default_output_path() -> Path:
    """``docs/registries.md`` relative to the repo root."""
    return Path(__file__).resolve().parents[3] / "docs" / "registries.md"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.registry_docs",
        description="(Re)generate docs/registries.md from the live "
        "policy registries.",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if the committed file differs from the generated "
        "text instead of rewriting it (CI mode)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write somewhere other than docs/registries.md",
    )
    args = parser.parse_args(argv)
    path = (
        Path(args.output) if args.output is not None else default_output_path()
    )
    text = render_markdown() + "\n"
    if args.check:
        committed = path.read_text(encoding="utf-8") if path.exists() else ""
        if committed != text:
            print(
                f"{path} is stale; regenerate with "
                "'PYTHONPATH=src python -m repro.bench.registry_docs'",
                file=sys.stderr,
            )
            return 1
        print(f"{path} matches the live registries")
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
