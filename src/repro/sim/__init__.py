"""Discrete-event simulation engine and measurement helpers."""

from repro.sim.engine import Engine, Event, Process, Timeout
from repro.sim.stats import LatencySeries, Meter, RunResult

__all__ = ["Engine", "Event", "Process", "Timeout", "LatencySeries", "Meter", "RunResult"]
