"""Measurement helpers for simulated experiments.

:class:`LatencySeries` collects per-request latencies; :class:`Meter`
counts events over the run; :class:`SloScoreboard` accounts task
completions, latency and SLO misses per service class;
:class:`IntervalSeries` records the gaps between successive events (the
realised inter-arrival times of an open-loop workload).  All convert
virtual-µs durations into the units the paper's figures use (thousand
requests/s, ms, Mb/s).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.units import millis, rate_per_second, throughput_mbps


class LatencySeries:
    """Collects latency samples (virtual µs).

    Percentile/max/count-over accessors share one cached sorted view,
    invalidated by a dirty bit on :meth:`record` — a full report
    (:meth:`percentile_summary_ms`) costs one O(n log n) sort no matter
    how many quantiles it reads, instead of one sort *per accessor* as
    the seed did.  With million-sample scenario series the repeated
    sorts showed up in wall-clock.
    """

    def __init__(self):
        self._samples: List[float] = []
        self._sorted: List[float] = []
        self._dirty = False

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency {latency_us}")
        self._samples.append(latency_us)
        self._dirty = True

    def _ordered(self) -> List[float]:
        if self._dirty:
            self._sorted = sorted(self._samples)
            self._dirty = False
        return self._sorted

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def mean_us(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def mean_ms(self) -> float:
        return millis(self.mean_us())

    def percentile_us(self, p: float) -> float:
        if not self._samples:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        ordered = self._ordered()
        rank = (p / 100.0) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def max_us(self) -> float:
        return self._ordered()[-1] if self._samples else 0.0

    def count_over(self, threshold_us: Optional[float]) -> int:
        """Samples strictly above ``threshold_us`` (0 when ``None``).

        Client-side SLO accounting: with the SLO as the threshold, this
        is the number of requests that missed it.
        """
        if threshold_us is None:
            return 0
        ordered = self._ordered()
        return len(ordered) - bisect_right(ordered, threshold_us)

    def percentile_summary_ms(self) -> Dict[str, float]:
        """The figure-ready percentile series: mean/p50/p99/max in ms."""
        return {
            "mean": self.mean_ms(),
            "p50": millis(self.percentile_us(50.0)),
            "p99": millis(self.percentile_us(99.0)),
            "max": millis(self.max_us()),
        }


class IntervalSeries(LatencySeries):
    """Gaps between successive observations (virtual µs).

    Open-loop workload generators feed every admission clock tick into
    one of these; the inherited percentile accessors then describe the
    *realised* inter-arrival distribution (e.g. a bursty process shows a
    small p50 gap and a large p99 gap), which the scenario results
    record next to the configured arrival process.
    """

    def __init__(self):
        super().__init__()
        self._last_us: Optional[float] = None

    def observe(self, now_us: float) -> None:
        """Record the gap since the previous observation (first is free)."""
        if self._last_us is not None:
            self.record(now_us - self._last_us)
        self._last_us = now_us


class Meter:
    """Counts discrete events and bytes over a measured interval."""

    def __init__(self):
        self.events = 0
        self.bytes = 0
        self.start_us = 0.0
        self.end_us = 0.0

    def begin(self, now_us: float) -> None:
        self.start_us = now_us

    def finish(self, now_us: float) -> None:
        self.end_us = now_us

    def add(self, nbytes: int = 0) -> None:
        self.events += 1
        self.bytes += nbytes

    @property
    def duration_us(self) -> float:
        return max(self.end_us - self.start_us, 0.0)

    def rate_per_sec(self) -> float:
        return rate_per_second(self.events, self.duration_us)

    def kreqs_per_sec(self) -> float:
        return self.rate_per_sec() / 1_000.0

    def mbps(self) -> float:
        return throughput_mbps(self.bytes, self.duration_us)


@dataclass(frozen=True)
class SloRecord:
    """One accounted busy period of a task: admission to drain.

    ``slo_us`` is the latency target the task carried (its service
    class's SLO, or the platform-wide one); ``None`` means the task was
    unclassified and cannot miss.
    """

    task_id: int
    task: str
    service_class: str
    admitted_us: float
    completed_us: float
    slo_us: Optional[float] = None

    @property
    def latency_us(self) -> float:
        return self.completed_us - self.admitted_us

    @property
    def deadline_us(self) -> Optional[float]:
        """Absolute deadline: admission + SLO (``None`` without one)."""
        if self.slo_us is None:
            return None
        return self.admitted_us + self.slo_us

    @property
    def missed(self) -> bool:
        deadline = self.deadline_us
        return deadline is not None and self.completed_us > deadline


class SloScoreboard:
    """Per-service-class completion, latency and SLO-miss accounting.

    The scheduling mechanism records one entry per task *busy period*
    (admission to drain, matching the 'deadline' policy's SLO clock);
    classes are the :class:`~repro.runtime.qos.ServiceClass` names
    stamped by the task graph, with unclassified tasks pooled under
    ``"default"``.  Aggregates are maintained incrementally; the raw
    :attr:`records` keep the full log for property tests and reports.

    Requests an admission policy shed at the door never become tasks,
    so they can't complete or miss — :meth:`record_shed` counts them
    per class as the third first-class outcome next to completions and
    misses (``admitted + shed == offered`` is the conservation law the
    admission tests enforce).  :meth:`record_retry` likewise counts
    responses an impatient client discarded and re-offered (the
    ``retry-storm`` fault injector): each retry is terminal for its
    attempt, so ``completed + failed + retried == admitted`` once the
    run drains.
    """

    def __init__(self):
        self.records: List[SloRecord] = []
        self._completions: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        self._latency: Dict[str, LatencySeries] = {}
        self._sheds: Dict[str, int] = {}
        self._retries: Dict[str, int] = {}

    def record(
        self,
        task_id: int,
        task: str,
        service_class: str,
        admitted_us: float,
        completed_us: float,
        slo_us: Optional[float] = None,
    ) -> SloRecord:
        if completed_us < admitted_us:
            raise ValueError(
                f"task {task!r} completed at {completed_us} before its "
                f"admission at {admitted_us}"
            )
        entry = SloRecord(
            task_id=task_id,
            task=task,
            service_class=service_class,
            admitted_us=admitted_us,
            completed_us=completed_us,
            slo_us=slo_us,
        )
        self.records.append(entry)
        self._completions[service_class] = (
            self._completions.get(service_class, 0) + 1
        )
        if entry.missed:
            self._misses[service_class] = (
                self._misses.get(service_class, 0) + 1
            )
        self._latency.setdefault(service_class, LatencySeries()).record(
            entry.latency_us
        )
        return entry

    def record_shed(self, service_class: str, count: int = 1) -> None:
        """Count ``count`` requests of ``service_class`` shed at admission."""
        if count < 0:
            raise ValueError(f"negative shed count {count}")
        if count:
            self._sheds[service_class] = (
                self._sheds.get(service_class, 0) + count
            )

    def record_retry(self, service_class: str, count: int = 1) -> None:
        """Count ``count`` impatient-client retries of ``service_class``."""
        if count < 0:
            raise ValueError(f"negative retry count {count}")
        if count:
            self._retries[service_class] = (
                self._retries.get(service_class, 0) + count
            )

    @property
    def total_completions(self) -> int:
        return len(self.records)

    @property
    def total_sheds(self) -> int:
        return sum(self._sheds.values())

    @property
    def total_retries(self) -> int:
        return sum(self._retries.values())

    def completions_by_class(self) -> Dict[str, int]:
        return dict(self._completions)

    def sheds_by_class(self) -> Dict[str, int]:
        """Admission-shed requests per class (only classes with any)."""
        return dict(self._sheds)

    def retries_by_class(self) -> Dict[str, int]:
        """Impatient-client retries per class (only classes with any)."""
        return dict(self._retries)

    def misses_by_class(self) -> Dict[str, int]:
        """SLO misses per class (classes with none recorded report 0)."""
        return {
            name: self._misses.get(name, 0) for name in self._completions
        }

    def latency_by_class(self) -> Dict[str, LatencySeries]:
        return dict(self._latency)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-class aggregate dict (plain numbers, safe to pin golden).

        Classes that only ever shed (every arrival dropped at the door)
        still appear, with zeroed completion/latency fields — a shed
        request is an outcome, not an accounting gap.
        """
        report: Dict[str, Dict[str, float]] = {}
        for name in {**self._completions, **self._sheds, **self._retries}:
            latency = self._latency.get(name)
            report[name] = {
                "completions": self._completions.get(name, 0),
                "misses": self._misses.get(name, 0),
                "shed": self._sheds.get(name, 0),
                "retried": self._retries.get(name, 0),
                "mean_ms": latency.mean_ms() if latency else 0.0,
                "p99_ms": (
                    millis(latency.percentile_us(99.0)) if latency else 0.0
                ),
                "max_ms": millis(latency.max_us()) if latency else 0.0,
            }
        return report


@dataclass
class RunResult:
    """One experiment data point (a single plotted marker in a figure).

    ``class_stats`` carries the per-service-class SLO outcome summary
    (:meth:`SloScoreboard.summary`) when the run had a scoreboard —
    empty for cost-model baselines.  ``admission_stats`` carries the
    client-side per-class admission accounting (offered/admitted/shed)
    when the run had an admission policy in front of it.
    ``cluster_stats`` carries the shard router's fleet accounting
    (routing policy, per-shard counters, failover totals) when the run
    was sharded — empty for single-platform runs.
    """

    system: str
    x: float  # the figure's x value (clients, cores, ...)
    throughput: float = 0.0  # in the figure's unit
    latency_ms: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)
    class_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    admission_stats: Dict[str, Dict[str, float]] = field(
        default_factory=dict
    )
    cluster_stats: Dict[str, object] = field(default_factory=dict)

    def as_row(self) -> str:
        return (
            f"{self.system:<14} x={self.x:<8g} thr={self.throughput:<12.1f} "
            f"lat={self.latency_ms:.3f}ms"
        )
