"""Measurement helpers for simulated experiments.

:class:`LatencySeries` collects per-request latencies; :class:`Meter`
counts events over the run.  Both convert virtual-µs durations into the
units the paper's figures use (thousand requests/s, ms, Mb/s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.units import millis, rate_per_second, throughput_mbps


class LatencySeries:
    """Collects latency samples (virtual µs)."""

    def __init__(self):
        self._samples: List[float] = []

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency {latency_us}")
        self._samples.append(latency_us)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def mean_us(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def mean_ms(self) -> float:
        return millis(self.mean_us())

    def percentile_us(self, p: float) -> float:
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        rank = (p / 100.0) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def max_us(self) -> float:
        return max(self._samples) if self._samples else 0.0


class Meter:
    """Counts discrete events and bytes over a measured interval."""

    def __init__(self):
        self.events = 0
        self.bytes = 0
        self.start_us = 0.0
        self.end_us = 0.0

    def begin(self, now_us: float) -> None:
        self.start_us = now_us

    def finish(self, now_us: float) -> None:
        self.end_us = now_us

    def add(self, nbytes: int = 0) -> None:
        self.events += 1
        self.bytes += nbytes

    @property
    def duration_us(self) -> float:
        return max(self.end_us - self.start_us, 0.0)

    def rate_per_sec(self) -> float:
        return rate_per_second(self.events, self.duration_us)

    def kreqs_per_sec(self) -> float:
        return self.rate_per_sec() / 1_000.0

    def mbps(self) -> float:
        return throughput_mbps(self.bytes, self.duration_us)


@dataclass
class RunResult:
    """One experiment data point (a single plotted marker in a figure)."""

    system: str
    x: float  # the figure's x value (clients, cores, ...)
    throughput: float = 0.0  # in the figure's unit
    latency_ms: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> str:
        return (
            f"{self.system:<14} x={self.x:<8g} thr={self.throughput:<12.1f} "
            f"lat={self.latency_ms:.3f}ms"
        )
