"""Discrete-event simulation engine (virtual time in microseconds).

This is the substrate that replaces the paper's physical testbed: all
networking, scheduling and CPU accounting in the reproduction run on this
engine's virtual clock.  It is deliberately small and deterministic:

* a binary heap of ``(time, seq, callback)`` events — ``seq`` breaks ties
  so same-time events fire in schedule order, making runs reproducible;
* a same-tick FIFO ready queue: zero-delay schedules (the dominant case —
  every ``Event.trigger``/``add_callback`` funnels through
  ``schedule(0.0, ...)``) skip the heap entirely.  Entries still carry
  the shared ``seq`` counter, and the run loop pops the global
  ``(time, seq)`` minimum across queue and heap, so the firing order is
  exactly what a single heap would produce;
* generator-based **processes**: a process is a Python generator that
  yields :class:`Timeout` or :class:`Event` objects and is resumed when
  they fire (the idiom used by client workloads and worker loops);
* :class:`Event` — a one-shot signal with a payload that any number of
  processes/callbacks can wait on.

No wall-clock time is involved anywhere; ``engine.now`` is the only clock.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Generator, List, Optional, Tuple

from repro.core.errors import SimulationError


class Event:
    """A one-shot signal; processes wait on it, someone triggers it."""

    __slots__ = ("_engine", "_triggered", "_payload", "_callbacks")

    def __init__(self, engine: "Engine"):
        self._engine = engine
        self._triggered = False
        self._payload = None
        self._callbacks: List[Callable] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def payload(self):
        return self._payload

    def trigger(self, payload=None) -> None:
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._payload = payload
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._engine.schedule(0.0, callback, payload)

    def add_callback(self, callback: Callable) -> None:
        if self._triggered:
            self._engine.schedule(0.0, callback, self._payload)
        else:
            self._callbacks.append(callback)


class Timeout:
    """Yielded by a process to sleep for ``delay`` microseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay


class Process:
    """A running generator-based process."""

    __slots__ = ("_engine", "_gen", "finished", "result")

    def __init__(self, engine: "Engine", gen: Generator):
        self._engine = engine
        self._gen = gen
        self.finished = Event(engine)
        self.result = None
        engine.schedule(0.0, self._resume, None)

    def _resume(self, payload) -> None:
        try:
            yielded = self._gen.send(payload)
        except StopIteration as stop:
            self.result = stop.value
            self.finished.trigger(stop.value)
            return
        if isinstance(yielded, Timeout):
            self._engine.schedule(yielded.delay, self._resume, None)
        elif isinstance(yielded, Event):
            yielded.add_callback(self._resume)
        elif isinstance(yielded, Process):
            yielded.finished.add_callback(self._resume)
        else:
            raise SimulationError(
                f"process yielded unsupported object {yielded!r}"
            )


class Engine:
    """The event loop: schedule callbacks, spawn processes, run."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable, tuple]] = []
        self._ready: Deque[Tuple[float, int, Callable, tuple]] = deque()
        self._seq = 0
        self._running = False

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable, *args) -> None:
        """Run ``callback(*args)`` after ``delay`` µs of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past ({delay})")
        if delay == 0:
            # Same-tick fast path: no heap traffic.  Time never moves
            # backwards, so appended entries are (time, seq)-sorted and a
            # FIFO preserves the heap's total order.
            self._ready.append((self.now, self._seq, callback, args))
        else:
            heapq.heappush(
                self._heap, (self.now + delay, self._seq, callback, args)
            )
        self._seq += 1

    def at(self, when: float, callback: Callable, *args) -> None:
        """Run ``callback`` at absolute virtual time ``when``."""
        self.schedule(when - self.now, callback, *args)

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float) -> Timeout:
        return Timeout(delay)

    def process(self, gen: Generator) -> Process:
        """Spawn a generator as a simulated process."""
        return Process(self, gen)

    # -- execution ------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the heap empties or ``until`` is reached.

        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        try:
            heap = self._heap
            ready = self._ready
            while heap or ready:
                # Pop the global (time, seq) minimum.  Both queues hold
                # entries keyed by the shared seq counter, so this merge
                # reproduces the single-heap firing order exactly.
                if ready and (not heap or ready[0][:2] < heap[0][:2]):
                    when = ready[0][0]
                    if until is not None and when > until:
                        self.now = until
                        return self.now
                    _, _, callback, args = ready.popleft()
                else:
                    when = heap[0][0]
                    if until is not None and when > until:
                        self.now = until
                        return self.now
                    _, _, callback, args = heapq.heappop(heap)
                self.now = when
                callback(*args)
            if until is not None:
                self.now = max(self.now, until)
            return self.now
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of scheduled events (for tests/diagnostics)."""
        return len(self._heap) + len(self._ready)
