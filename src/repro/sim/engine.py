"""Discrete-event simulation engine (virtual time in microseconds).

This is the substrate that replaces the paper's physical testbed: all
networking, scheduling and CPU accounting in the reproduction run on this
engine's virtual clock.  The external surface is deliberately small —
``schedule``/``at``/``process``/``Event``/``run(until)`` — and the firing
order is the total order a single binary heap of ``(time, seq)`` keys
would produce (``seq`` is a global schedule counter breaking same-time
ties in schedule order).  That contract is what makes runs reproducible,
and it is locked by the differential oracle harness
(``tests/test_engine_equivalence.py``), which drives this engine and the
seed heap-only reference (:mod:`repro.sim.reference`) through generated
schedules and asserts identical firing sequences.

Internal architecture (the hot path, invisible in results)
----------------------------------------------------------

The mechanism behind the contract is a four-stage calendar, ordered from
nearest to farthest virtual time:

* **Ready queue** — a FIFO of events at the *current* tick.  Zero-delay
  schedules (every ``Event.trigger``/``add_callback`` funnels through
  here) never touch a heap; once every other stage's head is strictly
  later than ``now``, the run loop drains the whole tick without
  re-comparing keys per pop (anything scheduled during the drain is
  either strictly later or joins the back of this queue in seq order).
* **Batch** — a sorted run of imminent events, consumed by index.  Runs
  of equal-timestamp events drain from it with a single seq comparison
  against the ready queue per pop, extending the same-tick discipline to
  equal-*nonzero*-time runs.
* **Timer wheel** — a bucketed calendar queue of ``_NSLOTS`` slots, each
  ``_SLOT_US`` µs wide, holding the dense short-delay timeouts the TCP
  stack and worker budgets generate.  Insertion is O(1): events land in
  the bucket of their timestamp's slot (slot width is a power of two, so
  binning is float-exact) and a small heap of occupied slot numbers
  tracks where the wheel has work.  When a bucket could contain the next
  event (its slot's lower bound reaches the earliest exact head), it is
  *promoted*: sorted once — ``seq`` is unique, so tuple comparison never
  reaches the callbacks — and appended to the batch.  Slots are disjoint
  time ranges promoted in order, so appends keep the batch sorted.
* **Overflow heap** — a plain binary heap for far-future events beyond
  the wheel's ``_SPAN_US`` horizon.  Entries fire straight from the heap
  (the run loop merges exact heads), so no cascading pass is needed.
  The heap is also the *preferred* stage while the pending set is small
  (below ``_HEAP_PREF`` entries): a cache-resident binary heap's C
  push/pop beat the wheel's bucket and promotion constants until there
  are thousands of timers in flight.  Placement is purely a performance
  decision — the run loop merges every stage exactly, so routing never
  affects firing order.

Event records are flat ``(time, seq, callback, args)`` tuples compared
whole — ``seq`` is unique, so comparisons stop before the callback field
and no per-event key slicing happens anywhere.

Determinism contract
--------------------

* Events fire in strictly non-decreasing ``(time, seq)`` order; same-time
  events fire in schedule order.  No wall-clock time is involved
  anywhere; ``engine.now`` is the only clock.
* ``at()`` schedules the *exact* absolute timestamp given — there is no
  ``when - now`` → ``now + delay`` float round-trip, so an event lands on
  the requested time to the last ulp and equal-timestamp batching keys
  on it reliably.
* ``schedule(delay)`` with a delay so small that ``now + delay`` rounds
  back to ``now`` fires at ``now``, after events already queued for the
  tick (its seq is larger).
* Wheel/batch/heap placement is invisible: moving an event between
  internal stages never changes its key, and promotion sorts restore the
  exact global order.

Generator-based **processes** ride on top: a process is a Python
generator that yields :class:`Timeout` or :class:`Event` objects and is
resumed when they fire (the idiom used by client workloads and worker
loops).
"""

from __future__ import annotations

import heapq
import math
from array import array
from bisect import insort
from collections import deque
from typing import Callable, Deque, Generator, List, Optional, Tuple

from repro.core.errors import SimulationError

try:  # accelerated promotion sorts; the engine runs fine without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the toolchain
    _np = None

#: Timer-wheel slot width (µs).  A power of two, so ``time / _SLOT_US``
#: is exact in IEEE-754 and bucket binning can never disagree with key
#: comparisons by an ulp.  Narrow slots keep promotion sorts small even
#: with millions of pending timeouts (sort cost per event is the log of
#: the *bucket* population, not of the total).
_SLOT_US = 4.0
_SLOT_INV = 1.0 / _SLOT_US
#: Number of wheel slots; the wheel covers ``_SPAN_US`` µs (~65 ms) past
#: the promotion frontier, chosen to hold the TCP stack's hop/serialise
#: delays and the scheduler's 10-100 µs budgets with room to spare.
_NSLOTS = 16384
_MASK = _NSLOTS - 1
_SPAN_US = _SLOT_US * _NSLOTS

#: Below this many pending heap entries, near-future events are routed
#: to the overflow heap instead of the wheel: a small binary heap is
#: cache-resident and its C push/pop beat the wheel's bucket+promotion
#: constants, while at scale the wheel's O(1) binning wins.  Placement
#: is purely a performance decision — the run loop merges all stages
#: exactly, so any event is correct in the heap.
_HEAP_PREF = 1024

_INF = float("inf")

_Entry = Tuple[float, int, Callable, tuple]


class Event:
    """A one-shot signal; processes wait on it, someone triggers it."""

    __slots__ = ("_engine", "_triggered", "_payload", "_callbacks")

    def __init__(self, engine: "Engine"):
        self._engine = engine
        self._triggered = False
        self._payload = None
        self._callbacks: List[Callable] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def payload(self):
        return self._payload

    def trigger(self, payload=None) -> None:
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._payload = payload
        callbacks, self._callbacks = self._callbacks, []
        post = self._engine._post
        for callback in callbacks:
            post(callback, (payload,))

    def add_callback(self, callback: Callable) -> None:
        if self._triggered:
            self._engine._post(callback, (self._payload,))
        else:
            self._callbacks.append(callback)


class Timeout:
    """Yielded by a process to sleep for ``delay`` microseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay


class Process:
    """A running generator-based process."""

    __slots__ = ("_engine", "_gen", "finished", "result")

    def __init__(self, engine: "Engine", gen: Generator):
        self._engine = engine
        self._gen = gen
        self.finished = Event(engine)
        self.result = None
        engine._post(self._resume, (None,))

    def _resume(self, payload) -> None:
        try:
            yielded = self._gen.send(payload)
        except StopIteration as stop:
            self.result = stop.value
            self.finished.trigger(stop.value)
            return
        if isinstance(yielded, Timeout):
            self._engine.schedule(yielded.delay, self._resume, None)
        elif isinstance(yielded, Event):
            yielded.add_callback(self._resume)
        elif isinstance(yielded, Process):
            yielded.finished.add_callback(self._resume)
        else:
            raise SimulationError(
                f"process yielded unsupported object {yielded!r}"
            )


class Engine:
    """The event loop: schedule callbacks, spawn processes, run."""

    __slots__ = (
        "now",
        "_seq",
        "_running",
        "_ready",
        "_batch",
        "_bi",
        "_slots",
        "_occupied",
        "_wheel_count",
        "_base",
        "_batch_hi",
        "_wheel_end",
        "_heap",
        "_heap_pref",
    )

    def __init__(self):
        self.now: float = 0.0
        self._seq = 0
        self._running = False
        # Stage 1: events at the current tick, FIFO in seq order.
        self._ready: Deque[_Entry] = deque()
        # Stage 2: sorted imminent events, consumed from index _bi.
        self._batch: List[_Entry] = []
        self._bi = 0
        # Stage 3: the timer wheel.  _slots[s & _MASK] is the bucket for
        # absolute slot s (None when empty); _occupied is a heap of the
        # occupied absolute slot numbers; _base is the first slot the
        # wheel may still hold (everything earlier has been promoted into
        # the batch, whose coverage ends at _batch_hi == _base * _SLOT_US).
        # Each occupied slot holds parallel (times, entries) sequences;
        # times live in an array('d') so promotion hands them to the
        # argsort as a zero-copy buffer view.
        self._slots: List[
            Optional[Tuple["array[float]", List[_Entry]]]
        ] = [None] * _NSLOTS
        self._occupied: List[int] = []
        self._wheel_count = 0
        self._base = 0
        self._batch_hi = 0.0
        self._wheel_end = _SPAN_US
        # Stage 4: far-future overflow, doubling as the preferred home
        # for near-future events while the pending set is small (see
        # _HEAP_PREF) — every stage is merged exactly, so placement
        # never affects firing order.
        self._heap: List[_Entry] = []
        self._heap_pref = _HEAP_PREF

    # -- scheduling ---------------------------------------------------------

    def _post(self, callback: Callable, args: tuple) -> None:
        """Same-tick scheduling fast path (``schedule(0.0, ...)``)."""
        self._ready.append((self.now, self._seq, callback, args))
        self._seq += 1

    def schedule(self, delay: float, callback: Callable, *args) -> None:
        """Run ``callback(*args)`` after ``delay`` µs of virtual time."""
        if delay <= 0.0:
            if delay < 0.0:
                raise SimulationError(f"cannot schedule in the past ({delay})")
            self._ready.append((self.now, self._seq, callback, args))
            self._seq += 1
        else:
            self._insert(self.now + delay, callback, args)

    def at(self, when: float, callback: Callable, *args) -> None:
        """Run ``callback`` at the exact absolute virtual time ``when``."""
        now = self.now
        if when <= now:
            if when < now:
                raise SimulationError(
                    f"cannot schedule in the past ({when - now})"
                )
            self._ready.append((when, self._seq, callback, args))
            self._seq += 1
        else:
            self._insert(when, callback, args)

    def _insert(self, when: float, callback: Callable, args: tuple) -> None:
        """File a strictly-future event into batch, wheel or overflow.

        Wheel binning needs no bounds paranoia: ``when * _SLOT_INV`` is
        exact (scaling by a power of two only shifts the exponent), so
        ``_batch_hi <= when < _wheel_end`` *guarantees* the slot lands in
        ``[_base, _base + _NSLOTS)``.
        """
        entry = (when, self._seq, callback, args)
        self._seq += 1
        if when == self.now:
            # delay so small that now + delay rounded back down to now.
            self._ready.append(entry)
        elif when >= self._batch_hi:
            if when < self._wheel_end and len(self._heap) >= self._heap_pref:
                idx = int(when * _SLOT_INV) & _MASK
                bucket = self._slots[idx]
                if bucket is not None:
                    bucket[0].append(when)
                    bucket[1].append(entry)
                else:
                    self._slots[idx] = (array("d", (when,)), [entry])
                    heapq.heappush(self._occupied, int(when * _SLOT_INV))
                self._wheel_count += 1
            else:
                heapq.heappush(self._heap, entry)
        else:
            # The wheel below _batch_hi has already been promoted, so
            # imminent events join the sorted batch directly.
            insort(self._batch, entry, lo=self._bi)

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float) -> Timeout:
        return Timeout(delay)

    def process(self, gen: Generator) -> Process:
        """Spawn a generator as a simulated process."""
        return Process(self, gen)

    # -- execution ------------------------------------------------------------

    def _promote(self, limit: Optional[float]) -> None:
        """Promote every wheel slot whose lower bound reaches ``limit``.

        A slot with lower bound equal to the earliest exact head must be
        promoted too: its bucket may hold an equal-timestamp event with a
        smaller seq.  Afterwards every event left in the wheel is strictly
        later than ``limit`` (and than ``now``).
        """
        occupied = self._occupied
        slots = self._slots
        while occupied and (limit is None or occupied[0] * _SLOT_US <= limit):
            s = heapq.heappop(occupied)
            idx = s & _MASK
            times, entries = slots[idx]
            slots[idx] = None
            n = len(entries)
            if _np is not None and n > 256:
                # Bucket appends happen in schedule order, so position
                # within the bucket *is* seq order; a stable argsort on
                # the times alone reproduces the exact (time, seq) order
                # without paying tuple comparisons on millions of
                # entries.  Small buckets stay on list.sort, which wins
                # below numpy's fixed call overhead.
                order = _np.argsort(
                    _np.frombuffer(times), kind="stable"  # zero-copy view
                ).tolist()
                entries = list(map(entries.__getitem__, order))
            else:
                entries.sort()  # seq is unique: callbacks never compared
            self._wheel_count -= n
            batch = self._batch
            if self._bi >= len(batch):
                self._batch = entries
                self._bi = 0
            else:
                # Promoted entries all live at or past _batch_hi, later
                # than every batch entry: appending keeps it sorted.
                batch.extend(entries)
            self._base = s + 1
            self._batch_hi = (s + 1) * _SLOT_US
            self._wheel_end = (s + 1 + _NSLOTS) * _SLOT_US
            if limit is None:
                return

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until none remain or ``until`` is reached.

        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        ulimit = until if until is not None else _INF
        try:
            ready = self._ready
            heap = self._heap
            while True:
                # Exact heads of ready / batch / overflow, then promote
                # any wheel slot that could still beat (or tie) them.
                batch = self._batch
                bi = self._bi
                ready_head = ready[0] if ready else None
                batch_head = batch[bi] if bi < len(batch) else None
                heap_head = heap[0] if heap else None
                nxt = ready_head
                if batch_head is not None and (
                    nxt is None or batch_head < nxt
                ):
                    nxt = batch_head
                if heap_head is not None and (nxt is None or heap_head < nxt):
                    nxt = heap_head
                if self._occupied and (
                    nxt is None
                    or self._occupied[0] * _SLOT_US <= nxt[0]
                ):
                    self._promote(None if nxt is None else nxt[0])
                    continue
                if nxt is None:
                    if until is not None and until > self.now:
                        self.now = until
                    return self.now
                when = nxt[0]
                if when > ulimit:
                    self.now = until
                    return self.now
                self.now = when
                if when >= self._batch_hi:
                    # The clock galloped past the promotion frontier on
                    # overflow events; drag the wheel window along so
                    # short delays keep landing in the wheel.  Every
                    # occupied slot is strictly later than ``when``
                    # (promotion above), so no bucket is skipped.
                    base = int(when * _SLOT_INV)
                    if base > self._base:
                        self._base = base
                        self._batch_hi = base * _SLOT_US
                        self._wheel_end = (base + _NSLOTS) * _SLOT_US
                if nxt is ready_head:
                    ready.popleft()
                elif nxt is batch_head:
                    bi += 1
                    if bi >= len(batch):
                        del batch[:]
                        self._bi = 0
                    elif bi >= 1024:
                        del batch[:bi]
                        self._bi = 0
                    else:
                        self._bi = bi
                else:
                    heapq.heappop(heap)
                nxt[2](*nxt[3])
                # Equal-timestamp bulk drain: every batch entry sharing
                # this timestamp was filed before time advanced here, so
                # its seq is smaller than that of any ready entry posted
                # by the callbacks now firing, and same-time inserts made
                # *during* the drain go to the ready queue (``at(now)``)
                # — the whole run fires unconditionally in seq order with
                # zero key comparisons per pop.  Only an overflow entry
                # tying the timestamp forces the merge loop.
                batch = self._batch
                bi = self._bi
                nb = len(batch)
                if (
                    bi < nb
                    and batch[bi][0] == when
                    and not (heap and heap[0][0] == when)
                ):
                    j = bi
                    while j < nb and batch[j][0] == when:
                        j += 1
                    k = bi - 1
                    try:
                        for k in range(bi, j):
                            entry = batch[k]
                            entry[2](*entry[3])
                    except BaseException:
                        # A raising callback consumes its own entry but
                        # must leave the rest of the run queued.
                        self._bi = k + 1
                        raise
                    self._bi = j
                # Same-tick fast drain: once every other stage's head is
                # strictly later than ``now``, the whole tick drains with
                # no key comparisons at all — new zero-delay schedules
                # join the back in seq order, everything else lands
                # strictly later.
                if ready:
                    batch = self._batch
                    bi = self._bi
                    if (bi >= len(batch) or batch[bi][0] > when) and (
                        not heap or heap[0][0] > when
                    ):
                        while ready:
                            entry = ready.popleft()
                            entry[2](*entry[3])
                # Distinct-time batch drain: wheel slots and overflow
                # pushes always land at or past ``_batch_hi`` — strictly
                # above every batch entry — so while the (pre-drain)
                # overflow head and ``until`` lie beyond the next batch
                # time and no same-tick work is queued, the batch is
                # consumed by index without re-merging stage heads.
                if not ready and self._bi < len(self._batch):
                    batch = self._batch
                    bi = self._bi
                    # One exclusive stop bound: fire while t < stop.
                    # ``until`` is inclusive (fire at t == until), so its
                    # bound is the next float up; the overflow head is
                    # exclusive (a tie must go through the merge loop).
                    stop = heap[0][0] if heap else _INF
                    if ulimit < stop:
                        stop = math.nextafter(ulimit, _INF)
                    # The length is cached: a callback insort lands at an
                    # index >= k (its time is strictly after ``now``), so
                    # the cursor stays valid, and any entry it shifts past
                    # ``nb`` is picked up when the merge loop re-enters.
                    # The cursor is committed on the way out (including
                    # the exception path) rather than per pop; mid-drain,
                    # callbacks only consume it as an insort lower-bound
                    # hint, where a stale-low value stays correct.
                    nb = len(batch)
                    k = bi - 1
                    try:
                        for k in range(bi, nb):
                            entry = batch[k]
                            t = entry[0]
                            if t >= stop:
                                self._bi = k
                                break
                            self.now = t
                            entry[2](*entry[3])
                            if ready:
                                self._bi = k + 1
                                break
                        else:
                            self._bi = nb
                    except BaseException:
                        self._bi = k + 1
                        raise
                    if self._bi >= len(self._batch):
                        del self._batch[:]
                        self._bi = 0
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of scheduled events (for tests/diagnostics)."""
        return (
            len(self._ready)
            + len(self._heap)
            + (len(self._batch) - self._bi)
            + self._wheel_count
        )
