"""The seed heap-only event engine, preserved as a semantic oracle.

This is the engine the repository grew up on: one binary heap of
``(time, seq, callback, args)`` tuples, popped one comparison at a time.
It is deliberately *not* optimised — its value is that the firing order
it produces **defines** the determinism contract the production engine
(:mod:`repro.sim.engine`) must reproduce bit-for-bit, the same way the
tree-walking interpreter is the oracle for the codegen tier.

Two consumers:

* ``tests/test_engine_equivalence.py`` runs hypothesis-generated
  schedules through both engines and asserts identical firing sequences
  and final clocks — any divergence is a production-engine bug by
  definition;
* ``benchmarks/bench_engine.py`` uses it as the baseline its ≥5x
  events/sec gate is measured against.

The one intentional upgrade over the seed is shared with the production
engine: :meth:`ReferenceEngine.at` schedules the exact absolute
timestamp instead of round-tripping through ``when - now`` →
``now + delay`` float arithmetic, so both engines agree on absolute
times to the last ulp and the differential harness can exercise ``at()``
freely.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, List, Optional, Tuple

from repro.core.errors import SimulationError


class ReferenceEvent:
    """One-shot signal, identical in behaviour to :class:`engine.Event`."""

    __slots__ = ("_engine", "_triggered", "_payload", "_callbacks")

    def __init__(self, engine: "ReferenceEngine"):
        self._engine = engine
        self._triggered = False
        self._payload = None
        self._callbacks: List[Callable] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def payload(self):
        return self._payload

    def trigger(self, payload=None) -> None:
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._payload = payload
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._engine.schedule(0.0, callback, payload)

    def add_callback(self, callback: Callable) -> None:
        if self._triggered:
            self._engine.schedule(0.0, callback, self._payload)
        else:
            self._callbacks.append(callback)


class ReferenceTimeout:
    """Yielded by a process to sleep for ``delay`` microseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay


class ReferenceProcess:
    """A running generator-based process (heap-only engine flavour)."""

    __slots__ = ("_engine", "_gen", "finished", "result")

    def __init__(self, engine: "ReferenceEngine", gen: Generator):
        self._engine = engine
        self._gen = gen
        self.finished = ReferenceEvent(engine)
        self.result = None
        engine.schedule(0.0, self._resume, None)

    def _resume(self, payload) -> None:
        try:
            yielded = self._gen.send(payload)
        except StopIteration as stop:
            self.result = stop.value
            self.finished.trigger(stop.value)
            return
        if isinstance(yielded, ReferenceTimeout):
            self._engine.schedule(yielded.delay, self._resume, None)
        elif isinstance(yielded, ReferenceEvent):
            yielded.add_callback(self._resume)
        elif isinstance(yielded, ReferenceProcess):
            yielded.finished.add_callback(self._resume)
        else:
            raise SimulationError(
                f"process yielded unsupported object {yielded!r}"
            )


class ReferenceEngine:
    """The seed event loop: one heap, one pop per event."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self._running = False

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable, *args) -> None:
        """Run ``callback(*args)`` after ``delay`` µs of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past ({delay})")
        heapq.heappush(
            self._heap, (self.now + delay, self._seq, callback, args)
        )
        self._seq += 1

    def at(self, when: float, callback: Callable, *args) -> None:
        """Run ``callback`` at the exact absolute virtual time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past ({when - self.now})"
            )
        heapq.heappush(self._heap, (when, self._seq, callback, args))
        self._seq += 1

    def event(self) -> ReferenceEvent:
        return ReferenceEvent(self)

    def timeout(self, delay: float) -> ReferenceTimeout:
        return ReferenceTimeout(delay)

    def process(self, gen: Generator) -> ReferenceProcess:
        """Spawn a generator as a simulated process."""
        return ReferenceProcess(self, gen)

    # -- execution ------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the heap empties or ``until`` is reached.

        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        try:
            heap = self._heap
            while heap:
                when = heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    return self.now
                _, _, callback, args = heapq.heappop(heap)
                self.now = when
                callback(*args)
            if until is not None:
                self.now = max(self.now, until)
            return self.now
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of scheduled events (for tests/diagnostics)."""
        return len(self._heap)
