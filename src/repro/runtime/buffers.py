"""Pre-allocated buffer pool (section 5: "All buffers are drawn from a
pre-allocated pool to avoid dynamic memory allocation").

In the simulation a buffer is an accounting token rather than memory, but
the pool enforces the same discipline: a fixed byte budget split into
fixed-size buffers, exhaustion is an error (never silent growth), and the
high-water mark is observable so tests can assert boundedness.
"""

from __future__ import annotations

from repro.core.errors import BufferPoolExhausted


class BufferPool:
    """Fixed budget of fixed-size buffers; acquire/release by byte count."""

    def __init__(self, total_bytes: int, buffer_size: int):
        if total_bytes <= 0 or buffer_size <= 0:
            raise ValueError("pool and buffer sizes must be positive")
        self.buffer_size = buffer_size
        self.total_buffers = total_bytes // buffer_size
        self._free = self.total_buffers
        self.high_water = 0

    @property
    def in_use(self) -> int:
        return self.total_buffers - self._free

    @property
    def free(self) -> int:
        return self._free

    def buffers_for(self, nbytes: int) -> int:
        """Buffers needed to hold ``nbytes`` (at least one)."""
        if nbytes <= 0:
            return 1
        return -(-nbytes // self.buffer_size)

    def acquire(self, nbytes: int) -> int:
        """Claim buffers for ``nbytes``; returns the buffer count claimed."""
        needed = self.buffers_for(nbytes)
        if needed > self._free:
            raise BufferPoolExhausted(
                f"need {needed} buffer(s), only {self._free} of "
                f"{self.total_buffers} free"
            )
        self._free -= needed
        self.high_water = max(self.high_water, self.in_use)
        return needed

    def release(self, count: int) -> None:
        if count < 0 or self._free + count > self.total_buffers:
            raise ValueError(f"invalid release of {count} buffer(s)")
        self._free += count
