"""The FLICK platform runtime: tasks, channels, scheduler, dispatchers."""

from repro.runtime.buffers import BufferPool
from repro.runtime.channel import EOS, TaskChannel
from repro.runtime.costs import OP_US, RuntimeConfig, ops_to_us
from repro.runtime.dispatcher import DispatcherTask, GraphDispatcher, GraphPool
from repro.runtime.graph import Bindings, CodecRegistry, OutboundTarget, TaskGraph
from repro.runtime.platform import FlickPlatform, ProgramInstance
from repro.runtime.policy import (
    PAPER_POLICIES,
    SchedulingPolicy,
    make_policy,
    register_policy,
    registered_policies,
    resolve_policy,
)
from repro.runtime.qos import (
    ServiceClass,
    ServiceClassMap,
    parse_slo_class,
    parse_slo_class_specs,
)
from repro.runtime.scheduler import Scheduler, StealRecord, TaskBase
from repro.runtime.task import ComputeTask, InputTask, MergeTask, OutputTask

__all__ = [
    "BufferPool",
    "EOS",
    "TaskChannel",
    "OP_US",
    "RuntimeConfig",
    "ops_to_us",
    "DispatcherTask",
    "GraphDispatcher",
    "GraphPool",
    "Bindings",
    "CodecRegistry",
    "OutboundTarget",
    "TaskGraph",
    "FlickPlatform",
    "ProgramInstance",
    "PAPER_POLICIES",
    "SchedulingPolicy",
    "make_policy",
    "register_policy",
    "registered_policies",
    "resolve_policy",
    "ServiceClass",
    "ServiceClassMap",
    "parse_slo_class",
    "parse_slo_class_specs",
    "Scheduler",
    "StealRecord",
    "TaskBase",
    "ComputeTask",
    "InputTask",
    "MergeTask",
    "OutputTask",
]
