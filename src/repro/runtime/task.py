"""Task implementations: input, compute, output and foldt-merge tasks.

Tasks are the schedulable units of section 5.  Each consumes a stream of
input values and produces a stream of output values:

* :class:`InputTask` — drains raw bytes from one TCP connection, runs the
  generated incremental parser, emits typed records; charges the stack's
  read costs and the parser's ops.
* :class:`ComputeTask` — executes the compiled routing rules of a FLICK
  process on tagged messages; charges interpreter ops.
* :class:`OutputTask` — serialises records (raw fast path for unmodified
  messages) and writes them to one TCP connection; charges serialiser ops
  and the stack's write costs.
* :class:`MergeTask` — one node of a foldt combine tree: a streaming
  two-way merge that combines equal-key elements (Figure 3c).

All tasks follow the deferred-emission contract of the scheduler: side
effects produced during a timeslice are returned as thunks and performed
only after the timeslice's virtual time has elapsed.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Tuple

from repro.core.errors import RuntimeFlickError
from repro.lang.values import Record
from repro.net.stackprofiles import StackProfile
from repro.runtime.channel import EOS, TaskChannel
from repro.runtime.costs import TASK_DISPATCH_US, ops_to_us
from repro.runtime.scheduler import TaskBase


class InputTask(TaskBase):
    """Deserialises one connection's byte stream into typed records."""

    def __init__(
        self,
        name: str,
        parser,
        out: TaskChannel,
        stack: StackProfile,
        cores: int,
        tag: Optional[Tuple[str, int]] = None,
        on_eof: Optional[Callable[[], None]] = None,
    ):
        super().__init__(name)
        self._parser = parser
        self._out = out
        self._stack = stack
        self._cores = cores
        self._tag = tag
        self._on_eof = on_eof
        self._chunks = deque()
        self._eof_seen = False
        self._eof_handled = False
        self._backlog = False  # parser may hold complete messages
        self._notify: Optional[Callable[[], None]] = None

    # -- socket side --------------------------------------------------------

    def attach(self, socket, notify: Callable[[], None]) -> None:
        """Bind to a socket; ``notify`` marks this task runnable."""
        self._notify = notify
        socket.on_receive(self._on_data)
        socket.on_close(self._on_close)

    def _on_data(self, data: bytes) -> None:
        self._chunks.append(data)
        if self._notify is not None:
            self._notify()

    def _on_close(self) -> None:
        self._eof_seen = True
        if self._notify is not None:
            self._notify()

    # -- scheduling contract ----------------------------------------------------

    def has_work(self) -> bool:
        if not self._out.has_space():
            return False
        return (
            bool(self._chunks)
            or self._backlog
            or (self._eof_seen and not self._eof_handled)
        )

    def step(self, budget_us: Optional[float]):
        # The emitted message count must respect downstream capacity: the
        # out-channel only fills after emissions run, so track headroom
        # locally within this timeslice.
        elapsed = 0.0
        emissions: List[Callable[[], None]] = []
        headroom = self._out.capacity - len(self._out)
        done = False
        while not done:
            # Drain parsed messages first (backlog from a previous slice).
            while headroom > 0:
                record = self._parser.poll()
                if record is None:
                    self._backlog = False
                    break
                elapsed += ops_to_us(self._parser.take_ops())
                emissions.append(self._make_emit(record))
                self.items_processed += 1
                headroom -= 1
                if budget_us == 0.0 or (
                    budget_us is not None and elapsed >= budget_us
                ):
                    self._backlog = True
                    done = True
                    break
            if done or headroom <= 0:
                break
            if self._chunks:
                chunk = self._chunks.popleft()
                self._parser.feed(chunk)
                self._backlog = True
                elapsed += self._stack.read_cost_us(len(chunk), self._cores)
                if budget_us is not None and elapsed >= budget_us:
                    break
            elif self._eof_seen and not self._eof_handled:
                self._eof_handled = True
                elapsed += self._stack.teardown_us
                out = self._out
                emissions.append(out.close)
                if self._on_eof is not None:
                    emissions.append(self._on_eof)
                break
            else:
                break
        self.busy_us += elapsed
        return elapsed, emissions

    def _make_emit(self, record: Record) -> Callable[[], None]:
        out = self._out
        if self._tag is None:
            return lambda: out.push(record)
        tag = self._tag
        return lambda: out.push((tag[0], tag[1], record))


class RawForwardTask(TaskBase):
    """Forwards one connection's byte stream without parsing.

    Used for pipeline rules of the form ``backends => client`` with no
    function stages: the compiler knows no computation touches these
    messages, so the return path copies bytes verbatim (§6.1: "On their
    return path no computation or parsing is needed, and the data is
    forwarded without change").
    """

    def __init__(
        self,
        name: str,
        out: TaskChannel,
        stack: StackProfile,
        cores: int,
        on_eof: Optional[Callable[[], None]] = None,
    ):
        super().__init__(name)
        self._out = out
        self._stack = stack
        self._cores = cores
        self._on_eof = on_eof
        self._chunks = deque()
        self._eof_seen = False
        self._eof_handled = False
        self._notify: Optional[Callable[[], None]] = None

    def attach(self, socket, notify: Callable[[], None]) -> None:
        self._notify = notify
        socket.on_receive(self._on_data)
        socket.on_close(self._on_close)

    def _on_data(self, data: bytes) -> None:
        self._chunks.append(data)
        if self._notify is not None:
            self._notify()

    def _on_close(self) -> None:
        self._eof_seen = True
        if self._notify is not None:
            self._notify()

    def has_work(self) -> bool:
        if not self._out.has_space():
            return False
        return bool(self._chunks) or (self._eof_seen and not self._eof_handled)

    def step(self, budget_us: Optional[float]):
        elapsed = 0.0
        emissions: List[Callable[[], None]] = []
        out = self._out
        while self.has_work():
            if self._chunks:
                chunk = self._chunks.popleft()
                elapsed += self._stack.read_cost_us(len(chunk), self._cores)
                emissions.append(lambda c=chunk: out.push(c))
                self.items_processed += 1
            else:
                self._eof_handled = True
                if self._on_eof is not None:
                    emissions.append(self._on_eof)
            if budget_us == 0.0:
                break
            if budget_us is not None and elapsed >= budget_us:
                break
        self.busy_us += elapsed
        return elapsed, emissions


class _BufferingSendProxy:
    """A channel endpoint handed to FLICK code during a compute step.

    Sends are buffered and turned into deferred emissions, preserving the
    rule that downstream tasks cannot observe data before the producing
    timeslice completes.
    """

    __slots__ = ("_sink", "buffered")

    def __init__(self, sink: Callable[[object], None]):
        self._sink = sink
        self.buffered: List[object] = []

    def send(self, value) -> None:
        self.buffered.append(value)

    def flush_thunks(self) -> List[Callable[[], None]]:
        sink = self._sink
        thunks = [
            (lambda v=value: sink(v)) for value in self.buffered
        ]
        self.buffered.clear()
        return thunks


class ChannelArrayView:
    """Indexable view over an array endpoint's send proxies.

    Supports ``len``, indexing and ``ready()`` (for ``all_ready``), which
    is all the FLICK builtins need.
    """

    def __init__(self, proxies: List[_BufferingSendProxy]):
        self._proxies = proxies

    def __len__(self) -> int:
        return len(self._proxies)

    def __getitem__(self, index: int):
        return self._proxies[index]

    def __iter__(self):
        return iter(self._proxies)


class ComputeTask(TaskBase):
    """Executes compiled FLICK routing rules on tagged messages.

    Input items are ``(endpoint, index, record)`` tuples pushed by input
    tasks.  ``handlers`` maps endpoint names to the ``RuleHandler``
    callables produced by the compiler; the handler's context contains
    the buffering proxies this task owns.
    """

    def __init__(self, name: str, inbox: TaskChannel):
        super().__init__(name)
        self.inbox = inbox
        self._handlers = {}
        self._proxies: List[_BufferingSendProxy] = []
        self._eos_callback: Optional[Callable[[], None]] = None

    def add_handler(self, endpoint: str, handler) -> None:
        self._handlers.setdefault(endpoint, []).append(handler)

    def register_proxy(self, proxy: _BufferingSendProxy) -> None:
        self._proxies.append(proxy)

    def on_inbox_eos(self, callback: Callable[[], None]) -> None:
        self._eos_callback = callback

    def has_work(self) -> bool:
        return not self.inbox.empty()

    def step(self, budget_us: Optional[float]):
        elapsed = 0.0
        emissions: List[Callable[[], None]] = []
        while self.has_work():
            item = self.inbox.pop()
            if item is EOS:
                if self._eos_callback is not None:
                    emissions.append(self._eos_callback)
                break
            endpoint, _index, record = item
            elapsed += TASK_DISPATCH_US
            handlers = self._handlers.get(endpoint, ())
            if not handlers:
                raise RuntimeFlickError(
                    f"compute task {self.name!r}: no rule consumes messages "
                    f"from endpoint {endpoint!r}"
                )
            for handler in handlers:
                ops = handler(record)
                elapsed += ops_to_us(ops)
            for proxy in self._proxies:
                emissions.extend(proxy.flush_thunks())
            self.items_processed += 1
            if budget_us == 0.0:
                break
            if budget_us is not None and elapsed >= budget_us:
                break
        self.busy_us += elapsed
        return elapsed, emissions


def _send_or_drop(socket, data: bytes) -> None:
    """Write to ``socket`` unless it already closed (the EPIPE case).

    A connection can die under a running program — the peer vanished or
    a front-end router severed the pipe — with responses still queued
    behind the compute.  A real middlebox takes EPIPE and drops the
    write; here the bytes land in the socket's ``bytes_dropped``
    accounting instead of raising out of the scheduler.
    """
    if socket.closed:
        socket.bytes_dropped += len(data)
        return
    socket.send(data)


class OutputTask(TaskBase):
    """Serialises records from its inbox onto one TCP connection."""

    def __init__(
        self,
        name: str,
        inbox: TaskChannel,
        serialize: Callable[[Record], Tuple[bytes, float]],
        stack: StackProfile,
        cores: int,
        close_on_eos: bool = False,
    ):
        super().__init__(name)
        self.inbox = inbox
        self._serialize = serialize
        self._stack = stack
        self._cores = cores
        self._socket = None
        self._close_on_eos = close_on_eos
        self.bytes_out = 0

    def bind_socket(self, socket) -> None:
        self._socket = socket

    @property
    def bound(self) -> bool:
        return self._socket is not None

    def has_work(self) -> bool:
        return self._socket is not None and not self.inbox.empty()

    def step(self, budget_us: Optional[float]):
        elapsed = 0.0
        emissions: List[Callable[[], None]] = []
        socket = self._socket
        while self.has_work():
            item = self.inbox.pop()
            if item is EOS:
                if self._close_on_eos:
                    elapsed += self._stack.teardown_us
                    emissions.append(socket.close)
                break
            if isinstance(item, (bytes, bytearray)):
                # Raw forwarding path: bytes cross unparsed and unserialised.
                data, ops = bytes(item), len(item) / 256.0
            else:
                data, ops = self._serialize(item)
            elapsed += ops_to_us(ops)
            elapsed += self._stack.write_cost_us(len(data), self._cores)
            self.bytes_out += len(data)
            emissions.append(lambda d=data: _send_or_drop(socket, d))
            self.items_processed += 1
            if budget_us == 0.0:
                break
            if budget_us is not None and elapsed >= budget_us:
                break
        self.busy_us += elapsed
        return elapsed, emissions


class MergeTask(TaskBase):
    """One foldt tree node: streaming merge-combine of two sorted inputs.

    Emits a sorted stream with unique keys: consecutive equal-key elements
    (across or within inputs) are combined with the foldt body.  Closes
    its output when both inputs are exhausted.
    """

    def __init__(
        self,
        name: str,
        left: TaskChannel,
        right: TaskChannel,
        out: TaskChannel,
        key_fn: Callable[[Record], object],
        combine_fn: Callable[[Record, Record], Tuple[Record, float]],
    ):
        super().__init__(name)
        self._left = left
        self._right = right
        self._out = out
        self._key = key_fn
        self._combine = combine_fn
        self._pending: Optional[Record] = None  # last element, not yet final
        self._done = False

    @staticmethod
    def _finished(chan: TaskChannel) -> bool:
        """No further data will ever arrive on ``chan``."""
        return chan.exhausted() or chan.at_eos()

    def has_work(self) -> bool:
        if self._done or not self._out.has_space():
            return False
        left, right = self._left, self._right
        if left.ready() and (right.ready() or self._finished(right)):
            return True
        if right.ready() and self._finished(left):
            return True
        return self._finished(left) and self._finished(right)

    def _take_next(self) -> Optional[Record]:
        """Pop the smaller-keyed head, if the choice is decidable."""
        left, right = self._left, self._right
        lhead = left.peek() if left.ready() else None
        rhead = right.peek() if right.ready() else None
        if lhead is not None and rhead is not None:
            if self._key(lhead) <= self._key(rhead):
                return left.pop()
            return right.pop()
        if lhead is not None and self._finished(right):
            return left.pop()
        if rhead is not None and self._finished(left):
            return right.pop()
        return None

    def _drain_eos(self) -> None:
        for chan in (self._left, self._right):
            if chan.at_eos() and not chan.exhausted():
                chan.pop()  # consume the EOS marker

    def step(self, budget_us: Optional[float]):
        elapsed = 0.0
        emissions: List[Callable[[], None]] = []
        out = self._out
        while self.has_work():
            self._drain_eos()
            element = self._take_next()
            if element is not None:
                elapsed += TASK_DISPATCH_US
                if self._pending is None:
                    self._pending = element
                elif self._key(self._pending) == self._key(element):
                    self._pending, ops = self._combine(self._pending, element)
                    elapsed += ops_to_us(ops)
                else:
                    done = self._pending
                    emissions.append(lambda r=done: out.push(r))
                    self._pending = element
                self.items_processed += 1
            elif self._left.exhausted() and self._right.exhausted():
                if self._pending is not None:
                    done = self._pending
                    emissions.append(lambda r=done: out.push(r))
                    self._pending = None
                emissions.append(out.close)
                self._done = True
                break
            else:
                break
            if budget_us == 0.0:
                break
            if budget_us is not None and elapsed >= budget_us:
                break
        self.busy_us += elapsed
        return elapsed, emissions
