"""Elastic core allocation: the *policy* half of overload survival.

The platform has always run a fixed worker set, so under sustained
open-loop overload the only possible outcome is unbounded queueing.
This module adds the first of two overload-survival policy planes
(:mod:`repro.runtime.admission` is the other): string-keyed *allocation
policies* that grow or shrink a scheduler's **active** worker set from
observed load, following the same policy/mechanism discipline as
:mod:`repro.runtime.policy` — the mechanism (worker park/unpark,
queue draining, the :class:`~repro.runtime.scheduler.AllocRecord` log)
lives in :class:`~repro.runtime.scheduler.Scheduler`; every *decision*
is delegated to an :class:`AllocationPolicy` through two hooks:

* ``target_workers(view)`` — how many workers should be active, given
  an :class:`AllocView` snapshot (active count, per-worker queue
  depths, the scheduler's :class:`~repro.sim.stats.SloScoreboard`);
  the mechanism clamps the answer into ``[1, cores]`` and applies at
  most one change per cooldown window;
* ``configure(config)`` — adopt platform tunables from a
  :class:`~repro.runtime.costs.RuntimeConfig` (e.g. the platform-wide
  SLO), mirroring the scheduling-policy hook of the same name.

Decisions are evaluated on deterministic **tick boundaries** (every
``tick_us`` of virtual time, at the first scheduler activity at or
after each boundary), and a change is only applied when ``cooldown_us``
has elapsed since the previous one — the mechanism-enforced hysteresis
that the conformance harness (``tests/test_allocator_invariants.py``)
checks from the alloc log.

Three policies ship built in: ``static`` (today's fixed worker set —
the default, and byte-identical to a scheduler with no allocator at
all), ``queue-depth`` (grow when the mean backlog per active worker
crosses a high watermark, shrink below a low one) and ``slo-headroom``
(grow when recently completed tasks ran close to their SLO, shrink when
they finished with ample headroom).  Like scheduling policies, unknown
names get near-miss suggestions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

from repro.core.errors import RuntimeFlickError
from repro.runtime.qos import closest_name


@dataclass(frozen=True)
class AllocView:
    """What an allocation policy may observe at one tick boundary.

    ``queue_depths`` is index-aligned with the scheduler's workers
    (parked workers included — their queues are drained at park time,
    so they read 0), and ``scoreboard`` is the live per-class SLO
    accounting; policies must treat both as read-only.
    """

    now_us: float
    active: int
    cores: int
    queue_depths: Tuple[int, ...]
    scoreboard: object

    @property
    def queued_tasks(self) -> int:
        return sum(self.queue_depths)


class AllocationPolicy:
    """Base class: keep every core active (subclasses override)."""

    #: Registry key; subclasses must override.
    name = "abstract"

    #: A static policy never changes the worker set; the scheduler
    #: skips the allocation tick machinery entirely, so its schedules
    #: are byte-identical to a scheduler built without an allocator.
    is_static = False

    def __init__(
        self,
        tick_us: float = 500.0,
        cooldown_us: float = 2_000.0,
    ):
        if tick_us <= 0:
            raise RuntimeFlickError(
                f"allocator tick must be positive, got {tick_us}"
            )
        if cooldown_us < 0:
            raise RuntimeFlickError(
                f"allocator cooldown must be >= 0, got {cooldown_us}"
            )
        #: Virtual µs between decision boundaries.
        self.tick_us = tick_us
        #: Minimum virtual µs between two *applied* changes
        #: (mechanism-enforced hysteresis).
        self.cooldown_us = cooldown_us

    def target_workers(self, view: AllocView) -> int:
        """How many workers should be active (clamped by the mechanism
        into ``[1, view.cores]``)."""
        raise NotImplementedError

    def configure(self, config) -> None:
        """Adopt platform tunables from a ``RuntimeConfig`` (duck-typed)."""

    def reset(self) -> None:
        """Drop learned state; called when a scheduler adopts the policy."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name!r}>"


# -- registry ----------------------------------------------------------------

_REGISTRY: Dict[str, Type[AllocationPolicy]] = {}


def register_allocator(cls: Type[AllocationPolicy]) -> Type[AllocationPolicy]:
    """Class decorator adding ``cls`` to the registry under ``cls.name``."""
    if not cls.name or cls.name == "abstract":
        raise RuntimeFlickError(f"allocator class {cls.__name__} needs a name")
    if cls.name in _REGISTRY:
        raise RuntimeFlickError(f"allocator {cls.name!r} registered twice")
    _REGISTRY[cls.name] = cls
    return cls


def registered_allocators() -> tuple:
    """All registered allocator names: ``static`` first, rest sorted."""
    extras = sorted(name for name in _REGISTRY if name != "static")
    return ("static",) + tuple(extras)


def closest_allocator_name(name: str) -> Optional[str]:
    """The registered name a typo most plausibly meant, or ``None``."""
    return closest_name(name, _REGISTRY)


def unknown_allocator_message(name: str) -> str:
    """Error text for an unregistered allocator name, with a near-miss."""
    message = (
        f"unknown core allocator {name!r}; registered: "
        f"{', '.join(sorted(_REGISTRY))}"
    )
    suggestion = closest_allocator_name(name)
    if suggestion is not None:
        message += f"; did you mean {suggestion!r}?"
    return message


def make_allocator(name: str, **kwargs) -> AllocationPolicy:
    """Instantiate the registered allocation policy ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise RuntimeFlickError(unknown_allocator_message(name)) from None
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise RuntimeFlickError(
            f"bad parameters for allocator {name!r}: {exc}"
        ) from None


def resolve_allocator(spec) -> AllocationPolicy:
    """Accept an allocator name or a ready instance; return an instance."""
    if isinstance(spec, AllocationPolicy):
        return spec
    if isinstance(spec, str):
        return make_allocator(spec)
    raise RuntimeFlickError(
        "allocator must be a name or AllocationPolicy, "
        f"got {type(spec).__name__}"
    )


# -- built-in policies --------------------------------------------------------


@register_allocator
class StaticAllocator(AllocationPolicy):
    """Today's behaviour: every core active for the whole run.

    The scheduler recognises ``is_static`` and skips the allocation
    tick machinery entirely, so a ``static`` run is byte-identical to
    one on a scheduler that predates elastic allocation.
    """

    name = "static"
    is_static = True

    def target_workers(self, view: AllocView) -> int:
        return view.cores


@register_allocator
class QueueDepthAllocator(AllocationPolicy):
    """Hysteresis on the mean backlog per active worker.

    Grow by one worker when the queued-task count per active worker
    exceeds ``high_per_worker``; shrink by one when it falls below
    ``low_per_worker``.  The watermark band is the policy-side
    hysteresis; the mechanism's cooldown bounds the change rate on top.
    """

    name = "queue-depth"

    def __init__(
        self,
        tick_us: float = 500.0,
        cooldown_us: float = 2_000.0,
        high_per_worker: float = 4.0,
        low_per_worker: float = 0.5,
    ):
        super().__init__(tick_us, cooldown_us)
        if not 0 <= low_per_worker < high_per_worker:
            raise RuntimeFlickError(
                "need 0 <= low_per_worker < high_per_worker, got "
                f"[{low_per_worker}, {high_per_worker}]"
            )
        self.high_per_worker = high_per_worker
        self.low_per_worker = low_per_worker

    def target_workers(self, view: AllocView) -> int:
        per_worker = view.queued_tasks / view.active
        if per_worker > self.high_per_worker:
            return view.active + 1
        if per_worker < self.low_per_worker:
            return view.active - 1
        return view.active


@register_allocator
class SloHeadroomAllocator(AllocationPolicy):
    """Grow/shrink from the SLO headroom of recently drained tasks.

    Each tick reads the scoreboard records completed since the previous
    tick and averages their ``latency / slo`` ratio (records without an
    SLO carry no signal).  A mean ratio above ``grow_at`` means tasks
    are running out of headroom — add a worker; a mean below
    ``shrink_at`` *and* a near-empty backlog means capacity is idle —
    retire one.  Ticks with no SLO-carrying completions keep the
    current allocation.
    """

    name = "slo-headroom"

    def __init__(
        self,
        tick_us: float = 500.0,
        cooldown_us: float = 2_000.0,
        grow_at: float = 0.8,
        shrink_at: float = 0.3,
    ):
        super().__init__(tick_us, cooldown_us)
        if not 0 < shrink_at < grow_at:
            raise RuntimeFlickError(
                f"need 0 < shrink_at < grow_at, got "
                f"[{shrink_at}, {grow_at}]"
            )
        self.grow_at = grow_at
        self.shrink_at = shrink_at
        self._seen_records = 0

    def reset(self) -> None:
        self._seen_records = 0

    def target_workers(self, view: AllocView) -> int:
        records = view.scoreboard.records
        fresh = records[self._seen_records:]
        self._seen_records = len(records)
        ratios = [
            r.latency_us / r.slo_us for r in fresh if r.slo_us is not None
        ]
        if not ratios:
            return view.active
        mean_ratio = sum(ratios) / len(ratios)
        if mean_ratio > self.grow_at:
            return view.active + 1
        if mean_ratio < self.shrink_at and view.queued_tasks <= view.active:
            return view.active - 1
        return view.active
