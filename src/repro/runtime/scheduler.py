"""Scheduling *mechanism* over simulated worker cores (section 5).

This module is the mechanism half of a policy/mechanism split: it owns
the workers, their FIFO task queues, sleep/wake bookkeeping and CPU cost
accounting, and delegates every scheduling *decision* — budget, home
placement, victim selection, local pick order, batching — to a
:class:`~repro.runtime.policy.SchedulingPolicy` object.  Policies are
selected by registry name (or passed as instances); the three paper
policies reproduce Figure 7 exactly, and new policies plug in without
touching this file.

Mechanism invariants, independent of policy:

* Workers are simulated processes pinned to the middlebox's cores; each
  owns one task queue.  A task is always enqueued on its home queue
  (cache affinity), which the policy chooses — by default a hash of the
  task id, as in the paper.
* An idle worker asks the policy for a steal victim, then sleeps until
  new work arrives; every steal is charged ``STEAL_US`` (plus the
  topology's per-hop penalty times the socket distance between thief
  and victim) and every scheduling decision ``SCHEDULE_US``, and is
  appended to :attr:`Scheduler.steal_log` for post-hoc analysis.  A
  policy may batch a steal (``steal_count``): the thief runs the first
  stolen task and moves the rest to its own queue, paying the steal
  cost once for the whole batch.
* A scheduled task runs until its ``step(budget)`` contract returns:
  ``budget`` is a float timeslice in virtual µs, ``0.0`` for one item,
  or ``None`` for run-to-completion — whatever the policy dictates.
* Timing fidelity: a task's outputs are *deferred* — ``step`` returns
  both the virtual time consumed and a list of emission thunks, which
  the worker executes only after the virtual time has elapsed, so
  downstream tasks can never observe data before the producing
  timeslice finished.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.core.errors import RuntimeFlickError
from repro.runtime.allocator import AllocView, resolve_allocator
from repro.runtime.costs import SCHEDULE_US, STEAL_US
from repro.runtime.policy import resolve_policy
from repro.sim.engine import Engine, Event
from repro.sim.stats import SloScoreboard

# Task scheduling states.
IDLE = 0
QUEUED = 1
RUNNING = 2


@dataclass(frozen=True)
class StealRecord:
    """One steal operation, as the mechanism performed and priced it.

    ``queue_lens`` snapshots every worker's queue length at the moment
    the policy chose the victim (before any task moved), so tests can
    reconstruct what the thief could see — e.g. that a hierarchical
    policy really stole from the nearest non-empty socket.  It is
    captured only on topological schedulers (empty tuple on flat ones),
    keeping the flat steal path free of the O(cores) walk.  ``hops`` is
    the socket distance the steal crossed (0 on-socket) and ``cost_us``
    the full charge: ``STEAL_US`` plus ``hops`` x the topology's per-hop
    penalty.
    """

    thief: int
    victim: int
    thief_socket: int
    victim_socket: int
    tasks: int
    hops: int
    cost_us: float
    queue_lens: Tuple[int, ...]


@dataclass(frozen=True)
class AllocRecord:
    """One applied core-allocation change, as the mechanism performed it.

    The analogue of :class:`StealRecord` for the allocation plane:
    ``active_before``/``active_after`` are the active worker index sets
    around the change, ``parked``/``unparked`` the indices that moved
    between them, ``moved_tasks`` how many queued tasks the mechanism
    re-homed off parked workers, and ``queue_depths`` every worker's
    queue length at the moment the policy decided (so tests can
    reconstruct what the policy saw and replay the log into the final
    active set).
    """

    at_us: float
    active_before: Tuple[int, ...]
    active_after: Tuple[int, ...]
    parked: Tuple[int, ...]
    unparked: Tuple[int, ...]
    moved_tasks: int
    queue_depths: Tuple[int, ...]


class _Worker:
    __slots__ = (
        "index",
        "socket",
        "queue",
        "wake",
        "sleeping",
        "active",
        "busy_us",
        "steals",
        "stolen_tasks",
        "steal_us",
    )

    def __init__(self, index: int, socket: int = 0):
        self.index = index
        self.socket = socket
        self.queue: Deque = deque()
        self.wake: Optional[Event] = None
        self.sleeping = False
        self.active = True
        self.busy_us = 0.0
        self.steals = 0
        self.stolen_tasks = 0
        self.steal_us = 0.0


class Scheduler:
    """Scheduling mechanism running task objects on N simulated cores.

    ``policy`` may be a registered policy name (see
    :func:`repro.runtime.policy.registered_policies`) or a
    :class:`~repro.runtime.policy.SchedulingPolicy` instance.  A name is
    instantiated with ``timeslice_us``; an instance keeps its own
    timeslice (set it on the instance), and ``self.timeslice_us`` always
    reports the effective value.

    ``topology`` (a :class:`~repro.net.stackprofiles.CoreTopology`, a
    registered topology name, or ``None`` for the flat default) labels
    each worker with its socket and prices cross-socket steals; the
    ``numa`` policy consumes the labels to keep work on-socket.

    ``allocator`` (a registered allocator name — see
    :func:`repro.runtime.allocator.registered_allocators` — or an
    :class:`~repro.runtime.allocator.AllocationPolicy` instance) elects
    how many of the ``cores`` workers are *active*.  The mechanism here
    evaluates the policy on deterministic tick boundaries, parks the
    highest-index workers first and unparks the lowest-index parked
    workers first (so the active set is always the worker prefix),
    drains a parked worker's queue back onto active workers, and logs
    every applied change as an :class:`AllocRecord` in
    :attr:`alloc_log`.  The default ``static`` allocator disables the
    tick machinery entirely and is byte-identical to pre-allocator
    schedulers.
    """

    def __init__(
        self,
        engine: Engine,
        cores: int,
        timeslice_us: float = 50.0,
        policy="cooperative",
        topology=None,
        allocator="static",
    ):
        if cores < 1:
            raise RuntimeFlickError("scheduler needs at least one core")
        if isinstance(topology, str):
            # Imported here, not at module load: net is a sibling layer
            # and only this optional feature reaches into it.
            from repro.net.stackprofiles import core_topology

            try:
                topology = core_topology(topology)
            except KeyError as exc:
                raise RuntimeFlickError(str(exc.args[0])) from None
        self.engine = engine
        self.cores = cores
        self.topology = topology
        self.policy = resolve_policy(policy, timeslice_us)
        # The policy's timeslice is the effective one: a passed-in
        # instance keeps the budget it was built with, and this
        # attribute must not misreport it.
        self.timeslice_us = self.policy.timeslice_us
        bound = self.policy._bound_engine
        if bound is engine or (bound is not None and bound.pending() > 0):
            # Two live schedulers must not share one policy's mutable
            # state — neither in the same simulation nor across engines
            # that still have events in flight.  (Sequential reuse —
            # the previous engine fully ran — is fine and resets below.)
            raise RuntimeFlickError(
                f"policy instance {self.policy!r} is already used by "
                "another live scheduler; pass a fresh instance or a "
                "policy name"
            )
        self.policy._bound_engine = engine
        # Topology-aware policies (numa's hierarchical stealing) read
        # socket distances through this binding; flat schedulers bind
        # None and the policies degenerate to 0/1 socket distances.
        self.policy._bound_topology = topology
        self.policy.reset()  # a reused instance must not carry over state
        self.policy_name = self.policy.name
        # Bound policy hooks, cached once: these run on every scheduling
        # decision and every enqueue.
        self._place = self.policy.place
        self._next_local = self.policy.next_local
        self._select_victim = self.policy.select_victim
        self._steal_count = self.policy.steal_count
        self._workers = [
            _Worker(i, topology.socket_of(i) if topology else 0)
            for i in range(cores)
        ]
        self.allocator = resolve_allocator(allocator)
        self.allocator.reset()  # a reused instance must not carry state
        self.allocator_name = self.allocator.name
        if self.allocator.is_static:
            # Byte-identity contract: `_active` *is* the worker list, so
            # placement and victim selection see the exact object a
            # pre-allocator scheduler would (NumA's group cache included)
            # and no tick ever runs.
            self._active = self._workers
            self._alloc_enabled = False
        else:
            self._active = list(self._workers)
            self._alloc_enabled = True
        self._next_alloc_at = self.allocator.tick_us
        self._last_alloc_change_at = -math.inf
        self._started = False
        self.tasks_executed = 0
        #: One :class:`StealRecord` per steal operation, in order.
        self.steal_log: list = []
        #: One :class:`AllocRecord` per applied allocation change.
        self.alloc_log: list = []
        #: Per-service-class completion/latency/SLO-miss accounting.
        self.scoreboard = SloScoreboard()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for worker in self._workers:
            self.engine.process(self._worker_loop(worker))

    @property
    def active_workers(self) -> int:
        """How many workers are currently unparked."""
        return len(self._active)

    def active_worker_indices(self) -> Tuple[int, ...]:
        """Indices of the currently active workers, ascending."""
        return tuple(w.index for w in self._active)

    def queue_depths(self) -> Tuple[int, ...]:
        """Per-worker queue lengths, index-aligned with the workers.

        Parked workers read 0 (their queues drain at park time).  This
        is the same snapshot the allocation tick hands to
        :class:`~repro.runtime.allocator.AllocView`; the cluster tier's
        routing policies read it cross-shard as a backlog signal.
        """
        return tuple(len(w.queue) for w in self._workers)

    @property
    def total_busy_us(self) -> float:
        return sum(w.busy_us for w in self._workers)

    @property
    def total_steals(self) -> int:
        """Steal operations across all workers (a batch counts once)."""
        return sum(w.steals for w in self._workers)

    @property
    def total_stolen_tasks(self) -> int:
        """Tasks moved between queues by steals (batches count fully)."""
        return sum(w.stolen_tasks for w in self._workers)

    @property
    def total_steal_us(self) -> float:
        """Total steal cost charged, including cross-socket penalties."""
        return sum(w.steal_us for w in self._workers)

    def utilisation(self, duration_us: float) -> float:
        if duration_us <= 0:
            return 0.0
        return self.total_busy_us / (duration_us * self.cores)

    # -- task admission -----------------------------------------------------------

    def home_worker(self, task) -> _Worker:
        """The worker queue this task is enqueued on (policy ``place``)."""
        return self._place(task, self._active)

    def notify_runnable(self, task) -> None:
        """Called when a task gains input; enqueues it exactly once."""
        if self._alloc_enabled and self.engine.now >= self._next_alloc_at:
            self._allocation_tick()
        if task.sched_state == QUEUED:
            return
        if task.sched_state == RUNNING:
            task.pending_wakeup = True
            return
        if task.admitted_at is None:
            # The SLO clock starts here and runs until the task drains
            # (one scoreboard "busy period"), mirroring the deadline
            # policy's admission-to-drain EDF clock.
            task.admitted_at = self.engine.now
        task.sched_state = QUEUED
        worker = self.home_worker(task)
        worker.queue.append(task)
        self._wake(worker)

    def _wake(self, preferred: _Worker) -> None:
        if preferred.sleeping:
            preferred.sleeping = False
            wake, preferred.wake = preferred.wake, None
            wake.trigger()
            return
        # Home worker is busy: rouse one sleeping worker so it can
        # steal.  Parked workers stay asleep — only an allocation
        # change may resume them.
        for worker in self._active:
            if worker.sleeping:
                worker.sleeping = False
                wake, worker.wake = worker.wake, None
                wake.trigger()
                return

    # -- elastic core allocation ----------------------------------------------

    def _allocation_tick(self) -> None:
        """Evaluate the allocation policy at a due tick boundary.

        Runs lazily from scheduler activity (admission and the worker
        loop) at the first event at-or-after each ``tick_us`` boundary —
        a perpetual ticker process would keep the event engine alive
        forever, so the mechanism never self-schedules.
        """
        now = self.engine.now
        tick = self.allocator.tick_us
        # Catch up past idle gaps: the next boundary is strictly ahead.
        self._next_alloc_at = (math.floor(now / tick) + 1.0) * tick
        if now - self._last_alloc_change_at < self.allocator.cooldown_us:
            return
        queue_depths = self.queue_depths()
        view = AllocView(
            now_us=now,
            active=len(self._active),
            cores=self.cores,
            queue_depths=queue_depths,
            scoreboard=self.scoreboard,
        )
        target = max(1, min(self.cores, int(self.allocator.target_workers(view))))
        current = len(self._active)
        if target == current:
            return
        before = self.active_worker_indices()
        moved = 0
        if target < current:
            # Park highest-index actives first; the active set stays the
            # worker prefix, so grow/shrink are exact inverses.
            for worker in self._workers[target:current]:
                worker.active = False
                moved += self._drain_parked(worker, target)
        else:
            for worker in self._workers[current:target]:
                worker.active = True
        # A fresh list object exactly when membership changes: policies
        # that cache per-worker-set state by identity (numa's socket
        # groups) rebuild once per change instead of every placement.
        self._active = self._workers[:target]
        if target > current and self._started:
            for worker in self._workers[current:target]:
                if worker.sleeping:
                    worker.sleeping = False
                    wake, worker.wake = worker.wake, None
                    wake.trigger()
        self._last_alloc_change_at = now
        self.alloc_log.append(
            AllocRecord(
                at_us=now,
                active_before=before,
                active_after=self.active_worker_indices(),
                parked=tuple(w.index for w in self._workers[target:current]),
                unparked=tuple(w.index for w in self._workers[current:target]),
                moved_tasks=moved,
                queue_depths=queue_depths,
            )
        )

    def _drain_parked(self, worker: _Worker, target: int) -> int:
        """Re-home a parked worker's queue onto the surviving actives."""
        survivors = self._workers[:target]
        moved = 0
        while worker.queue:
            task = worker.queue.popleft()
            new_home = self._place(task, survivors)
            new_home.queue.append(task)
            moved += 1
            if new_home.sleeping:
                new_home.sleeping = False
                wake, new_home.wake = new_home.wake, None
                wake.trigger()
        return moved

    # -- worker loop -----------------------------------------------------------------

    def _worker_loop(self, worker: _Worker):
        engine = self.engine
        timeout = engine.timeout
        policy = self.policy
        budget_of = policy.budget
        steps_of = policy.steps_per_decision
        decision_done = policy.on_task_done
        next_task = self._next_task
        notify_runnable = self.notify_runnable
        while True:
            if self._alloc_enabled:
                if engine.now >= self._next_alloc_at:
                    self._allocation_tick()
                if not worker.active:
                    # Parked: queue already drained, nothing new can be
                    # placed here, and _wake skips parked workers — only
                    # an unpark triggers this event.
                    worker.sleeping = True
                    worker.wake = wake = engine.event()
                    yield wake
                    continue
            task, steal_us = next_task(worker)
            if task is None:
                worker.sleeping = True
                worker.wake = wake = engine.event()
                yield wake
                continue
            task.sched_state = RUNNING
            task.pending_wakeup = False
            elapsed, emissions = task.step(budget_of(task))
            extra_steps = steps_of(task) - 1
            while extra_steps > 0 and task.has_work():
                extra_steps -= 1
                more_us, more_emissions = task.step(budget_of(task))
                elapsed += more_us
                emissions += more_emissions
            cost = elapsed + SCHEDULE_US + steal_us
            worker.busy_us += cost
            self.tasks_executed += 1
            decision_done(task, worker, elapsed)
            if cost > 0:
                yield timeout(cost)
            for emit in emissions:
                emit()
            task.sched_state = IDLE
            if task.has_work() or task.pending_wakeup:
                task.pending_wakeup = False
                notify_runnable(task)
            else:
                self._record_completion(task)

    def _record_completion(self, task) -> None:
        """A task drained: close its busy period on the scoreboard."""
        admitted = task.admitted_at
        if admitted is None:
            return
        task.admitted_at = None
        service_class = task.service_class
        self.scoreboard.record(
            task_id=task.task_id,
            task=task.name,
            service_class=(
                service_class.name if service_class is not None else "default"
            ),
            admitted_us=admitted,
            completed_us=self.engine.now,
            slo_us=getattr(task, "slo_us", None),
        )

    def _next_task(self, worker: _Worker):
        """Next task for ``worker`` plus the steal cost it incurred (µs)."""
        if worker.queue:
            return self._next_local(worker), 0.0
        victim = self._select_victim(worker, self._active)
        if victim is not None and victim.queue:
            topology = self.topology
            # Snapshot before any task moves: the steal log must show
            # what the policy's victim choice was made against.  The
            # O(cores) walk is only paid on topological schedulers,
            # where steal distance is a property worth reconstructing;
            # flat schedulers log the steal with an empty snapshot.
            queue_lens = (
                tuple(len(w.queue) for w in self._workers)
                if topology is not None
                else ()
            )
            count = max(
                1, min(int(self._steal_count(worker, victim)),
                       len(victim.queue))
            )
            task = victim.queue.popleft()
            # Batch steal: the rest of the batch migrates to the thief's
            # queue (still QUEUED — they only changed queues) and the
            # steal cost is paid once for all of them.
            for _ in range(count - 1):
                worker.queue.append(victim.queue.popleft())
            cost = STEAL_US
            hops = 0
            if topology is not None and worker.socket != victim.socket:
                hops = topology.socket_hops(worker.socket, victim.socket)
                cost += hops * topology.remote_steal_penalty_us
            worker.steals += 1
            worker.stolen_tasks += count
            worker.steal_us += cost
            self.steal_log.append(
                StealRecord(
                    thief=worker.index,
                    victim=victim.index,
                    thief_socket=worker.socket,
                    victim_socket=victim.socket,
                    tasks=count,
                    hops=hops,
                    cost_us=cost,
                    queue_lens=queue_lens,
                )
            )
            return task, cost
        return None, 0.0


class TaskBase:
    """Minimal scheduling contract every task implements.

    Subclasses provide ``has_work`` and ``step(budget_us)``; ``step``
    returns ``(virtual_us_consumed, emission_thunks)`` and must respect
    the budget: ``None`` = run to completion, ``0`` = one item.

    ``home_hint``, when set, pins the task to a worker index (modulo the
    core count) instead of hash placement — used by dispatch tasks and
    microbenchmarks that need controlled placement.
    """

    _ids = itertools.count(1)

    #: Optional worker-index pin honoured by the default placement policy.
    home_hint: Optional[int] = None

    #: Service class (a :class:`~repro.runtime.qos.ServiceClass`) the
    #: task graph stamped on this task; ``None`` = unclassified, pooled
    #: under the scoreboard's "default" class.
    service_class = None

    #: When the current busy period was admitted (scheduler-maintained;
    #: ``None`` while drained).  Feeds the SLO scoreboard.
    admitted_at: Optional[float] = None

    def __init__(self, name: str):
        self.name = name
        self.task_id = next(TaskBase._ids)
        self.sched_state = IDLE
        self.pending_wakeup = False
        self.items_processed = 0
        self.busy_us = 0.0

    @classmethod
    def reset_ids(cls, start: int = 1) -> None:
        """Restart id allocation (deterministic placement per run).

        Ids drive hash placement and key adaptive policy state (e.g.
        priority's per-task cost map), so they must stay unique among
        tasks sharing a scheduler.  Reset only between runs — never
        while a scheduler with live tasks will still create more — so
        placement doesn't depend on how many tasks earlier runs created.
        Callers that reset around a scoped run should restore
        monotonicity afterwards (see ``run_scheduling_experiment``).
        """
        cls._ids = itertools.count(start)

    def has_work(self) -> bool:
        raise NotImplementedError

    def step(self, budget_us: Optional[float]):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name} #{self.task_id}>"
