"""Cooperative task scheduler over simulated worker cores (section 5).

Workers are simulated processes pinned to the middlebox's cores.  Each
worker owns a FIFO task queue; a task's home worker is chosen by hashing
its id, so a task is always enqueued on the same queue (cache affinity,
as in the paper).  Idle workers scavenge work from the longest foreign
queue, then sleep until new work arrives.

A scheduled task runs until its input is drained or it exceeds the
timeslice threshold (10-100 µs); the generated code guarantees re-entry
into the scheduler, which here is the ``step(budget)`` contract every
task implements.  Three policies reproduce Figure 7:

* ``cooperative`` — fixed timeslice budget (FLICK's policy);
* ``non_cooperative`` — a scheduled task runs to completion;
* ``round_robin`` — one data item per scheduling decision.

Timing fidelity: a task's outputs are *deferred* — ``step`` returns both
the virtual time consumed and a list of emission thunks, which the worker
executes only after the virtual time has elapsed.  Downstream tasks can
therefore never observe data before the producing timeslice finished.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.core.errors import RuntimeFlickError
from repro.core.ids import stable_hash
from repro.runtime.costs import SCHEDULE_US, STEAL_US
from repro.sim.engine import Engine, Event

# Task scheduling states.
IDLE = 0
QUEUED = 1
RUNNING = 2


class _Worker:
    __slots__ = ("index", "queue", "wake", "sleeping", "busy_us", "steals")

    def __init__(self, index: int):
        self.index = index
        self.queue: Deque = deque()
        self.wake: Optional[Event] = None
        self.sleeping = False
        self.busy_us = 0.0
        self.steals = 0


class Scheduler:
    """Cooperative scheduler running task objects on N simulated cores."""

    def __init__(
        self,
        engine: Engine,
        cores: int,
        timeslice_us: float = 50.0,
        policy: str = "cooperative",
    ):
        if cores < 1:
            raise RuntimeFlickError("scheduler needs at least one core")
        if policy not in ("cooperative", "non_cooperative", "round_robin"):
            raise RuntimeFlickError(f"unknown scheduling policy {policy!r}")
        self.engine = engine
        self.cores = cores
        self.timeslice_us = timeslice_us
        self.policy = policy
        self._workers = [_Worker(i) for i in range(cores)]
        self._started = False
        self.tasks_executed = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for worker in self._workers:
            self.engine.process(self._worker_loop(worker))

    @property
    def total_busy_us(self) -> float:
        return sum(w.busy_us for w in self._workers)

    def utilisation(self, duration_us: float) -> float:
        if duration_us <= 0:
            return 0.0
        return self.total_busy_us / (duration_us * self.cores)

    # -- task admission -----------------------------------------------------------

    def home_worker(self, task) -> _Worker:
        # "a hash over this identifier determines which worker's task
        # queue the task should be assigned to" (section 5).  A task may
        # carry an explicit ``home_hint`` (used by microbenchmarks that
        # need controlled placement).
        hint = getattr(task, "home_hint", None)
        if hint is not None:
            return self._workers[hint % self.cores]
        return self._workers[stable_hash(task.task_id) % self.cores]

    def notify_runnable(self, task) -> None:
        """Called when a task gains input; enqueues it exactly once."""
        if task.sched_state == QUEUED:
            return
        if task.sched_state == RUNNING:
            task.pending_wakeup = True
            return
        task.sched_state = QUEUED
        worker = self.home_worker(task)
        worker.queue.append(task)
        self._wake(worker)

    def _wake(self, preferred: _Worker) -> None:
        if preferred.sleeping:
            preferred.sleeping = False
            wake, preferred.wake = preferred.wake, None
            wake.trigger()
            return
        # Home worker is busy: rouse one sleeping worker so it can steal.
        for worker in self._workers:
            if worker.sleeping:
                worker.sleeping = False
                wake, worker.wake = worker.wake, None
                wake.trigger()
                return

    # -- worker loop -----------------------------------------------------------------

    def _budget(self) -> Optional[float]:
        if self.policy == "cooperative":
            return self.timeslice_us
        if self.policy == "round_robin":
            return 0.0  # exactly one item
        return None  # non-cooperative: run to completion

    def _worker_loop(self, worker: _Worker):
        engine = self.engine
        while True:
            task, stolen = self._next_task(worker)
            if task is None:
                worker.sleeping = True
                worker.wake = engine.event()
                yield worker.wake
                continue
            task.sched_state = RUNNING
            task.pending_wakeup = False
            elapsed, emissions = task.step(self._budget())
            cost = elapsed + SCHEDULE_US + (STEAL_US if stolen else 0.0)
            worker.busy_us += cost
            self.tasks_executed += 1
            if cost > 0:
                yield engine.timeout(cost)
            for emit in emissions:
                emit()
            task.sched_state = IDLE
            if task.has_work() or task.pending_wakeup:
                task.pending_wakeup = False
                self.notify_runnable(task)

    def _next_task(self, worker: _Worker):
        if worker.queue:
            return worker.queue.popleft(), False
        # Scavenge from the longest foreign queue.
        victim = None
        for other in self._workers:
            if other is not worker and other.queue:
                if victim is None or len(other.queue) > len(victim.queue):
                    victim = other
        if victim is not None:
            worker.steals += 1
            return victim.queue.popleft(), True
        return None, False


class TaskBase:
    """Minimal scheduling contract every task implements.

    Subclasses provide ``has_work`` and ``step(budget_us)``; ``step``
    returns ``(virtual_us_consumed, emission_thunks)`` and must respect
    the budget: ``None`` = run to completion, ``0`` = one item.
    """

    _ids = iter(range(1, 1 << 62))

    def __init__(self, name: str):
        self.name = name
        self.task_id = next(TaskBase._ids)
        self.sched_state = IDLE
        self.pending_wakeup = False
        self.items_processed = 0
        self.busy_us = 0.0

    def has_work(self) -> bool:
        raise NotImplementedError

    def step(self, budget_us: Optional[float]):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name} #{self.task_id}>"
