"""CPU cost model for task execution (virtual µs).

The compiler-generated C++ of the paper becomes interpreted Python here,
so absolute speed is meaningless; instead every task reports abstract
*ops* (interpreter operations, parser field/byte work) and this module
converts ops to virtual microseconds on the simulated middlebox cores.

``OP_US`` is calibrated so that the end-to-end per-request CPU cost of
the static web server (parse + compute + serialise + stack ops) lands
near the paper's measured peak (~306k requests/s on 16 cores with the
kernel stack, i.e. ~52 µs of CPU per request).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Virtual µs charged per abstract interpreter/parser op.
OP_US = 2.3

#: Fixed cost of dispatching one message into a task (queue pop, state).
TASK_DISPATCH_US = 0.5

#: Cost of a scheduling decision (dequeue from worker queue, bookkeeping).
SCHEDULE_US = 0.4

#: Cost to steal work from another worker's queue.
STEAL_US = 0.9

#: Cost to construct a task graph when the pre-allocated pool is empty.
GRAPH_BUILD_US = 35.0

#: Cost to reset + recycle a pooled task graph.
GRAPH_RECYCLE_US = 3.0


def ops_to_us(ops: float) -> float:
    """Convert abstract ops to virtual microseconds."""
    return ops * OP_US


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunables of one FLICK platform instance.

    ``timeslice_us`` is the cooperative scheduling quantum (section 5:
    "typically 10-100 µs").  ``policy`` selects a scheduling policy by
    registry name (any name in
    :func:`repro.runtime.policy.registered_policies` — the paper's
    'cooperative', 'non_cooperative' and 'round_robin' plus the
    extensions) or is a ready :class:`~repro.runtime.policy.\
SchedulingPolicy` instance for custom parameters.

    ``slo_us`` is the per-connection service-level objective: the task
    graph stamps it on every task of an accepted connection, and the
    'deadline' policy turns it into an EDF deadline at admission
    (``None`` leaves the policy's default SLO in force).
    ``service_classes`` refines that single value into per-endpoint QoS
    tiers: a :class:`~repro.runtime.qos.ServiceClassMap` (or a dict of
    endpoint → class shorthand, normalised here) whose classes the task
    graph stamps per endpoint, classified tasks overriding the
    platform-wide ``slo_us``.  ``topology`` is a
    :class:`~repro.net.stackprofiles.CoreTopology`, a registered
    topology name ('uniform', 'two-socket', 'four-socket'), or ``None``
    for the flat single-socket default; it prices cross-socket steals
    (per interconnect hop) and feeds the 'numa' policy's placement.

    ``exec_tier`` selects how handler bodies execute: 'compiled'
    (default) runs generated Python from ``repro.lang.codegen``;
    'interp' runs the AST-walking interpreter, which remains the
    semantic oracle.  Both tiers produce identical values and identical
    abstract op counts, so the choice changes wall-clock speed only —
    never any simulated result.

    ``allocator`` selects the elastic core-allocation policy by
    registry name (:func:`repro.runtime.allocator.registered_allocators`
    — 'static' keeps every core active, today's behaviour) or is a
    ready :class:`~repro.runtime.allocator.AllocationPolicy` instance.
    ``admission`` names the per-service-class admission-control policy
    (:func:`repro.runtime.admission.registered_admissions` —
    'admit-all', 'shed-bronze', 'token-bucket') applied by open-loop
    workload generators in front of this platform; the platform itself
    only accounts the sheds, so the field exists to thread one config
    through testbeds.

    ``backend_close_teardown`` makes a backend-side connection EOF tear
    down the whole serving task graph (client connection included).
    Default ``False`` — the paper's platform only tears down on client
    EOF — but backend fault injectors (``flapping-backend``) need it:
    without it a request in flight to a dying backend black-holes, the
    client waits forever, and the run never drains.
    """

    cores: int = 16
    timeslice_us: float = 50.0
    policy: object = "cooperative"
    slo_us: Optional[float] = None
    service_classes: object = None
    topology: object = None
    stack: str = "kernel"
    graph_pool_size: int = 512
    channel_capacity: int = 4096
    buffer_pool_bytes: int = 64 * 1024 * 1024
    buffer_size: int = 16 * 1024
    exec_tier: str = "compiled"
    allocator: object = "static"
    admission: object = "admit-all"
    backend_close_teardown: bool = False

    def __post_init__(self):
        if not isinstance(self.backend_close_teardown, bool):
            raise ValueError(
                "backend_close_teardown must be a bool, got "
                f"{type(self.backend_close_teardown).__name__}"
            )
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.exec_tier not in ("interp", "compiled"):
            raise ValueError(
                "exec_tier must be 'interp' or 'compiled', "
                f"got {self.exec_tier!r}"
            )
        if self.timeslice_us <= 0:
            raise ValueError("timeslice must be positive")
        if self.slo_us is not None and self.slo_us <= 0:
            raise ValueError(f"slo_us must be positive, got {self.slo_us}")
        if self.service_classes is not None:
            from repro.core.errors import ConfigError
            from repro.runtime.qos import ServiceClassMap

            try:
                normalized = ServiceClassMap.from_spec(self.service_classes)
            except ConfigError as exc:
                raise ValueError(str(exc)) from None
            # Frozen dataclass: normalisation has to go through
            # object.__setattr__, the same escape hatch dataclasses use.
            object.__setattr__(self, "service_classes", normalized)
        # Imported lazily: this module is a leaf dependency of the
        # runtime package and must not import it at load time.
        from repro.runtime.policy import SchedulingPolicy, registered_policies

        if isinstance(self.policy, str):
            if self.policy not in registered_policies():
                raise ValueError(
                    f"unknown scheduling policy {self.policy!r}; "
                    f"registered: {', '.join(registered_policies())}"
                )
        elif not isinstance(self.policy, SchedulingPolicy):
            raise ValueError(
                "policy must be a registered name or a SchedulingPolicy, "
                f"got {type(self.policy).__name__}"
            )
        if self.topology is not None:
            from repro.net.stackprofiles import CoreTopology, core_topology

            if isinstance(self.topology, str):
                try:
                    core_topology(self.topology)
                except KeyError as exc:
                    raise ValueError(str(exc.args[0])) from None
            elif not isinstance(self.topology, CoreTopology):
                raise ValueError(
                    "topology must be a registered name or a CoreTopology, "
                    f"got {type(self.topology).__name__}"
                )
        from repro.runtime.allocator import (
            AllocationPolicy,
            registered_allocators,
            unknown_allocator_message,
        )

        if isinstance(self.allocator, str):
            if self.allocator not in registered_allocators():
                raise ValueError(unknown_allocator_message(self.allocator))
        elif not isinstance(self.allocator, AllocationPolicy):
            raise ValueError(
                "allocator must be a registered name or an "
                f"AllocationPolicy, got {type(self.allocator).__name__}"
            )
        from repro.runtime.admission import (
            AdmissionPolicy,
            registered_admissions,
            unknown_admission_message,
        )

        if isinstance(self.admission, str):
            if self.admission not in registered_admissions():
                raise ValueError(unknown_admission_message(self.admission))
        elif not isinstance(self.admission, AdmissionPolicy):
            raise ValueError(
                "admission must be a registered name or an "
                f"AdmissionPolicy, got {type(self.admission).__name__}"
            )
