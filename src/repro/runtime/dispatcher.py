"""Application and graph dispatchers (section 5, items (i) and (ii)).

The **application dispatcher** owns the listening socket of a program
instance and maps incoming connections to it; accepting a connection is
CPU work (``stack.accept_us``) performed by :class:`DispatcherTask`
objects on the scheduler — one per core, mirroring SO_REUSEPORT-style
accept spreading (mTCP gives this per-core naturally).

The **graph dispatcher** assigns each accepted connection a task graph,
reusing a graph from the pre-allocated pool when possible; a pool miss
pays the full construction cost (``GRAPH_BUILD_US`` vs
``GRAPH_RECYCLE_US``), which the pool-ablation benchmark measures.
For foldt programs it gathers ``group_size`` connections (the mappers)
into one graph per reducer.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional

from repro.runtime.costs import GRAPH_BUILD_US, GRAPH_RECYCLE_US
from repro.runtime.scheduler import TaskBase


class GraphPool:
    """Pre-allocated pool of task graphs, modelled as a credit counter."""

    def __init__(self, size: int):
        self.capacity = size
        self._available = size
        self.hits = 0
        self.misses = 0

    def take(self) -> bool:
        """True (and a recycle-cost assignment) when the pool has a graph."""
        if self._available > 0:
            self._available -= 1
            self.hits += 1
            return True
        self.misses += 1
        return False

    def give_back(self) -> None:
        if self._available < self.capacity:
            self._available += 1

    @property
    def available(self) -> int:
        return self._available


class GraphDispatcher:
    """Assigns connections to graphs; pools finished graphs."""

    def __init__(
        self,
        build_graph: Callable[[], object],
        pool_size: int,
        group_size: int = 1,
        sink_connector: Optional[Callable[[Callable], None]] = None,
    ):
        self._build_graph = build_graph
        self.pool = GraphPool(pool_size)
        self.group_size = group_size
        self._sink_connector = sink_connector
        self._pending_group: List = []
        self.active_graphs = 0
        self.total_graphs = 0

    def assign_cost_us(self) -> float:
        """CPU cost of the next assignment (pool hit vs miss)."""
        return GRAPH_RECYCLE_US if self.pool.take() else GRAPH_BUILD_US

    def assign(self, socket) -> None:
        """Attach ``socket`` to a (possibly new) task graph.

        Rule programs get one graph per connection; foldt programs (those
        with a sink connector) gather ``group_size`` connections — the
        mappers — into one combine-tree graph per reducer.
        """
        if self._sink_connector is None:
            graph = self._build_graph()
            self.active_graphs += 1
            self.total_graphs += 1
            graph.bind_client(socket)
            return
        self._pending_group.append(socket)
        if len(self._pending_group) < max(1, self.group_size):
            return
        sockets, self._pending_group = self._pending_group, []
        graph = self._build_graph()
        self.active_graphs += 1
        self.total_graphs += 1
        self._sink_connector(
            lambda sink_socket: graph.bind_group(sockets, sink_socket)
        )

    def graph_finished(self, graph) -> None:
        self.active_graphs -= 1
        self.pool.give_back()


class DispatcherTask(TaskBase):
    """Scheduler task that performs accept + graph assignment work.

    ``home_hint`` pins the task to one worker through the scheduling
    policy's ``place`` hook — the platform creates one dispatch task per
    core and pins each to its core (SO_REUSEPORT-style accept
    spreading), rather than leaving placement to the id hash.
    """

    def __init__(
        self,
        name: str,
        graph_dispatcher: GraphDispatcher,
        accept_cost: Callable[[], float],
        home_hint: Optional[int] = None,
    ):
        super().__init__(name)
        self._dispatcher = graph_dispatcher
        self._accept_cost = accept_cost
        self.home_hint = home_hint
        self._pending = deque()

    def enqueue(self, socket) -> None:
        self._pending.append(socket)

    def has_work(self) -> bool:
        return bool(self._pending)

    def step(self, budget_us: Optional[float]):
        elapsed = 0.0
        emissions: List[Callable[[], None]] = []
        dispatcher = self._dispatcher
        while self._pending:
            socket = self._pending.popleft()
            elapsed += self._accept_cost() + dispatcher.assign_cost_us()
            emissions.append(lambda s=socket: dispatcher.assign(s))
            self.items_processed += 1
            if budget_us == 0.0:
                break
            if budget_us is not None and elapsed >= budget_us:
                break
        self.busy_us += elapsed
        return elapsed, emissions
