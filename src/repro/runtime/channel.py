"""Task channels: bounded FIFO queues between tasks of a task graph.

A channel connects exactly one producer to one consumer task.  Pushing
makes the consumer runnable (via the scheduler callback installed by the
task graph); capacity is finite so the graphs of section 5 have bounded
memory, and producers must check :meth:`has_space` — input tasks stop
draining their socket when downstream is full, which is the platform's
backpressure mechanism.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.core.errors import ChannelClosed, ChannelFull

#: Sentinel queued to signal end-of-stream to the consumer.
EOS = object()


class TaskChannel:
    """Bounded single-producer/single-consumer queue of messages."""

    def __init__(self, name: str, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._queue: Deque = deque()
        self._closed = False
        self._eos_delivered = False
        self.on_runnable: Optional[Callable[[], None]] = None
        self.high_water = 0

    # -- producer side ------------------------------------------------------

    def has_space(self) -> bool:
        return len(self._queue) < self.capacity

    def push(self, item) -> None:
        if self._closed:
            raise ChannelClosed(f"push into closed channel {self.name!r}")
        if len(self._queue) >= self.capacity:
            raise ChannelFull(
                f"channel {self.name!r} is full ({self.capacity} items)"
            )
        self._queue.append(item)
        self.high_water = max(self.high_water, len(self._queue))
        if self.on_runnable is not None:
            self.on_runnable()

    def close(self) -> None:
        """Producer is done; consumer sees EOS after draining."""
        if self._closed:
            return
        self._closed = True
        self._queue.append(EOS)
        if self.on_runnable is not None:
            self.on_runnable()

    # -- consumer side ----------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for item in self._queue if item is not EOS)

    def ready(self) -> bool:
        """True if a data item (not EOS) is available."""
        return len(self) > 0

    def empty(self) -> bool:
        return not self._queue

    def peek(self):
        """The next data item, or None (EOS is not peekable)."""
        if self._queue and self._queue[0] is not EOS:
            return self._queue[0]
        return None

    def at_eos(self) -> bool:
        """True once the producer closed and all data was consumed."""
        return self._eos_delivered or (
            self._closed and len(self._queue) == 1 and self._queue[0] is EOS
        )

    def exhausted(self) -> bool:
        """True when EOS has been popped: no more data will ever arrive."""
        return self._eos_delivered

    def pop(self):
        """Pop the next data item; returns EOS exactly once at the end."""
        if not self._queue:
            raise ChannelClosed(f"pop from empty channel {self.name!r}")
        item = self._queue.popleft()
        if item is EOS:
            self._eos_delivered = True
        return item

    @property
    def closed(self) -> bool:
        return self._closed
