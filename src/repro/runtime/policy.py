"""Scheduling policies: the *policy* half of the scheduler's
policy/mechanism split.

:mod:`repro.runtime.scheduler` is pure mechanism — worker loops, queues,
wake-ups, cost accounting.  Every scheduling *decision* is delegated to a
:class:`SchedulingPolicy` object through five hooks:

* ``budget(task)`` — the timeslice handed to ``task.step``: a float
  budget in virtual µs, ``0.0`` for exactly one item, ``None`` to run
  the task to completion;
* ``place(task, workers)`` — which worker queue is the task's home
  (section 5: "a hash over this identifier determines which worker's
  task queue the task should be assigned to");
* ``select_victim(worker, workers)`` — which foreign queue an idle
  worker steals from (``None`` = go to sleep instead);
* ``next_local(worker)`` — which task an awake worker pops from its own
  queue (FIFO unless the policy reorders);
* ``steps_per_decision(task)`` / ``on_task_done(task, worker, us)`` —
  how many ``step`` calls one scheduling decision amortises, and a
  feedback hook fired after each decision (used by adaptive policies).

Policies are registered in a string-keyed registry so every upper layer
— :class:`~repro.runtime.platform.FlickPlatform`, the bench CLI's
``--policy`` flag, the Figure-7 microbenchmark — can select any policy
by name, or pass a pre-built instance for custom parameters.

The three paper policies (``cooperative``, ``non_cooperative``,
``round_robin``) reproduce Figure 7 byte-for-byte; ``locality``,
``batch`` and ``priority`` are scenarios the paper could not test.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Type

from repro.core.errors import RuntimeFlickError
from repro.core.ids import stable_hash

#: The three policies evaluated in the paper (section 6.4, Figure 7).
PAPER_POLICIES = ("cooperative", "non_cooperative", "round_robin")


class SchedulingPolicy:
    """Base class: hash placement, longest-queue stealing, FIFO pop.

    The defaults reproduce the paper's mechanism exactly; subclasses
    override individual hooks.  ``workers`` arguments are sequences of
    scheduler ``_Worker`` objects (``index``, ``queue`` attributes).
    """

    #: Registry key; subclasses must override.
    name = "abstract"

    #: Set by the scheduler that adopts this instance; two schedulers on
    #: the same engine sharing one instance is rejected (shared mutable
    #: policy state would silently cross-contaminate their decisions).
    _bound_engine = None

    def __init__(self, timeslice_us: float = 50.0):
        self.timeslice_us = timeslice_us

    # -- decision hooks ------------------------------------------------------

    def budget(self, task) -> Optional[float]:
        """Timeslice for one ``task.step`` call (µs, ``0.0``, or ``None``)."""
        return self.timeslice_us

    def steps_per_decision(self, task) -> int:
        """How many ``step`` calls one scheduling decision amortises."""
        return 1

    def place(self, task, workers: Sequence) -> object:
        """Choose the task's home worker (honours ``task.home_hint``)."""
        hint = getattr(task, "home_hint", None)
        if hint is not None:
            return workers[hint % len(workers)]
        return workers[stable_hash(task.task_id) % len(workers)]

    def select_victim(self, worker, workers: Sequence) -> Optional[object]:
        """Pick the foreign queue to steal from (longest, first on ties)."""
        victim = None
        victim_len = 0
        for other in workers:
            if other is worker:
                continue
            qlen = len(other.queue)
            if qlen > victim_len:
                victim = other
                victim_len = qlen
        return victim

    def next_local(self, worker) -> object:
        """Pop the next task from the worker's own (non-empty) queue."""
        return worker.queue.popleft()

    def on_task_done(self, task, worker, elapsed_us: float) -> None:
        """Feedback after one decision ran ``task`` for ``elapsed_us``."""

    def reset(self) -> None:
        """Drop any learned state; called when a scheduler adopts the
        policy, so a reused instance starts each run fresh.  (A policy
        instance therefore belongs to one live scheduler at a time.)"""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name!r}>"


# -- registry ----------------------------------------------------------------

_REGISTRY: Dict[str, Type[SchedulingPolicy]] = {}


def register_policy(cls: Type[SchedulingPolicy]) -> Type[SchedulingPolicy]:
    """Class decorator adding ``cls`` to the registry under ``cls.name``."""
    if not cls.name or cls.name == "abstract":
        raise RuntimeFlickError(f"policy class {cls.__name__} needs a name")
    if cls.name in _REGISTRY:
        raise RuntimeFlickError(f"policy {cls.name!r} registered twice")
    _REGISTRY[cls.name] = cls
    return cls


def registered_policies() -> tuple:
    """All registered policy names, paper policies first, rest sorted."""
    extras = sorted(name for name in _REGISTRY if name not in PAPER_POLICIES)
    return PAPER_POLICIES + tuple(extras)


def make_policy(
    name: str, timeslice_us: float = 50.0, **kwargs
) -> SchedulingPolicy:
    """Instantiate the registered policy ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise RuntimeFlickError(
            f"unknown scheduling policy {name!r}; registered: "
            f"{', '.join(registered_policies())}"
        ) from None
    return cls(timeslice_us=timeslice_us, **kwargs)


def resolve_policy(spec, timeslice_us: float = 50.0) -> SchedulingPolicy:
    """Accept a policy name or a ready instance; return an instance."""
    if isinstance(spec, SchedulingPolicy):
        return spec
    if isinstance(spec, str):
        return make_policy(spec, timeslice_us)
    raise RuntimeFlickError(
        f"policy must be a name or SchedulingPolicy, got {type(spec).__name__}"
    )


# -- the three paper policies (Figure 7) -------------------------------------


@register_policy
class CooperativePolicy(SchedulingPolicy):
    """FLICK's policy: run until the timeslice budget is exhausted."""

    name = "cooperative"


@register_policy
class NonCooperativePolicy(SchedulingPolicy):
    """A scheduled task runs to completion (budget ``None``)."""

    name = "non_cooperative"

    def budget(self, task) -> Optional[float]:
        return None


@register_policy
class RoundRobinPolicy(SchedulingPolicy):
    """Exactly one data item per scheduling decision (budget ``0.0``)."""

    name = "round_robin"

    def budget(self, task) -> Optional[float]:
        return 0.0


# -- policies beyond the paper -----------------------------------------------


@register_policy
class LocalityPolicy(SchedulingPolicy):
    """Cooperative budget, but steal from the *nearest* queue.

    Victims are scanned by ring distance from the thief — a proxy for
    cache/NUMA distance between cores — instead of queue length, so
    stolen work stays close to its home core.
    """

    name = "locality"

    def select_victim(self, worker, workers: Sequence) -> Optional[object]:
        n = len(workers)
        base = worker.index
        for distance in range(1, n):
            candidate = workers[(base + distance) % n]
            if candidate.queue:
                return candidate
        return None


@register_policy
class BatchPolicy(SchedulingPolicy):
    """Amortise ``SCHEDULE_US`` by running ``k`` items per decision.

    Each ``step`` call processes one item (budget ``0.0``, round-robin
    style) but one scheduling decision performs up to ``k`` of them, so
    the per-decision overhead is paid once per batch.
    """

    name = "batch"

    def __init__(self, timeslice_us: float = 50.0, k: int = 8):
        super().__init__(timeslice_us)
        if k < 1:
            raise RuntimeFlickError(f"batch size must be >= 1, got {k}")
        self.k = k

    def budget(self, task) -> Optional[float]:
        return 0.0

    def steps_per_decision(self, task) -> int:
        return self.k


@register_policy
class PriorityPolicy(SchedulingPolicy):
    """Weighted local picking: observed-light tasks run before heavy ones.

    The policy keeps an exponentially-weighted mean of each task's cost
    per decision (fed by ``on_task_done``) and pops the cheapest known
    task from the local queue; unmeasured tasks count as cost ``0`` so
    newcomers are probed immediately.  Directly targets the Figure-7
    fairness question: light tasks are never starved behind heavy ones
    that share their queue.
    """

    name = "priority"

    def __init__(self, timeslice_us: float = 50.0, smoothing: float = 0.5):
        super().__init__(timeslice_us)
        self.smoothing = smoothing
        self._mean_cost: Dict[int, float] = {}

    def reset(self) -> None:
        self._mean_cost.clear()

    def on_task_done(self, task, worker, elapsed_us: float) -> None:
        if not task.has_work():
            # Bound memory on long-lived platforms: drop the estimate
            # once a task has nothing left queued (a task that comes
            # back is simply probed as light again).
            self._mean_cost.pop(task.task_id, None)
            return
        prev = self._mean_cost.get(task.task_id)
        if prev is None:
            self._mean_cost[task.task_id] = elapsed_us
        else:
            a = self.smoothing
            self._mean_cost[task.task_id] = a * elapsed_us + (1.0 - a) * prev

    def next_local(self, worker) -> object:
        queue = worker.queue
        if len(queue) == 1:
            return queue.popleft()
        costs = self._mean_cost
        best_index = 0
        best_cost = None
        for index, task in enumerate(queue):
            cost = costs.get(task.task_id, 0.0)
            if best_cost is None or cost < best_cost:
                best_index = index
                best_cost = cost
        if best_index == 0:
            return queue.popleft()
        queue.rotate(-best_index)
        task = queue.popleft()
        queue.rotate(best_index)
        return task
