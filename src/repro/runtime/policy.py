"""Scheduling policies: the *policy* half of the scheduler's
policy/mechanism split.

:mod:`repro.runtime.scheduler` is pure mechanism — worker loops, queues,
wake-ups, cost accounting.  Every scheduling *decision* is delegated to a
:class:`SchedulingPolicy` object through five hooks:

* ``budget(task)`` — the timeslice handed to ``task.step``: a float
  budget in virtual µs, ``0.0`` for exactly one item, ``None`` to run
  the task to completion;
* ``place(task, workers)`` — which worker queue is the task's home
  (section 5: "a hash over this identifier determines which worker's
  task queue the task should be assigned to");
* ``select_victim(worker, workers)`` — which foreign queue an idle
  worker steals from (``None`` = go to sleep instead);
* ``next_local(worker)`` — which task an awake worker pops from its own
  queue (FIFO unless the policy reorders);
* ``steal_count(thief, victim)`` — how many tasks one steal operation
  takes from the victim's queue (1 unless the policy batches, as the
  Cilk-style ``steal-half`` policy does);
* ``steps_per_decision(task)`` / ``on_task_done(task, worker, us)`` —
  how many ``step`` calls one scheduling decision amortises, and a
  feedback hook fired after each decision (used by adaptive policies);
* ``configure(config)`` — adopt platform-level tunables (the
  :class:`~repro.runtime.costs.RuntimeConfig`), e.g. the ``deadline``
  policy reads per-connection SLOs from ``config.slo_us``.

Two bindings complete the contract: the adopting scheduler sets
``_bound_engine`` (simulated clock) and ``_bound_topology`` (the
:class:`~repro.net.stackprofiles.CoreTopology`, ``None`` when flat) so
policies can read time and socket distances.  A policy that consumes
per-endpoint service classes (:mod:`repro.runtime.qos`) declares
``supports_service_classes = True``, which obliges it to ship
class-aware golden numbers (CI lockstep gate).

Policies are registered in a string-keyed registry so every upper layer
— :class:`~repro.runtime.platform.FlickPlatform`, the bench CLI's
``--policy`` flag, the Figure-7 microbenchmark — can select any policy
by name, or pass a pre-built instance for custom parameters.

The three paper policies (``cooperative``, ``non_cooperative``,
``round_robin``) reproduce Figure 7 byte-for-byte; ``locality``,
``batch``, ``priority``, ``deadline``, ``numa``, ``adaptive-timeslice``
and ``steal-half`` are scenarios the paper could not test.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Type

from repro.core.errors import RuntimeFlickError
from repro.core.ids import stable_hash
from repro.runtime.qos import closest_name

#: The three policies evaluated in the paper (section 6.4, Figure 7).
PAPER_POLICIES = ("cooperative", "non_cooperative", "round_robin")


class SchedulingPolicy:
    """Base class: hash placement, longest-queue stealing, FIFO pop.

    The defaults reproduce the paper's mechanism exactly; subclasses
    override individual hooks.  ``workers`` arguments are sequences of
    scheduler ``_Worker`` objects (``index``, ``queue`` attributes).
    """

    #: Registry key; subclasses must override.
    name = "abstract"

    #: Whether the policy consumes per-endpoint service classes
    #: (:mod:`repro.runtime.qos`).  Declaring support obliges the policy
    #: to ship class-aware golden Figure-7 numbers (enforced by the
    #: golden/registry lockstep gate in CI).
    supports_service_classes = False

    #: Set by the scheduler that adopts this instance; two schedulers on
    #: the same engine sharing one instance is rejected (shared mutable
    #: policy state would silently cross-contaminate their decisions).
    _bound_engine = None

    #: The adopting scheduler's :class:`~repro.net.stackprofiles.\
    #: CoreTopology` (``None`` on flat schedulers).  Topology-aware
    #: policies read socket distances through it.
    _bound_topology = None

    def __init__(self, timeslice_us: float = 50.0):
        self.timeslice_us = timeslice_us

    # -- decision hooks ------------------------------------------------------

    def budget(self, task) -> Optional[float]:
        """Timeslice for one ``task.step`` call (µs, ``0.0``, or ``None``)."""
        return self.timeslice_us

    def max_budget_us(self) -> float:
        """Upper bound every finite ``budget()`` return respects.

        Part of the policy contract checked by the invariant harness:
        a finite budget is always in ``[0, max_budget_us()]``.
        """
        return self.timeslice_us

    def steps_per_decision(self, task) -> int:
        """How many ``step`` calls one scheduling decision amortises."""
        return 1

    def steal_count(self, thief, victim) -> int:
        """How many tasks one steal takes from ``victim``'s queue (>= 1).

        The mechanism runs the first stolen task immediately and moves
        the rest onto the thief's own queue; the whole batch is charged
        as a single steal (Cilk-style amortisation).
        """
        return 1

    def configure(self, config) -> None:
        """Adopt platform tunables from a ``RuntimeConfig`` (duck-typed).

        Called by :class:`~repro.runtime.platform.FlickPlatform` after
        the scheduler adopts the policy; the default ignores it.
        """

    def place(self, task, workers: Sequence) -> object:
        """Choose the task's home worker (honours ``task.home_hint``)."""
        hint = getattr(task, "home_hint", None)
        if hint is not None:
            return workers[hint % len(workers)]
        return workers[stable_hash(task.task_id) % len(workers)]

    def select_victim(self, worker, workers: Sequence) -> Optional[object]:
        """Pick the foreign queue to steal from (longest, first on ties).

        Contract: the mechanism steals from the *head* of the returned
        victim's queue (``steal_count`` tasks, head onward).  A policy
        that wants a specific task stolen first may reorder the victim's
        queue here before returning it (see ``DeadlinePolicy``).
        """
        victim = None
        victim_len = 0
        for other in workers:
            if other is worker:
                continue
            qlen = len(other.queue)
            if qlen > victim_len:
                victim = other
                victim_len = qlen
        return victim

    def next_local(self, worker) -> object:
        """Pop the next task from the worker's own (non-empty) queue."""
        return worker.queue.popleft()

    def on_task_done(self, task, worker, elapsed_us: float) -> None:
        """Feedback after one decision ran ``task`` for ``elapsed_us``."""

    def reset(self) -> None:
        """Drop any learned state; called when a scheduler adopts the
        policy, so a reused instance starts each run fresh.  (A policy
        instance therefore belongs to one live scheduler at a time.)"""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name!r}>"


# -- registry ----------------------------------------------------------------

_REGISTRY: Dict[str, Type[SchedulingPolicy]] = {}


def register_policy(cls: Type[SchedulingPolicy]) -> Type[SchedulingPolicy]:
    """Class decorator adding ``cls`` to the registry under ``cls.name``."""
    if not cls.name or cls.name == "abstract":
        raise RuntimeFlickError(f"policy class {cls.__name__} needs a name")
    if cls.name in _REGISTRY:
        raise RuntimeFlickError(f"policy {cls.name!r} registered twice")
    _REGISTRY[cls.name] = cls
    return cls


def registered_policies() -> tuple:
    """All registered policy names, paper policies first, rest sorted."""
    extras = sorted(name for name in _REGISTRY if name not in PAPER_POLICIES)
    return PAPER_POLICIES + tuple(extras)


def closest_policy_name(name: str) -> Optional[str]:
    """The registered name a typo most plausibly meant, or ``None``.

    Separator slips (``dead-line``, ``adaptive_timeslice``) are matched
    exactly after stripping ``-``/``_``; anything else falls back to a
    difflib closest-match so transpositions like ``roud_robin`` are
    caught too.  (Shared matcher: :func:`repro.runtime.qos.closest_name`
    gives ``--slo-class`` endpoints the same suggestions.)
    """
    return closest_name(name, _REGISTRY)


def unknown_policy_message(name: str) -> str:
    """Error text for an unregistered policy name: sorted valid names
    plus a near-miss suggestion when the typo is recognisable."""
    message = (
        f"unknown scheduling policy {name!r}; registered: "
        f"{', '.join(sorted(_REGISTRY))}"
    )
    suggestion = closest_policy_name(name)
    if suggestion is not None:
        message += f"; did you mean {suggestion!r}?"
    return message


def make_policy(
    name: str, timeslice_us: float = 50.0, **kwargs
) -> SchedulingPolicy:
    """Instantiate the registered policy ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise RuntimeFlickError(unknown_policy_message(name)) from None
    return cls(timeslice_us=timeslice_us, **kwargs)


def resolve_policy(spec, timeslice_us: float = 50.0) -> SchedulingPolicy:
    """Accept a policy name or a ready instance; return an instance."""
    if isinstance(spec, SchedulingPolicy):
        return spec
    if isinstance(spec, str):
        return make_policy(spec, timeslice_us)
    raise RuntimeFlickError(
        f"policy must be a name or SchedulingPolicy, got {type(spec).__name__}"
    )


# -- the three paper policies (Figure 7) -------------------------------------


@register_policy
class CooperativePolicy(SchedulingPolicy):
    """FLICK's policy: run until the timeslice budget is exhausted."""

    name = "cooperative"


@register_policy
class NonCooperativePolicy(SchedulingPolicy):
    """A scheduled task runs to completion (budget ``None``)."""

    name = "non_cooperative"

    def budget(self, task) -> Optional[float]:
        return None


@register_policy
class RoundRobinPolicy(SchedulingPolicy):
    """Exactly one data item per scheduling decision (budget ``0.0``)."""

    name = "round_robin"

    def budget(self, task) -> Optional[float]:
        return 0.0


# -- policies beyond the paper -----------------------------------------------


@register_policy
class LocalityPolicy(SchedulingPolicy):
    """Cooperative budget, but steal from the *nearest* queue.

    Victims are scanned by ring distance from the thief — a proxy for
    cache/NUMA distance between cores — instead of queue length, so
    stolen work stays close to its home core.
    """

    name = "locality"

    def select_victim(self, worker, workers: Sequence) -> Optional[object]:
        n = len(workers)
        base = worker.index
        for distance in range(1, n):
            candidate = workers[(base + distance) % n]
            if candidate.queue:
                return candidate
        return None


@register_policy
class BatchPolicy(SchedulingPolicy):
    """Amortise ``SCHEDULE_US`` by running ``k`` items per decision.

    Each ``step`` call processes one item (budget ``0.0``, round-robin
    style) but one scheduling decision performs up to ``k`` of them, so
    the per-decision overhead is paid once per batch.
    """

    name = "batch"

    def __init__(self, timeslice_us: float = 50.0, k: int = 8):
        super().__init__(timeslice_us)
        if k < 1:
            raise RuntimeFlickError(f"batch size must be >= 1, got {k}")
        self.k = k

    def budget(self, task) -> Optional[float]:
        return 0.0

    def steps_per_decision(self, task) -> int:
        return self.k


@register_policy
class PriorityPolicy(SchedulingPolicy):
    """Weighted local picking: observed-light tasks run before heavy ones.

    The policy keeps an exponentially-weighted mean of each task's cost
    per decision (fed by ``on_task_done``) and pops the cheapest known
    task from the local queue; unmeasured tasks count as cost ``0`` so
    newcomers are probed immediately.  Directly targets the Figure-7
    fairness question: light tasks are never starved behind heavy ones
    that share their queue.

    Service-class aware: a task's pick score is its observed cost
    *divided by its class weight* (ties broken toward the heavier
    class), so a weight-4 gold task is dequeued ahead of a weight-1
    bronze task of equal cost.  Unclassified tasks weigh 1, which keeps
    class-free schedules byte-identical to the pre-QoS policy.
    """

    name = "priority"
    supports_service_classes = True

    def __init__(self, timeslice_us: float = 50.0, smoothing: float = 0.5):
        super().__init__(timeslice_us)
        self.smoothing = smoothing
        self._mean_cost: Dict[int, float] = {}

    def reset(self) -> None:
        self._mean_cost.clear()

    def on_task_done(self, task, worker, elapsed_us: float) -> None:
        if not task.has_work():
            # Bound memory on long-lived platforms: drop the estimate
            # once a task has nothing left queued (a task that comes
            # back is simply probed as light again).
            self._mean_cost.pop(task.task_id, None)
            return
        prev = self._mean_cost.get(task.task_id)
        if prev is None:
            self._mean_cost[task.task_id] = elapsed_us
        else:
            a = self.smoothing
            self._mean_cost[task.task_id] = a * elapsed_us + (1.0 - a) * prev

    def next_local(self, worker) -> object:
        queue = worker.queue
        if len(queue) == 1:
            return queue.popleft()
        costs = self._mean_cost
        best_index = 0
        best_score = None
        for index, task in enumerate(queue):
            weight = _class_weight(task)
            # Lexicographic (cost/weight, -weight): among unmeasured
            # (cost-0) tasks only the weight discriminates, so heavier
            # classes are probed first too.
            score = (costs.get(task.task_id, 0.0) / weight, -weight)
            if best_score is None or score < best_score:
                best_index = index
                best_score = score
        return _pop_at(queue, best_index)


def _class_weight(task) -> float:
    """The task's service-class weight (1.0 when unclassified)."""
    service_class = getattr(task, "service_class", None)
    return service_class.weight if service_class is not None else 1.0


def _pop_at(queue, index: int) -> object:
    """Pop ``queue[index]`` from a deque, preserving the others' order."""
    if index == 0:
        return queue.popleft()
    queue.rotate(-index)
    task = queue.popleft()
    queue.rotate(index)
    return task


@register_policy
class DeadlinePolicy(SchedulingPolicy):
    """Earliest-deadline-first over per-connection SLO budgets.

    Every task gets an absolute deadline when it is first admitted:
    ``now + slo_us``, where the SLO comes from the task itself
    (``task.slo_us``, stamped per connection by the task graph from
    ``RuntimeConfig.slo_us``) or falls back to ``default_slo_us``.
    Workers pop the earliest deadline from their queue, idle workers
    steal from the queue holding the globally earliest deadline, and a
    task's step budget is its remaining slack clamped into
    ``[min_budget_us, timeslice_us]`` — the nearer a task is to missing
    its SLO, the shorter (hence more frequent) its slices.  The deadline
    clock restarts on the next admission after a task drains.

    Service-class aware: a classified endpoint's tasks carry their
    class's SLO (stamped by the task graph), so one platform runs
    per-class EDF — gold connections get 1 ms deadlines while bronze
    ones get 50 ms — with the platform-wide ``slo_us`` (then the
    policy default) as fallback for unclassified traffic.
    """

    name = "deadline"
    supports_service_classes = True

    def __init__(
        self,
        timeslice_us: float = 50.0,
        default_slo_us: float = 10_000.0,
        min_budget_us: float = 5.0,
    ):
        super().__init__(timeslice_us)
        if default_slo_us <= 0:
            raise RuntimeFlickError(
                f"default SLO must be positive, got {default_slo_us}"
            )
        if not 0 < min_budget_us <= timeslice_us:
            raise RuntimeFlickError(
                f"min budget must be in (0, {timeslice_us}], "
                f"got {min_budget_us}"
            )
        self.default_slo_us = default_slo_us
        self.min_budget_us = min_budget_us
        self._deadline: Dict[int, float] = {}

    def configure(self, config) -> None:
        slo = getattr(config, "slo_us", None)
        if slo is not None:
            self.default_slo_us = slo

    def reset(self) -> None:
        self._deadline.clear()

    def _now(self) -> float:
        engine = self._bound_engine
        return engine.now if engine is not None else 0.0

    def deadline_of(self, task) -> float:
        """The task's absolute deadline, started at first admission.

        The SLO comes from the task itself (``task.slo_us``, stamped
        from its endpoint's service class or the platform-wide value),
        then its bare service class, then the policy default.
        """
        deadline = self._deadline.get(task.task_id)
        if deadline is None:
            slo = getattr(task, "slo_us", None)
            if slo is None:
                service_class = getattr(task, "service_class", None)
                if service_class is not None:
                    slo = service_class.slo_us
            if slo is None:
                slo = self.default_slo_us
            deadline = self._now() + slo
            self._deadline[task.task_id] = deadline
        return deadline

    def place(self, task, workers: Sequence) -> object:
        self.deadline_of(task)  # the SLO clock starts at admission
        return super().place(task, workers)

    def budget(self, task) -> Optional[float]:
        slack = self.deadline_of(task) - self._now()
        return max(self.min_budget_us, min(self.timeslice_us, slack))

    def next_local(self, worker) -> object:
        queue = worker.queue
        if len(queue) == 1:
            return queue.popleft()
        best_index = 0
        best_deadline = None
        for index, task in enumerate(queue):
            deadline = self.deadline_of(task)
            if best_deadline is None or deadline < best_deadline:
                best_index = index
                best_deadline = deadline
        return _pop_at(queue, best_index)

    def select_victim(self, worker, workers: Sequence) -> Optional[object]:
        victim = None
        best_deadline = None
        best_index = 0
        for other in workers:
            if other is worker:
                continue
            for index, task in enumerate(other.queue):
                deadline = self.deadline_of(task)
                if best_deadline is None or deadline < best_deadline:
                    best_deadline = deadline
                    victim = other
                    best_index = index
        if victim is not None and best_index != 0:
            # Per the select_victim contract the mechanism steals from
            # the queue head; rotate the earliest-deadline task there so
            # the steal honours EDF instead of grabbing whatever the
            # victim admitted first.  (EDF keeps steal_count at 1, so
            # only the rotated head is taken.)
            victim.queue.rotate(-best_index)
        return victim

    def on_task_done(self, task, worker, elapsed_us: float) -> None:
        if not task.has_work():
            self._deadline.pop(task.task_id, None)


@register_policy
class NumaPolicy(SchedulingPolicy):
    """Placement and stealing aware of the socket topology.

    Pairs with :class:`~repro.net.stackprofiles.CoreTopology`: the
    scheduler labels each worker with its socket and charges
    cross-socket steals ``remote_steal_penalty_us`` extra *per
    interconnect hop*.  This policy keeps work close to avoid those
    penalties: a task is hashed to a *socket* (stable affinity) and
    placed on that socket's least-loaded core, and an idle worker steals
    *hierarchically* — the longest queue on its own socket first, then
    the nearest non-empty socket by hop distance (read through the
    scheduler's topology binding), widening one tier at a time, so a
    two-hop steal on a four-socket ring happens only when both the home
    socket and its one-hop neighbours are empty.  Without a topology
    every socket is one hop from every other and the policy degenerates
    to the flat local-then-anywhere order.
    """

    name = "numa"

    def __init__(self, timeslice_us: float = 50.0):
        super().__init__(timeslice_us)
        self._socket_members: Optional[list] = None
        self._grouped_workers = None

    def reset(self) -> None:
        self._socket_members = None
        self._grouped_workers = None

    @staticmethod
    def _socket_of(worker) -> int:
        return getattr(worker, "socket", 0)

    def _groups(self, workers: Sequence) -> list:
        # place() runs on every enqueue; the socket grouping is fixed
        # for a scheduler's lifetime, so build it once per worker set.
        if self._socket_members is None or self._grouped_workers is not workers:
            by_socket: Dict[int, list] = {}
            for candidate in workers:
                by_socket.setdefault(self._socket_of(candidate), []).append(
                    candidate
                )
            self._socket_members = [
                by_socket[socket] for socket in sorted(by_socket)
            ]
            self._grouped_workers = workers
        return self._socket_members

    def place(self, task, workers: Sequence) -> object:
        hint = getattr(task, "home_hint", None)
        if hint is not None:
            return workers[hint % len(workers)]
        groups = self._groups(workers)
        members = groups[stable_hash(task.task_id) % len(groups)]
        return min(members, key=lambda w: (len(w.queue), w.index))

    def select_victim(self, worker, workers: Sequence) -> Optional[object]:
        topology = self._bound_topology
        home = self._socket_of(worker)
        victim = None
        victim_len = 0
        victim_hops = None
        for other in workers:
            if other is worker:
                continue
            qlen = len(other.queue)
            if qlen == 0:
                continue
            socket = self._socket_of(other)
            if topology is not None:
                hops = topology.socket_hops(home, socket)
            else:
                hops = 0 if socket == home else 1
            if (
                victim_hops is None
                or hops < victim_hops
                or (hops == victim_hops and qlen > victim_len)
            ):
                victim, victim_len, victim_hops = other, qlen, hops
        return victim


@register_policy
class AdaptiveTimeslicePolicy(SchedulingPolicy):
    """Shrink/grow the cooperative budget from observed queue depth.

    Section 5 gives 10-100 µs as the useful timeslice band; this policy
    sweeps it live.  An EWMA of the post-decision queue depth (fed by
    ``on_task_done``) measures contention: empty queues mean fairness is
    cheap, so the budget grows toward ``max_us`` to amortise scheduling
    overhead; deep queues mean tasks are waiting, so it shrinks toward
    ``min_us`` to interleave them.  Budgets never leave the band.

    The band defaults scale with the configured quantum — ``min_us =
    timeslice_us / 5`` and ``max_us = timeslice_us * 2``, i.e. the
    paper's 10-100 µs at the default 50 µs timeslice — so
    ``RuntimeConfig(timeslice_us=...)`` moves the whole band; pass
    explicit bounds to pin it instead.
    """

    name = "adaptive-timeslice"

    def __init__(
        self,
        timeslice_us: float = 50.0,
        min_us: Optional[float] = None,
        max_us: Optional[float] = None,
        depth_saturation: float = 8.0,
        smoothing: float = 0.2,
    ):
        super().__init__(timeslice_us)
        if min_us is None:
            min_us = timeslice_us / 5.0
        if max_us is None:
            max_us = timeslice_us * 2.0
        if not 0 < min_us < max_us:
            raise RuntimeFlickError(
                f"need 0 < min_us < max_us, got [{min_us}, {max_us}]"
            )
        if depth_saturation <= 0:
            raise RuntimeFlickError(
                f"depth saturation must be positive, got {depth_saturation}"
            )
        if not 0 < smoothing <= 1:
            raise RuntimeFlickError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        self.min_us = min_us
        self.max_us = max_us
        self.depth_saturation = depth_saturation
        self.smoothing = smoothing
        self._depth_ewma = 0.0

    def reset(self) -> None:
        self._depth_ewma = 0.0

    def max_budget_us(self) -> float:
        return self.max_us

    def budget(self, task) -> Optional[float]:
        pressure = min(1.0, self._depth_ewma / self.depth_saturation)
        return self.max_us - (self.max_us - self.min_us) * pressure

    def on_task_done(self, task, worker, elapsed_us: float) -> None:
        a = self.smoothing
        self._depth_ewma = a * len(worker.queue) + (1.0 - a) * self._depth_ewma


@register_policy
class StealHalfPolicy(SchedulingPolicy):
    """Cilk-style batched stealing: take half the victim's queue at once.

    A thief that went idle is likely to stay idle relative to a loaded
    victim, so single-task steals just ping-pong it back to the victim's
    queue.  Taking ``len(queue) // 2`` tasks in one steal pays
    ``STEAL_US`` (and any cross-socket penalty) once per batch and
    halves the load imbalance in a single operation.
    """

    name = "steal-half"

    def steal_count(self, thief, victim) -> int:
        return max(1, len(victim.queue) // 2)
