"""The FLICK platform: programs, dispatchers, scheduler, TCP stack.

Ties together every section-5 component: compiled programs are registered
under a listening port; the application dispatcher feeds accepted
connections through per-core :class:`DispatcherTask` objects to the graph
dispatcher, which binds task graphs; the cooperative scheduler executes
all tasks on the configured number of simulated cores using the selected
TCP stack cost profile (kernel or mTCP).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.errors import RuntimeFlickError
from repro.lang.compiler import CompiledProgram
from repro.net.simnet import Host
from repro.net.stackprofiles import StackProfile, profile
from repro.net.tcp import TcpNetwork
from repro.runtime.buffers import BufferPool
from repro.runtime.costs import RuntimeConfig
from repro.runtime.dispatcher import DispatcherTask, GraphDispatcher, GraphPool
from repro.runtime.graph import Bindings, CodecRegistry, TaskGraph
from repro.runtime.scheduler import Scheduler
from repro.sim.engine import Engine


class ProgramInstance:
    """A registered FLICK program bound to a port on the platform."""

    def __init__(
        self,
        platform: "FlickPlatform",
        compiled: CompiledProgram,
        proc_name: str,
        port: int,
        bindings: Bindings,
    ):
        self.platform = platform
        self.compiled = compiled
        self.spec = compiled.proc(proc_name)
        self.port = port
        self.bindings = bindings
        # Long-term state shared by all instances of the process (§4.3).
        # The configured execution tier evaluates initialisers too, so a
        # codegen bug in eval_const cannot hide behind the interpreter.
        executor = compiled.executor(platform.config.exec_tier)
        self.globals_store: Dict[str, object] = {
            name: executor.eval_const(init)
            for name, init in self.spec.globals
        }
        sink_connector = None
        if self.spec.foldt is not None:
            sink_target = bindings.outbound.get(self.spec.foldt.sink)
            if not sink_target:
                raise RuntimeFlickError(
                    f"foldt sink {self.spec.foldt.sink!r} needs an outbound "
                    "binding"
                )
            target = sink_target[0]

            def sink_connector(bind: Callable) -> None:
                platform.tcpnet.connect(
                    platform.host, target.host, target.port, bind
                )

        self.graph_dispatcher = GraphDispatcher(
            build_graph=self._build_graph,
            pool_size=platform.config.graph_pool_size,
            group_size=bindings.group_size,
            sink_connector=sink_connector,
        )
        self._dispatch_tasks: List[DispatcherTask] = []
        for core in range(platform.config.cores):
            task = DispatcherTask(
                f"{proc_name}:dispatch{core}",
                self.graph_dispatcher,
                accept_cost=lambda: platform.stack.accept_us
                + platform.stack.op_overhead_us(platform.config.cores),
                home_hint=core,
            )
            self._dispatch_tasks.append(task)
        self._rr = 0
        self.connections_accepted = 0

    def _build_graph(self) -> TaskGraph:
        return TaskGraph(
            program=self.compiled,
            spec=self.spec,
            scheduler=self.platform.scheduler,
            tcpnet=self.platform.tcpnet,
            platform_host=self.platform.host,
            registry=self.platform.registry,
            stack=self.platform.stack,
            config=self.platform.config,
            bindings=self.bindings,
            globals_store=self.globals_store,
            on_finished=self.graph_dispatcher.graph_finished,
        )

    def on_connection(self, socket) -> None:
        """Application-dispatcher entry: route an accepted connection."""
        self.connections_accepted += 1
        task = self._dispatch_tasks[self._rr % len(self._dispatch_tasks)]
        self._rr += 1
        task.enqueue(socket)
        self.platform.scheduler.notify_runnable(task)

    @property
    def pool(self) -> GraphPool:
        return self.graph_dispatcher.pool


class FlickPlatform:
    """A FLICK middlebox on one simulated host.

    ``policy`` (a registered policy name or a
    :class:`~repro.runtime.policy.SchedulingPolicy` instance) overrides
    ``config.policy`` when given, so callers can inject a custom-built
    policy without constructing a whole :class:`RuntimeConfig`.
    """

    def __init__(
        self,
        engine: Engine,
        tcpnet: TcpNetwork,
        host: Host,
        config: Optional[RuntimeConfig] = None,
        registry: Optional[CodecRegistry] = None,
        policy=None,
    ):
        self.engine = engine
        self.tcpnet = tcpnet
        self.host = host
        self.config = config or RuntimeConfig()
        self.registry = registry or CodecRegistry()
        self.stack: StackProfile = profile(self.config.stack)
        self.scheduler = Scheduler(
            engine,
            self.config.cores,
            self.config.timeslice_us,
            self.config.policy if policy is None else policy,
            topology=self.config.topology,
            allocator=self.config.allocator,
        )
        # Platform tunables the policy understands (e.g. the deadline
        # policy's SLO) are adopted after the scheduler reset the policy;
        # the allocator gets the same treatment.
        self.scheduler.policy.configure(self.config)
        self.scheduler.allocator.configure(self.config)
        self.buffers = BufferPool(
            self.config.buffer_pool_bytes, self.config.buffer_size
        )
        self.programs: Dict[str, ProgramInstance] = {}

    @property
    def scoreboard(self):
        """Per-service-class SLO accounting (the scheduler's
        :class:`~repro.sim.stats.SloScoreboard`)."""
        return self.scheduler.scoreboard

    def register_program(
        self,
        compiled: CompiledProgram,
        proc_name: str,
        port: int,
        bindings: Optional[Bindings] = None,
    ) -> ProgramInstance:
        """Register ``proc_name`` of ``compiled`` on ``port``."""
        if proc_name in self.programs:
            raise RuntimeFlickError(f"program {proc_name!r} already registered")
        instance = ProgramInstance(
            self, compiled, proc_name, port, bindings or Bindings()
        )
        self.programs[proc_name] = instance
        self.tcpnet.listen(self.host, port, instance.on_connection)
        return instance

    def start(self) -> None:
        self.scheduler.start()
