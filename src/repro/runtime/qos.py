"""Service-class QoS model: per-endpoint SLOs and scheduling weights.

The paper's runtime exists to give application-specific network services
predictable latency, but a single platform-wide ``slo_us`` cannot say
"gold traffic gets 1 ms, bronze gets 50 ms" on one shared middlebox.  A
:class:`ServiceClass` names one QoS tier (an SLO in virtual µs plus a
scheduling weight); a :class:`ServiceClassMap` assigns tiers to channel
endpoints — optionally scoped to one program via ``"Program:endpoint"``
keys — and is threaded ``RuntimeConfig(service_classes=...)`` →
:class:`~repro.runtime.platform.FlickPlatform` →
:class:`~repro.runtime.graph.TaskGraph`, which stamps every connection
task with its endpoint's class (``task.service_class`` and
``task.slo_us``), falling back to the platform-wide ``slo_us`` for
unclassified endpoints.

Consumers:

* the ``deadline`` policy turns each class SLO into a per-class EDF
  deadline and slack-scaled budget;
* the ``priority`` policy divides its observed-cost score by the class
  weight, so heavier classes are picked first at equal cost;
* the scheduler's :class:`~repro.sim.stats.SloScoreboard` accounts
  completions, latency and SLO misses per class, surfaced by the bench
  report.

``--slo-class endpoint=[name:]slo_us[@weight]`` on the bench CLI parses
through :func:`parse_slo_class_specs`, which rejects malformed specs
with near-miss suggestions in the same style as unknown policy names.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.core.errors import ConfigError

#: Class name used for accounting when a task carries no service class.
DEFAULT_CLASS_NAME = "default"


@dataclass(frozen=True)
class ServiceClass:
    """One QoS tier: a latency target and a scheduling weight.

    ``slo_us`` is the per-connection service-level objective in virtual
    µs (the EDF deadline budget); ``weight`` biases weighted policies —
    a weight-4 class is picked ahead of a weight-1 class at equal
    observed cost.
    """

    name: str
    slo_us: float
    weight: float = 1.0

    def __post_init__(self):
        if not self.name or not str(self.name).strip():
            raise ConfigError("service class needs a non-empty name")
        if not isinstance(self.slo_us, (int, float)) or self.slo_us <= 0:
            raise ConfigError(
                f"service class {self.name!r} needs a positive SLO, "
                f"got {self.slo_us!r}"
            )
        if not isinstance(self.weight, (int, float)) or self.weight <= 0:
            raise ConfigError(
                f"service class {self.name!r} needs a positive weight, "
                f"got {self.weight!r}"
            )


def closest_name(name: str, candidates: Iterable[str]) -> Optional[str]:
    """The candidate a typo most plausibly meant, or ``None``.

    Same matching style as the policy registry's near-miss helper:
    separator slips are matched exactly after stripping ``-``/``_``,
    anything else falls back to difflib.
    """
    ordered = sorted(candidates)
    canon = name.lower().replace("-", "").replace("_", "")
    for candidate in ordered:
        if candidate.lower().replace("-", "").replace("_", "") == canon:
            return candidate
    matches = difflib.get_close_matches(name, ordered, n=1)
    return matches[0] if matches else None


class ServiceClassMap:
    """Endpoint (or ``Program:endpoint``) → :class:`ServiceClass`.

    Lookups prefer the program-scoped key, so two programs sharing an
    endpoint name (every rule graph calls its inbound endpoint
    ``client``) can still carry different tiers on one platform.  One
    class *name* may serve many endpoints, but only with one definition:
    re-declaring ``gold`` with a different SLO or weight is rejected, so
    a class means the same thing wherever it appears.
    """

    def __init__(self, classes: Optional[Dict[str, object]] = None):
        self._by_endpoint: Dict[str, ServiceClass] = {}
        self._by_name: Dict[str, ServiceClass] = {}
        for endpoint, service_class in (classes or {}).items():
            self.assign(endpoint, service_class)

    def assign(self, endpoint: str, service_class) -> None:
        """Bind ``endpoint`` to ``service_class`` (coercing shorthand).

        Shorthand: a bare number is an SLO for a class named after the
        full endpoint key (program scope included, so two programs'
        shorthand entries never collide); a ``{"slo_us": ...,
        "weight": ..., "name": ...}`` dict spells out the fields.
        """
        if not endpoint or not str(endpoint).strip():
            raise ConfigError("service class map needs non-empty endpoints")
        service_class = _coerce_class(endpoint, service_class)
        if endpoint in self._by_endpoint:
            raise ConfigError(
                f"endpoint {endpoint!r} already has service class "
                f"{self._by_endpoint[endpoint].name!r}; each endpoint "
                "maps to exactly one class"
            )
        known = self._by_name.get(service_class.name)
        if known is not None and known != service_class:
            raise ConfigError(
                f"service class {service_class.name!r} defined twice "
                f"with different parameters: slo_us={known.slo_us}/"
                f"weight={known.weight} vs slo_us={service_class.slo_us}/"
                f"weight={service_class.weight}"
            )
        self._by_endpoint[endpoint] = service_class
        self._by_name[service_class.name] = service_class

    @classmethod
    def from_spec(cls, spec) -> "ServiceClassMap":
        """Normalise ``spec`` (map instance, or dict of shorthands)."""
        if isinstance(spec, ServiceClassMap):
            return spec
        if isinstance(spec, dict):
            return cls(spec)
        raise ConfigError(
            "service_classes must be a ServiceClassMap or a dict of "
            f"endpoint -> class, got {type(spec).__name__}"
        )

    def class_for(
        self, endpoint: Optional[str], program: Optional[str] = None
    ) -> Optional[ServiceClass]:
        """The class bound to ``endpoint``, preferring a program-scoped
        ``"Program:endpoint"`` entry; ``None`` when unclassified."""
        if endpoint is None:
            return None
        if program is not None:
            scoped = self._by_endpoint.get(f"{program}:{endpoint}")
            if scoped is not None:
                return scoped
        return self._by_endpoint.get(endpoint)

    def endpoints(self) -> Tuple[str, ...]:
        return tuple(self._by_endpoint)

    def classes(self) -> Tuple[ServiceClass, ...]:
        """The distinct classes, in first-assignment order."""
        return tuple(self._by_name.values())

    def __iter__(self) -> Iterator[Tuple[str, ServiceClass]]:
        return iter(self._by_endpoint.items())

    def __len__(self) -> int:
        return len(self._by_endpoint)

    def __bool__(self) -> bool:
        return bool(self._by_endpoint)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ServiceClassMap):
            return NotImplemented
        return self._by_endpoint == other._by_endpoint

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(
            f"{ep}={sc.name}:{sc.slo_us:g}@{sc.weight:g}"
            for ep, sc in self._by_endpoint.items()
        )
        return f"<ServiceClassMap {entries}>"


def _coerce_class(endpoint: str, value) -> ServiceClass:
    if isinstance(value, ServiceClass):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return ServiceClass(name=endpoint, slo_us=float(value))
    if isinstance(value, dict):
        unknown = set(value) - {"name", "slo_us", "weight"}
        if unknown:
            raise ConfigError(
                f"service class for {endpoint!r} has unknown fields "
                f"{sorted(unknown)}; allowed: name, slo_us, weight"
            )
        if "slo_us" not in value:
            raise ConfigError(
                f"service class for {endpoint!r} needs an 'slo_us' field"
            )
        return ServiceClass(
            name=value.get("name", endpoint),
            slo_us=value["slo_us"],
            weight=value.get("weight", 1.0),
        )
    raise ConfigError(
        f"service class for {endpoint!r} must be a ServiceClass, a "
        f"number (SLO µs), or a dict, got {type(value).__name__}"
    )


# -- CLI spec parsing ---------------------------------------------------------


def parse_slo_class(
    spec: str, valid_endpoints: Optional[Sequence[str]] = None
) -> Tuple[str, ServiceClass]:
    """Parse one ``endpoint=[name:]slo_us[@weight]`` CLI spec.

    ``gold=1000`` binds endpoint ``gold`` to a 1000 µs class named after
    it; ``client=gold:1000@4`` names the class explicitly and gives it
    weight 4.  ``valid_endpoints``, when given, rejects unknown
    endpoints with a near-miss suggestion.
    """
    if "=" not in spec:
        raise ConfigError(
            f"malformed --slo-class {spec!r}; expected "
            "endpoint=[name:]slo_us[@weight] (e.g. gold=1000 or "
            "client=gold:1000@4)"
        )
    endpoint, _, rest = spec.partition("=")
    endpoint = endpoint.strip()
    if not endpoint:
        raise ConfigError(
            f"malformed --slo-class {spec!r}: empty endpoint name"
        )
    if valid_endpoints is not None and endpoint not in valid_endpoints:
        message = (
            f"unknown endpoint {endpoint!r} in --slo-class {spec!r}; "
            f"valid endpoints: {', '.join(sorted(valid_endpoints))}"
        )
        suggestion = closest_name(endpoint, valid_endpoints)
        if suggestion is not None:
            message += f"; did you mean {suggestion!r}?"
        raise ConfigError(message)
    rest, _, weight_text = rest.partition("@")
    name, sep, slo_text = rest.partition(":")
    if not sep:
        name, slo_text = endpoint, rest
    name = name.strip()
    try:
        slo_us = float(slo_text)
    except ValueError:
        raise ConfigError(
            f"malformed --slo-class {spec!r}: SLO {slo_text.strip()!r} "
            "is not a number of µs"
        ) from None
    if slo_us <= 0:
        raise ConfigError(
            f"malformed --slo-class {spec!r}: SLO must be a positive "
            f"number of µs, got {slo_us:g}"
        )
    weight = 1.0
    if weight_text:
        try:
            weight = float(weight_text)
        except ValueError:
            raise ConfigError(
                f"malformed --slo-class {spec!r}: weight "
                f"{weight_text.strip()!r} is not a number"
            ) from None
        if weight <= 0:
            raise ConfigError(
                f"malformed --slo-class {spec!r}: weight must be "
                f"positive, got {weight:g}"
            )
    return endpoint, ServiceClass(name=name, slo_us=slo_us, weight=weight)


def parse_slo_class_specs(
    specs: Sequence[str], valid_endpoints: Optional[Sequence[str]] = None
) -> ServiceClassMap:
    """Parse repeated ``--slo-class`` flags into a validated map.

    Duplicate endpoints and conflicting re-definitions of one class name
    are rejected by :class:`ServiceClassMap` with the same clear-error
    style as malformed individual specs.
    """
    class_map = ServiceClassMap()
    for spec in specs:
        endpoint, service_class = parse_slo_class(spec, valid_endpoints)
        class_map.assign(endpoint, service_class)
    return class_map
