"""Task-graph instantiation: from compiled process specs to live tasks.

A :class:`TaskGraph` is one instance of a FLICK process bound to real
(simulated) connections, matching Figure 3's shapes:

* **rule graphs** (HTTP load balancer, Memcached proxy): one input/output
  task pair per connection, one compute task executing the routing rules;
  outbound (backend) connections are created lazily on first use and torn
  down with the graph — FLICK does not pool backend connections, which is
  exactly why the paper's non-persistent kernel numbers trail Nginx
  (section 6.3).
* **foldt graphs** (Hadoop aggregator): one input task per mapper
  connection, a binary tree of merge tasks, and one output task to the
  reducer (Figure 3c: 8 inputs, 7 compute, 1 output).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import RuntimeFlickError
from repro.lang.compiler import (
    CompiledProgram,
    ProcSpec,
    build_foldt_handler,
    build_rule_handler,
)
from repro.lang.values import Record
from repro.net.stackprofiles import StackProfile
from repro.runtime.channel import TaskChannel
from repro.runtime.costs import RuntimeConfig
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import (
    ChannelArrayView,
    ComputeTask,
    InputTask,
    MergeTask,
    OutputTask,
    RawForwardTask,
    _BufferingSendProxy,
)


class CodecRegistry:
    """Maps FLICK type names to wire codecs.

    ``parsers[type_name]()`` yields a fresh incremental parser;
    ``serializers[type_name](record)`` yields ``(bytes, ops)``.
    """

    def __init__(self):
        self._parsers: Dict[str, Callable[[], object]] = {}
        self._serializers: Dict[str, Callable[[Record], Tuple[bytes, float]]] = {}

    def register_parser(self, type_name: str, factory) -> None:
        self._parsers[type_name] = factory

    def register_serializer(self, type_name: str, fn) -> None:
        self._serializers[type_name] = fn

    def new_parser(self, type_name: str):
        try:
            return self._parsers[type_name]()
        except KeyError:
            raise RuntimeFlickError(
                f"no parser registered for type {type_name!r}"
            ) from None

    def serialize(self, record: Record) -> Tuple[bytes, float]:
        fn = self._serializers.get(record.type_name)
        if fn is None:
            raise RuntimeFlickError(
                f"no serializer registered for type {record.type_name!r}"
            )
        return fn(record)

    def serializer(self) -> Callable[[Record], Tuple[bytes, float]]:
        """A dispatching serialiser usable by any output task."""
        return self.serialize


class OutboundTarget:
    """A backend address an outbound endpoint connects to."""

    __slots__ = ("host", "port")

    def __init__(self, host, port: int):
        self.host = host
        self.port = port


class Bindings:
    """How a program's channel endpoints map onto the network.

    ``outbound`` lists backend targets per endpoint (arrays get one
    connection per target).  Endpoints not listed are inbound.  For foldt
    programs, ``group_size`` mapper connections are gathered into one
    graph.  ``value_params(socket)`` supplies non-channel process
    parameters (e.g. a ``conn_info`` record for LB hashing).
    """

    def __init__(
        self,
        outbound: Optional[Dict[str, List[OutboundTarget]]] = None,
        group_size: int = 1,
        value_params: Optional[Callable[[object], Dict[str, object]]] = None,
        native_foldt: Optional[Tuple[Callable, Callable]] = None,
    ):
        self.outbound = outbound or {}
        self.group_size = group_size
        self.value_params = value_params
        #: Optional (key_fn, combine_fn) pair overriding the interpreted
        #: foldt body — the platform's "custom implementation for
        #: performance reasons" (§4.3).  combine_fn(left, right) returns
        #: (record, ops).  Must be observationally equivalent to the FLICK
        #: body (property-tested).
        self.native_foldt = native_foldt


class TaskGraph:
    """One live instance of a compiled FLICK process."""

    _next_graph_id = iter(range(1, 1 << 62))

    def __init__(
        self,
        program: CompiledProgram,
        spec: ProcSpec,
        scheduler: Scheduler,
        tcpnet,
        platform_host,
        registry: CodecRegistry,
        stack: StackProfile,
        config: RuntimeConfig,
        bindings: Bindings,
        globals_store: Dict[str, object],
        on_finished: Optional[Callable[["TaskGraph"], None]] = None,
    ):
        self.graph_id = next(TaskGraph._next_graph_id)
        self.program = program
        self.spec = spec
        self.scheduler = scheduler
        self.tcpnet = tcpnet
        self.host = platform_host
        self.registry = registry
        self.stack = stack
        self.config = config
        self.bindings = bindings
        self.globals_store = globals_store
        self.on_finished = on_finished
        self.tasks: List = []
        self.compute: Optional[ComputeTask] = None
        self._client_socket = None
        self._outbound_sockets: List = []
        self._finished = False

    # -- helpers ------------------------------------------------------------

    def _channel(self, name: str) -> TaskChannel:
        return TaskChannel(
            f"g{self.graph_id}:{name}", self.config.channel_capacity
        )

    def _add_task(self, task, endpoint: Optional[str] = None) -> None:
        service_class = None
        if self.config.service_classes is not None:
            service_class = self.config.service_classes.class_for(
                endpoint, self.spec.name
            )
        if service_class is not None:
            # Per-endpoint QoS tier: the class SLO overrides the
            # platform-wide one, and weighted policies read the class
            # weight off the task.
            task.service_class = service_class
            task.slo_us = service_class.slo_us
        elif self.config.slo_us is not None:
            # Per-connection SLO: every task serving this connection
            # inherits the platform SLO, which the 'deadline' scheduling
            # policy turns into an EDF deadline at admission.
            task.slo_us = self.config.slo_us
        self.tasks.append(task)

    def _notify(self, task) -> Callable[[], None]:
        scheduler = self.scheduler
        return lambda: scheduler.notify_runnable(task)

    def _wire_channel_to(self, channel: TaskChannel, task) -> None:
        channel.on_runnable = self._notify(task)

    # -- rule graphs (Figure 3a / 3b) ------------------------------------------

    def bind_client(self, client_socket) -> None:
        """Wire a per-connection rule graph around ``client_socket``."""
        spec = self.spec
        if spec.foldt is not None:
            raise RuntimeFlickError(
                f"process {spec.name!r} is a foldt aggregation; use "
                "bind_group"
            )
        client_endpoints = [
            ep for ep in spec.endpoints if ep.name not in self.bindings.outbound
        ]
        if len(client_endpoints) != 1 or client_endpoints[0].is_array:
            raise RuntimeFlickError(
                f"process {spec.name!r}: rule graphs need exactly one "
                "inbound (client) endpoint"
            )
        client_ep = client_endpoints[0]

        self._client_socket = client_socket
        inbox = self._channel("compute.in")
        compute = ComputeTask(f"g{self.graph_id}:compute", inbox)
        self.compute = compute
        self._wire_channel_to(inbox, compute)
        # The compute stage serves the client connection: it inherits
        # the client endpoint's service class, so class-aware policies
        # and per-class accounting cover the request processing itself,
        # not just the socket tasks around it.
        self._add_task(compute, endpoint=client_ep.name)
        # Endpoints whose rules all have the shape ``src => sink`` (no
        # function stages) qualify for the raw-forwarding fast path.
        self._raw_forward: Dict[str, str] = {}
        rules_by_source: Dict[str, List] = {}
        for rule in spec.rules:
            rules_by_source.setdefault(rule.source, []).append(rule)
        for source, rules in rules_by_source.items():
            if len(rules) == 1 and not rules[0].stages and rules[0].sink:
                self._raw_forward[source] = rules[0].sink
        self._endpoint_out_channels: Dict[str, TaskChannel] = {}

        context: Dict[str, object] = dict(self.globals_store)

        # Client-facing output task (responses back to the client).
        if client_ep.writable:
            out_chan = self._channel(f"{client_ep.name}.out")
            out_task = OutputTask(
                f"g{self.graph_id}:{client_ep.name}.out",
                out_chan,
                self.registry.serializer(),
                self.stack,
                self.config.cores,
            )
            out_task.bind_socket(client_socket)
            self._wire_channel_to(out_chan, out_task)
            self._add_task(out_task, endpoint=client_ep.name)
            self._endpoint_out_channels[client_ep.name] = out_chan
            proxy = _BufferingSendProxy(out_chan.push)
            compute.register_proxy(proxy)
            context[client_ep.name] = proxy

        # Outbound endpoints (backends): lazy connections per target.
        for ep in spec.endpoints:
            targets = self.bindings.outbound.get(ep.name)
            if targets is None:
                continue
            proxies = [
                self._outbound_proxy(ep, index, target)
                for index, target in enumerate(targets)
            ]
            for proxy in proxies:
                compute.register_proxy(proxy)
            context[ep.name] = (
                ChannelArrayView(proxies) if ep.is_array else proxies[0]
            )

        # Client-facing input task.
        if client_ep.readable:
            in_task = InputTask(
                f"g{self.graph_id}:{client_ep.name}.in",
                self.registry.new_parser(client_ep.read_type),
                inbox,
                self.stack,
                self.config.cores,
                tag=(client_ep.name, 0),
                on_eof=self._teardown,
            )
            in_task.attach(client_socket, self._notify(in_task))
            self._add_task(in_task, endpoint=client_ep.name)

        # Value parameters (non-channel process arguments).
        if self.bindings.value_params is not None:
            context.update(self.bindings.value_params(client_socket))

        # Install rule handlers with the completed context; raw-forwarded
        # endpoints bypass the compute task entirely.
        tier = self.config.exec_tier
        for rule in spec.rules:
            if rule.source in self._raw_forward:
                continue
            handler_context = dict(context)
            if rule.sink is not None:
                sink_obj = handler_context.get(rule.sink)
                if sink_obj is None:
                    raise RuntimeFlickError(
                        f"rule sink {rule.sink!r} is not bound"
                    )
            compute.add_handler(
                rule.source,
                build_rule_handler(self.program, rule, handler_context, tier),
            )

    def _outbound_proxy(
        self, ep, index: int, target: OutboundTarget
    ) -> _BufferingSendProxy:
        """A send proxy that lazily opens the backend connection."""
        out_chan = self._channel(f"{ep.name}[{index}].out")
        out_task = OutputTask(
            f"g{self.graph_id}:{ep.name}[{index}].out",
            out_chan,
            self.registry.serializer(),
            self.stack,
            self.config.cores,
        )
        self._wire_channel_to(out_chan, out_task)
        self._add_task(out_task, endpoint=ep.name)
        state = {"connecting": False}

        def ensure_connected() -> None:
            if state["connecting"] or out_task.bound:
                return
            state["connecting"] = True

            def connected(socket) -> None:
                self._outbound_sockets.append(socket)
                out_task.bind_socket(socket)
                if ep.readable:
                    # A backend-side EOF normally just ends that stream;
                    # under backend fault injection it must fell the
                    # whole graph or in-flight requests black-hole.
                    backend_eof = (
                        self._teardown
                        if self.config.backend_close_teardown
                        else None
                    )
                    raw_sink = self._raw_forward.get(ep.name)
                    if raw_sink is not None:
                        in_task = RawForwardTask(
                            f"g{self.graph_id}:{ep.name}[{index}].fwd",
                            self._endpoint_out_channels[raw_sink],
                            self.stack,
                            self.config.cores,
                            on_eof=backend_eof,
                        )
                    else:
                        in_task = InputTask(
                            f"g{self.graph_id}:{ep.name}[{index}].in",
                            self.registry.new_parser(ep.read_type),
                            self.compute.inbox,
                            self.stack,
                            self.config.cores,
                            tag=(ep.name, index),
                            on_eof=backend_eof,
                        )
                    in_task.attach(socket, self._notify(in_task))
                    self._add_task(in_task, endpoint=ep.name)
                self.scheduler.notify_runnable(out_task)

            self.tcpnet.connect(self.host, target.host, target.port, connected)

        def sink(value) -> None:
            ensure_connected()
            out_chan.push(value)

        return _BufferingSendProxy(sink)

    # -- foldt graphs (Figure 3c) --------------------------------------------------

    def bind_group(self, mapper_sockets: List, sink_socket) -> None:
        """Wire a foldt combine tree over ``mapper_sockets``."""
        spec = self.spec
        plan = spec.foldt
        if plan is None:
            raise RuntimeFlickError(
                f"process {spec.name!r} has no foldt aggregation"
            )
        source_ep = spec.endpoint(plan.source)
        sink_ep = spec.endpoint(plan.sink)
        handler = build_foldt_handler(
            self.program, plan, self.config.exec_tier
        )
        if self.bindings.native_foldt is not None:
            key_fn, combine_fn = self.bindings.native_foldt
        else:
            key_fn, combine_fn = handler.key, handler.combine_with_ops

        # Leaf input tasks, one per mapper connection.
        streams: List[TaskChannel] = []
        for index, socket in enumerate(mapper_sockets):
            chan = self._channel(f"{plan.source}[{index}]")
            in_task = InputTask(
                f"g{self.graph_id}:{plan.source}[{index}].in",
                self.registry.new_parser(source_ep.read_type),
                chan,
                self.stack,
                self.config.cores,
            )
            in_task.attach(socket, self._notify(in_task))
            self._add_task(in_task, endpoint=plan.source)
            streams.append(chan)

        # Pairwise merge tree.
        level = 0
        while len(streams) > 1:
            next_streams: List[TaskChannel] = []
            for pair_idx in range(0, len(streams) - 1, 2):
                out = self._channel(f"merge.l{level}.{pair_idx // 2}")
                merge = MergeTask(
                    f"g{self.graph_id}:merge.l{level}.{pair_idx // 2}",
                    streams[pair_idx],
                    streams[pair_idx + 1],
                    out,
                    key_fn,
                    combine_fn,
                )
                self._wire_channel_to(streams[pair_idx], merge)
                self._wire_channel_to(streams[pair_idx + 1], merge)
                self._add_task(merge)
                next_streams.append(out)
            if len(streams) % 2:
                next_streams.append(streams[-1])
            streams = next_streams
            level += 1

        out_task = OutputTask(
            f"g{self.graph_id}:{plan.sink}.out",
            streams[0],
            self.registry.serializer(),
            self.stack,
            self.config.cores,
            close_on_eos=True,
        )
        out_task.bind_socket(sink_socket)
        self._wire_channel_to(streams[0], out_task)
        self._add_task(out_task, endpoint=plan.sink)
        del sink_ep

    # -- teardown -------------------------------------------------------------------

    def _teardown(self) -> None:
        """Client closed: release outbound connections, report finished."""
        if self._finished:
            return
        self._finished = True
        for socket in self._outbound_sockets:
            socket.close()
        self._outbound_sockets = []
        if self._client_socket is not None and not self._client_socket.closed:
            self._client_socket.close()
        if self.on_finished is not None:
            self.on_finished(self)

    @property
    def finished(self) -> bool:
        return self._finished
