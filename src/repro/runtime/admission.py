"""Per-service-class admission control: shed load before it queues.

The second overload-survival policy plane (the first is
:mod:`repro.runtime.allocator`): string-keyed *admission policies* that
decide, request by request on the arrival clock, whether an open-loop
client admits a request into the platform or **sheds** it at the door.
Shedding is a first-class per-class outcome — every shed is counted by
the workload generator and mirrored into the platform's
:class:`~repro.sim.stats.SloScoreboard` (``record_shed``), so it shows
up next to completions and SLO misses in ``class_stats``, the bench
report tables and ``BENCH_scenarios.json``.

The mechanism half lives in
:class:`~repro.workloads.arrivals.OpenLoopClients`: for each arrival it
builds an :class:`AdmissionRequest` snapshot and asks the policy's
``admit(request)``; a ``False`` answer drops the request before any
bytes hit the simulated network, so shed requests cost the platform
nothing — exactly the point of admission control.

Three policies ship built in: ``admit-all`` (today's behaviour, the
default), ``shed-bronze`` (threshold shedding: above an in-flight
watermark only protected classes get in), and ``token-bucket``
(deterministic per-class token buckets refilled on virtual time).
Unknown names get near-miss suggestions, mirroring
:mod:`repro.runtime.policy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

from repro.core.errors import RuntimeFlickError
from repro.runtime.qos import closest_name


@dataclass(frozen=True)
class AdmissionRequest:
    """What an admission policy may observe for one arriving request.

    ``inflight`` counts requests admitted but not yet completed across
    the whole workload (the client-visible congestion signal);
    ``offered``/``admitted``/``shed`` are the per-run totals so far,
    *excluding* this request.
    """

    index: int
    now_us: float
    service_class: str
    inflight: int
    offered: int
    admitted: int
    shed: int


class AdmissionPolicy:
    """Base class; subclasses override :meth:`admit`."""

    #: Registry key; subclasses must override.
    name = "abstract"

    def admit(self, request: AdmissionRequest) -> bool:
        """Whether this arrival enters the platform (``False`` = shed)."""
        raise NotImplementedError

    def configure(self, config) -> None:
        """Adopt platform tunables from a ``RuntimeConfig`` (duck-typed)."""

    def reset(self) -> None:
        """Drop learned state; called when a workload adopts the policy."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name!r}>"


# -- registry ----------------------------------------------------------------

_REGISTRY: Dict[str, Type[AdmissionPolicy]] = {}


def register_admission(cls: Type[AdmissionPolicy]) -> Type[AdmissionPolicy]:
    """Class decorator adding ``cls`` to the registry under ``cls.name``."""
    if not cls.name or cls.name == "abstract":
        raise RuntimeFlickError(
            f"admission class {cls.__name__} needs a name"
        )
    if cls.name in _REGISTRY:
        raise RuntimeFlickError(
            f"admission policy {cls.name!r} registered twice"
        )
    _REGISTRY[cls.name] = cls
    return cls


def registered_admissions() -> tuple:
    """All registered admission names: ``admit-all`` first, rest sorted."""
    extras = sorted(name for name in _REGISTRY if name != "admit-all")
    return ("admit-all",) + tuple(extras)


def closest_admission_name(name: str) -> Optional[str]:
    """The registered name a typo most plausibly meant, or ``None``."""
    return closest_name(name, _REGISTRY)


def unknown_admission_message(name: str) -> str:
    """Error text for an unregistered admission name, with a near-miss."""
    message = (
        f"unknown admission policy {name!r}; registered: "
        f"{', '.join(sorted(_REGISTRY))}"
    )
    suggestion = closest_admission_name(name)
    if suggestion is not None:
        message += f"; did you mean {suggestion!r}?"
    return message


def make_admission(name: str, **kwargs) -> AdmissionPolicy:
    """Instantiate the registered admission policy ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise RuntimeFlickError(unknown_admission_message(name)) from None
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise RuntimeFlickError(
            f"bad parameters for admission policy {name!r}: {exc}"
        ) from None


def resolve_admission(spec) -> AdmissionPolicy:
    """Accept an admission name or a ready instance; return an instance."""
    if isinstance(spec, AdmissionPolicy):
        return spec
    if isinstance(spec, str):
        return make_admission(spec)
    raise RuntimeFlickError(
        "admission policy must be a name or AdmissionPolicy, "
        f"got {type(spec).__name__}"
    )


# -- built-in policies --------------------------------------------------------


@register_admission
class AdmitAll(AdmissionPolicy):
    """Today's behaviour: every arrival is admitted."""

    name = "admit-all"

    def admit(self, request: AdmissionRequest) -> bool:
        return True


@register_admission
class ShedBronze(AdmissionPolicy):
    """Threshold shedding that protects the premium classes.

    While the in-flight count sits at or below ``max_inflight`` every
    arrival gets in; above it, only the ``protect`` classes are
    admitted and the rest are shed.  The watermark is the knob that
    turns an open-loop SLO collapse into bounded premium-class misses:
    unprotected (bronze) arrivals stop adding queueing delay the moment
    the platform saturates.
    """

    name = "shed-bronze"

    def __init__(
        self,
        max_inflight: int = 192,
        protect: Tuple[str, ...] = ("gold",),
    ):
        if max_inflight < 1:
            raise RuntimeFlickError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if not protect:
            raise RuntimeFlickError(
                "shed-bronze needs at least one protected class"
            )
        self.max_inflight = max_inflight
        self.protect = tuple(protect)

    def admit(self, request: AdmissionRequest) -> bool:
        if request.inflight < self.max_inflight:
            return True
        return request.service_class in self.protect


@register_admission
class TokenBucket(AdmissionPolicy):
    """Deterministic per-class token buckets refilled on virtual time.

    Each class refills at ``rate_rps`` tokens per (virtual) second up
    to a ``burst`` ceiling; an arrival spends one token or is shed.
    ``rates`` overrides the refill rate for named classes, so a gold
    class can be provisioned at its offered rate while bronze is capped
    below it.  All arithmetic runs on the virtual clock, so runs are
    bit-reproducible.
    """

    name = "token-bucket"

    def __init__(
        self,
        rate_rps: float = 50_000.0,
        burst: float = 64.0,
        rates: Optional[Dict[str, float]] = None,
    ):
        if rate_rps <= 0:
            raise RuntimeFlickError(
                f"token refill rate must be positive, got {rate_rps}"
            )
        if burst < 1:
            raise RuntimeFlickError(f"burst must be >= 1, got {burst}")
        self.rate_rps = rate_rps
        self.burst = burst
        self.rates = dict(rates) if rates else {}
        for cls_name, rate in self.rates.items():
            if rate <= 0:
                raise RuntimeFlickError(
                    f"token refill rate for class {cls_name!r} must be "
                    f"positive, got {rate}"
                )
        self._tokens: Dict[str, float] = {}
        self._refilled_at: Dict[str, float] = {}

    def reset(self) -> None:
        self._tokens.clear()
        self._refilled_at.clear()

    def admit(self, request: AdmissionRequest) -> bool:
        cls_name = request.service_class
        rate_per_us = self.rates.get(cls_name, self.rate_rps) / 1e6
        tokens = self._tokens.get(cls_name, self.burst)
        last = self._refilled_at.get(cls_name, request.now_us)
        tokens = min(
            self.burst, tokens + (request.now_us - last) * rate_per_us
        )
        self._refilled_at[cls_name] = request.now_us
        if tokens >= 1.0:
            self._tokens[cls_name] = tokens - 1.0
            return True
        self._tokens[cls_name] = tokens
        return False
