"""Workload generators: HTTP clients, Memcached clients, Hadoop mappers.

Two client models drive the testbeds: the paper's closed-loop
populations (:mod:`~repro.workloads.http_clients`,
:mod:`~repro.workloads.memcached_clients` — ApacheBench-style, each
client waits for its response) and the open-loop generation in
:mod:`~repro.workloads.arrivals` — a registry of arrival processes
(poisson / bursty MMPP / ramp / replay) feeding an
:class:`~repro.workloads.arrivals.OpenLoopClients` population that
admits requests on the arrival clock regardless of completions, making
overload and SLO-miss behaviour observable.
"""
