"""Workload generators: HTTP clients, Memcached clients, Hadoop mappers."""
