"""ApacheBench-style closed-loop HTTP client population (section 6.2).

``N`` concurrent clients each issue one request, wait for the complete
response, then immediately issue the next (ab's concurrency model).  Two
modes match the paper's experiments:

* **persistent** — one connection per client, requests pipelined
  back-to-back over it (HTTP keep-alive);
* **non-persistent** — a fresh TCP connection per request (Figure 4c/4d),
  closed by the client after each response.

The population warms up for ``warmup_requests`` per client before the
measurement meter starts, and reports throughput/latency for the
measured window.
"""

from __future__ import annotations

from typing import List, Optional

from repro.grammar.protocols import http
from repro.net.simnet import Host
from repro.net.tcp import TcpNetwork, TcpSocket
from repro.sim.engine import Engine
from repro.sim.stats import LatencySeries, Meter


class HttpClientPopulation:
    """Closed-loop clients driving one target host:port."""

    def __init__(
        self,
        engine: Engine,
        tcpnet: TcpNetwork,
        client_hosts: List[Host],
        target: Host,
        port: int,
        concurrency: int,
        persistent: bool = True,
        requests_per_client: int = 50,
        warmup_requests: int = 5,
        path: str = "/index.html",
    ):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.engine = engine
        self.tcpnet = tcpnet
        self.client_hosts = client_hosts
        self.target = target
        self.port = port
        self.concurrency = concurrency
        self.persistent = persistent
        self.requests_per_client = requests_per_client
        self.warmup_requests = warmup_requests
        self.path = path
        self.latency = LatencySeries()
        self.meter = Meter()
        self.errors = 0
        self._done_clients = 0
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise RuntimeError("population already started")
        self._started = True
        self.meter.begin(self.engine.now)
        for index in range(self.concurrency):
            host = self.client_hosts[index % len(self.client_hosts)]
            _Client(self, index, host).start()

    @property
    def finished(self) -> bool:
        return self._done_clients == self.concurrency

    def _client_done(self) -> None:
        self._done_clients += 1
        if self.finished:
            self.meter.finish(self.engine.now)

    # -- results -------------------------------------------------------------

    def kreqs_per_sec(self) -> float:
        return self.meter.kreqs_per_sec()

    def mean_latency_ms(self) -> float:
        return self.latency.mean_ms()


class _Client:
    """One closed-loop client."""

    def __init__(self, population: HttpClientPopulation, index: int, host: Host):
        self.pop = population
        self.index = index
        self.host = host
        self.sent = 0
        self.socket: Optional[TcpSocket] = None
        self.parser = http.HttpResponseParser()
        self.request_started = 0.0

    def start(self) -> None:
        if self.pop.persistent:
            self._connect(self._send_next)
        else:
            self._next_request()

    # -- connection management -------------------------------------------------

    def _connect(self, then) -> None:
        def connected(socket: TcpSocket) -> None:
            self.socket = socket
            socket.on_receive(self._on_data)
            then()

        self.pop.tcpnet.connect(
            self.host, self.pop.target, self.pop.port, connected
        )

    # -- request loop --------------------------------------------------------------

    def _next_request(self) -> None:
        if self.sent >= self.pop.requests_per_client:
            self.pop._client_done()
            return
        if self.pop.persistent:
            self._send_next()
        else:
            self.parser = http.HttpResponseParser()
            self._connect(self._send_next)

    def _send_next(self) -> None:
        request = http.make_request(
            "GET",
            f"{self.pop.path}?c={self.index}&n={self.sent}",
            keep_alive=self.pop.persistent,
        )
        self.request_started = self.pop.engine.now
        self.sent += 1
        self.socket.send(request.raw)

    def _on_data(self, data: bytes) -> None:
        self.parser.feed(data)
        for response in self.parser.messages():
            latency = self.pop.engine.now - self.request_started
            if response.status != 200:
                self.pop.errors += 1
            if self.sent > self.pop.warmup_requests:
                self.pop.latency.record(latency)
                self.pop.meter.add(len(response.body))
            if not self.pop.persistent:
                self.socket.close()
                self.socket = None
            self._next_request()
            return
