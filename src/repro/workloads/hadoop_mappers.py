"""Hadoop word-count workload: mappers, dataset generator, reducer sink.

Generates the map phase's intermediate output for a word-count job: each
mapper emits a key-sorted stream of ``(word, count)`` pairs in the Hadoop
key/value wire format (§6.2's datasets of 8/12/16-character words with a
high data-reduction ratio).  Mappers stream their output in fixed-size
chunks through their 1 Gbps NICs; the reducer sink collects the combined
stream and exposes completion and throughput.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.ids import stable_hash
from repro.grammar.protocols import hadoop
from repro.net.simnet import Host
from repro.net.tcp import TcpNetwork, TcpSocket
from repro.sim.engine import Engine

_CHUNK_BYTES = 8 * 1024
_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def make_word(index: int, word_len: int) -> str:
    """Deterministic pseudo-random word of exactly ``word_len`` chars."""
    h = stable_hash(("word", index, word_len))
    chars = []
    for _ in range(word_len):
        chars.append(_ALPHABET[h % 26])
        h //= 26
        if h == 0:
            h = stable_hash(("more", index, len(chars)))
    return "".join(chars)


def generate_mapper_output(
    mapper_index: int,
    total_bytes: int,
    word_len: int,
    vocabulary: int = 512,
) -> List[Tuple[str, str]]:
    """One mapper's sorted (word, count) pairs, ~``total_bytes`` on the wire.

    A high data-reduction ratio comes from the bounded vocabulary: every
    mapper sees (a subset of) the same words, so the combiner tree shrinks
    the stream roughly by the number of mappers.
    """
    pair_bytes = 2 + 4 + word_len + 2  # key_len + value_len + key + ~value
    n_pairs = max(1, total_bytes // pair_bytes)
    words = sorted(
        {make_word(i, word_len) for i in range(vocabulary)}
    )
    pairs: List[Tuple[str, str]] = []
    for i in range(n_pairs):
        word = words[stable_hash((mapper_index, i)) % len(words)]
        count = 1 + stable_hash((mapper_index, i, "c")) % 9
        pairs.append((word, str(count)))
    pairs.sort(key=lambda kv: kv[0])
    # Pre-combine duplicates within the mapper (mappers run combiners
    # locally in Hadoop), keeping each stream's keys unique and sorted.
    combined: List[Tuple[str, str]] = []
    for key, value in pairs:
        if combined and combined[-1][0] == key:
            combined[-1] = (key, str(int(combined[-1][1]) + int(value)))
        else:
            combined.append((key, value))
    return combined


class Mapper:
    """Streams one mapper's output to the aggregator in chunks."""

    def __init__(
        self,
        engine: Engine,
        tcpnet: TcpNetwork,
        host: Host,
        target: Host,
        port: int,
        pairs: List[Tuple[str, str]],
    ):
        self.engine = engine
        self.tcpnet = tcpnet
        self.host = host
        self.target = target
        self.port = port
        self.payload = hadoop.encode_pairs(pairs)
        self.bytes_total = len(self.payload)

    def start(self) -> None:
        self.tcpnet.connect(self.host, self.target, self.port, self._stream)

    def _stream(self, socket: TcpSocket) -> None:
        # Send the full stream in NIC-paced chunks, then close (EOF drives
        # the foldt tree's drain).
        for offset in range(0, len(self.payload), _CHUNK_BYTES):
            socket.send(self.payload[offset : offset + _CHUNK_BYTES])
        socket.close()


class ReducerSink:
    """The reducer endpoint: collects the combined stream."""

    def __init__(
        self, engine: Engine, tcpnet: TcpNetwork, host: Host, port: int = 9000
    ):
        self.engine = engine
        self.host = host
        self.parser = hadoop.codec().parser()
        self.pairs: List[Tuple[str, str]] = []
        self.bytes_received = 0
        self.finished_at = None
        tcpnet.listen(host, port, self._accept)

    def _accept(self, socket: TcpSocket) -> None:
        def on_data(data: bytes) -> None:
            self.bytes_received += len(data)
            self.parser.feed(data)
            for record in self.parser.messages():
                self.pairs.append((record.key, record.value))

        socket.on_receive(on_data)
        socket.on_close(self._on_close)

    def _on_close(self) -> None:
        self.finished_at = self.engine.now

    def counts(self) -> Dict[str, int]:
        return {key: int(value) for key, value in self.pairs}


def reference_wordcount(
    mapper_outputs: List[List[Tuple[str, str]]]
) -> Dict[str, int]:
    """Ground-truth combined counts, for end-to-end verification."""
    totals: Dict[str, int] = {}
    for pairs in mapper_outputs:
        for key, value in pairs:
            totals[key] = totals.get(key, 0) + int(value)
    return totals
