"""Simulated backend servers (never the bottleneck, per section 6.2).

The evaluation deploys 10 Apache web servers / 10 Memcached servers
behind the middlebox; their own CPU is explicitly provisioned so they do
not limit throughput, so these models respond after a small fixed service
delay rather than contending for simulated cores.

Fault injection (:mod:`repro.net.faults`) hooks in at two points shared
by both servers via :class:`_FaultableBackend`: ``service_scale`` (a
callable of the virtual clock multiplying the service delay — the
``slow-backend`` injector) and ``set_up`` (up/down state that resets
every accepted connection on the way down and refuses connects while
down — the ``flapping-backend`` injector).  Both default to the
fault-free behaviour the paper models.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.grammar.protocols import http
from repro.grammar.protocols import memcached as mc
from repro.net.simnet import Host
from repro.net.tcp import TcpNetwork, TcpSocket
from repro.sim.engine import Engine


class _FaultableBackend:
    """Shared up/down state + service-time scaling for backend models."""

    def __init__(self, engine: Engine, service_us: float):
        self.engine = engine
        self.service_us = service_us
        self.requests_served = 0
        #: Fault hook: virtual-clock → service-time multiplier (``None``
        #: = nominal service).  Set by the ``slow-backend`` injector.
        self.service_scale: Optional[Callable[[float], float]] = None
        #: Whether the server accepts and answers (``set_up`` flips it).
        self.up = True
        #: Connections reset by going down / refused while down.
        self.connections_reset = 0
        self._live_sockets: List[TcpSocket] = []

    def _service_delay(self) -> float:
        if self.service_scale is None:
            return self.service_us
        return self.service_us * self.service_scale(self.engine.now)

    def _track(self, socket: TcpSocket) -> bool:
        """Admit ``socket`` into the live set; reset it if down."""
        if not self.up:
            self.connections_reset += 1
            socket.close()
            return False
        self._live_sockets.append(socket)
        socket.on_close(lambda: self._forget(socket))
        return True

    def _forget(self, socket: TcpSocket) -> None:
        try:
            self._live_sockets.remove(socket)
        except ValueError:
            pass

    def set_up(self, up: bool) -> None:
        """Flip server availability; going down resets live connections."""
        if up == self.up:
            return
        self.up = up
        if not up:
            live, self._live_sockets = self._live_sockets, []
            for socket in live:
                if not socket.closed:
                    self.connections_reset += 1
                    socket.close()


class BackendWebServer(_FaultableBackend):
    """Responds to every HTTP request with a fixed payload."""

    def __init__(
        self,
        engine: Engine,
        tcpnet: TcpNetwork,
        host: Host,
        port: int = 8080,
        body: bytes = b"x" * 137,
        service_us: float = 15.0,
    ):
        super().__init__(engine, service_us)
        self.host = host
        self.body = body
        tcpnet.listen(host, port, self._accept)

    def _accept(self, socket: TcpSocket) -> None:
        if not self._track(socket):
            return
        parser = http.HttpRequestParser()

        def on_data(data: bytes) -> None:
            parser.feed(data)
            for request in parser.messages():
                self.requests_served += 1
                response = http.make_response(body=self.body)
                close = not http.wants_keep_alive(request)
                self.engine.schedule(
                    self._service_delay(),
                    self._respond,
                    socket,
                    response.raw,
                    close,
                )

        socket.on_receive(on_data)

    @staticmethod
    def _respond(socket: TcpSocket, raw: bytes, close: bool) -> None:
        if socket.closed:
            return
        socket.send(raw)
        if close:
            socket.close()


class BackendMemcachedServer(_FaultableBackend):
    """A Memcached server owning one shard of the key space.

    GETK requests are answered with a value derived from the key via
    ``value_fn`` (deterministic, so tests can verify end-to-end content).
    """

    def __init__(
        self,
        engine: Engine,
        tcpnet: TcpNetwork,
        host: Host,
        port: int = 11211,
        value_fn: Optional[Callable[[str], bytes]] = None,
        service_us: float = 8.0,
    ):
        super().__init__(engine, service_us)
        self.host = host
        self.value_fn = value_fn or (lambda key: f"value-of-{key}".encode())
        self.store: Dict[str, bytes] = {}
        tcpnet.listen(host, port, self._accept)

    def _accept(self, socket: TcpSocket) -> None:
        if not self._track(socket):
            return
        parser = mc.full_codec().parser()

        def on_data(data: bytes) -> None:
            parser.feed(data)
            for request in parser.messages():
                self.requests_served += 1
                self.engine.schedule(
                    self._service_delay(), self._respond, socket, request
                )

        socket.on_receive(on_data)

    def _respond(self, socket: TcpSocket, request) -> None:
        if socket.closed:
            return
        opcode = request.opcode
        key = request.key
        if opcode == mc.OP_SET:
            self.store[key] = bytes(request.value)
            response = mc.make_response(opcode, key, b"", opaque=request.opaque)
        else:
            value = self.store.get(key)
            if value is None:
                value = self.value_fn(key)
            response = mc.make_response(
                opcode, key, value, opaque=request.opaque
            )
        socket.send(mc.encode(response))
