"""Simulated backend servers (never the bottleneck, per section 6.2).

The evaluation deploys 10 Apache web servers / 10 Memcached servers
behind the middlebox; their own CPU is explicitly provisioned so they do
not limit throughput, so these models respond after a small fixed service
delay rather than contending for simulated cores.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.grammar.protocols import http
from repro.grammar.protocols import memcached as mc
from repro.net.simnet import Host
from repro.net.tcp import TcpNetwork, TcpSocket
from repro.sim.engine import Engine


class BackendWebServer:
    """Responds to every HTTP request with a fixed payload."""

    def __init__(
        self,
        engine: Engine,
        tcpnet: TcpNetwork,
        host: Host,
        port: int = 8080,
        body: bytes = b"x" * 137,
        service_us: float = 15.0,
    ):
        self.engine = engine
        self.host = host
        self.body = body
        self.service_us = service_us
        self.requests_served = 0
        tcpnet.listen(host, port, self._accept)

    def _accept(self, socket: TcpSocket) -> None:
        parser = http.HttpRequestParser()

        def on_data(data: bytes) -> None:
            parser.feed(data)
            for request in parser.messages():
                self.requests_served += 1
                response = http.make_response(body=self.body)
                close = not http.wants_keep_alive(request)
                self.engine.schedule(
                    self.service_us,
                    self._respond,
                    socket,
                    response.raw,
                    close,
                )

        socket.on_receive(on_data)

    @staticmethod
    def _respond(socket: TcpSocket, raw: bytes, close: bool) -> None:
        if socket.closed:
            return
        socket.send(raw)
        if close:
            socket.close()


class BackendMemcachedServer:
    """A Memcached server owning one shard of the key space.

    GETK requests are answered with a value derived from the key via
    ``value_fn`` (deterministic, so tests can verify end-to-end content).
    """

    def __init__(
        self,
        engine: Engine,
        tcpnet: TcpNetwork,
        host: Host,
        port: int = 11211,
        value_fn: Optional[Callable[[str], bytes]] = None,
        service_us: float = 8.0,
    ):
        self.engine = engine
        self.host = host
        self.value_fn = value_fn or (lambda key: f"value-of-{key}".encode())
        self.service_us = service_us
        self.requests_served = 0
        self.store: Dict[str, bytes] = {}
        tcpnet.listen(host, port, self._accept)

    def _accept(self, socket: TcpSocket) -> None:
        parser = mc.full_codec().parser()

        def on_data(data: bytes) -> None:
            parser.feed(data)
            for request in parser.messages():
                self.requests_served += 1
                self.engine.schedule(
                    self.service_us, self._respond, socket, request
                )

        socket.on_receive(on_data)

    def _respond(self, socket: TcpSocket, request) -> None:
        if socket.closed:
            return
        opcode = request.opcode
        key = request.key
        if opcode == mc.OP_SET:
            self.store[key] = bytes(request.value)
            response = mc.make_response(opcode, key, b"", opaque=request.opaque)
        else:
            value = self.store.get(key)
            if value is None:
                value = self.value_fn(key)
            response = mc.make_response(
                opcode, key, value, opaque=request.opaque
            )
        socket.send(mc.encode(response))
