"""Open-loop workload generation: arrival processes + client population.

The paper's evaluation is entirely *closed-loop* (ApacheBench-style: N
clients in lockstep, each waiting for its response before sending the
next request).  Closed-loop clients self-throttle — when the middlebox
saturates, the offered load drops with it, so overload and SLO-miss
behaviour are invisible.  This module supplies the missing half:

* :class:`ArrivalProcess` — the *policy* side of load generation,
  mirroring the scheduler's policy/mechanism split
  (:mod:`repro.runtime.policy`): a string-keyed registry of processes
  that emit inter-arrival gaps.  ``poisson`` (memoryless), ``bursty``
  (a two-state MMPP: exponential ON/OFF dwells with arrivals only
  while ON), ``ramp`` (deterministic linear rate sweep, for capacity
  walks) and ``replay`` (an explicit timestamp trace) ship built in;
  :func:`register_arrival` adds more.
* :class:`OpenLoopClients` — the *mechanism*: a client population that
  admits one request per arrival-clock tick **regardless of
  completions**.  Requests are sprayed round-robin over a fixed pool of
  persistent connections and pipelined, so a backlogged middlebox
  accumulates queueing latency instead of throttling the source — the
  regime where SLO misses become observable.

Latency is measured from *admission* (the arrival tick), not from the
socket write, so connection backlog counts against the SLO exactly as a
queueing model would.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Type

from repro.core.errors import ConfigError
from repro.grammar.protocols import http
from repro.grammar.protocols import memcached as mc
from repro.net.simnet import Host
from repro.net.tcp import TcpNetwork, TcpSocket
from repro.runtime.admission import AdmissionRequest, resolve_admission
from repro.runtime.qos import DEFAULT_CLASS_NAME, closest_name
from repro.sim.engine import Engine, Timeout
from repro.sim.stats import IntervalSeries, LatencySeries, Meter

US_PER_S = 1_000_000.0


class ArrivalProcess:
    """Emits inter-arrival gaps (virtual µs) for an open-loop source.

    Subclasses override :meth:`gaps`; randomised processes draw from the
    ``rng`` handed in by the population so one seed reproduces the whole
    run.  A process may be finite (``replay``) — the population stops
    admitting when the iterator is exhausted.
    """

    #: Registry key; subclasses must override.
    name = "abstract"

    def gaps(self, rng: random.Random) -> Iterator[float]:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable parameterisation for reports."""
        return self.name


_REGISTRY: Dict[str, Type[ArrivalProcess]] = {}


def register_arrival(cls: Type[ArrivalProcess]) -> Type[ArrivalProcess]:
    """Class decorator adding ``cls`` to the registry under ``cls.name``."""
    if not cls.name or cls.name == "abstract":
        raise ConfigError(f"arrival class {cls.__name__} needs a name")
    if cls.name in _REGISTRY:
        raise ConfigError(f"arrival process {cls.name!r} registered twice")
    _REGISTRY[cls.name] = cls
    return cls


def registered_arrivals() -> tuple:
    """All registered arrival-process names, sorted."""
    return tuple(sorted(_REGISTRY))


def closest_arrival_name(name: str) -> Optional[str]:
    """The registered name a typo most plausibly meant, or ``None``."""
    return closest_name(name, _REGISTRY)


def unknown_arrival_message(name: str) -> str:
    """Error text for an unregistered arrival name, with a near-miss."""
    message = (
        f"unknown arrival process {name!r}; registered: "
        f"{', '.join(sorted(_REGISTRY))}"
    )
    suggestion = closest_arrival_name(name)
    if suggestion is not None:
        message += f"; did you mean {suggestion!r}?"
    return message


def make_arrival(name: str, **params) -> ArrivalProcess:
    """Instantiate the registered arrival process ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(unknown_arrival_message(name)) from None
    try:
        return cls(**params)
    except TypeError as exc:
        raise ConfigError(
            f"bad parameters for arrival process {name!r}: {exc}"
        ) from None


def resolve_arrival(spec, **params) -> ArrivalProcess:
    """Accept an arrival name or a ready instance; return an instance."""
    if isinstance(spec, ArrivalProcess):
        return spec
    if isinstance(spec, str):
        return make_arrival(spec, **params)
    raise ConfigError(
        f"arrival must be a name or ArrivalProcess, got {type(spec).__name__}"
    )


def _check_rate(rate_rps: float, what: str = "rate_rps") -> float:
    if rate_rps <= 0:
        raise ConfigError(f"{what} must be positive, got {rate_rps:g}")
    return float(rate_rps)


def _check_class_mix(class_mix) -> tuple:
    """Validate a ``((name, weight), ...)`` class mix; empty is fine."""
    checked = []
    seen = set()
    for pair in class_mix:
        name, weight = pair
        if not name or not isinstance(name, str):
            raise ConfigError(
                f"class_mix names must be non-empty strings, got {name!r}"
            )
        if name in seen:
            raise ConfigError(f"class_mix repeats class {name!r}")
        seen.add(name)
        if weight <= 0:
            raise ConfigError(
                f"class_mix weight for {name!r} must be positive, "
                f"got {weight:g}"
            )
        checked.append((name, float(weight)))
    return tuple(checked)


@register_arrival
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate_rps`` requests/second."""

    name = "poisson"

    def __init__(self, rate_rps: float = 1_000.0):
        self.rate_rps = _check_rate(rate_rps)

    def gaps(self, rng: random.Random) -> Iterator[float]:
        mean_gap_us = US_PER_S / self.rate_rps
        while True:
            yield rng.expovariate(1.0) * mean_gap_us

    def describe(self) -> str:
        return f"poisson({self.rate_rps:g}/s)"


@register_arrival
class BurstyArrivals(ArrivalProcess):
    """Two-state MMPP: Poisson bursts at ``burst_rate_rps`` while ON.

    Dwell times in both states are exponential (means ``mean_on_us`` /
    ``mean_off_us``); no arrivals occur while OFF, so the long-run mean
    rate is ``burst_rate_rps * on_fraction`` but the instantaneous rate
    the middlebox must absorb is the full burst rate.
    """

    name = "bursty"

    def __init__(
        self,
        burst_rate_rps: float = 4_000.0,
        mean_on_us: float = 20_000.0,
        mean_off_us: float = 20_000.0,
    ):
        self.burst_rate_rps = _check_rate(burst_rate_rps, "burst_rate_rps")
        if mean_on_us <= 0 or mean_off_us <= 0:
            raise ConfigError(
                "mean_on_us and mean_off_us must be positive, got "
                f"{mean_on_us:g}/{mean_off_us:g}"
            )
        self.mean_on_us = float(mean_on_us)
        self.mean_off_us = float(mean_off_us)

    def gaps(self, rng: random.Random) -> Iterator[float]:
        mean_gap_us = US_PER_S / self.burst_rate_rps
        on_left = rng.expovariate(1.0) * self.mean_on_us
        while True:
            gap = rng.expovariate(1.0) * mean_gap_us
            # Burn through whole OFF periods the gap straddles: dwells
            # are memoryless, so drawing the next ON window afresh each
            # time an arrival would overshoot the current one is exact.
            # The ON time consumed before each OFF dwell counts toward
            # elapsed time too — dropping it would inflate the realised
            # rate above burst_rate * duty.
            elapsed = 0.0
            while gap > on_left:
                gap -= on_left
                elapsed += on_left
                elapsed += rng.expovariate(1.0) * self.mean_off_us
                on_left = rng.expovariate(1.0) * self.mean_on_us
            on_left -= gap
            yield elapsed + gap

    def describe(self) -> str:
        duty = self.mean_on_us / (self.mean_on_us + self.mean_off_us)
        return (
            f"bursty({self.burst_rate_rps:g}/s x {duty * 100:.0f}% duty)"
        )


@register_arrival
class RampArrivals(ArrivalProcess):
    """Deterministic linear rate sweep: ``start_rps`` → ``end_rps``.

    The rate ramps over ``duration_us`` of virtual time and holds at
    ``end_rps`` afterwards; gaps are the current rate's reciprocal, so
    a ramp past the service capacity walks the workload through the
    saturation knee within a single run.
    """

    name = "ramp"

    def __init__(
        self,
        start_rps: float = 500.0,
        end_rps: float = 4_000.0,
        duration_us: float = 500_000.0,
    ):
        self.start_rps = _check_rate(start_rps, "start_rps")
        self.end_rps = _check_rate(end_rps, "end_rps")
        if duration_us <= 0:
            raise ConfigError(
                f"duration_us must be positive, got {duration_us:g}"
            )
        self.duration_us = float(duration_us)

    def gaps(self, rng: random.Random) -> Iterator[float]:
        elapsed = 0.0
        slope = (self.end_rps - self.start_rps) / self.duration_us
        while True:
            if elapsed >= self.duration_us:
                rate = self.end_rps
            else:
                rate = self.start_rps + slope * elapsed
            gap = US_PER_S / rate
            elapsed += gap
            yield gap

    def describe(self) -> str:
        return (
            f"ramp({self.start_rps:g}->{self.end_rps:g}/s over "
            f"{self.duration_us / 1000.0:g}ms)"
        )


@register_arrival
class ReplayArrivals(ArrivalProcess):
    """Replay an explicit trace of absolute arrival timestamps (µs).

    The only finite process: admission stops when the trace ends.
    Timestamps must be non-decreasing (a captured trace is); the first
    arrival fires at ``timestamps_us[0]``.
    """

    name = "replay"

    def __init__(self, timestamps_us: Iterable[float] = ()):
        trace = [float(t) for t in timestamps_us]
        if not trace:
            raise ConfigError("replay needs a non-empty timestamps_us trace")
        for earlier, later in zip(trace, trace[1:]):
            if later < earlier:
                raise ConfigError(
                    f"replay trace goes backwards ({later:g} after "
                    f"{earlier:g}); timestamps must be non-decreasing"
                )
        if trace[0] < 0:
            raise ConfigError(
                f"replay trace starts before time zero ({trace[0]:g})"
            )
        self.timestamps_us = trace

    def gaps(self, rng: random.Random) -> Iterator[float]:
        previous = 0.0
        for stamp in self.timestamps_us:
            yield stamp - previous
            previous = stamp

    def describe(self) -> str:
        return f"replay({len(self.timestamps_us)} stamps)"


# ---------------------------------------------------------------------------
# Protocol adapters: how one admitted request goes on (and comes off) the wire
# ---------------------------------------------------------------------------


class RequestCodec:
    """Protocol adapter for :class:`OpenLoopClients` (one per protocol)."""

    def request_bytes(self, index: int) -> bytes:
        """Wire bytes of the ``index``-th admitted request."""
        raise NotImplementedError

    def parser(self):
        """A fresh stream parser with ``feed(data)`` / ``messages()``."""
        raise NotImplementedError

    def is_error(self, message) -> bool:
        return False

    def response_size(self, message) -> int:
        return 0


class HttpRequestCodec(RequestCodec):
    """Keep-alive GETs against one path (the Figure-4 request shape)."""

    def __init__(self, path: str = "/index.html"):
        self.path = path

    def request_bytes(self, index: int) -> bytes:
        return http.make_request(
            "GET", f"{self.path}?r={index}", keep_alive=True
        ).raw

    def parser(self):
        return http.HttpResponseParser()

    def is_error(self, message) -> bool:
        return message.status != 200

    def response_size(self, message) -> int:
        return len(message.body)


class MemcachedRequestCodec(RequestCodec):
    """Binary-protocol GETK over a deterministic key space (§6.2)."""

    def __init__(self, key_space: int = 10_000, opcode: int = mc.OP_GETK):
        self.key_space = key_space
        self.opcode = opcode

    def request_bytes(self, index: int) -> bytes:
        key = f"key-{index % self.key_space:06d}"
        return mc.encode(mc.make_request(self.opcode, key, opaque=index))

    def parser(self):
        return mc.full_codec().parser()

    def is_error(self, message) -> bool:
        return message.magic_code != mc.MAGIC_RESPONSE

    def response_size(self, message) -> int:
        return len(message.raw or b"")


# ---------------------------------------------------------------------------
# The open-loop population
# ---------------------------------------------------------------------------


class OpenLoopClients:
    """Admit ``n_requests`` on the arrival clock, completions be damned.

    A fixed pool of persistent connections is opened up front (spread
    round-robin over ``client_hosts``); each admitted request is
    assigned to connection ``index % connections`` and pipelined behind
    whatever that connection still has in flight.  Responses come back
    in FIFO order per connection, so each one is matched to the oldest
    outstanding admission and its latency runs from the admission tick.

    ``slo_us`` (optional) marks any completion slower than the target as
    an SLO miss.

    ``admission`` (a registered name from
    :func:`repro.runtime.admission.registered_admissions` or an
    :class:`~repro.runtime.admission.AdmissionPolicy` instance) gates
    every arrival: shed requests never reach the wire, so they cost the
    platform nothing and are accounted per class (``completed + shed ==
    offered`` within each class once the run drains).  ``class_mix``
    labels arrivals with service-class names by deterministic weighted
    round-robin — e.g. ``(("gold", 1.0), ("bronze", 1.0))`` alternates —
    which is what class-aware admission policies discriminate on.
    ``scoreboard`` (the platform's
    :class:`~repro.sim.stats.SloScoreboard`) mirrors every shed so it
    appears next to the server-side completions in ``class_stats``.

    The population survives a server-side connection close (the
    cluster tier's shard failures sever flows mid-run): requests still
    outstanding on a closed connection are accounted as *failed* — a
    third completion-class outcome next to responses and sheds, per
    class in :meth:`admission_summary` — and the connection reopens
    while admission is still running, so subsequent arrivals re-route
    (through a shard router, onto a surviving shard) instead of
    black-holing.  Latency of failed requests is never recorded; they
    are losses, not samples.

    Two client-side fault injectors (:mod:`repro.net.faults`) configure
    extra knobs here: ``retry_after_us`` / ``max_retries`` turn the
    population impatient (the ``retry-storm`` injector) — a response
    slower than the budget is discarded as *retried* (a fourth terminal
    outcome: never a completion, never a latency sample) and the
    request is immediately re-offered through the full admission path,
    so re-offers are shed exactly like fresh arrivals.
    ``conn_lifetime_requests`` (the ``conn-churn`` injector) recycles
    every connection after that many responses: close, reconnect, and
    carry on, so handshakes and graph builds dominate the accept path.
    The conservation laws the fault tests pin: ``admitted + shed ==
    offered`` and ``completed + failed + retried == admitted`` once the
    run drains.
    """

    def __init__(
        self,
        engine: Engine,
        tcpnet: TcpNetwork,
        client_hosts: List[Host],
        target: Host,
        port: int,
        codec: RequestCodec,
        arrival: ArrivalProcess,
        n_requests: int,
        connections: int = 64,
        seed: int = 0xF11C,
        slo_us: Optional[float] = None,
        admission="admit-all",
        class_mix=(),
        scoreboard=None,
        retry_after_us: Optional[float] = None,
        max_retries: int = 0,
        conn_lifetime_requests: Optional[int] = None,
    ):
        if n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if connections < 1:
            raise ValueError("connections must be >= 1")
        if retry_after_us is not None and retry_after_us <= 0:
            raise ValueError(
                f"retry_after_us must be positive, got {retry_after_us}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if max_retries > 0 and retry_after_us is None:
            raise ValueError("max_retries needs retry_after_us")
        if conn_lifetime_requests is not None and conn_lifetime_requests < 1:
            raise ValueError(
                "conn_lifetime_requests must be >= 1, got "
                f"{conn_lifetime_requests}"
            )
        self.engine = engine
        self.tcpnet = tcpnet
        self.client_hosts = client_hosts
        self.target = target
        self.port = port
        self.codec = codec
        self.arrival = arrival
        self.n_requests = n_requests
        self.connections = connections
        self.rng = random.Random(seed)
        self.slo_us = slo_us
        self.admission = resolve_admission(admission)
        self.admission.reset()  # a reused instance must not carry state
        self.class_mix = _check_class_mix(class_mix)
        self.scoreboard = scoreboard
        self.retry_after_us = retry_after_us
        self.max_retries = max_retries
        self.conn_lifetime_requests = conn_lifetime_requests
        self.latency = LatencySeries()
        self.inter_arrivals = IntervalSeries()
        self.meter = Meter()
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.retried = 0
        self.conn_cycles = 0
        self.errors = 0
        self.slo_misses = 0
        self.offered_by_class: Dict[str, int] = {}
        self.admitted_by_class: Dict[str, int] = {}
        self.shed_by_class: Dict[str, int] = {}
        self.completed_by_class: Dict[str, int] = {}
        self.failed_by_class: Dict[str, int] = {}
        self.retried_by_class: Dict[str, int] = {}
        self.misses_by_class: Dict[str, int] = {}
        self._conns: List[_OpenConnection] = []
        self._started = False
        self._admission_closed = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise RuntimeError("population already started")
        self._started = True
        self.meter.begin(self.engine.now)
        for index in range(self.connections):
            host = self.client_hosts[index % len(self.client_hosts)]
            conn = _OpenConnection(self, host)
            self._conns.append(conn)
            conn.open()
        self.engine.process(self._admit())

    def _class_cycle(self) -> Iterator[str]:
        """Deterministic weighted round-robin over ``class_mix`` names.

        Credit-based WRR: every step adds each class's weight to its
        credit, the richest class (first listed on ties) wins and pays
        the total weight back — so any weight ratio is realised exactly
        over a cycle, with no RNG draw that could perturb the arrival
        process stream.
        """
        if not self.class_mix:
            while True:
                yield DEFAULT_CLASS_NAME
        names = [name for name, _ in self.class_mix]
        weights = [weight for _, weight in self.class_mix]
        total = sum(weights)
        credits = [0.0] * len(names)
        while True:
            best = 0
            for i, weight in enumerate(weights):
                credits[i] += weight
                if credits[i] > credits[best]:
                    best = i
            credits[best] -= total
            yield names[best]

    def _admit(self):
        classes = self._class_cycle()
        arrivals = 0
        for gap in self.arrival.gaps(self.rng):
            # Count arrival-clock ticks, not offers: retry re-offers
            # inflate ``offered`` and must not cut the arrival stream
            # short of ``n_requests``.
            if arrivals >= self.n_requests:
                break
            if gap > 0:
                yield Timeout(gap)
            arrivals += 1
            self.inter_arrivals.observe(self.engine.now)
            self._offer(next(classes))
        self._admission_closed = True

    def _offer(self, service_class: str, attempt: int = 0) -> None:
        """One request through the admission door (arrival or retry)."""
        index = self.offered
        request = AdmissionRequest(
            index=index,
            now_us=self.engine.now,
            service_class=service_class,
            inflight=(
                self.admitted - self.completed - self.failed - self.retried
            ),
            offered=self.offered,
            admitted=self.admitted,
            shed=self.shed,
        )
        self.offered += 1
        self.offered_by_class[service_class] = (
            self.offered_by_class.get(service_class, 0) + 1
        )
        if not self.admission.admit(request):
            self.shed += 1
            self.shed_by_class[service_class] = (
                self.shed_by_class.get(service_class, 0) + 1
            )
            if self.scoreboard is not None:
                self.scoreboard.record_shed(service_class)
            return
        slot = self.admitted
        self.admitted += 1
        self.admitted_by_class[service_class] = (
            self.admitted_by_class.get(service_class, 0) + 1
        )
        self._conns[slot % self.connections].admit(
            index, service_class, attempt
        )

    # -- completion accounting ----------------------------------------------

    def _on_response(
        self, admitted_us: float, service_class: str, attempt: int, message
    ) -> None:
        latency = self.engine.now - admitted_us
        if (
            self.retry_after_us is not None
            and latency > self.retry_after_us
            and attempt < self.max_retries
        ):
            # Impatient client: the response is discarded (not a
            # completion, not a latency sample) and the request goes
            # back through the admission door — the metastable loop.
            self.retried += 1
            self.retried_by_class[service_class] = (
                self.retried_by_class.get(service_class, 0) + 1
            )
            if self.scoreboard is not None:
                self.scoreboard.record_retry(service_class)
            self._offer(service_class, attempt + 1)
            return
        self.completed += 1
        self.completed_by_class[service_class] = (
            self.completed_by_class.get(service_class, 0) + 1
        )
        if self.codec.is_error(message):
            self.errors += 1
        self.latency.record(latency)
        if self.slo_us is not None and latency > self.slo_us:
            self.slo_misses += 1
            self.misses_by_class[service_class] = (
                self.misses_by_class.get(service_class, 0) + 1
            )
        self.meter.add(self.codec.response_size(message))
        self.meter.finish(self.engine.now)

    def _on_failure(self, service_class: str) -> None:
        """One admitted request lost to a dead connection (no response)."""
        self.failed += 1
        self.failed_by_class[service_class] = (
            self.failed_by_class.get(service_class, 0) + 1
        )

    @property
    def finished(self) -> bool:
        """Every admitted request saw a response, a dead connection, or
        an impatient retry (which re-offered it — the chain is counted
        attempt by attempt).  The trace may cut offers short of
        ``n_requests`` — ``replay`` is finite, and shed requests never
        went on the wire."""
        return (
            self._admission_closed
            and self.completed + self.failed + self.retried == self.admitted
        )

    def admission_summary(self) -> Dict[str, Dict[str, float]]:
        """Client-side per-class admission outcome (plain numbers).

        Every class that offered anything appears; ``admitted + shed``
        equals ``offered`` always, and ``completed + failed + retried``
        equals ``admitted`` once the run has drained (in-flight
        requests are admitted but not yet resolved).
        """
        report: Dict[str, Dict[str, float]] = {}
        for name in self.offered_by_class:
            report[name] = {
                "offered": self.offered_by_class.get(name, 0),
                "admitted": self.admitted_by_class.get(name, 0),
                "shed": self.shed_by_class.get(name, 0),
                "completed": self.completed_by_class.get(name, 0),
                "failed": self.failed_by_class.get(name, 0),
                "retried": self.retried_by_class.get(name, 0),
                "slo_misses": self.misses_by_class.get(name, 0),
            }
        return report

    # -- results -------------------------------------------------------------

    def kreqs_per_sec(self) -> float:
        return self.meter.kreqs_per_sec()

    def mean_latency_ms(self) -> float:
        return self.latency.mean_ms()


class _OpenConnection:
    """One persistent connection: pipelined sends, FIFO response match."""

    def __init__(self, pop: OpenLoopClients, host: Host):
        self.pop = pop
        self.host = host
        self.socket: Optional[TcpSocket] = None
        self.parser = pop.codec.parser()
        #: (admitted_us, service_class, attempt) of requests in flight
        #: (or queued behind the connect), oldest first.
        self.outstanding: deque = deque()
        #: Requests admitted before the connect completed.
        self._backlog: deque = deque()
        self._connecting = False
        #: Responses drained since the last (re)connect — the
        #: ``conn-churn`` recycle clock.
        self._served = 0

    def open(self) -> None:
        self._connecting = True

        def connected(socket: TcpSocket) -> None:
            self._connecting = False
            self.socket = socket
            socket.on_receive(self._on_data)
            socket.on_close(lambda: self._on_peer_close(socket))
            while self._backlog and not socket.closed:
                self.socket.send(self._backlog.popleft())

        self.pop.tcpnet.connect(
            self.host, self.pop.target, self.pop.port, connected
        )

    def _on_peer_close(self, socket: TcpSocket) -> None:
        """Server-side EOF: write off the in-flight window, reconnect.

        Requests already on the wire are gone — any response would have
        arrived before the EOF (the simulated NIC delivers in order) —
        so everything outstanding is failed, not retried: an open-loop
        client never re-offers on its own (only the ``retry-storm``
        injector re-offers, and then only on a late *response*).
        """
        if socket is not self.socket:
            return  # stale close of an already-replaced connection
        self.socket = None
        if not socket.closed:
            socket.close()
        self._backlog.clear()
        while self.outstanding:
            _admitted_us, service_class, _attempt = self.outstanding.popleft()
            self.pop._on_failure(service_class)
        self.parser = self.pop.codec.parser()
        self._served = 0
        if not self.pop._admission_closed:
            self.open()

    def admit(self, index: int, service_class: str, attempt: int = 0) -> None:
        self.outstanding.append((self.pop.engine.now, service_class, attempt))
        payload = self.pop.codec.request_bytes(index)
        if self.socket is None:
            self._backlog.append(payload)
            # A retry can land on a connection that died after admission
            # closed (no auto-reconnect then) — reopen on demand or the
            # backlog would never flush.
            if not self._connecting:
                self.open()
        else:
            self.socket.send(payload)

    def _recycle(self) -> None:
        """conn-churn: close the drained connection and start afresh."""
        socket, self.socket = self.socket, None
        self.parser = self.pop.codec.parser()
        self._served = 0
        self.pop.conn_cycles += 1
        if socket is not None and not socket.closed:
            socket.close()
        self.open()

    def _on_data(self, data: bytes) -> None:
        self.parser.feed(data)
        for message in self.parser.messages():
            admitted_us, service_class, attempt = self.outstanding.popleft()
            self.pop._on_response(admitted_us, service_class, attempt, message)
            self._served += 1
        lifetime = self.pop.conn_lifetime_requests
        if (
            lifetime is not None
            and self._served >= lifetime
            and not self.outstanding
            and not self.pop._admission_closed
            and self.socket is not None
        ):
            self._recycle()
