"""libmemcached-style closed-loop Memcached client population (§6.2).

128 clients issue binary-protocol GETK requests over persistent
connections; each client waits for the response before sending the next
request ("Clients send a single request and wait for a response before
sending the next request").  Keys are drawn deterministically from a
configurable key space so that routing spreads over backend shards.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.ids import stable_hash
from repro.grammar.protocols import memcached as mc
from repro.net.simnet import Host
from repro.net.tcp import TcpNetwork, TcpSocket
from repro.sim.engine import Engine
from repro.sim.stats import LatencySeries, Meter


class MemcachedClientPopulation:
    """Closed-loop binary-protocol clients driving one proxy."""

    def __init__(
        self,
        engine: Engine,
        tcpnet: TcpNetwork,
        client_hosts: List[Host],
        target: Host,
        port: int,
        concurrency: int = 128,
        requests_per_client: int = 50,
        warmup_requests: int = 5,
        key_space: int = 10_000,
        opcode: int = mc.OP_GETK,
    ):
        self.engine = engine
        self.tcpnet = tcpnet
        self.client_hosts = client_hosts
        self.target = target
        self.port = port
        self.concurrency = concurrency
        self.requests_per_client = requests_per_client
        self.warmup_requests = warmup_requests
        self.key_space = key_space
        self.opcode = opcode
        self.latency = LatencySeries()
        self.meter = Meter()
        self.errors = 0
        self._done = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("population already started")
        self._started = True
        self.meter.begin(self.engine.now)
        for index in range(self.concurrency):
            host = self.client_hosts[index % len(self.client_hosts)]
            _McClient(self, index, host).start()

    @property
    def finished(self) -> bool:
        return self._done == self.concurrency

    def _client_done(self) -> None:
        self._done += 1
        if self.finished:
            self.meter.finish(self.engine.now)

    def kreqs_per_sec(self) -> float:
        return self.meter.kreqs_per_sec()

    def mean_latency_ms(self) -> float:
        return self.latency.mean_ms()


class _McClient:
    def __init__(self, pop: MemcachedClientPopulation, index: int, host: Host):
        self.pop = pop
        self.index = index
        self.host = host
        self.sent = 0
        self.socket: Optional[TcpSocket] = None
        self.parser = mc.full_codec().parser()
        self.request_started = 0.0
        self.last_key = ""

    def start(self) -> None:
        def connected(socket: TcpSocket) -> None:
            self.socket = socket
            socket.on_receive(self._on_data)
            self._send_next()

        self.pop.tcpnet.connect(
            self.host, self.pop.target, self.pop.port, connected
        )

    def _key_for(self, n: int) -> str:
        bucket = stable_hash((self.index, n)) % self.pop.key_space
        return f"key-{bucket:06d}"

    def _send_next(self) -> None:
        if self.sent >= self.pop.requests_per_client:
            self.pop._client_done()
            return
        self.last_key = self._key_for(self.sent)
        request = mc.make_request(
            self.pop.opcode, self.last_key, opaque=self.index
        )
        self.request_started = self.pop.engine.now
        self.sent += 1
        self.socket.send(mc.encode(request))

    def _on_data(self, data: bytes) -> None:
        self.parser.feed(data)
        for response in self.parser.messages():
            latency = self.pop.engine.now - self.request_started
            if response.magic_code != mc.MAGIC_RESPONSE:
                self.pop.errors += 1
            if self.sent > self.pop.warmup_requests:
                self.pop.latency.record(latency)
                self.pop.meter.add(len(response.raw or b""))
            self._send_next()
            return
