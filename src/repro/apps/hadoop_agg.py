"""Hadoop in-network data aggregator use case (Listing 3, sections 2.1, 6.1).

The FLICK program implements the combiner of a word-count job: sorted
key/value streams from the mappers are merged by a ``foldt`` tree
(Figure 3c — for 8 mappers: 8 input tasks, 7 merge tasks, 1 output task)
and combined pairs flow to the reducer.
"""

from __future__ import annotations

from repro.grammar.protocols import hadoop
from repro.lang.compiler import CompiledProgram, compile_source
from repro.net.simnet import Host
from repro.runtime.graph import Bindings, CodecRegistry, OutboundTarget

#: The inbound endpoint name (the mapper array) — what a
#: ``service_classes`` spec binds a QoS tier to.
CLIENT_ENDPOINT = "mappers"

HADOOP_SOURCE = """
type kv: record
    key : string
    value : string

proc hadoop: ([kv/-] mappers, -/kv reducer)
    if all_ready(mappers):
        let result = foldt on mappers ordering elem e1, e2 by elem.key as e_key:
            let v = combine(e1.value, e2.value)
            kv(e_key, v)
        result => reducer

fun combine: (v1: string, v2: string) -> (string)
    to_str(to_int(v1) + to_int(v2))
"""


def compile_hadoop() -> CompiledProgram:
    return compile_source(HADOOP_SOURCE, "<hadoop_agg.flick>")


def hadoop_codec_registry() -> CodecRegistry:
    registry = CodecRegistry()
    codec = hadoop.codec()
    registry.register_parser("kv", codec.parser)
    registry.register_serializer("kv", codec.serialize)
    return registry


#: Cost (abstract ops) of one native combine: the platform's hand-written
#: foldt node does an integer add and a record rebuild (§4.3: foldt "has a
#: custom implementation for performance reasons").
NATIVE_COMBINE_OPS = 2.0


def _native_key(record):
    return record.key


def _native_combine(left, right):
    """Native equivalent of the FLICK combine body (property-tested)."""
    from repro.lang.values import Record

    value = str(int(left.value) + int(right.value))
    merged = Record(
        "kv",
        {
            "key_len": len(left.key.encode("utf-8")),
            "value_len": len(value.encode("utf-8")),
            "key": left.key,
            "value": value,
        },
    )
    return merged, NATIVE_COMBINE_OPS


def hadoop_bindings(
    reducer_host: Host,
    reducer_port: int,
    n_mappers: int,
    native: bool = True,
) -> Bindings:
    """Group ``n_mappers`` connections per graph; reducer is outbound.

    ``native=True`` uses the platform's custom foldt combine; ``False``
    interprets the FLICK body directly (the E13-style ablation compares
    both and the equivalence is property-tested).
    """
    return Bindings(
        outbound={"reducer": [OutboundTarget(reducer_host, reducer_port)]},
        group_size=n_mappers,
        native_foldt=(_native_key, _native_combine) if native else None,
    )
