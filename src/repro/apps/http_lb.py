"""HTTP load balancer and static web server use cases (sections 2.1, 6.1).

Both services are written in the FLICK language and compiled through the
full front end.  The load balancer hashes the connection 4-tuple to pick
a backend; because a task graph is per-connection and the hash input is
connection-stable, subsequent requests stick to the same backend, and
responses flow back unparsed (the raw fast path), matching Figure 3a.

The static web server variant answers every request with a fixed 137-byte
payload — the paper's backend-free configuration used to measure the
platform itself.
"""

from __future__ import annotations

from typing import Dict, List

from repro.grammar.protocols import http
from repro.lang.compiler import CompiledProgram, compile_source
from repro.lang.values import Record
from repro.runtime.graph import Bindings, CodecRegistry, OutboundTarget

#: The fixed response body used by the static web experiments (137 bytes,
#: §6.3: "small HTTP payloads (137 bytes each)").
STATIC_BODY = (b"FLICK static response. " * 6)[:137]

#: The inbound endpoint name both programs expose — what a
#: ``service_classes`` spec binds a QoS tier to.
CLIENT_ENDPOINT = "client"

HTTP_LB_SOURCE = """
type http_req: record
    method : string
    path : string

type http_resp: record
    status : integer
    body : string

type conn_info: record
    src : string
    dst : string

proc HttpBalancer: (http_req/http_resp client, [http_resp/http_req] backends, info: conn_info)
    client => forward(info, backends)
    backends => client

fun forward: (info: conn_info, [-/http_req] backends, req: http_req) -> ()
    let target = hash(concat(info.src, info.dst)) mod len(backends)
    req => backends[target]
"""

STATIC_WEB_SOURCE = """
type http_req: record
    method : string
    path : string

type http_resp: record
    status : integer
    body : string

proc StaticWeb: (http_req/http_resp client)
    client => respond() => client

fun respond: (req: http_req) -> (http_resp)
    http_resp(200, "%BODY%")
"""


def compile_http_lb() -> CompiledProgram:
    """Compile the load-balancer program."""
    return compile_source(HTTP_LB_SOURCE, "<http_lb.flick>")


def compile_static_web() -> CompiledProgram:
    """Compile the static web server program (body embedded as a literal)."""
    source = STATIC_WEB_SOURCE.replace(
        "%BODY%", STATIC_BODY.decode("ascii").replace('"', "'")
    )
    return compile_source(source, "<static_web.flick>")


def _serialize_http_resp(record: Record):
    """Serialise a response record, completing FLICK-constructed ones."""
    if "version" in record:
        return http.serialize(record)
    body = record.body
    if isinstance(body, str):
        body = body.encode("latin-1")
    full = http.make_response(status=record.status, body=body)
    return http.serialize(full)


def http_codec_registry() -> CodecRegistry:
    """Registry wiring FLICK's http_req/http_resp types to the HTTP codec."""
    registry = CodecRegistry()
    registry.register_parser("http_req", http.HttpRequestParser)
    registry.register_parser("http_resp", http.HttpResponseParser)
    registry.register_serializer("http_req", http.serialize)
    registry.register_serializer("http_resp", _serialize_http_resp)
    return registry


def make_conn_info(socket) -> Dict[str, object]:
    """Per-connection value parameters: the hashable connection identity."""
    return {
        "info": Record(
            "conn_info",
            {
                "src": f"{socket.host.name}:{socket.conn_id}",
                "dst": f"{socket.peer.host.name}:80",
            },
        )
    }


def lb_bindings(backend_targets: List[OutboundTarget]) -> Bindings:
    """Bindings for the load balancer: outbound backends + conn info."""
    return Bindings(
        outbound={"backends": backend_targets},
        value_params=make_conn_info,
    )


def static_web_bindings() -> Bindings:
    return Bindings()
