"""Memcached proxy / cache router use case (Listing 1, sections 4.1, 6.1).

Two variants are provided:

* ``PROXY_SOURCE`` — the condensed Listing 1: requests are hash-routed to
  the backend owning the key's shard; responses return to the client.
  This is the configuration measured in Figure 5 against Moxi.
* ``CACHE_ROUTER_SOURCE`` — the full Listing 1: GETK responses are cached
  in process-global state and future hits are answered from the cache
  without touching a backend.

The ``cmd`` wire format is the Listing 2 grammar; the parser registered
for the FLICK type is *specialised* to the fields the program accesses
(opcode and key), so request/response values are located but not decoded.
"""

from __future__ import annotations

from typing import List

from repro.grammar.protocols import memcached as mc
from repro.lang.compiler import CompiledProgram, compile_source
from repro.runtime.graph import Bindings, CodecRegistry, OutboundTarget

#: The inbound endpoint name both proxy programs expose — what a
#: ``service_classes`` spec binds a QoS tier to.
CLIENT_ENDPOINT = "client"

PROXY_SOURCE = """
type cmd: record
    opcode : integer {size=1}
    key : string

proc Memcached: (cmd/cmd client, [cmd/cmd] backends)
    | backends => client
    | client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
    let target = hash(req.key) mod len(backends)
    req => backends[target]
"""

CACHE_ROUTER_SOURCE = """
type cmd: record
    opcode : integer {size=1}
    key : string

proc memcached:
    (cmd/cmd client, [cmd/cmd] backends)
    global cache := empty_dict
    backends => update_cache(cache) => client
    client => test_cache(client, backends, cache)

fun update_cache:
    (cache: ref dict<string*cmd>, resp: cmd)
    -> (cmd)
    if resp.opcode = 0x0c:
        cache[resp.key] := resp
    resp

fun test_cache:
    (-/cmd client, [-/cmd] backends, cache: ref dict<string*cmd>, req: cmd)
    -> ()
    if cache[req.key] = None or req.opcode <> 0x0c:
        let target = hash(req.key) mod len(backends)
        req => backends[target]
    else:
        cache[req.key] => client
"""


def compile_proxy() -> CompiledProgram:
    return compile_source(PROXY_SOURCE, "<memcached_proxy.flick>")


def compile_cache_router() -> CompiledProgram:
    return compile_source(CACHE_ROUTER_SOURCE, "<memcached_router.flick>")


def memcached_codec_registry(
    program: CompiledProgram, specialised: bool = True
) -> CodecRegistry:
    """Registry for the ``cmd`` type.

    With ``specialised=True`` the parser decodes only the fields the
    program accesses plus structural dependencies (section 4.2); the
    unspecialised variant decodes everything — the E13 ablation compares
    the two.
    """
    registry = CodecRegistry()
    if specialised:
        codec = mc.specialized_codec(program.accessed_fields("cmd"))
    else:
        codec = mc.full_codec()
    serializer = mc.full_codec()
    registry.register_parser("cmd", codec.parser)
    registry.register_serializer("cmd", serializer.serialize)
    return registry


def proxy_bindings(backend_targets: List[OutboundTarget]) -> Bindings:
    return Bindings(outbound={"backends": backend_targets})
