"""The paper's three application-specific network services, in FLICK."""
