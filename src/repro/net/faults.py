"""Deterministic fault injection: adversarial conditions as a policy plane.

The scenario matrix only becomes interesting when traffic turns hostile
— the QoS/admission registries exist to make policies *differ*, and
well-behaved load never separates them.  This module supplies the sixth
string-keyed registry, :class:`FaultPolicy`, mirroring the scheduling /
allocation / admission / routing / arrival discipline (near-miss
errors, ``make_*`` / ``resolve_*`` constructors).  Four injectors ship
built in:

* ``slow-backend`` — service-time inflation windows: backend service
  time is multiplied by ``factor`` during periodic windows, a pure
  function of the virtual clock (no scheduled events), so the injector
  adds zero entries to the event calendar.
* ``flapping-backend`` — a backend goes down and comes back on an
  engine-clock schedule; going down resets every accepted connection
  through the normal :mod:`repro.net.tcp` close path, and connects
  accepted while down are reset immediately.
* ``conn-churn`` — open-loop clients recycle each connection after a
  fixed number of responses, so TCP handshakes and task-graph builds
  dominate the accept path (the paper's non-persistent regime, made
  continuous).
* ``retry-storm`` — impatient open-loop clients re-offer a request
  whose response exceeded ``retry_after_us``.  Re-offers go back
  through the admission door, closing the metastable feedback loop:
  ``admit-all`` amplifies overload with every round trip, while a
  shedding policy breaks the loop at the door.

Every injector is scheduled on the virtual clock and seeded state only
— runs stay byte-deterministic, and the parallel scenario runner
(``--jobs N``) stays byte-identical to serial.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.core.errors import ConfigError
from repro.runtime.qos import closest_name


class FaultPolicy:
    """Base class for fault injectors; subclasses override the hooks.

    A fault participates at up to three points of a testbed run:

    * :meth:`population_kwargs` — extra constructor keywords for the
      open-loop client population (client-side faults: churn, retries);
    * :meth:`install` — engine-clock schedules and mechanism hooks on
      the backend servers (server-side faults: slowdowns, flaps);
    * :meth:`counters` — injected-fault accounting for the results
      document, read after the run drains.

    ``needs_backends`` marks injectors that are meaningless without
    backend servers behind the middlebox (testbeds reject the
    combination instead of silently dropping it).
    ``tears_down_on_backend_close`` asks the platform to tear down a
    task graph when a *backend*-side connection EOFs — without it, a
    request in flight to a dying backend would black-hole (the client
    waits forever and the run never drains); with it, the close
    propagates to the client, which fails the in-flight window and
    reconnects.
    """

    #: Registry key; subclasses must override.
    name = "abstract"
    #: Whether the injector requires backend servers behind the platform.
    needs_backends = False
    #: Whether backend-side EOFs must tear down the serving task graph.
    tears_down_on_backend_close = False

    def population_kwargs(self) -> dict:
        """Extra ``OpenLoopClients`` keywords this fault configures."""
        return {}

    def install(self, engine, backends) -> None:
        """Hook engine-clock schedules into the backend servers."""

    def counters(self, population=None) -> Dict[str, float]:
        """Injected-fault counters for the results document."""
        return {}

    def params(self) -> Dict[str, object]:
        """JSON-ready parameterisation (mirrors the constructor)."""
        return {}

    def describe(self) -> str:
        """Human-readable parameterisation for reports."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name!r}>"


# -- registry ----------------------------------------------------------------

_REGISTRY: Dict[str, Type[FaultPolicy]] = {}


def register_fault(cls: Type[FaultPolicy]) -> Type[FaultPolicy]:
    """Class decorator adding ``cls`` to the registry under ``cls.name``."""
    if not cls.name or cls.name == "abstract":
        raise ConfigError(f"fault class {cls.__name__} needs a name")
    if cls.name in _REGISTRY:
        raise ConfigError(f"fault policy {cls.name!r} registered twice")
    _REGISTRY[cls.name] = cls
    return cls


def registered_faults() -> tuple:
    """All registered fault-policy names, sorted."""
    return tuple(sorted(_REGISTRY))


def closest_fault_name(name: str) -> Optional[str]:
    """The registered name a typo most plausibly meant, or ``None``."""
    return closest_name(name, _REGISTRY)


def unknown_fault_message(name: str) -> str:
    """Error text for an unregistered fault name, with a near-miss."""
    message = (
        f"unknown fault policy {name!r}; registered: "
        f"{', '.join(sorted(_REGISTRY))}"
    )
    suggestion = closest_fault_name(name)
    if suggestion is not None:
        message += f"; did you mean {suggestion!r}?"
    return message


def make_fault(name: str, **params) -> FaultPolicy:
    """Instantiate the registered fault policy ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(unknown_fault_message(name)) from None
    try:
        return cls(**params)
    except TypeError as exc:
        raise ConfigError(
            f"bad parameters for fault policy {name!r}: {exc}"
        ) from None


def resolve_fault(spec, **params) -> FaultPolicy:
    """Accept a fault name or a ready instance; return an instance."""
    if isinstance(spec, FaultPolicy):
        return spec
    if isinstance(spec, str):
        return make_fault(spec, **params)
    raise ConfigError(
        f"fault must be a name or FaultPolicy, got {type(spec).__name__}"
    )


# -- built-in injectors -------------------------------------------------------


@register_fault
class SlowBackend(FaultPolicy):
    """Service-time inflation windows on the backend servers.

    During the first ``duty`` fraction of every ``period_us`` window the
    affected backends' service time is multiplied by ``factor``; outside
    the window service is nominal.  The multiplier is a pure function of
    the virtual clock sampled when the backend schedules its response,
    so the injector is event-free and trivially deterministic.
    ``targets`` limits the slowdown to the first N backends (``None`` =
    all of them) — a partial brown-out, where only flows hashed onto a
    slow backend feel it.
    """

    name = "slow-backend"
    needs_backends = True

    def __init__(
        self,
        factor: float = 8.0,
        period_us: float = 20_000.0,
        duty: float = 0.5,
        targets: Optional[int] = None,
    ):
        if factor <= 1.0:
            raise ConfigError(
                f"slow-backend factor must be > 1, got {factor:g}"
            )
        if period_us <= 0:
            raise ConfigError(
                f"slow-backend period_us must be positive, got {period_us:g}"
            )
        if not 0.0 < duty <= 1.0:
            raise ConfigError(
                f"slow-backend duty must be in (0, 1], got {duty:g}"
            )
        if targets is not None and targets < 1:
            raise ConfigError(
                f"slow-backend targets must be >= 1, got {targets}"
            )
        self.factor = float(factor)
        self.period_us = float(period_us)
        self.duty = float(duty)
        self.targets = targets
        self.inflated_responses = 0

    def _scale(self, now_us: float) -> float:
        if (now_us % self.period_us) < self.duty * self.period_us:
            self.inflated_responses += 1
            return self.factor
        return 1.0

    def install(self, engine, backends) -> None:
        count = len(backends) if self.targets is None else self.targets
        for backend in backends[:count]:
            backend.service_scale = self._scale

    def counters(self, population=None) -> Dict[str, float]:
        return {"fault_inflated_responses": float(self.inflated_responses)}

    def params(self) -> Dict[str, object]:
        return {
            "factor": self.factor,
            "period_us": self.period_us,
            "duty": self.duty,
            "targets": self.targets,
        }

    def describe(self) -> str:
        scope = "all" if self.targets is None else str(self.targets)
        return (
            f"slow-backend(x{self.factor:g} {self.duty * 100:.0f}% of "
            f"{self.period_us / 1000:g}ms, targets={scope})"
        )


@register_fault
class FlappingBackend(FaultPolicy):
    """Periodic backend up/down cycles with connection resets.

    The first ``targets`` backends go down at ``first_down_us`` and
    every ``period_us`` after that, for ``downtime_us`` each time, over
    ``cycles`` cycles (a bounded schedule — the event calendar must
    drain for the run to finish).  Going down closes every accepted
    connection through the normal TCP close path and connects accepted
    while down are reset immediately; the platform (via
    ``tears_down_on_backend_close``) propagates each reset to the
    client, which fails its in-flight window and reconnects.
    """

    name = "flapping-backend"
    needs_backends = True
    tears_down_on_backend_close = True

    def __init__(
        self,
        first_down_us: float = 10_000.0,
        downtime_us: float = 5_000.0,
        period_us: float = 20_000.0,
        cycles: int = 2,
        targets: int = 1,
    ):
        if first_down_us <= 0:
            raise ConfigError(
                "flapping-backend first_down_us must be positive, "
                f"got {first_down_us:g}"
            )
        if downtime_us <= 0:
            raise ConfigError(
                "flapping-backend downtime_us must be positive, "
                f"got {downtime_us:g}"
            )
        if period_us <= downtime_us:
            raise ConfigError(
                "flapping-backend period_us must exceed downtime_us, "
                f"got period={period_us:g} downtime={downtime_us:g}"
            )
        if cycles < 1:
            raise ConfigError(
                f"flapping-backend cycles must be >= 1, got {cycles}"
            )
        if targets < 1:
            raise ConfigError(
                f"flapping-backend targets must be >= 1, got {targets}"
            )
        self.first_down_us = float(first_down_us)
        self.downtime_us = float(downtime_us)
        self.period_us = float(period_us)
        self.cycles = cycles
        self.targets = targets

    def install(self, engine, backends) -> None:
        flapping = backends[: self.targets]
        for cycle in range(self.cycles):
            down_at = self.first_down_us + cycle * self.period_us
            up_at = down_at + self.downtime_us
            for backend in flapping:
                engine.at(down_at, backend.set_up, False)
                engine.at(up_at, backend.set_up, True)
        self._flapping = flapping

    def counters(self, population=None) -> Dict[str, float]:
        resets = sum(
            backend.connections_reset
            for backend in getattr(self, "_flapping", ())
        )
        return {
            "fault_backend_resets": float(resets),
            "fault_flap_cycles": float(self.cycles),
        }

    def params(self) -> Dict[str, object]:
        return {
            "first_down_us": self.first_down_us,
            "downtime_us": self.downtime_us,
            "period_us": self.period_us,
            "cycles": self.cycles,
            "targets": self.targets,
        }

    def describe(self) -> str:
        return (
            f"flapping-backend({self.targets} down "
            f"{self.downtime_us / 1000:g}ms every "
            f"{self.period_us / 1000:g}ms x{self.cycles})"
        )


@register_fault
class ConnChurn(FaultPolicy):
    """Short-lived client connections: recycle after N responses.

    Each open-loop connection closes itself once it has drained
    ``lifetime_requests`` responses and immediately reconnects, so TCP
    handshakes and per-connection task-graph builds dominate the accept
    path — the paper's non-persistent regime (§6.3), made continuous
    instead of one-shot.
    """

    name = "conn-churn"

    def __init__(self, lifetime_requests: int = 16):
        if lifetime_requests < 1:
            raise ConfigError(
                "conn-churn lifetime_requests must be >= 1, "
                f"got {lifetime_requests}"
            )
        self.lifetime_requests = lifetime_requests

    def population_kwargs(self) -> dict:
        return {"conn_lifetime_requests": self.lifetime_requests}

    def counters(self, population=None) -> Dict[str, float]:
        cycles = 0 if population is None else population.conn_cycles
        return {"fault_conn_cycles": float(cycles)}

    def params(self) -> Dict[str, object]:
        return {"lifetime_requests": self.lifetime_requests}

    def describe(self) -> str:
        return f"conn-churn(every {self.lifetime_requests} responses)"


@register_fault
class RetryStorm(FaultPolicy):
    """Impatient clients: re-offer any response slower than the budget.

    A response that took longer than ``retry_after_us`` is discarded
    (never a completion, never a latency sample) and the request is
    re-offered through the full admission path, up to ``max_retries``
    times per original arrival.  Above saturation this is the
    metastable feedback loop: every late response adds offered load,
    which makes more responses late.  ``admit-all`` lets the loop run
    (goodput collapses); a shedding admission policy breaks it at the
    door, because re-offers are subject to shedding exactly like fresh
    arrivals.
    """

    name = "retry-storm"

    def __init__(
        self, retry_after_us: float = 2_000.0, max_retries: int = 3
    ):
        if retry_after_us <= 0:
            raise ConfigError(
                "retry-storm retry_after_us must be positive, "
                f"got {retry_after_us:g}"
            )
        if max_retries < 1:
            raise ConfigError(
                f"retry-storm max_retries must be >= 1, got {max_retries}"
            )
        self.retry_after_us = float(retry_after_us)
        self.max_retries = max_retries

    def population_kwargs(self) -> dict:
        return {
            "retry_after_us": self.retry_after_us,
            "max_retries": self.max_retries,
        }

    def counters(self, population=None) -> Dict[str, float]:
        retried = 0 if population is None else population.retried
        return {"fault_retried": float(retried)}

    def params(self) -> Dict[str, object]:
        return {
            "retry_after_us": self.retry_after_us,
            "max_retries": self.max_retries,
        }

    def describe(self) -> str:
        return (
            f"retry-storm(>{self.retry_after_us / 1000:g}ms, "
            f"max {self.max_retries})"
        )
